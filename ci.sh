#!/usr/bin/env sh
# The full offline gate. The workspace is hermetic — everything here
# must succeed with no network and an empty registry cache.
set -eu

cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "== perf smoke (midstate/pebble/sweep trajectory) =="
# 25 ms per measurement (not 5): the crypto regression gate below
# compares speedup ratios from this run against the committed baseline,
# and the one-shot calibration in the timer is too noisy at 5 ms.
DAP_BENCH_MS=25 cargo run --release --offline -p dap-bench --bin perf -- target

echo "== sweep determinism (parallel vs sequential, default grid) =="
cargo run --release --offline -p dap-bench --bin sweep -- 400 --check > /dev/null

echo "== net soak (seeded loopback flood, sharded pool) =="
# Flood at p = 0.9: --assert-soak checks no shed frames, no weak
# rejects, balanced counters, and auth rate within tolerance of 1 - p^m.
# Two same-seed runs must be byte-identical (multi-threaded pool,
# deterministic by construction — see DESIGN.md §8).
soak="cargo run --release --offline -q -p dap-net --bin dapd --"
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --assert-soak > target/net_soak_a.txt
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --assert-soak > target/net_soak_b.txt
cmp target/net_soak_a.txt target/net_soak_b.txt
# No adversary: 100% of genuine reveals must authenticate.
$soak --loopback --seed 7 --intervals 100 --flood 0 --copies 1 \
    --assert-soak > /dev/null

echo "== telemetry gate (seeded trace + snapshot byte-identity) =="
# Two same-seed traced runs: the printed registry snapshot must be
# byte-identical, and the trace JSONL must be byte-identical as a
# *whole file* — the header timestamp reads the run's own TimeSource,
# so a frozen-clock run has nothing wall-clocked to skip (DESIGN.md §9
# and tests/telemetry.rs).
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --trace-out target/net_trace_a.jsonl \
    > target/net_telemetry_a.txt
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --trace-out target/net_trace_b.jsonl \
    > target/net_telemetry_b.txt
cmp target/net_telemetry_a.txt target/net_telemetry_b.txt
cmp target/net_trace_a.jsonl target/net_trace_b.jsonl
test -s target/net_trace_a.jsonl

echo "== fleet soak (1k tagged senders, session tables, byte-identity) =="
# Crowd-scale gate: every sender spoofed by the flooder at p = 0.8,
# frames routed to shards by SenderId, per-sender sessions under a fixed
# memory budget. --assert-soak checks balanced counters, no weak
# accepts, budget compliance and the per-sender 1 - p^m rate; two
# same-seed campaigns must print byte-identical snapshots (DESIGN §10).
$soak --fleet --seed 2016 --senders 1024 --intervals 4 --buffers 4 \
    --shards 4 --flood 0.8 --assert-soak > target/fleet_soak_a.txt
$soak --fleet --seed 2016 --senders 1024 --intervals 4 --buffers 4 \
    --shards 4 --flood 0.8 --assert-soak > target/fleet_soak_b.txt
cmp target/fleet_soak_a.txt target/fleet_soak_b.txt

echo "== overload gate (burst adversary, pinned floor, shed byte-identity) =="
# The prioritized posture under the worst targeted adversary: pins 1-8,
# a finite per-shard drain budget, burst-at-reanchor at p = 0.9. Two
# same-seed campaigns must print byte-identical reports and emit
# byte-identical traces, whole file, shed decisions and header
# included, and the pinned senders must authenticate every reveal
# (>= 0.99 x the clean baseline asserted below). See DESIGN.md §11.
$soak --fleet --seed 2016 --senders 64 --intervals 8 --buffers 4 \
    --shards 4 --flood 0.9 --copies 4 --adversary burst-reanchor \
    --pin-first 8 --drain-budget 96 --assert-soak \
    --assert-pinned-floor 990 --trace-out target/overload_a.jsonl \
    > target/overload_a.txt
$soak --fleet --seed 2016 --senders 64 --intervals 8 --buffers 4 \
    --shards 4 --flood 0.9 --copies 4 --adversary burst-reanchor \
    --pin-first 8 --drain-budget 96 --assert-soak \
    --assert-pinned-floor 990 --trace-out target/overload_b.jsonl \
    > target/overload_b.txt
cmp target/overload_a.txt target/overload_b.txt
cmp target/overload_a.jsonl target/overload_b.jsonl
test -s target/overload_a.jsonl
# The burst must actually overflow the budget: shed decisions traced.
grep -q '"ev":"shed_decision"' target/overload_a.jsonl
# Clean baseline for the 0.99x floor: no adversary, same posture — the
# pinned rate is 1000 permille, so the attacked floor above is >= 0.99x.
$soak --fleet --seed 2016 --senders 64 --intervals 8 --buffers 4 \
    --shards 4 --flood 0 --copies 1 --pin-first 8 --drain-budget 96 \
    --assert-pinned-floor 1000 > /dev/null

echo "== adaptive gate (live control plane: ramp to the ESS, byte-identity) =="
# DESIGN §13: --adaptive closes the loop — the driver estimates the
# forged share from reveal-time buffer evidence and broadcasts re-size
# directives at quiesced interval boundaries. Under a 0.1 -> 0.9 flood
# ramp the final commanded m must land within +-1 of the offline
# Algorithm 3 optimum (--assert-adaptive); two same-seed runs must
# print byte-identical snapshots and whole-file byte-identical traces
# (the feedback edge costs no determinism); and the trace must
# narrate at least one live re-size.
$soak --loopback --seed 2016 --intervals 300 --buffers 2 --shards 4 \
    --flood 0.1 --flood-end 0.9 --adaptive --assert-adaptive \
    --trace-out target/adaptive_a.jsonl > target/adaptive_a.txt
$soak --loopback --seed 2016 --intervals 300 --buffers 2 --shards 4 \
    --flood 0.1 --flood-end 0.9 --adaptive --assert-adaptive \
    --trace-out target/adaptive_b.jsonl > target/adaptive_b.txt
cmp target/adaptive_a.txt target/adaptive_b.txt
cmp target/adaptive_a.jsonl target/adaptive_b.jsonl
grep -q '"ev":"posture_change"' target/adaptive_a.jsonl
# No-flap leg: a stationary clean wire must never fire a directive.
$soak --loopback --seed 7 --intervals 120 --buffers 1 --flood 0 \
    --copies 1 --adaptive --assert-posture-stable > /dev/null

echo "== daptrace gate (forensic audit of the captured traces) =="
# DESIGN §14: the audit engine replays every capture the gates above
# produced and proves the causal invariants hold — verify pairing,
# shed quiescence, monotone posture epochs, the k <= m reservoir
# bound, pinned-session immunity — exiting nonzero on any violation.
# The same-seed flood soak is traced twice (net_trace_a/b above); both
# must audit clean and their audits and reports must be byte-identical.
daptrace="cargo run --release --offline -q -p dap-net --bin daptrace --"
# The flood capture must actually carry flight-recorder spans.
grep -q '"ev":"frame_span"' target/net_trace_a.jsonl
$daptrace audit target/net_trace_a.jsonl > target/audit_a.txt
$daptrace audit target/net_trace_b.jsonl > target/audit_b.txt
cmp target/audit_a.txt target/audit_b.txt
$daptrace report target/net_trace_a.jsonl > target/report_a.txt
$daptrace report target/net_trace_b.jsonl > target/report_b.txt
cmp target/report_a.txt target/report_b.txt
test -s target/report_a.txt
# The stage-latency table and the attack-onset verdict must be there:
# a p = 0.9 flood from interval zero registers an onset immediately.
grep -q 'verify' target/report_a.txt
grep -q 'attack onset' target/report_a.txt
# The overload capture audits clean under its pinned-floor posture —
# --pin-first mirrors the soak flags, arming the pin-respected rule.
$daptrace audit --pin-first 8 target/overload_a.jsonl > /dev/null
# The adaptive capture's posture epochs are monotone end to end.
$daptrace audit target/adaptive_a.jsonl > /dev/null
# A tampered capture must be rejected with a nonzero exit.
sed 's/"ev":"verify_end"/"ev":"verify_end_forged"/' \
    target/net_trace_a.jsonl > target/net_trace_tampered.jsonl
if $daptrace audit target/net_trace_tampered.jsonl > /dev/null 2>&1; then
    echo "daptrace accepted a tampered trace" >&2
    exit 1
fi

echo "== sweep parallelism gate (workers engaged, bit-identical) =="
# The perf smoke above wrote target/BENCH_sweep.json. The provisioning
# floor guarantees at least two engaged workers on any box; the speedup
# claim only means something with two real cores under the process.
engaged=$(grep -o '"workers_engaged":[0-9]*' target/BENCH_sweep.json | cut -d: -f2)
test -n "$engaged" && test "$engaged" -ge 2
grep -q '"bit_identical":true' target/BENCH_sweep.json
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -ge 2 ]; then
    speedup=$(grep -o '"speedup":[0-9.]*' target/BENCH_sweep.json | cut -d: -f2)
    echo "$speedup" | awk '{ exit !($1 > 1.2) }' || {
        echo "sweep speedup $speedup <= 1.2 on a $cores-core box" >&2
        exit 1
    }
fi

echo "== netbench smoke (ingress throughput + verify latency) =="
DAP_BENCH_MS=5 cargo run --release --offline -q -p dap-net --bin netbench -- target > /dev/null
# The verify lanes must report a real latency tail in BENCH_net.json.
p99=$(grep -o '"p99_ns":[0-9]*' target/BENCH_net.json | head -n1 | cut -d: -f2)
test -n "$p99" && test "$p99" -gt 0
# The fleet ingress lane (tagged frames through session tables) must be
# present and report a real rate.
grep -q '"name":"fleet_ingest"' target/BENCH_net.json
# The adversary survival matrix (class x posture) must be present with
# its survival fields (see EXPERIMENTS.md).
grep -q '"name":"overload_burst-reanchor_prioritized"' target/BENCH_net.json
grep -q '"pinned_permille"' target/BENCH_net.json

echo "== traced-ingest overhead gate (flight recorder <= 10%) =="
# The loopback ingest lane runs as an interleaved pair: untraced vs
# the flight-recorder posture (per-shard retain-last-8192 rings, a
# span on every frame). Tracing every frame may cost at most 10% of
# untraced throughput, or the recorder is not flight-recorder-grade.
# Trailing comma in the name match keeps loopback_ingest from also
# matching its _traced sibling.
untraced=$(grep '"name":"loopback_ingest",' target/BENCH_net.json \
    | grep -o '"frames_per_sec":[0-9.]*' | cut -d: -f2)
traced=$(grep '"name":"loopback_ingest_traced",' target/BENCH_net.json \
    | grep -o '"frames_per_sec":[0-9.]*' | cut -d: -f2)
test -n "$untraced" && test -n "$traced"
echo "$traced $untraced" | awk '{ exit !($1 >= 0.90 * $2) }' || {
    echo "traced ingest at $traced frames/s is < 0.90x untraced at $untraced frames/s" >&2
    exit 1
}

echo "== batch gate (lane-parallel reveal-verify >= 2x scalar) =="
# The batched lanes amortize the per-interval chain walk and push the
# HMAC re-key + MAC through the multi-lane SHA-256 kernels; the whole
# point is >= 2x the sequential lane on the same 2048-reveal workload
# (see DESIGN.md §12). Each lane's name is matched with its trailing
# comma so dap_reveal_verify does not also match its _batched sibling.
for pair in "dap_reveal_verify dap_reveal_verify_batched" \
            "teslapp_reveal_verify teslapp_reveal_verify_batched"; do
    set -- $pair
    scalar=$(grep "\"name\":\"$1\"," target/BENCH_net.json \
        | grep -o '"frames_per_sec":[0-9.]*' | cut -d: -f2)
    batched=$(grep "\"name\":\"$2\"," target/BENCH_net.json \
        | grep -o '"frames_per_sec":[0-9.]*' | cut -d: -f2)
    test -n "$scalar" && test -n "$batched"
    echo "$batched $scalar" | awk '{ exit !($1 >= 2.0 * $2) }' || {
        echo "$2 at $batched frames/s is < 2x $1 at $scalar frames/s" >&2
        exit 1
    }
done

echo "== crypto bench regression gate (vs committed BENCH_crypto.json) =="
# The perf smoke above wrote target/BENCH_crypto.json. Every lane in
# the committed baseline must keep >= 0.8x its committed speedup ratio
# in the fresh run — a >20% regression on any pre-existing crypto lane
# fails CI. Ratios (not raw ns) make this robust to slow boxes; lanes
# the host cannot produce (e.g. compress_x8 without AVX2) are skipped.
while IFS= read -r line; do
    case "$line" in *'"name"'*) ;; *) continue ;; esac
    name=$(echo "$line" | grep -o '"name":"[^"]*"' | cut -d'"' -f4)
    committed=$(echo "$line" | grep -o '"speedup":[0-9.]*' | cut -d: -f2)
    fresh=$(grep "\"name\":\"$name\"," target/BENCH_crypto.json \
        | grep -o '"speedup":[0-9.]*' | cut -d: -f2)
    if [ -z "$fresh" ]; then
        echo "  lane $name not produced on this host -- skipped"
        continue
    fi
    echo "$fresh $committed" | awk '{ exit !($1 >= 0.8 * $2) }' || {
        echo "crypto lane $name regressed: speedup $fresh < 0.8 x committed $committed" >&2
        exit 1
    }
done < BENCH_crypto.json

echo "ci.sh: all green"
