#!/usr/bin/env sh
# The full offline gate. The workspace is hermetic — everything here
# must succeed with no network and an empty registry cache.
set -eu

cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "== perf smoke (midstate/pebble/sweep trajectory) =="
DAP_BENCH_MS=5 cargo run --release --offline -p dap-bench --bin perf -- target

echo "== sweep determinism (parallel vs sequential, default grid) =="
cargo run --release --offline -p dap-bench --bin sweep -- 400 --check > /dev/null

echo "== net soak (seeded loopback flood, sharded pool) =="
# Flood at p = 0.9: --assert-soak checks no shed frames, no weak
# rejects, balanced counters, and auth rate within tolerance of 1 - p^m.
# Two same-seed runs must be byte-identical (multi-threaded pool,
# deterministic by construction — see DESIGN.md §8).
soak="cargo run --release --offline -q -p dap-net --bin dapd --"
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --assert-soak > target/net_soak_a.txt
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --assert-soak > target/net_soak_b.txt
cmp target/net_soak_a.txt target/net_soak_b.txt
# No adversary: 100% of genuine reveals must authenticate.
$soak --loopback --seed 7 --intervals 100 --flood 0 --copies 1 \
    --assert-soak > /dev/null

echo "== telemetry gate (seeded trace + snapshot byte-identity) =="
# Two same-seed traced runs: the printed registry snapshot must be
# byte-identical, and the trace JSONL must be byte-identical below its
# wall-clock header line (see DESIGN.md §9 and tests/telemetry.rs).
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --trace-out target/net_trace_a.jsonl \
    > target/net_telemetry_a.txt
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --trace-out target/net_trace_b.jsonl \
    > target/net_telemetry_b.txt
cmp target/net_telemetry_a.txt target/net_telemetry_b.txt
tail -n +2 target/net_trace_a.jsonl > target/net_trace_a.body
tail -n +2 target/net_trace_b.jsonl > target/net_trace_b.body
cmp target/net_trace_a.body target/net_trace_b.body
test -s target/net_trace_a.body

echo "== netbench smoke (ingress throughput + verify latency) =="
DAP_BENCH_MS=5 cargo run --release --offline -q -p dap-net --bin netbench -- target > /dev/null
# The verify lanes must report a real latency tail in BENCH_net.json.
p99=$(grep -o '"p99_ns":[0-9]*' target/BENCH_net.json | head -n1 | cut -d: -f2)
test -n "$p99" && test "$p99" -gt 0

echo "ci.sh: all green"
