#!/usr/bin/env sh
# The full offline gate. The workspace is hermetic — everything here
# must succeed with no network and an empty registry cache.
set -eu

cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "== perf smoke (midstate/pebble/sweep trajectory) =="
DAP_BENCH_MS=5 cargo run --release --offline -p dap-bench --bin perf -- target

echo "== sweep determinism (parallel vs sequential, default grid) =="
cargo run --release --offline -p dap-bench --bin sweep -- 400 --check > /dev/null

echo "ci.sh: all green"
