#!/usr/bin/env sh
# The full offline gate. The workspace is hermetic — everything here
# must succeed with no network and an empty registry cache.
set -eu

cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "== perf smoke (midstate/pebble/sweep trajectory) =="
DAP_BENCH_MS=5 cargo run --release --offline -p dap-bench --bin perf -- target

echo "== sweep determinism (parallel vs sequential, default grid) =="
cargo run --release --offline -p dap-bench --bin sweep -- 400 --check > /dev/null

echo "== net soak (seeded loopback flood, sharded pool) =="
# Flood at p = 0.9: --assert-soak checks no shed frames, no weak
# rejects, balanced counters, and auth rate within tolerance of 1 - p^m.
# Two same-seed runs must be byte-identical (multi-threaded pool,
# deterministic by construction — see DESIGN.md §8).
soak="cargo run --release --offline -q -p dap-net --bin dapd --"
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --assert-soak > target/net_soak_a.txt
$soak --loopback --seed 2016 --intervals 400 --buffers 4 --shards 4 \
    --flood 0.9 --copies 4 --assert-soak > target/net_soak_b.txt
cmp target/net_soak_a.txt target/net_soak_b.txt
# No adversary: 100% of genuine reveals must authenticate.
$soak --loopback --seed 7 --intervals 100 --flood 0 --copies 1 \
    --assert-soak > /dev/null

echo "== netbench smoke (ingress throughput + verify latency) =="
DAP_BENCH_MS=5 cargo run --release --offline -q -p dap-net --bin netbench -- target > /dev/null

echo "ci.sh: all green"
