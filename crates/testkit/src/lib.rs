//! `dap-testkit` — a deterministic, seeded, **shrinking** property-test
//! harness, modelled on proptest/Hypothesis but self-contained (~300 LoC
//! of machinery, zero dependencies) so the workspace builds hermetically.
//!
//! # Model
//!
//! A property is a closure over a [`Gen`], the *draw source*. Every
//! random decision a generator makes consumes one 64-bit draw from the
//! source; the sequence of draws fully determines the generated values.
//! That gives the harness three things for free:
//!
//! * **Determinism** — a run is a pure function of the seed. The default
//!   seed is fixed; override it with the `DAP_TESTKIT_SEED` environment
//!   variable (decimal or `0x…` hex).
//! * **Reproducibility** — on failure the harness prints the seed and
//!   case number needed to replay the exact failure.
//! * **Shrinking** — the failing draw sequence is minimised Hypothesis-
//!   style (delete chunks, then shrink each draw toward zero, replaying
//!   the property each time), so the reported counterexample is the
//!   smallest the minimiser can reach. Generators are written so smaller
//!   draws mean simpler values (range generators return their lower
//!   bound for draw 0, collections get shorter, and so on).
//!
//! # Example
//!
//! ```
//! use dap_testkit::{check, Config};
//!
//! check("addition_commutes", |g| {
//!     let a = g.u64_in(0..1000);
//!     let b = g.u64_in(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Properties signal failure by panicking (plain `assert!` family) and
//! may reject uninteresting inputs with [`assume`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::Mutex;

mod strategy;
pub use strategy::{one_of, vec_of, Strategy};

// ---------------------------------------------------------------------------
// Random source
// ---------------------------------------------------------------------------

/// SplitMix64 (Steele, Lea, Flood — OOPSLA 2014): tiny, full-period,
/// well-distributed. Duplicated from `dap-crypto` so this crate stands
/// alone at the bottom of the dependency graph.
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The draw source handed to every property: generator methods consume
/// 64-bit draws; the harness records them so failures can be replayed
/// and minimised.
pub struct Gen {
    rng: SplitMix64,
    /// When replaying a (possibly mutated) failure, draws come from here;
    /// reads past the end return 0 — the "simplest" draw.
    replay: Option<Vec<u64>>,
    /// Every draw actually consumed this run, in order.
    recorded: Vec<u64>,
}

impl Gen {
    /// A standalone source with an explicit seed — for ad-hoc seeded
    /// sampling outside the [`check`] runner (fuzz corpora, examples).
    pub fn from_seed(seed: u64) -> Self {
        Self::fresh(seed)
    }

    fn fresh(seed: u64) -> Self {
        Self {
            rng: SplitMix64(seed),
            replay: None,
            recorded: Vec::new(),
        }
    }

    fn replaying(draws: Vec<u64>) -> Self {
        Self {
            rng: SplitMix64(0),
            replay: Some(draws),
            recorded: Vec::new(),
        }
    }

    /// One raw 64-bit draw — the primitive every generator builds on.
    pub fn draw(&mut self) -> u64 {
        let v = match &self.replay {
            Some(data) => data.get(self.recorded.len()).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.recorded.push(v);
        v
    }

    /// Uniform `u64` in `[range.start, range.end)`. Shrinks toward
    /// `range.start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.draw() % span
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// Any `u64` (full range). Shrinks toward 0.
    pub fn any_u64(&mut self) -> u64 {
        self.draw()
    }

    /// Any `u32`. Shrinks toward 0.
    pub fn any_u32(&mut self) -> u32 {
        (self.draw() & 0xffff_ffff) as u32
    }

    /// Any byte. Shrinks toward 0.
    pub fn any_u8(&mut self) -> u8 {
        (self.draw() & 0xff) as u8
    }

    /// A boolean; draw 0 means `false`, so it shrinks toward `false`.
    pub fn any_bool(&mut self) -> bool {
        self.draw() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits). Shrinks toward 0.
    pub fn unit_f64(&mut self) -> f64 {
        (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Shrinks toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.unit_f64() * (hi - lo)
    }

    /// A byte vector whose length is uniform in `len` and whose bytes
    /// shrink toward 0.
    pub fn bytes(&mut self, len: std::ops::Range<usize>) -> Vec<u8> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.any_u8()).collect()
    }

    /// A fixed-size byte array.
    pub fn byte_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = self.any_u8();
        }
        out
    }

    /// A vector built by calling `item` repeatedly; length uniform in
    /// `len`.
    pub fn vec_with<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| item(self)).collect()
    }

    /// A reference to a uniformly chosen element of `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "pick from empty slice");
        &choices[self.usize_in(0..choices.len())]
    }

    /// A sorted set of distinct `u64`s from `range`, with between
    /// `size.start` and `size.end - 1` elements (fewer if the range is
    /// too small).
    pub fn btree_set_u64(
        &mut self,
        range: std::ops::Range<u64>,
        size: std::ops::Range<usize>,
    ) -> std::collections::BTreeSet<u64> {
        let want = self.usize_in(size);
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..want.saturating_mul(4) {
            if set.len() >= want {
                break;
            }
            set.insert(self.u64_in(range.clone()));
        }
        set
    }
}

// ---------------------------------------------------------------------------
// Assume
// ---------------------------------------------------------------------------

/// Sentinel payload distinguishing "discard this case" from failure.
struct AssumeFailed;

/// Rejects the current case without failing the property (the analogue
/// of proptest's `prop_assume!`). Discarded cases do not count toward
/// the configured case total; the harness errors out if too few cases
/// survive filtering.
pub fn assume(condition: bool) {
    if !condition {
        panic_any(AssumeFailed);
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases each property must pass (discards excluded). Default 96 —
    /// comfortably above the workspace's 64-case floor.
    pub cases: u32,
    /// Base seed; each case derives its own sub-seed from it.
    pub seed: u64,
    /// Property replays the minimiser may spend per failure.
    pub max_shrink_iters: u32,
}

/// The workspace's default seed (any fixed value works; this spells
/// "dap tes(t) seed" if you squint at the hex).
pub const DEFAULT_SEED: u64 = 0xda9_7e57_5eed;

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("DAP_TESTKIT_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(DEFAULT_SEED);
        Self {
            cases: 96,
            seed,
            max_shrink_iters: 512,
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

/// Runs one case, converting panics into outcomes.
fn run_case(property: &impl Fn(&mut Gen), gen: &mut Gen) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| property(gen))) {
        Ok(()) => Outcome::Pass,
        Err(payload) => {
            if payload.downcast_ref::<AssumeFailed>().is_some() {
                Outcome::Discard
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Outcome::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Outcome::Fail(s.clone())
            } else {
                Outcome::Fail("<non-string panic payload>".to_string())
            }
        }
    }
}

/// Checks `property` under the default [`Config`]. Panics with a
/// seed-stamped report on the first (shrunk) failure.
pub fn check(name: &str, property: impl Fn(&mut Gen)) {
    check_with(Config::default(), name, property);
}

/// [`check`] with an explicit configuration.
///
/// # Panics
///
/// Panics if the property fails (after minimising the counterexample) or
/// if `assume` filtering discards too many cases.
pub fn check_with(config: Config, name: &str, property: impl Fn(&mut Gen)) {
    let report = quietly(|| run_all(&config, name, &property));
    if let Some(report) = report {
        panic!("{report}");
    }
}

/// Runs the whole property; returns a failure report, or `None` on pass.
fn run_all(config: &Config, name: &str, property: &impl Fn(&mut Gen)) -> Option<String> {
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let attempt_cap = config.cases.saturating_mul(20);
    while passed < config.cases {
        if attempts >= attempt_cap {
            return Some(format!(
                "[dap-testkit] property '{name}' gave up: only {passed}/{} \
                 cases survived `assume` filtering after {attempts} attempts \
                 (seed {:#x})",
                config.cases, config.seed
            ));
        }
        let case_seed = case_seed(config.seed, attempts);
        attempts += 1;
        let mut gen = Gen::fresh(case_seed);
        match run_case(property, &mut gen) {
            Outcome::Pass => passed += 1,
            Outcome::Discard => {}
            Outcome::Fail(msg) => {
                let (draws, msg, replays) =
                    minimise(property, gen.recorded, msg, config.max_shrink_iters);
                return Some(format!(
                    "[dap-testkit] property '{name}' failed (case {case}, seed {seed:#x}).\n\
                     reproduce: DAP_TESTKIT_SEED={seed} cargo test\n\
                     minimised after {replays} replays to {n} draws\n\
                     failure: {msg}",
                    case = attempts - 1,
                    seed = config.seed,
                    n = draws.len(),
                ));
            }
        }
    }
    None
}

/// Per-case sub-seed: decorrelates cases while staying a pure function
/// of (base seed, case index).
fn case_seed(seed: u64, case: u32) -> u64 {
    let mut mix = SplitMix64(seed ^ (u64::from(case) << 32 | u64::from(case)));
    mix.next_u64()
}

// ---------------------------------------------------------------------------
// Minimiser
// ---------------------------------------------------------------------------

/// Replays `property` on an explicit draw sequence.
fn replay(property: &impl Fn(&mut Gen), draws: &[u64]) -> (Outcome, Vec<u64>) {
    let mut gen = Gen::replaying(draws.to_vec());
    let outcome = run_case(property, &mut gen);
    (outcome, gen.recorded)
}

/// Hypothesis-style minimisation of a failing draw sequence: delete
/// chunks (shorter sequences ⇒ smaller collections), then shrink each
/// draw toward zero (range generators bottom out at their lower bound).
/// Every candidate is replayed; only still-failing candidates are kept.
fn minimise(
    property: &impl Fn(&mut Gen),
    mut best: Vec<u64>,
    mut best_msg: String,
    budget: u32,
) -> (Vec<u64>, String, u32) {
    let mut replays = 0u32;
    let try_candidate = |cand: &[u64], replays: &mut u32| -> Option<(Vec<u64>, String)> {
        if *replays >= budget {
            return None;
        }
        *replays += 1;
        match replay(property, cand) {
            (Outcome::Fail(msg), consumed) => Some((consumed, msg)),
            _ => None,
        }
    };

    let mut improved = true;
    while improved && replays < budget {
        improved = false;

        // Pass 1: delete chunks, largest first.
        let mut size = best.len().max(1) / 2;
        while size >= 1 && replays < budget {
            let mut start = 0;
            while start + size <= best.len() {
                let mut cand = best.clone();
                cand.drain(start..start + size);
                let mut deleted = false;
                if let Some((next, msg)) = try_candidate(&cand, &mut replays) {
                    // Strictly shorter only: replay pads missing draws
                    // with zeros, so a same-length "deletion" would loop.
                    if next.len() < best.len() {
                        best = next;
                        best_msg = msg;
                        improved = true;
                        deleted = true;
                    }
                }
                if !deleted {
                    start += size;
                }
            }
            size /= 2;
        }

        // Pass 2: shrink individual draws toward zero (binary search).
        // `best` may get shorter mid-loop (a smaller draw can make the
        // property consume fewer draws), so re-check the bound each step.
        let mut i = 0;
        while i < best.len() {
            if replays >= budget {
                break;
            }
            let original = best[i];
            if original == 0 {
                i += 1;
                continue;
            }
            // Try zero outright first.
            let mut lo = 0u64;
            let mut hi = original; // smallest known-failing value
            let mut cand = best.clone();
            cand[i] = 0;
            if let Some((next, msg)) = try_candidate(&cand, &mut replays) {
                best = next;
                best_msg = msg;
                improved = true;
                i += 1;
                continue;
            }
            // Binary search the smallest failing value in (lo, hi).
            while lo + 1 < hi && replays < budget && i < best.len() {
                let mid = lo + (hi - lo) / 2;
                let mut cand = best.clone();
                cand[i] = mid;
                match try_candidate(&cand, &mut replays) {
                    Some((next, msg)) => {
                        best = next;
                        best_msg = msg;
                        hi = mid;
                        improved = true;
                    }
                    None => lo = mid,
                }
            }
            i += 1;
        }
    }
    (best, best_msg, replays)
}

// ---------------------------------------------------------------------------
// Panic-hook hygiene
// ---------------------------------------------------------------------------

/// While a property runs, every failing case (including each shrink
/// replay) unwinds — without this, `cargo test` output would drown in
/// backtraces. The default hook is swapped out for the duration; the
/// mutex keeps concurrent testkit properties from fighting over it.
static HOOK: Mutex<()> = Mutex::new(());

fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let _guard = HOOK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f(); // never unwinds: all case panics are caught inside
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev);
    result
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(cases: u32) -> Config {
        Config {
            cases,
            seed: 0xfeed,
            max_shrink_iters: 512,
        }
    }

    fn failure_message(f: impl Fn(&mut Gen) + 'static) -> String {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with(fixed(96), "expected-failure", f);
        }));
        match result {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("report is a String"),
        }
    }

    #[test]
    fn passing_property_passes() {
        check_with(fixed(96), "tautology", |g| {
            let a = g.u64_in(3..17);
            assert!((3..17).contains(&a));
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            // Direct source use: same seed ⇒ same draws.
            let mut gen = Gen::fresh(42);
            for _ in 0..32 {
                seen.push(gen.u64_in(0..1000));
            }
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_report_names_seed_and_shrinks() {
        let msg = failure_message(|g| {
            let v = g.u64_in(0..1000);
            assert!(v < 10, "v={v}");
        });
        assert!(
            msg.contains("seed 0xfeed") || msg.contains("DAP_TESTKIT_SEED=0xfeed"),
            "report must carry the seed: {msg}"
        );
        // The minimiser must walk v down to the boundary case.
        assert!(msg.contains("v=10"), "not minimal: {msg}");
    }

    #[test]
    fn shrinking_reduces_collections() {
        // Fails whenever the vector has ≥ 3 elements; minimal failing
        // length is exactly 3.
        let msg = failure_message(|g| {
            let v = g.vec_with(0..50, |g| g.u64_in(0..5));
            assert!(v.len() < 3, "len={}", v.len());
        });
        assert!(msg.contains("len=3"), "not minimal: {msg}");
    }

    #[test]
    fn assume_discards_do_not_fail() {
        check_with(fixed(64), "assume-half", |g| {
            let v = g.u64_in(0..100);
            assume(v % 2 == 0);
            assert!(v % 2 == 0);
        });
    }

    #[test]
    fn impossible_assume_reports_give_up() {
        let msg = failure_message(|g| {
            let _ = g.draw();
            assume(false);
        });
        assert!(msg.contains("assume"), "{msg}");
    }

    #[test]
    fn generators_cover_ranges() {
        let mut gen = Gen::fresh(7);
        for _ in 0..1000 {
            assert!((5..9).contains(&gen.usize_in(5..9)));
            let f = gen.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let b = gen.bytes(0..17);
            assert!(b.len() < 17);
            let s = gen.btree_set_u64(1..40, 1..10);
            assert!(!s.is_empty() && s.len() < 10);
            assert!(s.iter().all(|v| (1..40).contains(v)));
        }
    }

    #[test]
    fn byte_array_and_pick() {
        let mut gen = Gen::fresh(8);
        let a: [u8; 10] = gen.byte_array();
        let b: [u8; 10] = gen.byte_array();
        assert_ne!(a, b, "consecutive arrays should differ");
        let choices = [1, 2, 3];
        for _ in 0..100 {
            assert!(choices.contains(gen.pick(&choices)));
        }
    }

    #[test]
    fn seed_env_parsing() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn replay_is_faithful() {
        // Record a run, replay its draws: identical values come out.
        let mut live = Gen::fresh(99);
        let v1 = live.u64_in(0..1_000_000);
        let v2 = live.bytes(0..32);
        let mut replayed = Gen::replaying(live.recorded.clone());
        assert_eq!(replayed.u64_in(0..1_000_000), v1);
        assert_eq!(replayed.bytes(0..32), v2);
    }
}
