//! Composable value generators on top of [`Gen`](crate::Gen).
//!
//! Most properties draw directly from the source (`g.u64_in(..)` etc.);
//! a [`Strategy`] packages a recipe so it can be named once, mapped, and
//! reused across properties — the thin analogue of proptest strategies.

use crate::Gen;
use std::rc::Rc;

/// A reusable recipe for generating `T`s from a draw source.
#[derive(Clone)]
pub struct Strategy<T> {
    sample: Rc<dyn Fn(&mut Gen) -> T>,
}

impl<T: 'static> Strategy<T> {
    /// Wraps a sampling function.
    pub fn new(sample: impl Fn(&mut Gen) -> T + 'static) -> Self {
        Self {
            sample: Rc::new(sample),
        }
    }

    /// Draws one value.
    pub fn sample(&self, gen: &mut Gen) -> T {
        (self.sample)(gen)
    }

    /// Post-processes every generated value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Strategy<U> {
        Strategy::new(move |gen| f(self.sample(gen)))
    }

    /// Chains generation: the second stage sees the first stage's value.
    pub fn and_then<U: 'static>(self, f: impl Fn(T, &mut Gen) -> U + 'static) -> Strategy<U> {
        Strategy::new(move |gen| {
            let value = self.sample(gen);
            f(value, gen)
        })
    }
}

/// A strategy yielding vectors of `item`, with length uniform in `len`.
pub fn vec_of<T: 'static>(item: Strategy<T>, len: std::ops::Range<usize>) -> Strategy<Vec<T>> {
    Strategy::new(move |gen| {
        let n = gen.usize_in(len.clone());
        (0..n).map(|_| item.sample(gen)).collect()
    })
}

/// A strategy picking uniformly from a fixed list of values.
///
/// # Panics
///
/// `sample` panics if `choices` is empty.
pub fn one_of<T: Clone + 'static>(choices: Vec<T>) -> Strategy<T> {
    Strategy::new(move |gen| gen.pick(&choices).clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_then_compose() {
        let evens = Strategy::new(|g: &mut Gen| g.u64_in(0..100)).map(|v| v * 2);
        let pairs = evens.clone().and_then(|a, g| (a, g.u64_in(0..a + 1)));
        let mut gen = Gen::from_seed(5);
        for _ in 0..200 {
            let v = evens.sample(&mut gen);
            assert_eq!(v % 2, 0);
            let (a, b) = pairs.sample(&mut gen);
            assert!(b <= a);
        }
    }

    #[test]
    fn vec_of_and_one_of() {
        let digits = one_of(vec![1u8, 3, 7]);
        let vecs = vec_of(digits, 2..6);
        let mut gen = Gen::from_seed(6);
        for _ in 0..200 {
            let v = vecs.sample(&mut gen);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|d| [1, 3, 7].contains(d)));
        }
    }
}
