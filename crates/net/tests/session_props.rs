//! Property suite for the per-sender [`SessionTable`] (DESIGN §10):
//! random shrunk workloads against a transparent reference model of the
//! LRU + budget policy, plus protocol-level re-anchoring after eviction.
//!
//! Failures replay with `DAP_TESTKIT_SEED` — see `crates/testkit`.

use std::collections::BTreeMap;

use std::collections::BTreeSet;
use std::sync::Arc;

use dap_core::{DapBootstrap, DapParams, DapReceiver, DapSender, SenderId};
use dap_net::session::{
    Admission, SessionConfig, SessionTable, SCORE_INIT_PERMILLE, SESSION_OVERHEAD_BITS,
};
use dap_simnet::{SimDuration, SimRng, SimTime};
use dap_testkit::{check_with, Config, Gen};

const DIRECTORY_SIZE: u64 = 64;
const CHAIN_LEN: usize = 24;

fn params(m: usize) -> DapParams {
    DapParams::new(SimDuration(100), 1, 0, m)
}

/// A small provisioned roster: ids `1..=DIRECTORY_SIZE` are known, all
/// sessions the same shape (`m = 4`), so every session costs the same.
fn directory(sender: SenderId) -> Option<DapBootstrap> {
    (1..=DIRECTORY_SIZE)
        .contains(&sender.0)
        .then(|| DapSender::new(&sender.0.to_be_bytes(), CHAIN_LEN, params(4)).bootstrap())
}

fn session_cost_bits() -> u64 {
    let probe = DapReceiver::new(directory(SenderId(1)).expect("known id"), b"probe");
    probe.memory_capacity_bits() + SESSION_OVERHEAD_BITS
}

/// A transparent reference model of the table's admission policy:
/// uniform-cost LRU with eviction by smallest `(last_used, id)`.
struct Model {
    max_sessions: usize,
    budget_sessions: usize,
    clock: u64,
    resident: BTreeMap<u64, u64>, // id -> last_used stamp
    evicted_ever: std::collections::BTreeSet<u64>,
}

enum ModelOutcome {
    Resident,
    Admitted,
    Readmitted,
    Unknown,
}

impl Model {
    fn lookup(&mut self, id: u64) -> (ModelOutcome, Vec<u64>) {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&id) {
            *stamp = self.clock;
            return (ModelOutcome::Resident, Vec::new());
        }
        if !(1..=DIRECTORY_SIZE).contains(&id) {
            return (ModelOutcome::Unknown, Vec::new());
        }
        let cap = self.max_sessions.min(self.budget_sessions);
        let mut evictions = Vec::new();
        while !self.resident.is_empty() && self.resident.len() + 1 > cap {
            let victim = *self
                .resident
                .iter()
                .min_by_key(|(vid, stamp)| (**stamp, **vid))
                .map(|(vid, _)| vid)
                .expect("non-empty");
            self.resident.remove(&victim);
            self.evicted_ever.insert(victim);
            evictions.push(victim);
        }
        let outcome = if self.evicted_ever.contains(&id) {
            ModelOutcome::Readmitted
        } else {
            ModelOutcome::Admitted
        };
        self.resident.insert(id, self.clock);
        (outcome, evictions)
    }
}

fn props_config() -> Config {
    Config {
        cases: 64,
        ..Config::default()
    }
}

/// One random workload step: mostly known ids, a sprinkle of unknown
/// ones (which must never perturb residency).
fn draw_id(g: &mut Gen) -> u64 {
    if g.u64_in(0..8) == 0 {
        g.u64_in(DIRECTORY_SIZE + 1..DIRECTORY_SIZE + 32)
    } else {
        g.u64_in(1..DIRECTORY_SIZE + 1)
    }
}

/// The table agrees with the reference LRU model on every observable:
/// admission kind, eviction victims (and their order), residency,
/// occupancy. In particular the LRU property — a session used more
/// recently than another is never evicted before it, so an
/// active-interval session survives as long as anything colder exists.
#[test]
fn table_matches_reference_lru_model() {
    let cost = session_cost_bits();
    check_with(props_config(), "table_matches_reference_lru_model", |g| {
        let max_sessions = g.usize_in(1..9);
        let budget_sessions = g.usize_in(1..9);
        let mut table = SessionTable::new(
            SessionConfig {
                max_sessions,
                memory_budget_bits: budget_sessions as u64 * cost,
            },
            g.any_u64(),
        );
        let mut model = Model {
            max_sessions,
            budget_sessions,
            clock: 0,
            resident: BTreeMap::new(),
            evicted_ever: std::collections::BTreeSet::new(),
        };
        let steps = g.usize_in(1..48);
        for _ in 0..steps {
            let id = draw_id(g);
            let (expected, expected_evictions) = model.lookup(id);
            match table.lookup(SenderId(id), directory) {
                None => assert!(
                    matches!(expected, ModelOutcome::Unknown),
                    "table refused known id {id}"
                ),
                Some(session) => {
                    match expected {
                        ModelOutcome::Resident => {
                            assert_eq!(session.admission, Admission::Resident)
                        }
                        ModelOutcome::Admitted => {
                            assert_eq!(session.admission, Admission::Admitted)
                        }
                        ModelOutcome::Readmitted => {
                            assert_eq!(session.admission, Admission::Readmitted)
                        }
                        ModelOutcome::Unknown => panic!("table admitted unknown id {id}"),
                    }
                    let victims: Vec<u64> = session.evicted.iter().map(|e| e.sender).collect();
                    assert_eq!(victims, expected_evictions, "eviction choice diverged");
                }
            }
            assert_eq!(table.occupancy(), model.resident.len());
            for id in model.resident.keys() {
                assert!(
                    table.is_resident(SenderId(*id)),
                    "model resident {id} missing"
                );
            }
        }
    });
}

/// Occupancy and accounted memory never exceed the configured bounds at
/// any point in any workload, and unknown ids never consume budget.
#[test]
fn bounds_hold_at_every_step() {
    let cost = session_cost_bits();
    check_with(props_config(), "bounds_hold_at_every_step", |g| {
        let max_sessions = g.usize_in(1..13);
        let budget_sessions = g.u64_in(1..13);
        let budget = budget_sessions * cost + g.u64_in(0..cost);
        let mut table = SessionTable::new(
            SessionConfig {
                max_sessions,
                memory_budget_bits: budget,
            },
            g.any_u64(),
        );
        let steps = g.usize_in(1..64);
        let mut unknown_seen = 0u64;
        for _ in 0..steps {
            let id = draw_id(g);
            if table.lookup(SenderId(id), directory).is_none() {
                unknown_seen += 1;
            }
            assert!(table.occupancy() <= max_sessions, "occupancy over cap");
            assert!(table.memory_bits() <= budget, "memory over budget");
            assert_eq!(
                table.memory_bits(),
                table.occupancy() as u64 * cost,
                "accounting drifted from uniform session cost"
            );
        }
        assert_eq!(table.stats().unknown, unknown_seen);
    });
}

/// A reference model of the *priority* eviction policy (pins + EWMA
/// score): victim = smallest `(pinned, score, last_used, id)`, score
/// updated with the table's exact integer arithmetic.
struct PriorityModel {
    cap: usize,
    pins: BTreeSet<u64>,
    clock: u64,
    resident: BTreeMap<u64, (u64, u32)>, // id -> (last_used, score)
}

impl PriorityModel {
    fn lookup(&mut self, id: u64) -> Vec<u64> {
        self.clock += 1;
        if let Some((stamp, _)) = self.resident.get_mut(&id) {
            *stamp = self.clock;
            return Vec::new();
        }
        if !(1..=DIRECTORY_SIZE).contains(&id) {
            return Vec::new();
        }
        let mut evictions = Vec::new();
        while !self.resident.is_empty() && self.resident.len() + 1 > self.cap {
            let victim = *self
                .resident
                .iter()
                .min_by_key(|(vid, (stamp, score))| {
                    (u8::from(self.pins.contains(*vid)), *score, *stamp, **vid)
                })
                .map(|(vid, _)| vid)
                .expect("non-empty");
            // The headline invariant: a pinned session is never the
            // victim while any unpinned session exists.
            if self.pins.contains(&victim) {
                assert!(
                    self.resident.keys().all(|r| self.pins.contains(r)),
                    "pinned {victim} evicted while unpinned sessions exist"
                );
            }
            self.resident.remove(&victim);
            evictions.push(victim);
        }
        self.resident.insert(id, (self.clock, SCORE_INIT_PERMILLE));
        evictions
    }

    fn record_auth(&mut self, id: u64, success: bool) {
        if let Some((_, score)) = self.resident.get_mut(&id) {
            let decayed = *score - *score / 8;
            *score = decayed + if success { 125 } else { 0 };
        }
    }
}

/// The table agrees with the priority reference model step for step:
/// same eviction victims in the same order, same EWMA scores, and —
/// checked inside the model on every eviction — a pinned session is
/// never evicted while any unpinned session exists.
#[test]
fn pinned_and_scored_eviction_matches_reference_model() {
    check_with(
        props_config(),
        "pinned_and_scored_eviction_matches_reference_model",
        |g| {
            let cap = g.usize_in(1..9);
            let pin_count = g.usize_in(0..5);
            let pins: BTreeSet<u64> = (0..pin_count)
                .map(|_| g.u64_in(1..DIRECTORY_SIZE + 1))
                .collect();
            let mut table = SessionTable::with_pins(
                SessionConfig {
                    max_sessions: cap,
                    memory_budget_bits: u64::MAX,
                },
                g.any_u64(),
                Arc::new(pins.clone()),
            );
            let mut model = PriorityModel {
                cap,
                pins: pins.clone(),
                clock: 0,
                resident: BTreeMap::new(),
            };
            let steps = g.usize_in(1..64);
            for _ in 0..steps {
                if g.u64_in(0..3) == 0 {
                    // Auth verdict on a random id (no-op when absent).
                    let id = draw_id(g);
                    let success = g.u64_in(0..2) == 0;
                    model.record_auth(id, success);
                    table.record_auth(SenderId(id), success);
                } else {
                    let id = draw_id(g);
                    let expected_evictions = model.lookup(id);
                    let victims: Vec<u64> = table
                        .lookup(SenderId(id), directory)
                        .map(|s| s.evicted.iter().map(|e| e.sender).collect())
                        .unwrap_or_default();
                    assert_eq!(victims, expected_evictions, "victim choice diverged");
                }
                assert_eq!(table.occupancy(), model.resident.len());
                for (id, (_, score)) in &model.resident {
                    assert_eq!(
                        table.score_permille(SenderId(*id)),
                        Some(*score),
                        "score diverged for {id}"
                    );
                    assert!(table.is_resident(SenderId(*id)));
                }
            }
        },
    );
}

/// Evict-then-readmit re-anchors cleanly: whatever churn evicted a
/// sender, its next lookup is `Readmitted` with a fresh receiver that
/// authenticates the sender's *next* interval end to end.
#[test]
fn readmission_reanchors_and_authenticates() {
    check_with(
        props_config(),
        "readmission_reanchors_and_authenticates",
        |g| {
            let victim = g.u64_in(1..DIRECTORY_SIZE + 1);
            let cap = g.usize_in(1..4);
            let mut table = SessionTable::new(
                SessionConfig {
                    max_sessions: cap,
                    memory_budget_bits: u64::MAX,
                },
                g.any_u64(),
            );
            let mut rng = SimRng::new(g.any_u64());
            let mut sender = DapSender::new(&victim.to_be_bytes(), CHAIN_LEN, params(4));

            // Interval 1: the victim authenticates normally.
            let a1 = sender.announce(1, b"r1").expect("fresh chain");
            table
                .lookup(SenderId(victim), directory)
                .expect("known")
                .receiver
                .on_announce(&a1, SimTime(10), &mut rng);
            assert!(table
                .lookup(SenderId(victim), directory)
                .expect("resident")
                .receiver
                .on_reveal(&sender.reveal(1).expect("announced"), SimTime(110))
                .is_authenticated());

            // Random churn from other senders until the victim is gone.
            let mut churn = 0;
            while table.is_resident(SenderId(victim)) {
                let other = g.u64_in(1..DIRECTORY_SIZE + 1);
                if other != victim {
                    table.lookup(SenderId(other), directory);
                }
                churn += 1;
                assert!(churn < 512, "cap {cap} never evicted the victim");
            }

            // The victim skips ahead a few intervals while evicted, then
            // its next frame re-admits and authenticates across the gap.
            let next = 2 + g.u64_in(0..8);
            let announce = sender
                .announce(next, b"post-eviction")
                .expect("chain sized for the run");
            let at = SimTime((next - 1) * 100 + 10);
            let session = table.lookup(SenderId(victim), directory).expect("known");
            assert_eq!(session.admission, Admission::Readmitted);
            session.receiver.on_announce(&announce, at, &mut rng);
            assert!(table
                .lookup(SenderId(victim), directory)
                .expect("resident")
                .receiver
                .on_reveal(
                    &sender.reveal(next).expect("announced"),
                    SimTime(at.ticks() + 100)
                )
                .is_authenticated());
        },
    );
}
