//! End-to-end over real sockets: a DAP sender and a sharded receiver
//! pool exchange authentic traffic across two UDP sockets on localhost.
//!
//! Real wires have real clocks, which tests cannot assert against — so
//! the receive timestamps come from a [`ManualClock`] the test advances
//! in lockstep with its sends, and after every datagram the test polls
//! the pool's live frame counter before moving time forward. That keeps
//! the run order-deterministic while the bytes still cross the kernel's
//! UDP stack.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dap_core::{codec, DapMessage, DapParams, DapSender};
use dap_net::clock::{ManualClock, NetClock};
use dap_net::pool::{DapShard, OverflowPolicy, PoolConfig, ReceiverPool, RoutePolicy};
use dap_net::transport::{Transport, UdpTransport};
use dap_simnet::{SimDuration, SimTime};

const INTERVALS: u64 = 12;

fn during(i: u64) -> SimTime {
    SimTime((i - 1) * 100 + 10)
}

/// Polls `cond` until it holds or a wall-clock deadline passes.
fn await_or_die(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn dap_authenticates_across_real_udp_sockets() {
    let params = DapParams::new(SimDuration(100), 1, 0, 4);
    let mut sender = DapSender::new(b"udp-live", INTERVALS as usize + 2, params);
    let bootstrap = sender.bootstrap();

    // Receiver side: a real socket on an ephemeral port feeding the pool.
    let mut rx_transport =
        UdpTransport::receiver("127.0.0.1:0", Duration::from_millis(5)).expect("bind receiver");
    let rx_addr = rx_transport.local_addr().expect("receiver addr");
    let pool = ReceiverPool::spawn(
        PoolConfig {
            shards: 3,
            queue_depth: 64,
            overflow: OverflowPolicy::Block,
            route: RoutePolicy::ByInterval,
            ..PoolConfig::default()
        },
        77,
        |shard| DapShard::new(bootstrap, &[b'u', shard as u8]),
    );
    let handle = pool.handle();
    let live = handle.live();
    let clock = ManualClock::default();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let handle = handle.clone();
        let clock = clock.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut buf = vec![0u8; codec::MAX_FRAME_LEN];
            while !stop.load(Ordering::SeqCst) {
                match rx_transport.recv(&mut buf) {
                    Ok(Some(n)) => {
                        handle.ingest(&buf[..n], clock.now());
                    }
                    Ok(None) => {}
                    Err(e) => panic!("receiver socket died: {e}"),
                }
            }
        })
    };

    // Sender side: a second real socket aimed at the receiver.
    let mut tx = UdpTransport::sender("127.0.0.1:0", &rx_addr.to_string()).expect("bind sender");
    let mut sent = 0u64;
    let send_and_sync = |tx: &mut UdpTransport, frame: &[u8], sent: &mut u64| {
        tx.send(frame).expect("udp send");
        *sent += 1;
        let want = *sent;
        await_or_die("frame ingest", || live.frames() >= want);
    };

    for i in 1..=INTERVALS {
        clock.set(during(i));
        let announce = sender
            .announce(i, format!("udp reading {i}").as_bytes())
            .unwrap();
        let frame = codec::encode(&DapMessage::Announce(announce)).unwrap();
        send_and_sync(&mut tx, &frame, &mut sent);
        if i > 1 {
            let reveal = sender.reveal(i - 1).unwrap();
            let frame = codec::encode(&DapMessage::Reveal(reveal)).unwrap();
            send_and_sync(&mut tx, &frame, &mut sent);
        }
    }
    clock.set(during(INTERVALS + 1));
    let reveal = sender.reveal(INTERVALS).unwrap();
    let frame = codec::encode(&DapMessage::Reveal(reveal)).unwrap();
    send_and_sync(&mut tx, &frame, &mut sent);

    await_or_die("all reveals authenticated", || {
        live.authenticated() >= INTERVALS
    });
    stop.store(true, Ordering::SeqCst);
    reader.join().expect("reader thread");
    let metrics = pool.shutdown();

    assert_eq!(metrics.get("net.ingress.frames"), sent);
    assert_eq!(metrics.get("net.announce.stored"), INTERVALS);
    assert_eq!(metrics.get("net.reveal.total"), INTERVALS);
    assert_eq!(metrics.get("net.reveal.auth"), INTERVALS);
    assert_eq!(metrics.get("net.reveal.weak_rejected"), 0);
    assert_eq!(metrics.get("net.decode.errors"), 0);
    assert_eq!(metrics.get("net.ingress.dropped"), 0);
}
