//! The live game-driven **control plane**: measured evidence in,
//! posture directives out.
//!
//! §V of the paper solves for the optimal buffer count `m*` *given* the
//! forged fraction `p` — but a deployed receiver is never told `p`; it
//! must estimate it from what it can observe. This module closes that
//! loop:
//!
//! 1. **Estimate** — reservoir sampling is uniform over an interval's
//!    burst, so the forged share among *buffered* entries (counted at
//!    reveal time, when the disclosed key separates genuine μMACs from
//!    spurious ones) is an unbiased estimate of the wire's `p`. The
//!    estimator folds each interval's sample into an integer EWMA
//!    (parts-per-million, truncating division) — no floats, so two
//!    same-seed runs agree bit-for-bit.
//! 2. **Solve** — when the estimate drifts past a hysteresis band, the
//!    plane re-runs Algorithm 3 online ([`dap_game::solve_posture_permille`]:
//!    no allocation, bounded steps) at the current `p̂`.
//! 3. **Actuate** — a changed optimum becomes a [`PostureDirective`]
//!    the driver broadcasts via [`PoolHandle::post_posture`]; every
//!    shard re-sizes its reservoirs at its next window boundary and the
//!    pool narrates the transition as [`TraceEvent::PostureChange`].
//!
//! The whole loop is synchronous with the driver's interval clock:
//! evidence is read *after* a quiesce, the directive is posted *before*
//! the next interval's traffic, so the feedback edge never races the
//! workers and determinism survives.
//!
//! [`PoolHandle::post_posture`]: crate::pool::PoolHandle::post_posture
//! [`TraceEvent::PostureChange`]: dap_obs::TraceEvent::PostureChange

use dap_core::PostureDirective;
use dap_game::solve_posture_permille;
use dap_simnet::{keys, Registry};

use crate::pool::LiveCounters;

/// Tuning knobs for the [`ControlPlane`]. The defaults track the
/// paper's economy (cap `M = 50`) with a ~32-interval estimator time
/// constant and a 1% re-solve dead-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlConfig {
    /// Largest buffer count Algorithm 3 may select (the paper's `M`).
    pub cap: u32,
    /// EWMA smoothing as a right-shift: each sample moves the estimate
    /// by `(sample − p̂) / 2^ewma_shift`. Shift 5 ≈ a 32-interval time
    /// constant — long enough to average out per-interval sampling
    /// noise (`σ ≈ √(p(1−p)/m)` per interval), short enough to track a
    /// ramping attacker within a campaign.
    pub ewma_shift: u32,
    /// Dead-band in permille: Algorithm 3 re-runs only when `p̂` has
    /// moved at least this far from the last solved point. Keeps a
    /// noisy-but-stationary wire from thrashing the solver.
    pub hysteresis_permille: u32,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            cap: 50,
            ewma_shift: 5,
            hysteresis_permille: 10,
        }
    }
}

/// Parts-per-million per permille — the estimator's internal resolution.
const PPM_PER_PERMILLE: i64 = 1000;

/// The online estimator + solver + actuator. One instance per campaign,
/// stepped by the driver at every interval boundary.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    config: ControlConfig,
    /// `p̂` in parts-per-million; `None` until the first sample (the
    /// first sample seeds the EWMA verbatim rather than decaying from
    /// an arbitrary prior).
    p_hat_ppm: Option<i64>,
    /// Cumulative evidence already folded in (the live counters are
    /// monotone; the plane differences them per step).
    seen_decided: u64,
    seen_forged: u64,
    /// The `p̂` (permille) Algorithm 3 last ran at.
    last_solved_permille: Option<u32>,
    /// The currently commanded posture (effective buffers, give-up).
    buffers: u32,
    give_up: bool,
    epoch: u64,
    samples: u64,
    solves: u64,
    directives: u64,
    /// The most recent raw evidence sample (ppm), before smoothing —
    /// what a [`dap_obs::TraceEvent::ControlEstimate`] narrates next to
    /// the smoothed `p̂`.
    last_sample_ppm: u64,
}

impl ControlPlane {
    /// A control plane over a pool bootstrapped with
    /// `bootstrap_buffers` reservoirs per interval.
    ///
    /// # Panics
    ///
    /// Panics if `bootstrap_buffers` is zero or `config.ewma_shift`
    /// exceeds 31.
    #[must_use]
    pub fn new(bootstrap_buffers: u32, config: ControlConfig) -> Self {
        assert!(bootstrap_buffers >= 1, "a receiver needs a buffer");
        assert!(config.ewma_shift <= 31, "shift must leave signal");
        Self {
            config,
            p_hat_ppm: None,
            seen_decided: 0,
            seen_forged: 0,
            last_solved_permille: None,
            buffers: bootstrap_buffers,
            give_up: false,
            epoch: 0,
            samples: 0,
            solves: 0,
            directives: 0,
            last_sample_ppm: 0,
        }
    }

    /// The current estimate `p̂` in permille (0 before any evidence).
    #[must_use]
    pub fn p_hat_permille(&self) -> u32 {
        self.p_hat_ppm.map_or(0, Self::ppm_to_permille)
    }

    /// The currently commanded buffer count `m`.
    #[must_use]
    pub fn buffers(&self) -> u32 {
        self.buffers
    }

    /// Whether the commanded posture is the §V give-up regime.
    #[must_use]
    pub fn give_up(&self) -> bool {
        self.give_up
    }

    /// Directives issued so far.
    #[must_use]
    pub fn directives(&self) -> u64 {
        self.directives
    }

    /// Evidence samples folded into the estimator so far.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The current posture epoch (0 until the first directive).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The smoothed estimate `p̂` in parts-per-million (0 before any
    /// evidence; clamped to the probability range).
    #[must_use]
    pub fn estimate_ppm(&self) -> u64 {
        self.p_hat_ppm
            .map_or(0, |ppm| ppm.clamp(0, 1_000_000) as u64)
    }

    /// The last raw evidence sample in parts-per-million (0 before any
    /// evidence).
    #[must_use]
    pub fn last_sample_ppm(&self) -> u64 {
        self.last_sample_ppm
    }

    /// One control-loop step against the pool's live counters. Call
    /// after [`PoolHandle::quiesce`] at an interval boundary so the
    /// evidence is a settled function of the pushed sequence.
    ///
    /// [`PoolHandle::quiesce`]: crate::pool::PoolHandle::quiesce
    pub fn step(&mut self, live: &LiveCounters) -> Option<PostureDirective> {
        self.step_evidence(live.buffered_decided(), live.buffered_forged())
    }

    /// [`ControlPlane::step`] on explicit cumulative evidence counters
    /// (monotone: buffered reveals decided, of which forged).
    ///
    /// # Panics
    ///
    /// Panics if a counter went backwards or `forged > decided` — both
    /// impossible for counters produced by the pool.
    pub fn step_evidence(&mut self, decided: u64, forged: u64) -> Option<PostureDirective> {
        assert!(
            decided >= self.seen_decided && forged >= self.seen_forged,
            "evidence counters are monotone"
        );
        let d_decided = decided - self.seen_decided;
        let d_forged = forged - self.seen_forged;
        assert!(d_forged <= d_decided, "forged evidence exceeds decided");
        self.seen_decided = decided;
        self.seen_forged = forged;
        if d_decided == 0 {
            // A quiet interval carries no information about `p`: hold.
            return None;
        }
        let sample_ppm = (d_forged as i64 * 1_000_000) / d_decided as i64;
        self.samples += 1;
        self.last_sample_ppm = sample_ppm as u64;
        let p_hat = match self.p_hat_ppm {
            None => sample_ppm,
            Some(h) => h + (sample_ppm - h) / (1i64 << self.config.ewma_shift),
        };
        self.p_hat_ppm = Some(p_hat);
        let p_permille = Self::ppm_to_permille(p_hat);
        let moved = self
            .last_solved_permille
            .map_or(u32::MAX, |prev| prev.abs_diff(p_permille));
        if moved < self.config.hysteresis_permille {
            return None;
        }
        self.last_solved_permille = Some(p_permille);
        self.solves += 1;
        let posture = solve_posture_permille(p_permille, self.config.cap);
        let effective = if posture.give_up { 1 } else { posture.m.max(1) };
        if effective == self.buffers && posture.give_up == self.give_up {
            return None;
        }
        self.buffers = effective;
        self.give_up = posture.give_up;
        self.epoch += 1;
        self.directives += 1;
        Some(PostureDirective {
            epoch: self.epoch,
            buffers: effective,
            give_up: posture.give_up,
            p_permille,
        })
    }

    /// Folds the plane's state into a report registry under the
    /// `control.*` keys.
    pub fn publish(&self, registry: &mut Registry) {
        registry.add(keys::CONTROL_SAMPLES, self.samples);
        registry.add(keys::CONTROL_P_PERMILLE, u64::from(self.p_hat_permille()));
        registry.add(keys::CONTROL_SOLVES, self.solves);
        registry.add(keys::CONTROL_DIRECTIVES, self.directives);
        registry.add(keys::CONTROL_M, u64::from(self.buffers));
        registry.add(keys::CONTROL_GIVE_UP, u64::from(self.give_up));
        self.publish_gauges(registry);
    }

    /// Folds just the live-state gauges (`control.gauge.*`: p̂ ppm,
    /// posture epoch, commanded `m`) into a registry — what the drivers
    /// push into the telemetry endpoint's control slot mid-run, so a
    /// Prometheus scrape sees the plane's current posture between
    /// directives.
    pub fn publish_gauges(&self, registry: &mut Registry) {
        registry
            .gauge(keys::CONTROL_GAUGE_P_HAT_PPM)
            .set(self.estimate_ppm());
        registry.gauge(keys::CONTROL_GAUGE_EPOCH).set(self.epoch);
        registry
            .gauge(keys::CONTROL_GAUGE_M)
            .set(u64::from(self.buffers));
    }

    /// Rounds parts-per-million to the nearest permille, clamped to the
    /// probability range.
    fn ppm_to_permille(ppm: i64) -> u32 {
        let clamped = ppm.clamp(0, 1_000_000);
        u32::try_from((clamped + PPM_PER_PERMILLE / 2) / PPM_PER_PERMILLE)
            .expect("clamped to [0, 1000]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_game::{optimal_buffer_count, DosGameParams};
    use dap_simnet::SimRng;

    /// Feeds `intervals` of synthetic evidence at forged fraction `p`
    /// (deterministic rounding, `decided_per_interval` buffered
    /// decisions each) and returns the plane.
    fn run_synthetic(plane: &mut ControlPlane, p_permille: u64, intervals: u64, per: u64) {
        let mut decided = plane.seen_decided;
        let mut forged = plane.seen_forged;
        for _ in 0..intervals {
            decided += per;
            forged += per * p_permille / 1000;
            plane.step_evidence(decided, forged);
        }
    }

    #[test]
    fn estimate_stays_in_probability_range_under_arbitrary_evidence() {
        let mut plane = ControlPlane::new(4, ControlConfig::default());
        let mut rng = SimRng::new(0xC0DE);
        let (mut decided, mut forged) = (0u64, 0u64);
        for _ in 0..500 {
            let d = rng.below(40);
            let f = if d == 0 { 0 } else { rng.below(d + 1) };
            decided += d;
            forged += f;
            plane.step_evidence(decided, forged);
            assert!(plane.p_hat_permille() <= 1000);
            assert!(plane.buffers() >= 1 && plane.buffers() <= 50);
        }
    }

    #[test]
    fn estimator_tracks_the_signal_monotonically() {
        let mut plane = ControlPlane::new(4, ControlConfig::default());
        run_synthetic(&mut plane, 900, 64, 100);
        let high = plane.p_hat_permille();
        assert!(high > 800, "all-hostile wire must read high, got {high}");
        run_synthetic(&mut plane, 0, 256, 100);
        let low = plane.p_hat_permille();
        assert!(low < 100, "clean wire must decay the estimate, got {low}");
        assert!(low < high);
    }

    #[test]
    fn same_evidence_streams_yield_identical_directive_trajectories() {
        let mut rng = SimRng::new(2016);
        let mut stream = Vec::new();
        let (mut decided, mut forged) = (0u64, 0u64);
        for _ in 0..200 {
            let d = 50 + rng.below(50);
            let f = rng.below(d + 1);
            decided += d;
            forged += f;
            stream.push((decided, forged));
        }
        let mut a = ControlPlane::new(4, ControlConfig::default());
        let mut b = ControlPlane::new(4, ControlConfig::default());
        let da: Vec<_> = stream.iter().map(|&(d, f)| a.step_evidence(d, f)).collect();
        let db: Vec<_> = stream.iter().map(|&(d, f)| b.step_evidence(d, f)).collect();
        assert_eq!(da, db);
        assert_eq!(a.p_hat_permille(), b.p_hat_permille());
        assert!(da.iter().flatten().count() >= 1, "stream must actuate");
    }

    #[test]
    fn clean_wire_from_minimal_posture_issues_no_directives() {
        let mut plane = ControlPlane::new(1, ControlConfig::default());
        run_synthetic(&mut plane, 0, 300, 100);
        assert_eq!(plane.directives(), 0, "clean run must not flip posture");
        assert_eq!(plane.buffers(), 1);
        assert!(!plane.give_up());
    }

    #[test]
    fn quiet_intervals_hold_the_estimate() {
        let mut plane = ControlPlane::new(4, ControlConfig::default());
        run_synthetic(&mut plane, 500, 64, 100);
        let before = plane.p_hat_permille();
        let samples = plane.samples();
        // No new evidence: counters unchanged across 50 steps.
        for _ in 0..50 {
            assert_eq!(
                plane.step_evidence(plane.seen_decided, plane.seen_forged),
                None
            );
        }
        assert_eq!(plane.p_hat_permille(), before);
        assert_eq!(plane.samples(), samples);
    }

    #[test]
    fn ramp_converges_to_the_offline_optimum() {
        let mut plane = ControlPlane::new(2, ControlConfig::default());
        // p ramps 0.1 → 0.9 over 120 intervals, then holds at 0.9.
        let (mut decided, mut forged) = (0u64, 0u64);
        for i in 0..120u64 {
            let p = 100 + (900 - 100) * i / 119;
            decided += 200;
            forged += 200 * p / 1000;
            plane.step_evidence(decided, forged);
        }
        run_synthetic(&mut plane, 900, 200, 200);
        let offline = optimal_buffer_count(DosGameParams::paper_defaults(0.9, 1), 50);
        assert!(
            plane.buffers().abs_diff(offline.m) <= 1,
            "converged m {} vs offline m* {}",
            plane.buffers(),
            offline.m
        );
        assert!(plane.directives() >= 1);
    }

    #[test]
    fn saturation_flood_commands_the_give_up_posture() {
        let mut plane = ControlPlane::new(4, ControlConfig::default());
        run_synthetic(&mut plane, 998, 400, 500);
        assert!(plane.give_up(), "p̂ ≈ 1 must trip §V give-up");
        assert_eq!(plane.buffers(), 1, "give-up falls back to one buffer");
    }
}
