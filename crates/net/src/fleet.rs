//! The deterministic fleet campaign: many tagged senders, per-sender
//! spoofing flooders, and a session-table receiver — crowd-scale DAP on
//! one seeded loopback wire.
//!
//! Where [`crate::loopback`] reproduces the paper's flood experiment for
//! a single chain, this module runs it for a *fleet*: `N` senders each
//! walking their own key chain, emitting [`SenderId`]-tagged frames,
//! while the flooder spoofs each sender's tag with forged announces at
//! bandwidth share `p`. Frames route to shards by sender
//! ([`RoutePolicy::BySender`]), each shard owns a [`SessionTable`]
//! slice of the fleet, and the per-sender `1 − p^m` arithmetic holds
//! independently for every resident session — the many-to-one setting
//! the paper's crowdsensing scenario actually describes.
//!
//! Determinism follows the loopback recipe: one driver thread plays all
//! traffic in virtual time, [`OverflowPolicy::Block`] forbids
//! timing-dependent shedding, frozen clocks zero the stopwatches, and
//! every shard RNG forks from the pool seed — so two same-seed runs
//! render byte-identical registries (the fleet-soak ci gate `cmp`s
//! exactly this).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use dap_core::{
    codec, DapBootstrap, DapMessage, DapParams, DapReceiver, DapSender, PostureDirective, Reveal,
    RevealPrecompute, SenderId,
};
use dap_crypto::oneway::Domain;
use dap_crypto::KeyChain;
use dap_obs::{TimeSource, TraceRecord};
use dap_simnet::{keys, ChannelModel, Metrics, Registry, SimDuration, SimRng, SimTime};

use crate::adversary::{AdversaryClass, AdversaryEmit, AdversaryPlan, PostureView};
use crate::control::{ControlConfig, ControlPlane};
use crate::pool::{
    BufferNote, FrameVerdict, FrameVerifier, LiveCounters, OverflowPolicy, PoolConfig, PoolObs,
    PostureUpdate, ReceiverPool, RoutePolicy,
};
use crate::pump::Flooder;
use crate::session::{Admission, PriorityClass, SessionConfig, SessionTable};
use crate::telemetry::SharedRegistry;
use crate::transport::{LoopbackTransport, Transport};

/// Everything a fleet campaign needs; all fields seeded/explicit so a
/// spec fully determines the run.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Master seed (per-sender chains, flooder MACs, shard sampling).
    pub seed: u64,
    /// Fleet size — sender ids run `1..=senders`.
    pub senders: u64,
    /// Intervals of traffic per sender.
    pub intervals: u64,
    /// Receiver buffers `m` per pending interval per session.
    pub buffers: usize,
    /// Receiver pool shards.
    pub shards: usize,
    /// Per-shard ingress queue depth.
    pub queue_depth: usize,
    /// Flooder bandwidth share `p ∈ [0, 1)`, spoofed per sender.
    pub flood: f64,
    /// Genuine announce copies per sender per interval.
    pub copies: u32,
    /// Per-shard session-count cap.
    pub max_sessions: usize,
    /// Per-shard session memory budget in bits.
    pub memory_budget_bits: u64,
    /// Per-source trace ring capacity; 0 disables tracing.
    pub trace_depth: usize,
    /// Flight-recorder sampling cadence ([`PoolObs::span_every`]):
    /// every `span_every`-th verified datagram per shard emits a
    /// [`dap_obs::TraceEvent::FrameSpan`] and feeds the `net.stage.*`
    /// histograms. 0 (the default) disables the recorder.
    pub span_every: u64,
    /// Operator-pinned sender ids: never evicted while an unpinned
    /// session exists, drained first under queue pressure, and off
    /// limits to the targeted adversary classes (a pin is an id the
    /// operator vouches for out of band — attacking it buys the
    /// adversary nothing it can observe).
    pub pins: Vec<u64>,
    /// Which adversary strategy floods the wire (DESIGN §11).
    pub adversary: AdversaryClass,
    /// Per-shard, per-interval verify budget for the priority drain;
    /// `usize::MAX` verifies everything (the PR 4–6 FIFO posture).
    pub drain_budget: usize,
    /// Runs the live control plane: the driver feeds reveal-time buffer
    /// evidence to a [`ControlPlane`] at every quiesced interval
    /// boundary and broadcasts the resulting directives, so every
    /// shard's whole session-table slice re-provisions `m` toward the
    /// game's optimum as the measured flood changes.
    pub adaptive: bool,
}

impl FleetSpec {
    /// The pin set in the shared form the pool, session tables and
    /// adversary plan consume.
    #[must_use]
    pub fn pin_set(&self) -> Arc<BTreeSet<u64>> {
        Arc::new(self.pins.iter().copied().collect())
    }
}

impl Default for FleetSpec {
    /// A small smoke-scale fleet: 64 senders × 8 intervals, `m = 4`,
    /// `p = 0.8`, sessions unconstrained in count but budgeted at
    /// 16 Mbit per shard. Four genuine copies per interval keep the
    /// per-interval stream long relative to `m`, where the paper's
    /// `1 − p^m` limit holds (a 5-frame stream against a 4-slot
    /// reservoir barely evicts anything).
    fn default() -> Self {
        Self {
            seed: 2016,
            senders: 64,
            intervals: 8,
            buffers: 4,
            shards: 4,
            queue_depth: 4096,
            flood: 0.8,
            copies: 4,
            max_sessions: usize::MAX,
            memory_budget_bits: 16 * 1024 * 1024,
            trace_depth: 0,
            span_every: 0,
            pins: Vec::new(),
            adversary: AdversaryClass::Bernoulli,
            drain_budget: usize::MAX,
            adaptive: false,
        }
    }
}

/// What a fleet campaign produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Merged pool + wire + session counters.
    pub metrics: Metrics,
    /// The full observability picture, including the per-shard session
    /// occupancy/memory gauges and the per-sender auth-rate envelope.
    pub registry: Registry,
    /// `(source, seq)`-sorted trace records.
    pub trace: Vec<TraceRecord>,
    /// Aggregate `authenticated / reveals` across the fleet.
    pub auth_rate: f64,
    /// The paper's per-sender prediction `1 − p^m`.
    pub expected_rate: f64,
    /// Frames the driver pushed into the pool.
    pub frames: u64,
    /// Smallest per-sender auth rate observed (permille), across
    /// senders with at least one reveal. Exact (the histogram keeps
    /// true min/max alongside its buckets).
    pub min_sender_auth_permille: Option<u64>,
    /// Largest per-sender auth rate observed (permille).
    pub max_sender_auth_permille: Option<u64>,
    /// Median per-sender auth rate (permille), from the streamed
    /// per-sender histogram (bucketed: ≤ 1/16 relative error).
    pub median_sender_auth_permille: Option<u64>,
    /// Smallest per-sender auth rate among operator-pinned senders.
    pub min_pinned_auth_permille: Option<u64>,
    /// Largest per-sender auth rate among operator-pinned senders.
    pub max_pinned_auth_permille: Option<u64>,
    /// Smallest per-sender auth rate among unpinned senders.
    pub min_unpinned_auth_permille: Option<u64>,
    /// Largest per-sender auth rate among unpinned senders.
    pub max_unpinned_auth_permille: Option<u64>,
    /// Frames the priority drain shed past the budget (`net.shed.total`).
    pub shed_frames: u64,
    /// Shed frames over pushed frames — the overload pressure the drain
    /// actually relieved.
    pub shed_fraction: f64,
    /// Session evictions across the run (`net.session.evicted`).
    pub evictions: u64,
}

/// The protocol parameters every fleet sender runs (100-tick intervals,
/// `d = 1`, Δ = 0 — the loopback wire has no skew).
#[must_use]
pub fn fleet_params(buffers: usize) -> DapParams {
    DapParams::new(SimDuration(100), 1, 0, buffers)
}

/// The chain seed sender `id` derives its key chain from — shared by
/// the driver (which plays the sender) and the receiver-side directory
/// (which re-derives the commitment), standing in for out-of-band
/// bootstrap exactly like `dapd --role receiver`'s `--seed`.
#[must_use]
pub fn fleet_chain_seed(fleet_seed: u64, sender: SenderId) -> [u8; 16] {
    let mut seed = [0u8; 16];
    seed[..8].copy_from_slice(&fleet_seed.to_be_bytes());
    seed[8..].copy_from_slice(&sender.0.to_be_bytes());
    seed
}

/// The fleet directory: bootstraps for sender ids `1..=senders`, all
/// chains re-derived from the fleet seed. Ids outside the range are
/// unknown (a spoofed id the roster never provisioned).
#[must_use]
pub fn fleet_bootstrap(
    fleet_seed: u64,
    senders: u64,
    chain_len: usize,
    params: DapParams,
    sender: SenderId,
) -> Option<DapBootstrap> {
    (1..=senders).contains(&sender.0).then(|| {
        DapSender::new(&fleet_chain_seed(fleet_seed, sender), chain_len, params).bootstrap()
    })
}

/// All fleet chains in one batched walk: the per-sender seeds run
/// through [`KeyChain::generate_many`], which levels every `F`
/// application across the fleet into lane-parallel SHA-256 — the
/// 4096-sender soak setup cost, paid once instead of per admission.
/// Chain `k` (0-based) belongs to sender id `k + 1` and is key-for-key
/// equal to the scalar [`fleet_bootstrap`] derivation.
#[must_use]
pub fn fleet_chains(fleet_seed: u64, senders: u64, chain_len: usize) -> Vec<KeyChain> {
    let seeds: Vec<[u8; 16]> = (1..=senders)
        .map(|id| fleet_chain_seed(fleet_seed, SenderId(id)))
        .collect();
    let refs: Vec<&[u8]> = seeds.iter().map(|s| s.as_slice()).collect();
    KeyChain::generate_many(&refs, chain_len, Domain::F)
}

/// The whole fleet's bootstrap records, batch-derived and shared: one
/// `Arc` serves every shard's admission path, so re-admitting an
/// evicted sender is an index into this table instead of an `O(len)`
/// chain walk.
#[must_use]
pub fn fleet_directory(
    fleet_seed: u64,
    senders: u64,
    chain_len: usize,
    params: DapParams,
) -> Arc<Vec<DapBootstrap>> {
    Arc::new(
        fleet_chains(fleet_seed, senders, chain_len)
            .iter()
            .map(|chain| DapBootstrap {
                commitment: *chain.commitment(),
                params,
            })
            .collect(),
    )
}

/// A shard verifier owning a [`SessionTable`] slice of the fleet:
/// frames verify against their wire-attributed sender's session, and
/// shutdown folds session counters, occupancy gauges and the per-sender
/// auth-rate envelope into the shard registry.
pub struct FleetShard {
    table: SessionTable,
    /// Shared batch-derived bootstraps; slot `k` = sender id `k + 1`.
    directory: Arc<Vec<DapBootstrap>>,
    /// The parameters new admissions provision with — `buffers` tracks
    /// the newest control-plane directive, so a session admitted after
    /// a re-size comes up at the commanded `m`, not the bootstrap one.
    params: DapParams,
    /// Per-sender `(authenticated, attempts)` — kept verifier-side so an
    /// *evicted* sender's history still reaches the report. An attempt
    /// is a reveal that reached a verdict (`Authenticated` or
    /// `StrongRejected`); duplicate replays (`NoCandidate`) burn budget
    /// but are not auth attempts, so a replay adversary cannot dilute a
    /// sender's measured rate with the sender's own traffic.
    reveal_outcomes: BTreeMap<u64, (u64, u64)>,
    /// One entry per reveal of the current drain window, in window
    /// order, tagged with the claimed sender id; `on_frame` pops one
    /// per reveal frame it sees. `None` where the sender had no
    /// *resident* session at prefetch time (admission decisions stay in
    /// `on_frame`, where they are counted and can evict).
    pre: VecDeque<Option<(u64, RevealPrecompute)>>,
}

impl FleetShard {
    /// One shard's slice of the fleet described by `spec`; `shard`
    /// salts the session table's node-local secrets. Derives its own
    /// bootstrap directory — campaigns spawning many shards should
    /// batch once with [`fleet_directory`] and use
    /// [`FleetShard::with_directory`].
    #[must_use]
    pub fn new(spec: &FleetSpec, shard: usize) -> Self {
        let chain_len = usize::try_from(spec.intervals).expect("interval count fits usize") + 2;
        let directory = fleet_directory(
            spec.seed,
            spec.senders,
            chain_len,
            fleet_params(spec.buffers),
        );
        Self::with_directory(spec, shard, directory)
    }

    /// [`FleetShard::new`] over a pre-derived shared directory (one
    /// batched walk serving every shard).
    #[must_use]
    pub fn with_directory(
        spec: &FleetSpec,
        shard: usize,
        directory: Arc<Vec<DapBootstrap>>,
    ) -> Self {
        Self {
            table: SessionTable::with_pins(
                SessionConfig {
                    max_sessions: spec.max_sessions,
                    memory_budget_bits: spec.memory_budget_bits,
                },
                spec.seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                spec.pin_set(),
            ),
            directory,
            params: fleet_params(spec.buffers),
            reveal_outcomes: BTreeMap::new(),
            pre: VecDeque::new(),
        }
    }

    /// The shard's session table (post-run inspection).
    #[must_use]
    pub fn table(&self) -> &SessionTable {
        &self.table
    }
}

impl FrameVerifier for FleetShard {
    fn on_frame(
        &mut self,
        sender: SenderId,
        frame: &DapMessage,
        at: SimTime,
        rng: &mut SimRng,
        registry: &mut Registry,
        live: &LiveCounters,
    ) -> FrameVerdict {
        let interval = match frame {
            DapMessage::Announce(a) => a.index,
            DapMessage::Reveal(r) => r.index,
        };
        // Pop unconditionally for every reveal — even ones the early
        // returns below discard — so the queue stays aligned with the
        // window's reveal sequence.
        let pre = match frame {
            DapMessage::Reveal(_) => self.pre.pop_front().flatten(),
            DapMessage::Announce(_) => None,
        };
        let (directory, buffers) = (&self.directory, self.params.buffers);
        let Some(session) = self.table.lookup(sender, |id| {
            // Admissions provision at the *commanded* buffer count:
            // the directory's bootstrap params carry the campaign
            // bootstrap `m`, which a control-plane directive may have
            // since superseded.
            id.0.checked_sub(1)
                .and_then(|slot| directory.get(usize::try_from(slot).ok()?))
                .copied()
                .map(|mut bootstrap| {
                    bootstrap.params.buffers = buffers;
                    bootstrap
                })
        }) else {
            registry.incr(keys::NET_SESSION_UNKNOWN);
            return FrameVerdict {
                outcome: "unknown_sender",
                interval,
                buffer: None,
                key_reveal: false,
                evicted: None,
            };
        };
        match session.admission {
            Admission::Resident => {}
            Admission::Admitted => registry.incr(keys::NET_SESSION_ADMITTED),
            Admission::Readmitted => registry.incr(keys::NET_SESSION_READMITTED),
        }
        registry.add(keys::NET_SESSION_EVICTED, session.evicted.len() as u64);
        let evicted = session.evicted.first().copied();
        let receiver = session.receiver;
        match frame {
            DapMessage::Announce(a) => {
                use dap_core::AnnounceOutcome;
                let announce = receiver.on_announce(a, at, rng);
                let (key, outcome, kept) = match announce {
                    AnnounceOutcome::Stored => (keys::NET_ANNOUNCE_STORED, "stored", true),
                    AnnounceOutcome::Dropped => {
                        (keys::NET_ANNOUNCE_SAMPLED_OUT, "sampled_out", false)
                    }
                    AnnounceOutcome::Unsafe => (keys::NET_ANNOUNCE_UNSAFE, "unsafe", false),
                };
                registry.incr(key);
                let buffer = (announce != AnnounceOutcome::Unsafe).then(|| BufferNote {
                    kept,
                    offered: receiver.offered(a.index),
                    capacity: receiver.buffer_capacity() as u64,
                });
                FrameVerdict {
                    outcome,
                    interval,
                    buffer,
                    key_reveal: false,
                    evicted,
                }
            }
            DapMessage::Reveal(r) => {
                use dap_core::RevealOutcome;
                registry.incr(keys::NET_REVEAL_TOTAL);
                let before = *receiver.stats();
                let reveal_outcome = match pre {
                    Some((claimed, p)) if claimed == sender.0 => {
                        receiver.on_reveal_precomputed(r, at, &p)
                    }
                    _ => receiver.on_reveal(r, at),
                };
                let after = receiver.stats();
                live.count_reveal_evidence(
                    after.buffered_decided - before.buffered_decided,
                    after.buffered_forged - before.buffered_forged,
                );
                let (key, outcome, attempt, success) = match reveal_outcome {
                    RevealOutcome::Authenticated { .. } => {
                        live.count_authenticated();
                        (keys::NET_REVEAL_AUTH, "auth", true, true)
                    }
                    RevealOutcome::WeakRejected { .. } => (
                        keys::NET_REVEAL_WEAK_REJECTED,
                        "weak_rejected",
                        false,
                        false,
                    ),
                    RevealOutcome::StrongRejected { .. } => (
                        keys::NET_REVEAL_STRONG_REJECTED,
                        "strong_rejected",
                        true,
                        false,
                    ),
                    RevealOutcome::NoCandidate { .. } => {
                        (keys::NET_REVEAL_NO_CANDIDATE, "no_candidate", false, false)
                    }
                };
                registry.incr(key);
                if attempt {
                    let tally = self.reveal_outcomes.entry(sender.0).or_insert((0, 0));
                    tally.1 += 1;
                    if success {
                        tally.0 += 1;
                    }
                    // The EWMA feeds the drain/eviction priority: every
                    // verdict on a genuine reveal nudges the sender's
                    // score toward its recent auth rate.
                    self.table.record_auth(sender, success);
                }
                FrameVerdict {
                    outcome,
                    interval,
                    buffer: None,
                    key_reveal: true,
                    evicted,
                }
            }
        }
    }

    fn on_shutdown(&mut self, registry: &mut Registry) {
        registry
            .gauge(keys::NET_SESSION_OCCUPANCY)
            .set(self.table.occupancy() as u64);
        registry
            .gauge(keys::NET_SESSION_MEMORY_BITS)
            .set(self.table.memory_bits());
        // One histogram *record* per sender: the shard's per-sender
        // auth-rate spread folds into fixed-size bucket state, so
        // render, cross-shard merge and live publishing cost O(buckets)
        // — not O(senders) — no matter how large the fleet grows
        // (the pre-PR 8 gauge render was one `set` per sender). The
        // histogram keeps *exact* min/max, which is what the survival
        // matrix and the ci pinned-floor gate read, and adds the
        // distribution (quantiles) the gauge envelope never had.
        for (sender, (auth, total)) in &self.reveal_outcomes {
            if *total > 0 {
                let permille = auth * 1000 / total;
                registry.record(keys::NET_FLEET_AUTH_RATE_PERMILLE, permille);
                let split = if self.table.is_pinned(SenderId(*sender)) {
                    keys::NET_FLEET_PINNED_AUTH_PERMILLE
                } else {
                    keys::NET_FLEET_UNPINNED_AUTH_PERMILLE
                };
                registry.record(split, permille);
            }
        }
    }

    fn classify(&self, sender: SenderId) -> PriorityClass {
        self.table.priority_class(sender)
    }

    fn on_posture(&mut self, directive: &PostureDirective) -> Option<PostureUpdate> {
        let from = self.params.buffers;
        let to = directive.effective_buffers();
        // Future admissions provision at the commanded size via the
        // lookup path; resident sessions re-size in place so the
        // directive takes effect without waiting for churn.
        self.params.buffers = to;
        self.table.reprovision(to);
        (from != to).then_some(PostureUpdate {
            from_m: from as u64,
            to_m: to as u64,
        })
    }

    fn prefetch(&mut self, batch: &[(SenderId, DapMessage)]) {
        // Only senders with a *resident* session precompute:
        // `SessionTable::peek` never admits, evicts or touches the
        // eviction clock, so this pass is invisible to session
        // accounting. A session evicted and re-admitted between here
        // and consumption is harmless anyway — every precompute field
        // is a pure function of the reveal bytes and the sender's
        // deterministic per-id local seed, not of receiver state.
        let reveals: Vec<(SenderId, &Reveal)> = batch
            .iter()
            .filter_map(|(sender, frame)| match frame {
                DapMessage::Reveal(r) => Some((*sender, r)),
                DapMessage::Announce(_) => None,
            })
            .collect();
        let mut slots: Vec<Option<u64>> = Vec::with_capacity(reveals.len());
        let mut items: Vec<(&DapReceiver, &Reveal)> = Vec::new();
        for (sender, reveal) in &reveals {
            match self.table.peek(*sender) {
                Some(receiver) => {
                    slots.push(Some(sender.0));
                    items.push((receiver, reveal));
                }
                None => slots.push(None),
            }
        }
        let mut pres = DapReceiver::precompute_reveals(&items).into_iter();
        self.pre = slots
            .into_iter()
            .map(|slot| slot.map(|sender| (sender, pres.next().expect("one precompute per item"))))
            .collect();
    }
}

/// Runs one seeded fleet campaign; see the module docs.
///
/// # Panics
///
/// Panics on invalid spec fields (zero shards/buffers/senders,
/// `p ∉ [0, 1)`) and if a pool worker panics.
#[must_use]
pub fn run_fleet(spec: &FleetSpec) -> FleetReport {
    run_fleet_with(spec, None)
}

/// [`run_fleet`] with an optional live telemetry registry (slot `i` =
/// shard `i`; must have at least `spec.shards` slots).
///
/// # Panics
///
/// As [`run_fleet`].
#[must_use]
pub fn run_fleet_with(spec: &FleetSpec, publish: Option<Arc<SharedRegistry>>) -> FleetReport {
    assert!(spec.senders >= 1, "need at least one sender");
    let params = fleet_params(spec.buffers);
    let schedule = params.schedule();
    let d = params.disclosure_delay;
    let chain_len = usize::try_from(spec.intervals).expect("interval count fits usize") + 2;

    let mut rng = SimRng::new(spec.seed);
    let wire_rng_seed = rng.next_u64();
    let pool_seed = rng.next_u64();
    let flooder_seed = rng.next_u64();
    let mut shuffle_rng = rng.fork(4);

    // The fleet: every sender its own chain, all chains derived in one
    // lane-parallel batch walk. The same chains seed the shared
    // directory, so the shards never re-walk a chain on admission.
    let chains = fleet_chains(spec.seed, spec.senders, chain_len);
    let directory: Arc<Vec<DapBootstrap>> = Arc::new(
        chains
            .iter()
            .map(|chain| DapBootstrap {
                commitment: *chain.commitment(),
                params,
            })
            .collect(),
    );
    let mut fleet: Vec<DapSender> = chains
        .into_iter()
        .map(|chain| DapSender::with_chain(chain, params))
        .collect();

    let wire = LoopbackTransport::new(wire_rng_seed, ChannelModel::perfect(), 0.0);
    if spec.trace_depth > 0 {
        let wire_source = u32::try_from(spec.shards).expect("shard count fits u32") + 1;
        wire.enable_trace(wire_source, spec.trace_depth);
    }
    let pins = spec.pin_set();
    let pool = ReceiverPool::spawn_with_obs(
        PoolConfig {
            shards: spec.shards,
            queue_depth: spec.queue_depth,
            overflow: OverflowPolicy::Block,
            route: RoutePolicy::BySender,
            drain_budget: spec.drain_budget,
            pins: Arc::clone(&pins),
        },
        pool_seed,
        |shard| FleetShard::with_directory(spec, shard, Arc::clone(&directory)),
        PoolObs {
            time: TimeSource::frozen(),
            trace_depth: spec.trace_depth,
            publish: publish.clone(),
            publish_every: 64,
            span_every: spec.span_every,
        },
    );
    let handle = pool.handle();
    let mut flooder = Flooder::new(wire.clone(), flooder_seed, spec.flood);
    let mut adversary = AdversaryPlan::new(
        spec.adversary,
        spec.flood,
        u64::from(spec.copies),
        spec.senders,
        &pins,
    );

    let mut controller = spec.adaptive.then(|| {
        ControlPlane::new(
            u32::try_from(spec.buffers).expect("buffer count fits u32"),
            ControlConfig::default(),
        )
    });
    // Control-plane narration: p̂ estimate samples trace at their own
    // reserved source id (one past the wire).
    let ctrl_source = u32::try_from(spec.shards).expect("shard count fits u32") + 2;
    let mut ctrl_trace = (spec.adaptive && spec.trace_depth > 0)
        .then(|| dap_obs::TraceEmitter::new(ctrl_source, dap_obs::RingSink::new(spec.trace_depth)));

    let mut tx = wire.clone();
    let mut rx = wire.clone();
    let mut recv_buf = vec![0u8; codec::MAX_FRAME_LEN];
    let mut drain = |rx: &mut LoopbackTransport, at: SimTime| {
        while let Some(n) = rx.recv(&mut recv_buf).expect("loopback recv") {
            handle.ingest(&recv_buf[..n], at);
        }
    };

    for i in 1..=spec.intervals {
        let at = SimTime(schedule.start_of(i).ticks() + 10);
        // The previous interval fully drained (tick + quiesce below), so
        // the posture the adaptive class observes is a deterministic
        // function of the traffic so far — not of worker scheduling.
        adversary.observe(&PostureView {
            buffers: spec.buffers,
            drain_budget: spec.drain_budget,
            shed_frames: handle.live().shed(),
            ingress_frames: handle.live().frames(),
            posture_epoch: handle.live().posture_epoch(),
            live_buffers: handle.live().live_buffers(),
            give_up: handle.live().give_up(),
        });
        for (slot, sender) in fleet.iter_mut().enumerate() {
            let id = SenderId(slot as u64 + 1);
            if adversary.suppresses(id, i) {
                // Post-turn, a farmed sender's genuine traffic is
                // withheld: the farmer rides the priority class its
                // honest phase earned with forgeries alone.
                for _ in 0..adversary.spoof_copies(id, i) {
                    flooder.send_forged_as(id, i).expect("loopback send");
                }
                continue;
            }
            // The reveal for i − d leads the interval (Algorithm 1).
            if i > d {
                if let Some(reveal) = sender.reveal(i - d) {
                    let frame = codec::encode_tagged(id, &DapMessage::Reveal(reveal))
                        .expect("encodable reveal");
                    adversary.tap(i, &frame);
                    tx.send(&frame).expect("loopback send");
                }
            }
            // Genuine copies and spoofed forgeries, uniformly
            // interleaved per sender by seeded draw.
            let announce = sender
                .announce(i, format!("s{} reading {i}", id.0).as_bytes())
                .expect("chain sized for the run");
            let genuine = codec::encode_tagged(id, &DapMessage::Announce(announce))
                .expect("encodable announce");
            adversary.tap(i, &genuine);
            let forged = adversary.spoof_copies(id, i);
            let total = u64::from(spec.copies) + forged;
            let mut genuine_left = u64::from(spec.copies);
            let mut slots_left = total;
            for _ in 0..total {
                if genuine_left > 0 && shuffle_rng.below(slots_left) < genuine_left {
                    tx.send(&genuine).expect("loopback send");
                    genuine_left -= 1;
                } else {
                    flooder.send_forged_as(id, i).expect("loopback send");
                }
                slots_left -= 1;
            }
        }
        // Standalone emissions land after the interval's genuine
        // traffic: FIFO-within-class means a burst can only fill the
        // shed tail behind frames that already arrived.
        for emit in adversary.standalone(i) {
            match emit {
                AdversaryEmit::Forge { victim, interval } => {
                    flooder
                        .send_forged_as(victim, interval)
                        .expect("loopback send");
                }
                AdversaryEmit::Replay(bytes) => tx.send(&bytes).expect("loopback send"),
            }
        }
        drain(&mut rx, at);
        handle.tick();
        handle.quiesce();
        // The interval boundary is quiesced, so the evidence counters
        // are a deterministic function of the traffic so far; a
        // directive posted here lands before any interval-`i + 1`
        // frame.
        if let Some(ctrl) = controller.as_mut() {
            let samples_before = ctrl.samples();
            let directive = ctrl.step(handle.live());
            if ctrl.samples() > samples_before {
                if let Some(emitter) = ctrl_trace.as_mut() {
                    emitter.emit(
                        at.ticks(),
                        dap_obs::TraceEvent::ControlEstimate {
                            epoch: ctrl.epoch(),
                            sample_ppm: ctrl.last_sample_ppm(),
                            p_hat_ppm: ctrl.estimate_ppm(),
                        },
                    );
                }
                // Live posture gauges land in the telemetry slot one
                // past the shards, when the caller provisioned it.
                if let Some(shared) = &publish {
                    if shared.slots() > spec.shards {
                        let mut gauges = Registry::new();
                        ctrl.publish_gauges(&mut gauges);
                        shared.publish(spec.shards, &gauges);
                    }
                }
            }
            if let Some(directive) = directive {
                handle.post_posture(directive, at);
                handle.quiesce();
            }
        }
    }
    // Tail: flush the last reveals.
    for i in spec.intervals.saturating_sub(d) + 1..=spec.intervals {
        let at = SimTime(schedule.start_of(i + d).ticks() + 10);
        for (slot, sender) in fleet.iter_mut().enumerate() {
            let id = SenderId(slot as u64 + 1);
            if adversary.suppresses(id, i + d) {
                continue;
            }
            if let Some(reveal) = sender.reveal(i) {
                let frame = codec::encode_tagged(id, &DapMessage::Reveal(reveal))
                    .expect("encodable reveal");
                tx.send(&frame).expect("loopback send");
            }
        }
        drain(&mut rx, at);
        handle.tick();
        handle.quiesce();
    }

    let frames = handle.live().frames();
    let shed_frames = handle.live().shed();
    let report = pool.shutdown_with_report();
    let mut registry = report.registry;
    registry.merge_metrics(&wire.wire_metrics());
    if let Some(ctrl) = &controller {
        ctrl.publish(&mut registry);
    }
    let mut trace = report.trace;
    trace.extend(wire.take_trace());
    if let Some(emitter) = ctrl_trace {
        trace.extend(emitter.into_sink().into_records());
    }
    dap_obs::sort_records(&mut trace);
    let metrics = registry.counters().clone();
    let auth_rate = metrics
        .ratio(keys::NET_REVEAL_AUTH, keys::NET_REVEAL_TOTAL)
        .unwrap_or(0.0);
    let envelope = registry.get_histogram(keys::NET_FLEET_AUTH_RATE_PERMILLE);
    let pinned = registry.get_histogram(keys::NET_FLEET_PINNED_AUTH_PERMILLE);
    let unpinned = registry.get_histogram(keys::NET_FLEET_UNPINNED_AUTH_PERMILLE);
    FleetReport {
        auth_rate,
        expected_rate: 1.0
            - spec
                .flood
                .powi(i32::try_from(spec.buffers).unwrap_or(i32::MAX)),
        frames,
        min_sender_auth_permille: envelope.and_then(dap_obs::Histogram::min),
        max_sender_auth_permille: envelope.and_then(dap_obs::Histogram::max),
        median_sender_auth_permille: envelope.and_then(|h| h.quantile(0.5)),
        min_pinned_auth_permille: pinned.and_then(dap_obs::Histogram::min),
        max_pinned_auth_permille: pinned.and_then(dap_obs::Histogram::max),
        min_unpinned_auth_permille: unpinned.and_then(dap_obs::Histogram::min),
        max_unpinned_auth_permille: unpinned.and_then(dap_obs::Histogram::max),
        shed_frames,
        shed_fraction: if frames > 0 {
            shed_frames as f64 / frames as f64
        } else {
            0.0
        },
        evictions: metrics.get(keys::NET_SESSION_EVICTED),
        metrics,
        registry,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_fleets_render_identically() {
        let spec = FleetSpec {
            senders: 24,
            intervals: 6,
            ..FleetSpec::default()
        };
        let a = run_fleet(&spec);
        let b = run_fleet(&spec);
        assert_eq!(a.registry.render(), b.registry.render());
        assert_eq!(a.frames, b.frames);
        assert!(a.frames > 0);
    }

    #[test]
    fn clean_fleet_authenticates_every_sender() {
        let spec = FleetSpec {
            senders: 16,
            intervals: 5,
            flood: 0.0,
            ..FleetSpec::default()
        };
        let report = run_fleet(&spec);
        assert_eq!(report.metrics.get(keys::NET_REVEAL_TOTAL), 16 * 5);
        assert_eq!(report.metrics.get(keys::NET_REVEAL_AUTH), 16 * 5);
        assert_eq!(report.metrics.get(keys::NET_SESSION_ADMITTED), 16);
        assert_eq!(report.metrics.get(keys::NET_SESSION_EVICTED), 0);
        assert_eq!(report.min_sender_auth_permille, Some(1000));
    }

    #[test]
    fn flooded_fleet_tracks_one_minus_p_to_m_per_sender() {
        let spec = FleetSpec {
            senders: 48,
            intervals: 8,
            flood: 0.8,
            buffers: 4,
            ..FleetSpec::default()
        };
        let report = run_fleet(&spec);
        // 1 − 0.8⁴ ≈ 0.59; aggregate-over-senders tightens the variance
        // versus a single sender's 8 intervals.
        assert!(
            (report.auth_rate - report.expected_rate).abs() < 0.08,
            "rate {} expected {}",
            report.auth_rate,
            report.expected_rate
        );
        // No forged announce may ever authenticate as any sender.
        assert_eq!(report.metrics.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
        assert_eq!(
            report.metrics.get(keys::NET_REVEAL_AUTH)
                + report.metrics.get(keys::NET_REVEAL_STRONG_REJECTED),
            report.metrics.get(keys::NET_REVEAL_TOTAL)
        );
    }

    #[test]
    fn windowed_fleet_prefetch_matches_the_unwindowed_path() {
        // Clean fleet: every sender's outcome history is identical, so
        // every flush sees one priority class and the windowed drain
        // order degenerates to arrival order — the only difference
        // between the two runs is the batch prefetch pipeline, which
        // must therefore be registry-invisible.
        let spec = |drain_budget: usize| FleetSpec {
            senders: 16,
            intervals: 5,
            flood: 0.0,
            drain_budget,
            ..FleetSpec::default()
        };
        let windowed = run_fleet(&spec(1 << 20));
        let scalar = run_fleet(&spec(usize::MAX));
        assert_eq!(windowed.registry.render(), scalar.registry.render());
        assert_eq!(windowed.metrics.get(keys::NET_REVEAL_AUTH), 16 * 5);
        assert_eq!(windowed.shed_frames, 0);
        assert_eq!(windowed.min_sender_auth_permille, Some(1000));
    }

    #[test]
    fn tight_budget_evicts_but_stays_bounded() {
        let probe = dap_core::DapReceiver::new(
            fleet_bootstrap(9, 64, 10, fleet_params(4), SenderId(1)).unwrap(),
            b"probe",
        );
        let per_session = probe.memory_capacity_bits() + crate::session::SESSION_OVERHEAD_BITS;
        let spec = FleetSpec {
            seed: 9,
            senders: 64,
            intervals: 4,
            shards: 2,
            // Room for ~6 of ~32 sessions per shard.
            memory_budget_bits: 6 * per_session,
            ..FleetSpec::default()
        };
        let report = run_fleet(&spec);
        assert!(report.metrics.get(keys::NET_SESSION_EVICTED) > 0);
        let occupancy = report
            .registry
            .get_gauge(keys::NET_SESSION_OCCUPANCY)
            .expect("occupancy gauge");
        assert!(occupancy.max().unwrap_or(0) <= 6);
        let memory = report
            .registry
            .get_gauge(keys::NET_SESSION_MEMORY_BITS)
            .expect("memory gauge");
        assert!(memory.max().unwrap_or(0) <= spec.memory_budget_bits);
    }

    #[test]
    fn burst_adversary_sheds_low_priority_but_pinned_floor_holds() {
        let spec = FleetSpec {
            senders: 32,
            intervals: 8,
            flood: 0.9,
            pins: (1..=4).collect(),
            adversary: AdversaryClass::BurstReanchor,
            drain_budget: 96,
            ..FleetSpec::default()
        };
        let report = run_fleet(&spec);
        // The burst saturates the re-anchor windows far past the budget…
        assert!(report.shed_frames > 0, "burst must exceed the budget");
        assert!(report.shed_fraction > 0.0);
        // …but pinned senders ride the priority drain untouched: no
        // forged traffic targets them and their frames verify first.
        assert_eq!(report.min_pinned_auth_permille, Some(1000));
        assert_eq!(report.metrics.get(keys::NET_SHED_PINNED), 0);
        // Shed attribution balances exactly.
        assert_eq!(
            report.metrics.get(keys::NET_SHED_TOTAL),
            report.metrics.get(keys::NET_SHED_PINNED)
                + report.metrics.get(keys::NET_SHED_HIGH)
                + report.metrics.get(keys::NET_SHED_LOW)
        );
        // Forged announces still never authenticate as anyone.
        assert_eq!(report.metrics.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
    }

    #[test]
    fn replay_edge_burns_budget_without_diluting_auth_rates() {
        let spec = FleetSpec {
            senders: 16,
            intervals: 6,
            flood: 0.75,
            adversary: AdversaryClass::ReplayEdge,
            ..FleetSpec::default()
        };
        let report = run_fleet(&spec);
        // Replays arrived (duplicate reveals and stale announces)…
        assert!(
            report.metrics.get(keys::NET_REVEAL_NO_CANDIDATE)
                + report.metrics.get(keys::NET_ANNOUNCE_UNSAFE)
                > 0,
            "replayed frames must hit the safe-packet/duplicate paths"
        );
        // …but every sender's measured rate counts only genuine
        // attempts, so the fleet still reads fully authenticated.
        assert_eq!(report.min_sender_auth_permille, Some(1000));
        assert_eq!(report.metrics.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
    }

    #[test]
    fn same_seed_campaigns_render_identically_under_every_adversary() {
        for class in AdversaryClass::ALL {
            let spec = FleetSpec {
                senders: 12,
                intervals: 6,
                flood: 0.7,
                pins: vec![1, 2],
                adversary: class,
                drain_budget: 48,
                trace_depth: 4096,
                ..FleetSpec::default()
            };
            let a = run_fleet(&spec);
            let b = run_fleet(&spec);
            assert_eq!(
                a.registry.render(),
                b.registry.render(),
                "{} campaign must be deterministic",
                class.label()
            );
            assert_eq!(a.trace.len(), b.trace.len());
            assert_eq!(a.shed_frames, b.shed_frames);
        }
    }

    #[test]
    fn adaptive_fleet_reprovisions_every_session_toward_the_ess() {
        use dap_game::{optimal_buffer_count, DosGameParams};
        let spec = FleetSpec {
            senders: 16,
            intervals: 12,
            shards: 2,
            flood: 0.9,
            buffers: 2,
            adaptive: true,
            trace_depth: 1 << 14,
            ..FleetSpec::default()
        };
        let a = run_fleet(&spec);
        let b = run_fleet(&spec);
        // The feedback edge stays deterministic: registries and traces
        // (every PostureChange included) are identical across runs.
        assert_eq!(a.registry.render(), b.registry.render());
        assert_eq!(a.trace, b.trace);
        let directives = a.metrics.get(keys::CONTROL_DIRECTIVES);
        assert!(
            directives >= 1,
            "stationary 0.9 flood must trigger a re-size"
        );
        let changes = a
            .trace
            .iter()
            .filter(|r| r.event.name() == "posture_change")
            .count() as u64;
        assert_eq!(
            changes,
            directives * spec.shards as u64,
            "each directive re-provisions every shard exactly once"
        );
        // The live fleet lands at the offline Algorithm 3 optimum…
        let offline = optimal_buffer_count(DosGameParams::paper_defaults(0.9, 1), 50);
        let live_m = u32::try_from(a.metrics.get(keys::CONTROL_M)).unwrap();
        assert!(
            live_m.abs_diff(offline.m) <= 1,
            "live m {live_m} vs offline m* {}",
            offline.m
        );
        // …and beats the frozen bootstrap `1 − 0.9²` it started from.
        assert!(
            a.auth_rate > a.expected_rate,
            "adaptive rate {} must beat the static m = 2 prediction {}",
            a.auth_rate,
            a.expected_rate
        );
    }

    #[test]
    fn reputation_farmer_earns_standing_then_spends_it_without_authenticating() {
        use crate::adversary::FARM_INTERVALS;
        let spec = FleetSpec {
            senders: 8,
            intervals: 10,
            shards: 2,
            pins: vec![1],
            adversary: AdversaryClass::ReputationFarming,
            ..FleetSpec::default()
        };
        let report = run_fleet(&spec);
        // Ids 2..=8 are unpinned; every second one ([2, 4, 6, 8]) is
        // farmed: honest through the farm window, then silent except
        // for spoofed floods. Farmed senders reveal only during the
        // farm (the reveal covering interval j lands at j + 1, so the
        // last one they send covers FARM_INTERVALS − 1).
        let farmed = 4;
        let unfarmed = spec.senders - farmed;
        assert_eq!(
            report.metrics.get(keys::NET_REVEAL_TOTAL),
            unfarmed * spec.intervals + farmed * (FARM_INTERVALS - 1)
        );
        // The farm phase is clean and the turn withholds reveals, so
        // every genuine attempt authenticates — the farmed standing is
        // real, which is exactly what makes the turn dangerous.
        assert_eq!(report.min_sender_auth_permille, Some(1000));
        // The post-turn flood competed for the farmed sessions'
        // buffers…
        assert!(
            report.metrics.get(keys::NET_ANNOUNCE_SAMPLED_OUT) > 0,
            "the turn's spoof flood must pressure the reservoirs"
        );
        // …but TESLA still never authenticates a forgery, whatever
        // priority class the farmer earned.
        assert_eq!(report.metrics.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
    }

    #[test]
    fn unknown_sender_ids_are_refused_without_budget() {
        let spec = FleetSpec {
            senders: 4,
            intervals: 3,
            flood: 0.0,
            ..FleetSpec::default()
        };
        // A run plus hand-injected frames claiming an unprovisioned id:
        // run the campaign first, then check the counter stayed zero.
        let report = run_fleet(&spec);
        assert_eq!(report.metrics.get(keys::NET_SESSION_UNKNOWN), 0);
        // Direct verifier check for the unknown path.
        let mut shard = FleetShard::new(&spec, 0);
        let mut registry = Registry::new();
        let mut rng = SimRng::new(1);
        let live = LiveCounters::default();
        let verdict = shard.on_frame(
            SenderId(999),
            &DapMessage::Announce(dap_core::Announce {
                index: 1,
                mac: dap_crypto::Mac80::from_slice(&[7; 10]).unwrap(),
            }),
            SimTime(10),
            &mut rng,
            &mut registry,
            &live,
        );
        assert_eq!(verdict.outcome, "unknown_sender");
        assert_eq!(registry.counters().get(keys::NET_SESSION_UNKNOWN), 1);
        assert_eq!(shard.table().occupancy(), 0);
    }
}
