//! Bridging simulator time to wall-clock time.
//!
//! Everything below `dap-net` reasons in [`SimTime`] ticks — the
//! interval grids, safe-packet tests and receivers are all written
//! against the simulator's virtual clock. A wire runtime needs those
//! ticks to correspond to real instants: [`RealClock`] anchors the tick
//! grid at a [`std::time::Instant`] epoch with a configurable tick
//! duration (and an optional bounded skew drawn from
//! [`dap_simnet::ClockOffsets`], mirroring the paper's loose-synchrony
//! assumption), while [`ManualClock`] is a shared, explicitly advanced
//! clock for deterministic tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dap_simnet::{ClockOffsets, SimRng, SimTime};

/// A source of local protocol time, plus the ability to wait for a tick.
pub trait NetClock: Send + Sync {
    /// The local clock reading, in simulator ticks.
    fn now(&self) -> SimTime;

    /// Blocks until [`now`](Self::now) reaches `deadline` (returns
    /// immediately when it already has).
    fn sleep_until(&self, deadline: SimTime);
}

/// Wall-clock ticks: `now()` counts `tick`-sized steps since an
/// [`Instant`] epoch, shifted by a fixed signed skew in ticks.
///
/// The skew models the paper's `Δ`-bounded clock offsets on a real
/// node: construct via [`RealClock::with_offset`] to draw it from the
/// same [`ClockOffsets`] distribution the simulator uses.
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Instant,
    tick: Duration,
    skew_ticks: i64,
}

impl RealClock {
    /// A clock whose tick 0 is *now* and whose ticks last `tick`.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    #[must_use]
    pub fn new(tick: Duration) -> Self {
        assert!(!tick.is_zero(), "tick duration must be positive");
        Self {
            epoch: Instant::now(),
            tick,
            skew_ticks: 0,
        }
    }

    /// Same grid, but read through a skewed local clock: the offset is
    /// sampled from `offsets` (the simulator's `Δ`-bounded model).
    #[must_use]
    pub fn with_offset(mut self, offsets: &ClockOffsets, rng: &mut SimRng) -> Self {
        self.skew_ticks = offsets.sample(rng);
        self
    }

    /// A clock reading `at` *now*: ticks advance from there. This is how
    /// a receiver process with no shared epoch joins a sender's interval
    /// grid — anchor on the interval claimed by the first frame heard
    /// (loose synchronisation by first contact; thereafter the two
    /// clocks drift apart only at hardware-oscillator rates, which `Δ`
    /// absorbs).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or `at` does not fit the signed skew.
    #[must_use]
    pub fn anchored_at(tick: Duration, at: SimTime) -> Self {
        let mut clock = Self::new(tick);
        clock.skew_ticks = i64::try_from(at.ticks()).expect("anchor fits i64");
        clock
    }

    /// The configured tick duration.
    #[must_use]
    pub fn tick(&self) -> Duration {
        self.tick
    }
}

impl NetClock for RealClock {
    fn now(&self) -> SimTime {
        let elapsed = self.epoch.elapsed();
        let ticks = (elapsed.as_nanos() / self.tick.as_nanos()) as u64;
        SimTime(ticks).offset_by(self.skew_ticks)
    }

    fn sleep_until(&self, deadline: SimTime) {
        // Convert the deadline back through the skew to a real instant.
        let unskewed = deadline.offset_by(-self.skew_ticks);
        let nanos = self
            .tick
            .as_nanos()
            .saturating_mul(u128::from(unskewed.ticks()));
        let target = self.epoch + Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX));
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
}

/// A shared clock that only moves when a test advances it. `sleep_until`
/// yields until some other thread has advanced the clock far enough.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ticks: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at tick 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the clock (monotonically — going backwards is a test bug).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current reading.
    pub fn set(&self, t: SimTime) {
        let prev = self.ticks.swap(t.ticks(), Ordering::SeqCst);
        assert!(prev <= t.ticks(), "manual clock moved backwards");
    }
}

impl NetClock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime(self.ticks.load(Ordering::SeqCst))
    }

    fn sleep_until(&self, deadline: SimTime) {
        while self.now() < deadline {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_advances() {
        let clock = RealClock::new(Duration::from_micros(50));
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a, "clock did not advance: {a} -> {b}");
        assert_eq!(clock.tick(), Duration::from_micros(50));
    }

    #[test]
    fn real_clock_sleep_until_reaches_deadline() {
        let clock = RealClock::new(Duration::from_micros(100));
        clock.sleep_until(SimTime(20));
        assert!(clock.now() >= SimTime(20));
        // Already-passed deadlines return immediately.
        clock.sleep_until(SimTime(1));
    }

    #[test]
    fn real_clock_offset_shifts_reading() {
        let mut rng = SimRng::new(7);
        let offsets = ClockOffsets::loose(500);
        let base = RealClock::new(Duration::from_micros(10));
        let skewed = base.clone().with_offset(&offsets, &mut rng);
        assert!(skewed.skew_ticks.unsigned_abs() <= 500);
    }

    #[test]
    fn anchored_clock_starts_at_the_anchor() {
        let clock = RealClock::anchored_at(Duration::from_millis(10), SimTime(730));
        let now = clock.now();
        assert!(now >= SimTime(730), "anchored clock read {now}");
        assert!(now < SimTime(760), "anchored clock raced ahead: {now}");
    }

    #[test]
    fn manual_clock_is_shared() {
        let clock = ManualClock::new();
        let reader = clock.clone();
        assert_eq!(reader.now(), SimTime(0));
        clock.set(SimTime(42));
        assert_eq!(reader.now(), SimTime(42));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let clock = ManualClock::new();
        clock.set(SimTime(5));
        clock.set(SimTime(4));
    }

    #[test]
    fn manual_sleep_until_wakes_on_advance() {
        let clock = ManualClock::new();
        let waiter = clock.clone();
        let handle = std::thread::spawn(move || {
            waiter.sleep_until(SimTime(3));
            waiter.now()
        });
        std::thread::sleep(Duration::from_millis(5));
        clock.set(SimTime(3));
        assert!(handle.join().unwrap() >= SimTime(3));
    }
}
