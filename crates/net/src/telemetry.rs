//! The live telemetry plane: a shared registry the pool's shards
//! publish into, and a tiny blocking HTTP listener that serves its
//! merged snapshot in Prometheus text exposition format.
//!
//! The design keeps the hot path honest: shards own their
//! [`Registry`] outright and only *clone it out* into their
//! [`SharedRegistry`] slot every `publish_every` datagrams, so workers
//! never contend on a global lock per frame, and a scrape reads a
//! consistent per-shard snapshot (merging is order-independent — counter
//! sums, histogram bucket sums, gauge min/max envelopes).
//!
//! The server is deliberately minimal — no external HTTP crate (the
//! workspace is hermetic): a non-blocking `TcpListener` polled every few
//! milliseconds, one response per connection, `Connection: close`. That
//! is all a Prometheus scraper or `curl` needs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dap_simnet::Registry;

/// One registry slot per shard (plus any extra sources), merged on read.
#[derive(Debug)]
pub struct SharedRegistry {
    slots: Vec<Mutex<Registry>>,
}

impl SharedRegistry {
    /// A shared registry with `slots` independent publish slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "need at least one telemetry slot");
        Self {
            slots: (0..slots).map(|_| Mutex::new(Registry::new())).collect(),
        }
    }

    /// Number of publish slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Replaces slot `slot` with a clone of `registry`. Cheap relative
    /// to the publish interval; never blocks other slots.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn publish(&self, slot: usize, registry: &Registry) {
        *self.slots[slot].lock().expect("telemetry slot poisoned") = registry.clone();
    }

    /// The merged view across every slot.
    #[must_use]
    pub fn snapshot(&self) -> Registry {
        let mut merged = Registry::new();
        for slot in &self.slots {
            merged.merge(&slot.lock().expect("telemetry slot poisoned"));
        }
        merged
    }
}

/// A one-shot-per-connection HTTP exposition endpoint.
///
/// Serves `GET /` (any path, actually — there is exactly one resource)
/// with the [`SharedRegistry`] snapshot rendered by
/// [`Registry::render_prometheus`].
pub struct TelemetryServer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for ephemeral)
    /// and starts the accept loop on its own thread.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(addr: &str, shared: Arc<SharedRegistry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dap-telemetry".into())
            .spawn(move || accept_loop(&listener, &shared, &stop_flag))
            .expect("spawn telemetry thread");
        Ok(Self {
            stop,
            thread: Some(thread),
            addr: local,
        })
    }

    /// The bound address (which port an ephemeral bind got).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &SharedRegistry, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut conn, _peer)) => {
                // Drain whatever request line arrived (best-effort; a
                // scraper that sends nothing still gets the body).
                let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
                let mut scratch = [0u8; 1024];
                let _ = conn.read(&mut scratch);
                let body = shared.snapshot().render_prometheus();
                let response = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = conn.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_simnet::keys;
    use std::net::TcpStream;

    #[test]
    fn snapshot_merges_slots() {
        let shared = SharedRegistry::new(2);
        let mut a = Registry::new();
        a.incr(keys::NET_INGRESS_FRAMES);
        a.record(keys::NET_VERIFY_LATENCY_NS, 100);
        let mut b = Registry::new();
        b.add(keys::NET_INGRESS_FRAMES, 2);
        b.record(keys::NET_VERIFY_LATENCY_NS, 300);
        shared.publish(0, &a);
        shared.publish(1, &b);
        let merged = shared.snapshot();
        assert_eq!(merged.counters().get(keys::NET_INGRESS_FRAMES), 3);
        assert_eq!(
            merged
                .get_histogram(keys::NET_VERIFY_LATENCY_NS)
                .map(dap_obs::Histogram::count),
            Some(2)
        );
        // Re-publishing replaces, not accumulates.
        shared.publish(1, &b);
        assert_eq!(
            shared.snapshot().counters().get(keys::NET_INGRESS_FRAMES),
            3
        );
    }

    #[test]
    fn server_serves_prometheus_text() {
        let shared = Arc::new(SharedRegistry::new(1));
        let mut reg = Registry::new();
        reg.add(keys::NET_REVEAL_AUTH, 7);
        shared.publish(0, &reg);
        let server = TelemetryServer::bind("127.0.0.1:0", Arc::clone(&shared)).unwrap();
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("net_reveal_auth 7"), "{response}");
        server.stop();
    }
}
