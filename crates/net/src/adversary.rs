//! Adaptive adversary suite for the fleet wire (DESIGN §11).
//!
//! PR 4's [`Flooder`](crate::pump::Flooder) models the paper's §V
//! adversary: a memoryless Bernoulli source spending bandwidth share `p`
//! on forged announces every interval. Real crowdsensing deployments
//! face smarter attackers, so this module adds four classes beyond it —
//! QRES-style adversaries that shape *when*, *as whom* and *how hard*
//! they flood:
//!
//! - **burst-at-reanchor**: silent through steady state, then saturates
//!   the re-anchor/readmission windows where evicted senders rebuild
//!   trust, spending the banked quiet-period bandwidth all at once;
//! - **collusion**: the share `p` split across many spoofed sender ids —
//!   half real (to pollute their reservoirs and churn their sessions),
//!   half fabricated (to burn directory lookups) — so no single id looks
//!   hot enough to throttle;
//! - **replay-at-the-edge**: captures genuine frames and replays them
//!   one disclosure delay later, exactly when their keys disclose —
//!   every replayed byte is authentic-looking wire traffic that the
//!   safe-packet test must reject and the drain budget must pay for;
//! - **adaptive**: observes defender posture between intervals (buffer
//!   size `m`, shed counters after a [`PoolHandle::quiesce`]) and
//!   escalates its bandwidth share while the defender absorbs it,
//!   backing off once sheds show the queue is cutting it.
//!
//! An [`AdversaryPlan`] is pure state: it decides *what to emit*, while
//! the campaign driver owns the transport and RNG that materialise the
//! forged bytes. That keeps every class deterministic — same seed, same
//! posture sequence, same attack — which is what lets ci.sh diff two
//! burst-at-reanchor runs byte for byte.
//!
//! [`PoolHandle::quiesce`]: crate::pool::PoolHandle::quiesce

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Arc;

use dap_core::SenderId;
use dap_simnet::FloodIntensity;

/// Captured frames older than the replay horizon are discarded; a
/// per-interval cap bounds the attacker's own memory (and ours).
const MAX_CAPTURED_PER_INTERVAL: usize = 16_384;

/// Which adversary strategy a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdversaryClass {
    /// The paper's §V flooder: bandwidth share `p` of forged announces
    /// against every sender, every interval (PR 4 behavior, unchanged).
    #[default]
    Bernoulli,
    /// Quiet until a re-anchor window (every `REANCHOR_PERIOD`-th
    /// interval), then a saturating burst of the banked bandwidth
    /// against every unpinned sender.
    BurstReanchor,
    /// The share split round-robin across spoofed ids: every unpinned
    /// real sender plus as many fabricated ids, attacking reservoirs
    /// and the session table at once.
    Collusion,
    /// Replays captured genuine frames one disclosure delay later — at
    /// the edge where their keys disclose.
    ReplayEdge,
    /// Starts gentle, watches posture (buffers `m`, shed rate) between
    /// intervals, and escalates toward the cap while nothing is shed.
    Adaptive,
    /// Plays by the rules for [`FARM_INTERVALS`] intervals — its
    /// controlled ids authenticate every reveal, pumping their EWMA
    /// scores into the `High` priority class — then turns: the farmed
    /// ids stop revealing (their genuine traffic is suppressed) and
    /// flood at the cap instead, spending the earned reputation to jump
    /// the priority drain ahead of honest `Low` traffic.
    ReputationFarming,
}

impl AdversaryClass {
    /// Stable lowercase label (CLI value, report rows).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdversaryClass::Bernoulli => "bernoulli",
            AdversaryClass::BurstReanchor => "burst-reanchor",
            AdversaryClass::Collusion => "collusion",
            AdversaryClass::ReplayEdge => "replay-edge",
            AdversaryClass::Adaptive => "adaptive",
            AdversaryClass::ReputationFarming => "reputation-farming",
        }
    }

    /// Every class, in report order.
    pub const ALL: [AdversaryClass; 6] = [
        AdversaryClass::Bernoulli,
        AdversaryClass::BurstReanchor,
        AdversaryClass::Collusion,
        AdversaryClass::ReplayEdge,
        AdversaryClass::Adaptive,
        AdversaryClass::ReputationFarming,
    ];
}

impl FromStr for AdversaryClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bernoulli" => Ok(AdversaryClass::Bernoulli),
            "burst-reanchor" => Ok(AdversaryClass::BurstReanchor),
            "collusion" => Ok(AdversaryClass::Collusion),
            "replay-edge" => Ok(AdversaryClass::ReplayEdge),
            "adaptive" => Ok(AdversaryClass::Adaptive),
            "reputation-farming" => Ok(AdversaryClass::ReputationFarming),
            other => Err(format!(
                "unknown adversary class {other:?} (expected bernoulli, \
                 burst-reanchor, collusion, replay-edge, adaptive or \
                 reputation-farming)"
            )),
        }
    }
}

/// Intervals between burst windows for [`AdversaryClass::BurstReanchor`]:
/// the attacker banks bandwidth for `REANCHOR_PERIOD − 1` quiet
/// intervals, then spends it all in one.
pub const REANCHOR_PERIOD: u64 = 4;

/// Intervals [`AdversaryClass::ReputationFarming`] behaves honestly
/// before turning. Four clean reveals lift a session's EWMA score from
/// the 500-permille seed well past the `High` threshold, so the turn
/// happens with reputation fully banked.
pub const FARM_INTERVALS: u64 = 4;

/// What the adaptive class sees of the defender between intervals.
/// Everything here is deterministic after a pool quiesce, so observing
/// it cannot leak scheduler timing into the attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostureView {
    /// Reservoir buffers per interval (the paper's `m`).
    pub buffers: usize,
    /// Per-shard, per-window verify budget (`usize::MAX` = unwindowed).
    pub drain_budget: usize,
    /// Frames the priority drain has shed so far, all classes.
    pub shed_frames: u64,
    /// Frames ingested so far (the shed-rate denominator).
    pub ingress_frames: u64,
    /// Epoch of the newest control-plane posture directive (0 while the
    /// defense is static) — visible because a real attacker watching
    /// loss patterns can detect re-sizes too.
    pub posture_epoch: u64,
    /// Buffers the newest directive commanded; 0 while static, in which
    /// case [`buffers`] is the live truth.
    ///
    /// [`buffers`]: PostureView::buffers
    pub live_buffers: u64,
    /// Whether the defense announced the §V give-up posture.
    pub give_up: bool,
}

impl PostureView {
    /// The reservoir buffers actually in force: the newest directive's
    /// `m` when the control plane has spoken, the static bootstrap
    /// value otherwise.
    #[must_use]
    pub fn effective_buffers(&self) -> usize {
        if self.live_buffers > 0 {
            usize::try_from(self.live_buffers).unwrap_or(usize::MAX)
        } else {
            self.buffers
        }
    }
}

/// One standalone emission the campaign driver materialises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryEmit {
    /// Forge a fresh announce as `victim` for `interval` (random MAC —
    /// the driver's flooder RNG supplies the bytes).
    Forge {
        /// The spoofed sender id.
        victim: SenderId,
        /// The claimed interval.
        interval: u64,
    },
    /// Replay captured wire bytes verbatim.
    Replay(Vec<u8>),
}

/// Deterministic per-campaign adversary state. See the module docs for
/// the class semantics; construction fixes the roster (which ids exist,
/// which are pinned) so every decision is a pure function of
/// `(class, interval, observed posture)`.
#[derive(Debug, Clone)]
pub struct AdversaryPlan {
    class: AdversaryClass,
    /// Bandwidth cap as a [`FloodIntensity`] (the `--flood p` the
    /// campaign was asked for).
    cap: FloodIntensity,
    share_cap: f64,
    /// Authentic copies each sender pumps per interval (the flood
    /// arithmetic's `authentic` operand).
    copies: u64,
    /// Real unpinned sender ids, ascending — the spoof victims for the
    /// targeted classes.
    unpinned: Vec<u64>,
    /// Collusion roster: unpinned real ids interleaved with fabricated
    /// ones, walked round-robin across intervals.
    colluders: Vec<u64>,
    /// Reputation-farming roster: every second unpinned id, so the
    /// report contrasts farmed-then-turned ids against honest ones.
    farmed: Vec<u64>,
    cursor: usize,
    /// Captured `(sent_interval, bytes)` pairs for replay.
    captured: Vec<(u64, Vec<u8>)>,
    adaptive_share: f64,
    adaptive: FloodIntensity,
    last_shed: u64,
    escalations: u64,
}

impl AdversaryPlan {
    /// A plan for `class` at bandwidth cap `p`, against a fleet of ids
    /// `1..=senders` each pumping `copies` authentic announce copies per
    /// interval, with `pins` operator-pinned.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)` (a share of 1 would mean
    /// infinite forged copies).
    #[must_use]
    pub fn new(
        class: AdversaryClass,
        p: f64,
        copies: u64,
        senders: u64,
        pins: &Arc<BTreeSet<u64>>,
    ) -> Self {
        assert!((0.0..1.0).contains(&p), "bandwidth share must be in [0,1)");
        let unpinned: Vec<u64> = (1..=senders).filter(|id| !pins.contains(id)).collect();
        // Fabricated ids live past the real roster, so the directory
        // refuses them — they attack lookup cost and queue budget, not
        // reservoirs.
        let colluders: Vec<u64> = unpinned
            .iter()
            .enumerate()
            .flat_map(|(slot, id)| [*id, senders + 1 + slot as u64])
            .collect();
        let farmed: Vec<u64> = unpinned.iter().copied().step_by(2).collect();
        let start_share = if p < 0.3 { p } else { 0.3 };
        Self {
            class,
            cap: FloodIntensity::of_bandwidth(p),
            share_cap: p,
            copies,
            unpinned,
            colluders,
            farmed,
            cursor: 0,
            captured: Vec::new(),
            adaptive_share: start_share,
            adaptive: FloodIntensity::of_bandwidth(start_share),
            last_shed: 0,
            escalations: 0,
        }
    }

    /// The class this plan runs.
    #[must_use]
    pub fn class(&self) -> AdversaryClass {
        self.class
    }

    /// The bandwidth share currently in play (the cap for the static
    /// classes, the escalated share for adaptive).
    #[must_use]
    pub fn share(&self) -> f64 {
        match self.class {
            AdversaryClass::Adaptive => self.adaptive_share,
            _ => self.share_cap,
        }
    }

    /// How many times the adaptive class has escalated so far.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Forged copies to interleave with `victim`'s genuine traffic this
    /// interval — the per-sender spoof stream (classes that attack via
    /// standalone emissions return 0 here).
    #[must_use]
    pub fn spoof_copies(&self, victim: SenderId, interval: u64) -> u64 {
        match self.class {
            // Indiscriminate: every sender, pinned or not, sees share p
            // of forged traffic — exactly the PR 4 flooder.
            AdversaryClass::Bernoulli => self.cap.forged_copies(self.copies),
            AdversaryClass::Adaptive if self.unpinned.contains(&victim.0) => {
                self.adaptive.forged_copies(self.copies)
            }
            // Post-turn, the farmed ids' whole bandwidth is forged —
            // their genuine stream is suppressed, the flood rides the
            // `High` class their farming earned.
            AdversaryClass::ReputationFarming if self.suppresses(victim, interval) => {
                self.cap.forged_copies(self.copies)
            }
            _ => 0,
        }
    }

    /// Whether the adversary controls `victim` and has turned it by
    /// `interval` — the campaign driver consults this to withhold the
    /// sender's genuine announce/reveal stream (a turned device stops
    /// cooperating; only its spoofed flood remains). Always `false`
    /// outside the reputation-farming class and during the farm phase.
    #[must_use]
    pub fn suppresses(&self, victim: SenderId, interval: u64) -> bool {
        self.class == AdversaryClass::ReputationFarming
            && interval > FARM_INTERVALS
            && self.farmed.binary_search(&victim.0).is_ok()
    }

    /// Records one genuine frame the adversary overheard on the wire
    /// during `interval`. Only the replay class keeps anything.
    pub fn tap(&mut self, interval: u64, bytes: &[u8]) {
        if self.class != AdversaryClass::ReplayEdge {
            return;
        }
        // Horizon: only the previous interval is ever replayed, so two
        // intervals of history suffice.
        self.captured
            .retain(|(sent, _)| sent + 1 >= interval.max(1));
        let this_interval = self
            .captured
            .iter()
            .filter(|(sent, _)| *sent == interval)
            .count();
        if this_interval < MAX_CAPTURED_PER_INTERVAL {
            self.captured.push((interval, bytes.to_vec()));
        }
    }

    /// Lets the adversary see defender posture after the previous
    /// interval fully drained (call between a quiesce and the next
    /// interval's traffic). Only the adaptive class reacts: while the
    /// defender sheds nothing the share steps up toward the cap, and
    /// once sheds appear it backs off — the attacker side of the
    /// replicator dynamic, played greedily. Under an adaptive defense
    /// the view carries the control plane's own moves
    /// ([`PostureView::live_buffers`], [`PostureView::give_up`]), so
    /// the attacker re-derives its worth-playing floor from the buffers
    /// *actually in force* — and a defender that gives up invites the
    /// full cap at once: flooding a surrendered node is free.
    pub fn observe(&mut self, posture: &PostureView) {
        if self.class != AdversaryClass::Adaptive {
            return;
        }
        let shed_delta = posture.shed_frames.saturating_sub(self.last_shed);
        self.last_shed = posture.shed_frames;
        if posture.give_up {
            if self.adaptive_share < self.share_cap {
                self.adaptive_share = self.share_cap;
                self.escalations += 1;
            }
            self.adaptive = FloodIntensity::of_bandwidth(self.adaptive_share);
            return;
        }
        if shed_delta == 0 {
            // The posture names the floor worth playing: `m` reservoir
            // buffers soak m forged offers against `copies` genuine
            // ones, so shares below m/(m+copies) are wasted bandwidth.
            let m = posture.effective_buffers() as f64;
            let floor = m / (m + self.copies as f64);
            let next = (self.adaptive_share + 0.1).max(floor).min(self.share_cap);
            if next > self.adaptive_share {
                self.adaptive_share = next;
                self.escalations += 1;
            }
        } else {
            let next = (self.adaptive_share - 0.05).max(0.1).min(self.share_cap);
            if next < self.adaptive_share {
                self.adaptive_share = next;
            }
        }
        self.adaptive = FloodIntensity::of_bandwidth(self.adaptive_share);
    }

    /// The standalone emissions for `interval` (empty for the
    /// per-sender-stream classes). The driver materialises them in
    /// order, after the interval's genuine traffic.
    #[must_use]
    pub fn standalone(&mut self, interval: u64) -> Vec<AdversaryEmit> {
        match self.class {
            AdversaryClass::Bernoulli
            | AdversaryClass::Adaptive
            | AdversaryClass::ReputationFarming => Vec::new(),
            AdversaryClass::BurstReanchor => {
                if interval == 0 || !interval.is_multiple_of(REANCHOR_PERIOD) {
                    return Vec::new();
                }
                // The banked quiet-period bandwidth, spent at once:
                // `period × forged_copies` per unpinned victim, ids
                // interleaved so every shard saturates together.
                let per_victim = self.cap.forged_copies(self.copies) * REANCHOR_PERIOD;
                let mut emits = Vec::with_capacity(per_victim as usize * self.unpinned.len());
                for _ in 0..per_victim {
                    for id in &self.unpinned {
                        emits.push(AdversaryEmit::Forge {
                            victim: SenderId(*id),
                            interval,
                        });
                    }
                }
                emits
            }
            AdversaryClass::Collusion => {
                // Aggregate budget equal to the bernoulli spend on the
                // unpinned population, walked round-robin over the
                // colluding roster so the spoof pressure rotates.
                let budget = self.cap.forged_copies(self.copies) * self.unpinned.len() as u64;
                let mut emits = Vec::with_capacity(budget as usize);
                if self.colluders.is_empty() {
                    return emits;
                }
                for _ in 0..budget {
                    let id = self.colluders[self.cursor % self.colluders.len()];
                    self.cursor = (self.cursor + 1) % self.colluders.len();
                    emits.push(AdversaryEmit::Forge {
                        victim: SenderId(id),
                        interval,
                    });
                }
                emits
            }
            AdversaryClass::ReplayEdge => {
                if interval == 0 {
                    return Vec::new();
                }
                // Frames sent during interval i−1 replayed during i:
                // announces for i−1 hit the safe-packet test exactly at
                // the disclosure edge, reveals burn verify budget as
                // duplicates. Amplified to reach the bandwidth share.
                let amp = if self.share_cap >= 1.0 {
                    1
                } else {
                    ((self.share_cap / (1.0 - self.share_cap)).round() as u64).max(1)
                };
                let edge: Vec<&Vec<u8>> = self
                    .captured
                    .iter()
                    .filter(|(sent, _)| *sent == interval - 1)
                    .map(|(_, bytes)| bytes)
                    .collect();
                let mut emits = Vec::with_capacity(edge.len() * amp as usize);
                for _ in 0..amp {
                    for bytes in &edge {
                        emits.push(AdversaryEmit::Replay((*bytes).clone()));
                    }
                }
                emits
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pins(ids: &[u64]) -> Arc<BTreeSet<u64>> {
        Arc::new(ids.iter().copied().collect())
    }

    #[test]
    fn class_labels_round_trip_from_str() {
        for class in AdversaryClass::ALL {
            assert_eq!(class.label().parse::<AdversaryClass>().unwrap(), class);
        }
        assert!("flood".parse::<AdversaryClass>().is_err());
    }

    #[test]
    fn bernoulli_matches_the_flood_intensity_arithmetic() {
        let plan = AdversaryPlan::new(AdversaryClass::Bernoulli, 0.9, 4, 8, &pins(&[1]));
        // p=0.9, 4 authentic → 36 forged, pinned or not.
        assert_eq!(plan.spoof_copies(SenderId(1), 3), 36);
        assert_eq!(plan.spoof_copies(SenderId(5), 3), 36);
    }

    #[test]
    fn burst_is_quiet_off_window_and_conserves_average_share() {
        let mut plan = AdversaryPlan::new(AdversaryClass::BurstReanchor, 0.8, 5, 3, &pins(&[1]));
        assert_eq!(plan.spoof_copies(SenderId(2), 1), 0);
        for i in 1..REANCHOR_PERIOD {
            assert!(plan.standalone(i).is_empty(), "interval {i} must be quiet");
        }
        let burst = plan.standalone(REANCHOR_PERIOD);
        // 2 unpinned victims × forged_copies(5)=20 × period 4.
        assert_eq!(burst.len(), 2 * 20 * REANCHOR_PERIOD as usize);
        // Only unpinned ids are spoofed.
        for emit in &burst {
            let AdversaryEmit::Forge { victim, .. } = emit else {
                panic!("burst emits forges");
            };
            assert_ne!(victim.0, 1, "pinned id spoofed");
        }
    }

    #[test]
    fn collusion_rotates_over_real_and_fabricated_ids() {
        let mut plan = AdversaryPlan::new(AdversaryClass::Collusion, 0.5, 4, 4, &pins(&[4]));
        let emits = plan.standalone(1);
        // 3 unpinned × forged_copies(4)=4 at p=0.5.
        assert_eq!(emits.len(), 12);
        let victims: BTreeSet<u64> = emits
            .iter()
            .map(|e| match e {
                AdversaryEmit::Forge { victim, .. } => victim.0,
                AdversaryEmit::Replay(_) => panic!("collusion forges"),
            })
            .collect();
        assert!(victims.contains(&1), "real unpinned ids spoofed");
        assert!(victims.iter().any(|id| *id > 4), "fabricated ids spoofed");
        assert!(!victims.contains(&4), "pinned id never spoofed");
        // The rotation continues across intervals instead of restarting.
        let again = plan.standalone(2);
        assert_ne!(emits[0], again[0]);
    }

    #[test]
    fn replay_edge_replays_the_previous_interval_amplified() {
        let mut plan = AdversaryPlan::new(AdversaryClass::ReplayEdge, 0.75, 4, 4, &pins(&[]));
        plan.tap(1, b"frame-a");
        plan.tap(1, b"frame-b");
        assert!(plan.standalone(1).is_empty(), "nothing captured for i=0");
        let emits = plan.standalone(2);
        // amp = round(0.75/0.25) = 3 → each of the 2 frames 3×.
        assert_eq!(emits.len(), 6);
        assert_eq!(emits[0], AdversaryEmit::Replay(b"frame-a".to_vec()));
        // Two intervals on, the capture horizon has moved past them.
        plan.tap(3, b"frame-c");
        let later = plan.standalone(4);
        assert!(later
            .iter()
            .all(|e| *e == AdversaryEmit::Replay(b"frame-c".to_vec())));
    }

    #[test]
    fn adaptive_escalates_while_unshed_and_backs_off_after_sheds() {
        let mut plan = AdversaryPlan::new(AdversaryClass::Adaptive, 0.9, 4, 8, &pins(&[1]));
        assert!((plan.share() - 0.3).abs() < 1e-9);
        let mut posture = PostureView {
            buffers: 4,
            drain_budget: usize::MAX,
            shed_frames: 0,
            ingress_frames: 0,
            posture_epoch: 0,
            live_buffers: 0,
            give_up: false,
        };
        // No sheds: the first step jumps to the m/(m+copies) floor.
        plan.observe(&posture);
        assert!((plan.share() - 0.5).abs() < 1e-9);
        for _ in 0..8 {
            plan.observe(&posture);
        }
        assert!((plan.share() - 0.9).abs() < 1e-9, "caps at p");
        let escalations = plan.escalations();
        assert!(escalations >= 5);
        // Sheds appear: the share backs off.
        posture.shed_frames = 100;
        plan.observe(&posture);
        assert!(plan.share() < 0.9);
        assert_eq!(plan.escalations(), escalations);
        // Pinned ids are never in the adaptive spoof stream.
        assert_eq!(plan.spoof_copies(SenderId(1), 5), 0);
        assert!(plan.spoof_copies(SenderId(2), 5) > 0);
    }

    #[test]
    fn adaptive_reads_the_control_planes_resize_and_give_up() {
        let mut plan = AdversaryPlan::new(AdversaryClass::Adaptive, 0.9, 4, 8, &pins(&[]));
        // The control plane re-sized to m = 12: the directive, not the
        // static bootstrap m = 2, sets the worth-playing floor 12/16.
        plan.observe(&PostureView {
            buffers: 2,
            drain_budget: usize::MAX,
            shed_frames: 0,
            ingress_frames: 0,
            posture_epoch: 3,
            live_buffers: 12,
            give_up: false,
        });
        assert!((plan.share() - 0.75).abs() < 1e-9, "share {}", plan.share());
        // The defender gives up: the attacker jumps straight to the cap
        // even though sheds would otherwise back it off.
        let mut fresh = AdversaryPlan::new(AdversaryClass::Adaptive, 0.9, 4, 8, &pins(&[]));
        fresh.observe(&PostureView {
            buffers: 2,
            drain_budget: 64,
            shed_frames: 500,
            ingress_frames: 1000,
            posture_epoch: 7,
            live_buffers: 1,
            give_up: true,
        });
        assert!((fresh.share() - 0.9).abs() < 1e-9);
        assert_eq!(fresh.escalations(), 1);
    }

    #[test]
    fn reputation_farmer_is_honest_through_the_farm_then_turns() {
        let plan = AdversaryPlan::new(AdversaryClass::ReputationFarming, 0.9, 4, 6, &pins(&[1]));
        // Farm phase: no spoofing, no suppression — ids authenticate.
        for i in 1..=FARM_INTERVALS {
            for id in 1..=6 {
                assert_eq!(plan.spoof_copies(SenderId(id), i), 0);
                assert!(!plan.suppresses(SenderId(id), i));
            }
            assert!(plan.clone().standalone(i).is_empty());
        }
        // The turn: farmed ids (every second unpinned: 2, 4, 6) flood
        // at the cap and withhold genuine traffic; the rest stay honest
        // and unspoofed; the pinned id is never farmed.
        let turn = FARM_INTERVALS + 1;
        for id in [2u64, 4, 6] {
            assert!(plan.suppresses(SenderId(id), turn));
            assert_eq!(plan.spoof_copies(SenderId(id), turn), 36);
        }
        for id in [1u64, 3, 5] {
            assert!(!plan.suppresses(SenderId(id), turn));
            assert_eq!(plan.spoof_copies(SenderId(id), turn), 0);
        }
    }

    #[test]
    fn same_inputs_same_plan() {
        let mk = || {
            let mut plan =
                AdversaryPlan::new(AdversaryClass::Collusion, 0.8, 4, 16, &pins(&[1, 2]));
            (1..=6).flat_map(|i| plan.standalone(i)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
