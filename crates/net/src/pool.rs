//! The sharded receiver pool.
//!
//! One socket reader fans frames out to `N` worker threads. Routing is
//! by *interval index* — a splitmix-mixed hash of the index field read
//! straight off the frame header ([`dap_core::codec::peek_index`], no
//! crypto on the reader thread) — so an interval's announces and its
//! reveal always land on the same shard, and each shard can own its
//! reservoir pools outright: the paper's per-interval `m/k` sampling
//! semantics survive sharding untouched, because all copies of interval
//! `i` compete inside exactly one shard.
//!
//! Each shard drains a bounded [`IngressQueue`]. The overflow policy is
//! explicit ([`OverflowPolicy`]): `DropCount` never blocks the socket
//! reader — a full shard sheds the frame and the drop is counted under
//! `net.ingress.dropped` (shedding *pre*-reservoir keeps the surviving
//! offer stream a uniform subsample, so `m/k` still holds over what got
//! through) — while `Block` applies backpressure, which is what the
//! deterministic loopback runs use (a drop decided by scheduler timing
//! would break bit-reproducibility).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dap_core::codec::FrameAssembler;
use dap_core::{codec, AnnounceOutcome, DapBootstrap, DapMessage, DapReceiver, RevealOutcome};
use dap_simnet::{Metrics, SimRng, SimTime};
use dap_tesla::tesla::Bootstrap as TeslaBootstrap;
use dap_tesla::teslapp::{TeslaPpMessage, TeslaPpOutcome, TeslaPpReceiver};

use crate::queue::IngressQueue;

/// What a full shard queue does to the next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Shed the frame and count it (`net.ingress.dropped`); the socket
    /// reader never blocks. The wire posture.
    DropCount,
    /// Backpressure the producer until the shard catches up. The
    /// deterministic-loopback posture.
    Block,
}

/// Pool shape.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads (= shards).
    pub shards: usize,
    /// Frames each shard's ingress queue holds before overflowing.
    pub queue_depth: usize,
    /// What happens on overflow.
    pub overflow: OverflowPolicy,
}

impl Default for PoolConfig {
    /// 4 shards × 1024-frame queues, shedding (wire posture).
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 1024,
            overflow: OverflowPolicy::DropCount,
        }
    }
}

/// Per-shard protocol state: turns decoded frames into outcomes and
/// counters. One verifier instance lives on each worker thread.
pub trait FrameVerifier: Send {
    /// Processes one decoded frame stamped with its receive time.
    fn on_frame(
        &mut self,
        frame: &DapMessage,
        at: SimTime,
        rng: &mut SimRng,
        metrics: &mut Metrics,
        live: &LiveCounters,
    );
}

/// Counters the pool mirrors into atomics so callers can watch a live
/// run (e.g. the UDP integration test polling for progress) without
/// waiting for shutdown's metric merge.
#[derive(Debug, Default)]
pub struct LiveCounters {
    frames: AtomicU64,
    authenticated: AtomicU64,
    dropped: AtomicU64,
}

impl LiveCounters {
    /// Frames ingested so far (all shards).
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// Messages authenticated so far (all shards).
    #[must_use]
    pub fn authenticated(&self) -> u64 {
        self.authenticated.load(Ordering::SeqCst)
    }

    /// Frames shed by full shard queues.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Records an authentication (verifier-side).
    pub fn count_authenticated(&self) {
        self.authenticated.fetch_add(1, Ordering::SeqCst);
    }
}

/// A DAP receiver as a shard verifier (Algorithm 2 behind the fabric).
#[derive(Debug)]
pub struct DapShard {
    receiver: DapReceiver,
}

impl DapShard {
    /// Bootstraps one shard's receiver; `local_seed` must differ per
    /// node but *may* be shared across a node's shards (μMACs never
    /// cross shards either way).
    #[must_use]
    pub fn new(bootstrap: DapBootstrap, local_seed: &[u8]) -> Self {
        Self {
            receiver: DapReceiver::new(bootstrap, local_seed),
        }
    }

    /// The wrapped receiver (for post-run inspection).
    #[must_use]
    pub fn receiver(&self) -> &DapReceiver {
        &self.receiver
    }
}

impl FrameVerifier for DapShard {
    fn on_frame(
        &mut self,
        frame: &DapMessage,
        at: SimTime,
        rng: &mut SimRng,
        metrics: &mut Metrics,
        live: &LiveCounters,
    ) {
        match frame {
            DapMessage::Announce(a) => match self.receiver.on_announce(a, at, rng) {
                AnnounceOutcome::Stored => metrics.incr("net.announce.stored"),
                AnnounceOutcome::Dropped => metrics.incr("net.announce.sampled_out"),
                AnnounceOutcome::Unsafe => metrics.incr("net.announce.unsafe"),
            },
            DapMessage::Reveal(r) => {
                metrics.incr("net.reveal.total");
                match self.receiver.on_reveal(r, at) {
                    RevealOutcome::Authenticated { .. } => {
                        metrics.incr("net.reveal.auth");
                        live.count_authenticated();
                    }
                    RevealOutcome::WeakRejected { .. } => metrics.incr("net.reveal.weak_rejected"),
                    RevealOutcome::StrongRejected { .. } => {
                        metrics.incr("net.reveal.strong_rejected");
                    }
                    RevealOutcome::NoCandidate { .. } => metrics.incr("net.reveal.no_candidate"),
                }
            }
        }
    }
}

/// A TESLA++ receiver behind the same fabric and codec — DAP and
/// TESLA++ share the announce/reveal wire shape, so the comparison
/// baseline rides the identical byte stream (`netbench`'s verify lanes
/// use this).
#[derive(Debug)]
pub struct TeslaPpShard {
    receiver: TeslaPpReceiver,
}

impl TeslaPpShard {
    /// Bootstraps one shard's TESLA++ receiver.
    #[must_use]
    pub fn new(bootstrap: TeslaBootstrap, local_seed: &[u8]) -> Self {
        Self {
            receiver: TeslaPpReceiver::new(bootstrap, local_seed),
        }
    }

    /// Converts a decoded DAP frame into the TESLA++ message with the
    /// same fields.
    #[must_use]
    pub fn convert(frame: &DapMessage) -> TeslaPpMessage {
        match frame {
            DapMessage::Announce(a) => TeslaPpMessage::MacAnnounce {
                index: a.index,
                mac: a.mac,
            },
            DapMessage::Reveal(r) => TeslaPpMessage::Reveal {
                index: r.index,
                message: r.message.clone(),
                key: r.key,
            },
        }
    }
}

impl FrameVerifier for TeslaPpShard {
    fn on_frame(
        &mut self,
        frame: &DapMessage,
        at: SimTime,
        _rng: &mut SimRng,
        metrics: &mut Metrics,
        live: &LiveCounters,
    ) {
        let message = Self::convert(frame);
        if matches!(message, TeslaPpMessage::Reveal { .. }) {
            metrics.incr("net.reveal.total");
        }
        match self.receiver.on_message(&message, at) {
            TeslaPpOutcome::AnnouncementStored { .. } => metrics.incr("net.announce.stored"),
            TeslaPpOutcome::AnnouncementUnsafe { .. } => metrics.incr("net.announce.unsafe"),
            TeslaPpOutcome::Authenticated { .. } => {
                metrics.incr("net.reveal.auth");
                live.count_authenticated();
            }
            TeslaPpOutcome::KeyRejected { .. } => metrics.incr("net.reveal.weak_rejected"),
            TeslaPpOutcome::NoMatchingAnnouncement { .. } => {
                metrics.incr("net.reveal.no_match");
            }
        }
    }
}

/// One frame as it crosses the reader → shard boundary.
struct IngressFrame {
    bytes: Vec<u8>,
    at: SimTime,
}

/// The ingest side of a pool: cheap to clone, safe to hand to a socket
/// reader thread while the owner keeps the [`ReceiverPool`] for
/// shutdown.
#[derive(Clone)]
pub struct PoolHandle {
    queues: Arc<Vec<IngressQueue<IngressFrame>>>,
    overflow: OverflowPolicy,
    live: Arc<LiveCounters>,
}

impl PoolHandle {
    /// Which shard frames for interval `index` land on.
    #[must_use]
    pub fn shard_of(&self, index: u64) -> usize {
        (splitmix64(index) % self.queues.len() as u64) as usize
    }

    /// Routes one received datagram to its shard, stamped `at`.
    /// Returns `false` when the shard queue shed it (`DropCount` and
    /// full, or the pool is shutting down).
    pub fn ingest(&self, bytes: &[u8], at: SimTime) -> bool {
        // Unroutable garbage still goes to a worker (deterministically,
        // by length) so its decode failure is counted like any other.
        let index = codec::peek_index(bytes).unwrap_or(bytes.len() as u64);
        let queue = &self.queues[self.shard_of(index)];
        let frame = IngressFrame {
            bytes: bytes.to_vec(),
            at,
        };
        let outcome = match self.overflow {
            OverflowPolicy::DropCount => queue.try_push(frame),
            OverflowPolicy::Block => queue.push_blocking(frame),
        };
        if outcome.is_err() {
            self.live.dropped.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        self.live.frames.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// The live counters (frames / authenticated / dropped).
    #[must_use]
    pub fn live(&self) -> &LiveCounters {
        &self.live
    }
}

/// `N` verifier threads behind bounded ingress queues.
pub struct ReceiverPool {
    handle: PoolHandle,
    workers: Vec<JoinHandle<Metrics>>,
}

impl ReceiverPool {
    /// Spawns the worker threads. `make(shard)` builds each shard's
    /// verifier; per-shard RNGs are forked deterministically from
    /// `seed` in shard order, so a run's sampling decisions depend only
    /// on each shard's frame sequence — not on thread scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn spawn<V, F>(config: PoolConfig, seed: u64, mut make: F) -> Self
    where
        V: FrameVerifier + 'static,
        F: FnMut(usize) -> V,
    {
        assert!(config.shards >= 1, "need at least one shard");
        let queues: Arc<Vec<IngressQueue<IngressFrame>>> = Arc::new(
            (0..config.shards)
                .map(|_| IngressQueue::new(config.queue_depth))
                .collect(),
        );
        let live = Arc::new(LiveCounters::default());
        let mut parent = SimRng::new(seed);
        let workers = (0..config.shards)
            .map(|shard| {
                let queues = Arc::clone(&queues);
                let live = Arc::clone(&live);
                let mut rng = parent.fork(shard as u64);
                let mut verifier = make(shard);
                std::thread::Builder::new()
                    .name(format!("dap-net-shard-{shard}"))
                    .spawn(move || {
                        let mut metrics = Metrics::new();
                        while let Some(frame) = queues[shard].pop() {
                            metrics.incr("net.ingress.frames");
                            metrics.add("net.ingress.bytes", frame.bytes.len() as u64);
                            // One assembler per datagram: frames may be
                            // packed back to back inside one datagram,
                            // but never split across two — so leftover
                            // bytes are damage, not a continuation, and
                            // must not poison the next datagram.
                            let mut assembler = FrameAssembler::new();
                            assembler.push(&frame.bytes);
                            while let Some(decoded) = assembler.next_frame() {
                                verifier.on_frame(
                                    &decoded,
                                    frame.at,
                                    &mut rng,
                                    &mut metrics,
                                    &live,
                                );
                            }
                            let junk = assembler.skipped_bytes() + assembler.pending_bytes() as u64;
                            if junk > 0 {
                                metrics.incr("net.decode.errors");
                                metrics.add("net.decode.resync_bytes", junk);
                            }
                        }
                        metrics
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            handle: PoolHandle {
                queues,
                overflow: config.overflow,
                live,
            },
            workers,
        }
    }

    /// A cloneable ingest handle.
    #[must_use]
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Closes every shard queue, joins the workers and returns their
    /// merged counters (summation over shards — order-independent), with
    /// `net.ingress.dropped` folded in from the live counter.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn shutdown(self) -> Metrics {
        for queue in self.handle.queues.iter() {
            queue.close();
        }
        let mut merged = Metrics::new();
        for worker in self.workers {
            let shard_metrics = worker.join().expect("shard worker panicked");
            merged.merge(&shard_metrics);
        }
        let dropped = self.handle.live.dropped();
        if dropped > 0 {
            merged.add("net.ingress.dropped", dropped);
        }
        merged
    }
}

/// SplitMix64's finalizer — mixes consecutive interval indices across
/// shards while staying a pure function of the index.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::{DapParams, DapSender};
    use dap_simnet::SimDuration;

    fn params(m: usize) -> DapParams {
        DapParams::new(SimDuration(100), 1, 0, m)
    }

    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn frames_route_by_interval_and_authenticate() {
        let mut sender = DapSender::new(b"pool", 64, params(4));
        let bootstrap = sender.bootstrap();
        let pool = ReceiverPool::spawn(
            PoolConfig {
                shards: 4,
                queue_depth: 64,
                overflow: OverflowPolicy::Block,
            },
            7,
            |shard| DapShard::new(bootstrap, &[shard as u8]),
        );
        let handle = pool.handle();
        for i in 1..=20u64 {
            let ann =
                codec::encode(&DapMessage::Announce(sender.announce(i, b"r").unwrap())).unwrap();
            assert!(handle.ingest(&ann, during(i)));
            let rev = codec::encode(&DapMessage::Reveal(sender.reveal(i).unwrap())).unwrap();
            assert!(handle.ingest(&rev, during(i + 1)));
        }
        let metrics = pool.shutdown();
        assert_eq!(metrics.get("net.reveal.auth"), 20);
        assert_eq!(metrics.get("net.reveal.total"), 20);
        assert_eq!(metrics.get("net.ingress.frames"), 40);
        assert_eq!(metrics.get("net.decode.errors"), 0);
        assert_eq!(metrics.get("net.ingress.dropped"), 0);
    }

    #[test]
    fn announce_and_reveal_share_a_shard() {
        let sender = DapSender::new(b"pool", 8, params(2));
        let pool = ReceiverPool::spawn(PoolConfig::default(), 1, |_| {
            DapShard::new(sender.bootstrap(), b"n")
        });
        let handle = pool.handle();
        let first: Vec<usize> = (0..1000u64).map(|i| handle.shard_of(i)).collect();
        let second: Vec<usize> = (0..1000u64).map(|i| handle.shard_of(i)).collect();
        assert_eq!(first, second, "routing must be a pure function");
        assert!(first.iter().all(|s| *s < 4));
        // The mix actually spreads intervals around.
        let hits: std::collections::BTreeSet<usize> =
            (0..64u64).map(|i| handle.shard_of(i)).collect();
        assert!(hits.len() > 1);
        let _ = pool.shutdown();
    }

    #[test]
    fn garbage_counts_as_decode_errors() {
        let sender = DapSender::new(b"pool", 8, params(2));
        let pool = ReceiverPool::spawn(PoolConfig::default(), 1, |_| {
            DapShard::new(sender.bootstrap(), b"n")
        });
        let handle = pool.handle();
        assert!(handle.ingest(&[0xff, 0xfe, 0xfd], SimTime(10)));
        let metrics = pool.shutdown();
        assert_eq!(metrics.get("net.ingress.frames"), 1);
        assert_eq!(metrics.get("net.decode.errors"), 1);
        assert_eq!(metrics.get("net.decode.resync_bytes"), 3);
    }

    #[test]
    fn drop_count_policy_sheds_when_full() {
        // One shard, depth 1, and the worker can't start drain faster
        // than we push 200 frames — some must shed, all must be counted.
        let sender = DapSender::new(b"pool", 8, params(2));
        let pool = ReceiverPool::spawn(
            PoolConfig {
                shards: 1,
                queue_depth: 1,
                overflow: OverflowPolicy::DropCount,
            },
            1,
            |_| DapShard::new(sender.bootstrap(), b"n"),
        );
        let handle = pool.handle();
        let frame = codec::encode(&DapMessage::Announce(dap_core::Announce {
            index: 1,
            mac: dap_crypto::Mac80::from_slice(&[1; 10]).unwrap(),
        }))
        .unwrap();
        let mut accepted = 0u64;
        for _ in 0..200 {
            if handle.ingest(&frame, SimTime(10)) {
                accepted += 1;
            }
        }
        let dropped = handle.live().dropped();
        let metrics = pool.shutdown();
        assert_eq!(accepted + dropped, 200);
        assert_eq!(metrics.get("net.ingress.frames"), accepted);
        assert_eq!(metrics.get("net.ingress.dropped"), dropped);
    }

    #[test]
    fn teslapp_shard_authenticates_converted_frames() {
        use dap_tesla::teslapp::TeslaPpSender;
        use dap_tesla::TeslaParams;

        let tesla_params = TeslaParams::new(SimDuration(100), 1, 0);
        let mut sender = TeslaPpSender::new(b"tpp", 32, tesla_params);
        let pool = ReceiverPool::spawn(
            PoolConfig {
                shards: 2,
                queue_depth: 16,
                overflow: OverflowPolicy::Block,
            },
            3,
            |_| TeslaPpShard::new(sender.bootstrap(), b"n"),
        );
        let handle = pool.handle();
        for i in 1..=5u64 {
            let TeslaPpMessage::MacAnnounce { index, mac } = sender.announce(i, b"m").unwrap()
            else {
                unreachable!()
            };
            let ann =
                codec::encode(&DapMessage::Announce(dap_core::Announce { index, mac })).unwrap();
            handle.ingest(&ann, during(i));
            let TeslaPpMessage::Reveal {
                index,
                message,
                key,
            } = sender.reveal(i).unwrap()
            else {
                unreachable!()
            };
            let rev = codec::encode(&DapMessage::Reveal(dap_core::Reveal {
                index,
                message,
                key,
            }))
            .unwrap();
            handle.ingest(&rev, during(i + 1));
        }
        let metrics = pool.shutdown();
        assert_eq!(metrics.get("net.reveal.auth"), 5);
        assert_eq!(metrics.get("net.announce.stored"), 5);
    }
}
