//! The sharded receiver pool.
//!
//! One socket reader fans frames out to `N` worker threads. Routing is
//! by *interval index* — a splitmix-mixed hash of the index field read
//! straight off the frame header ([`dap_core::codec::peek_index`], no
//! crypto on the reader thread) — so an interval's announces and its
//! reveal always land on the same shard, and each shard can own its
//! reservoir pools outright: the paper's per-interval `m/k` sampling
//! semantics survive sharding untouched, because all copies of interval
//! `i` compete inside exactly one shard.
//!
//! Each shard drains a bounded [`IngressQueue`]. The overflow policy is
//! explicit ([`OverflowPolicy`]): `DropCount` never blocks the socket
//! reader — a full shard sheds the frame and the drop is counted under
//! `net.ingress.dropped` (shedding *pre*-reservoir keeps the surviving
//! offer stream a uniform subsample, so `m/k` still holds over what got
//! through) — while `Block` applies backpressure, which is what the
//! deterministic loopback runs use (a drop decided by scheduler timing
//! would break bit-reproducibility).
//!
//! # Observability
//!
//! Every worker owns a [`Registry`] (counters + latency histograms +
//! queue gauges) and a [`TraceEmitter`] whose source id is its shard
//! index, so the collected records totally order per source even though
//! threads interleave freely. [`PoolObs`] selects the posture: wall
//! time + live publishing on the wire, frozen [`TimeSource`] + bounded
//! ring traces in the deterministic loopback runs (where every
//! stopwatch reads 0 and two same-seed runs render byte-identical
//! snapshots). [`ReceiverPool::shutdown_with_report`] returns the whole
//! picture; the legacy [`ReceiverPool::shutdown`] still returns plain
//! counters.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dap_core::codec::FrameAssembler;
use dap_core::{
    codec, AnnounceOutcome, DapBootstrap, DapMessage, DapReceiver, PostureDirective, Reveal,
    RevealOutcome, RevealPrecompute, SenderId,
};
use dap_obs::{
    span_id, Histogram, RingSink, SpanStage, SpanTimer, TimeSource, TraceEmitter, TraceEvent,
    TraceRecord,
};
use dap_simnet::{keys, Metrics, Registry, SimRng, SimTime};
use dap_tesla::tesla::Bootstrap as TeslaBootstrap;
use dap_tesla::teslapp::{TeslaPpMessage, TeslaPpOutcome, TeslaPpPrecompute, TeslaPpReceiver};

use crate::queue::{IngressQueue, Pop, PushError};
use crate::session::{PriorityClass, SessionEviction};
use crate::telemetry::SharedRegistry;

/// What a full shard queue does to the next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Shed the frame and count it (`net.ingress.dropped`); the socket
    /// reader never blocks. The wire posture.
    DropCount,
    /// Backpressure the producer until the shard catches up. The
    /// deterministic-loopback posture.
    Block,
}

/// What header field the reader hashes to pick a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Hash the interval index — the single-sender posture: an
    /// interval's announces and its reveal share a shard.
    #[default]
    ByInterval,
    /// Hash the [`SenderId`] wire tag — the fleet posture: *all* of a
    /// sender's frames share a shard, so its whole session (anchor,
    /// skew, reservoirs) is shard-owned and lock-free. Untagged frames
    /// route as [`SenderId::UNTAGGED`].
    BySender,
}

/// Pool shape.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (= shards).
    pub shards: usize,
    /// Frames each shard's ingress queue holds before overflowing.
    pub queue_depth: usize,
    /// What happens on overflow.
    pub overflow: OverflowPolicy,
    /// What the reader hashes to route a frame.
    pub route: RoutePolicy,
    /// Per-shard, per-window verify budget for the priority drain.
    /// `usize::MAX` (the default) disables windowing entirely: frames
    /// verify the moment they are popped, exactly the pre-priority
    /// behavior. A finite budget makes each worker buffer frames until
    /// the driver's next [`PoolHandle::tick`], then verify the window in
    /// priority order and shed the excess (counted under `net.shed.*`,
    /// traced as [`TraceEvent::ShedDecision`]).
    pub drain_budget: usize,
    /// Operator pin set, used by the *reader* to attribute ingress drops
    /// per priority class (pinned vs. unpinned claimed sender). The
    /// verifier-side drain classification is the verifier's own
    /// ([`FrameVerifier::classify`]).
    pub pins: Arc<BTreeSet<u64>>,
}

impl Default for PoolConfig {
    /// 4 shards × 1024-frame queues, shedding, routed by interval (the
    /// single-sender wire posture), unwindowed drain, no pins.
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 1024,
            overflow: OverflowPolicy::DropCount,
            route: RoutePolicy::ByInterval,
            drain_budget: usize::MAX,
            pins: Arc::new(BTreeSet::new()),
        }
    }
}

/// Observability posture for a pool run.
#[derive(Debug, Clone)]
pub struct PoolObs {
    /// Where stopwatches read from: [`TimeSource::wall`] on the wire,
    /// [`TimeSource::frozen`] in deterministic runs (durations collapse
    /// to 0 but histogram *counts* still fingerprint the run).
    pub time: TimeSource,
    /// Per-source trace ring capacity; 0 disables tracing entirely.
    pub trace_depth: usize,
    /// Live registry the shards clone their state into (the telemetry
    /// endpoint scrapes this). Slot `i` belongs to shard `i`.
    pub publish: Option<Arc<SharedRegistry>>,
    /// Publish cadence in datagrams (0 publishes only at shutdown).
    pub publish_every: u64,
    /// Flight-recorder sampling: every `span_every`-th verified
    /// datagram per shard gets stage-scoped timing — a
    /// [`TraceEvent::FrameSpan`] per decoded frame plus `net.stage.*`
    /// histogram samples. 0 disables the recorder entirely (the
    /// pipeline stays byte-identical to a pre-recorder run); 1 records
    /// every datagram. The sampling decision is a pure function of the
    /// shard's datagram ordinal, so two same-seed runs sample the same
    /// frames.
    pub span_every: u64,
}

impl Default for PoolObs {
    /// Wall clocks, no tracing, no live publishing, no flight recorder
    /// — the posture the legacy [`ReceiverPool::spawn`] runs under.
    fn default() -> Self {
        Self {
            time: TimeSource::wall(),
            trace_depth: 0,
            publish: None,
            publish_every: 1024,
            span_every: 0,
        }
    }
}

/// How an announce fared against its interval's reservoir — the data a
/// [`TraceEvent::BufferDecision`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferNote {
    /// Whether the μMAC survived sampling (stored or replaced an entry).
    pub kept: bool,
    /// Offers the interval's pool has seen so far (the paper's `k`).
    pub offered: u64,
    /// Pool capacity (the paper's `m`).
    pub capacity: u64,
}

/// What a verifier concluded about one frame — the pool turns this into
/// trace events without knowing protocol internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameVerdict {
    /// Outcome label (`"stored"`, `"auth"`, `"unsafe"`, …) for the
    /// [`TraceEvent::VerifyEnd`] record.
    pub outcome: &'static str,
    /// The interval index the frame claimed.
    pub interval: u64,
    /// Present when the frame went through reservoir sampling.
    pub buffer: Option<BufferNote>,
    /// Whether the frame disclosed a chain key (reveals do).
    pub key_reveal: bool,
    /// Present when admitting the frame's sender evicted another
    /// session (fleet verifiers; traced as
    /// [`TraceEvent::SessionEvicted`]).
    pub evicted: Option<SessionEviction>,
}

/// Per-shard protocol state: turns decoded frames into outcomes and
/// counters. One verifier instance lives on each worker thread.
pub trait FrameVerifier: Send {
    /// Processes one decoded frame stamped with its receive time and
    /// wire-attributed sender ([`SenderId::UNTAGGED`] for legacy
    /// frames), returning the verdict the pool traces.
    fn on_frame(
        &mut self,
        sender: SenderId,
        frame: &DapMessage,
        at: SimTime,
        rng: &mut SimRng,
        registry: &mut Registry,
        live: &LiveCounters,
    ) -> FrameVerdict;

    /// Called once when the shard's queue closes, before the worker
    /// returns its registry — the hook fleet verifiers use to fold
    /// per-sender/session state into the merged report. Default: no-op.
    fn on_shutdown(&mut self, registry: &mut Registry) {
        let _ = registry;
    }

    /// The priority class of a *claimed* sender, consulted by the
    /// windowed drain to order verification and pick shed victims. The
    /// default ranks everyone [`PriorityClass::High`], so verifiers that
    /// never heard of priorities drain strictly by arrival order.
    fn classify(&self, sender: SenderId) -> PriorityClass {
        let _ = sender;
        PriorityClass::High
    }

    /// Batch hook the windowed drain calls once per flush, before any
    /// [`FrameVerifier::on_frame`]: `batch` holds every in-budget frame
    /// of the window, decoded, in exactly the order `on_frame` is about
    /// to see them. Implementations may front-load *pure* crypto here —
    /// lane-parallel SHA-256 over all the window's reveals — and hand
    /// the results back to themselves through internal state. The hook
    /// must not touch counters, traces, RNGs or protocol state: a run
    /// with an inert `prefetch` must be byte-identical to a run that
    /// uses it. Default: no-op.
    fn prefetch(&mut self, batch: &[(SenderId, DapMessage)]) {
        let _ = batch;
    }

    /// Applies a control-plane posture directive — re-size reservoir
    /// buffers, flip the §V give-up switch — and reports the buffer
    /// transition, if any, so the pool can trace it. The directive
    /// arrives *between* windows (the worker flushes its buffered
    /// window first), so a re-size never splits a window's sampling.
    /// Default: ignore directives (verifiers without buffers).
    fn on_posture(&mut self, directive: &PostureDirective) -> Option<PostureUpdate> {
        let _ = directive;
        None
    }
}

/// A buffer re-size a verifier performed in response to a
/// [`PostureDirective`], reported back so the shard can narrate it as
/// [`TraceEvent::PostureChange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostureUpdate {
    /// Reservoir buffers per interval before the directive.
    pub from_m: u64,
    /// Reservoir buffers per interval after the directive.
    pub to_m: u64,
}

/// Counters the pool mirrors into atomics so callers can watch a live
/// run (e.g. the UDP integration test polling for progress) without
/// waiting for shutdown's metric merge.
#[derive(Debug, Default)]
pub struct LiveCounters {
    frames: AtomicU64,
    authenticated: AtomicU64,
    dropped_full: AtomicU64,
    dropped_closed: AtomicU64,
    dropped_full_pinned: AtomicU64,
    dropped_closed_pinned: AtomicU64,
    ticks: AtomicU64,
    processed: AtomicU64,
    shed_pinned: AtomicU64,
    shed_high: AtomicU64,
    shed_low: AtomicU64,
    postures: AtomicU64,
    posture_epoch: AtomicU64,
    live_buffers: AtomicU64,
    give_up: AtomicU64,
    buffered_decided: AtomicU64,
    buffered_forged: AtomicU64,
}

impl LiveCounters {
    /// Frames ingested so far (all shards).
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// Messages authenticated so far (all shards).
    #[must_use]
    pub fn authenticated(&self) -> u64 {
        self.authenticated.load(Ordering::SeqCst)
    }

    /// Window ticks accepted into shard queues so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Queue items (frames + ticks) the workers have fully handled.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::SeqCst)
    }

    /// Frames shed by the priority drain at window flushes (all
    /// classes).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_pinned() + self.shed_high() + self.shed_low()
    }

    /// Shed frames whose claimed sender classified `Pinned`.
    #[must_use]
    pub fn shed_pinned(&self) -> u64 {
        self.shed_pinned.load(Ordering::SeqCst)
    }

    /// Shed frames whose claimed sender classified `High`.
    #[must_use]
    pub fn shed_high(&self) -> u64 {
        self.shed_high.load(Ordering::SeqCst)
    }

    /// Shed frames whose claimed sender classified `Low`.
    #[must_use]
    pub fn shed_low(&self) -> u64 {
        self.shed_low.load(Ordering::SeqCst)
    }

    /// Queue-full drops whose claimed sender is operator-pinned.
    #[must_use]
    pub fn dropped_full_pinned(&self) -> u64 {
        self.dropped_full_pinned.load(Ordering::SeqCst)
    }

    /// Closed-pool drops whose claimed sender is operator-pinned.
    #[must_use]
    pub fn dropped_closed_pinned(&self) -> u64 {
        self.dropped_closed_pinned.load(Ordering::SeqCst)
    }

    /// Frames shed by full shard queues (all drop reasons).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_full() + self.dropped_closed()
    }

    /// Frames shed because a shard queue was at capacity.
    #[must_use]
    pub fn dropped_full(&self) -> u64 {
        self.dropped_full.load(Ordering::SeqCst)
    }

    /// Frames rejected because the pool was shutting down.
    #[must_use]
    pub fn dropped_closed(&self) -> u64 {
        self.dropped_closed.load(Ordering::SeqCst)
    }

    /// Records an authentication (verifier-side).
    pub fn count_authenticated(&self) {
        self.authenticated.fetch_add(1, Ordering::SeqCst);
    }

    /// Posture directives accepted into shard queues so far.
    #[must_use]
    pub fn postures(&self) -> u64 {
        self.postures.load(Ordering::SeqCst)
    }

    /// Epoch of the newest posture directive posted to the pool
    /// (0 before any directive).
    #[must_use]
    pub fn posture_epoch(&self) -> u64 {
        self.posture_epoch.load(Ordering::SeqCst)
    }

    /// Reservoir buffers `m` the newest directive commanded (0 while
    /// the pool still runs its static bootstrap posture).
    #[must_use]
    pub fn live_buffers(&self) -> u64 {
        self.live_buffers.load(Ordering::SeqCst)
    }

    /// Whether the newest directive commanded the §V give-up posture.
    #[must_use]
    pub fn give_up(&self) -> bool {
        self.give_up.load(Ordering::SeqCst) != 0
    }

    /// Reservoir-buffered reveals decided so far — the estimator's
    /// sample denominator (verifier-side).
    #[must_use]
    pub fn buffered_decided(&self) -> u64 {
        self.buffered_decided.load(Ordering::SeqCst)
    }

    /// Buffered reveals that turned out forged — the estimator's sample
    /// numerator (verifier-side).
    #[must_use]
    pub fn buffered_forged(&self) -> u64 {
        self.buffered_forged.load(Ordering::SeqCst)
    }

    /// Records reveal-time buffer evidence (verifier-side): `decided`
    /// buffered entries classified this reveal, `forged` of them
    /// spurious. Reservoir sampling is uniform over a burst, so the
    /// forged share among buffered entries is an unbiased estimate of
    /// the wire's forged fraction `p` — this is the measured signal the
    /// control plane feeds to the game solver.
    pub fn count_reveal_evidence(&self, decided: u64, forged: u64) {
        self.buffered_decided.fetch_add(decided, Ordering::SeqCst);
        self.buffered_forged.fetch_add(forged, Ordering::SeqCst);
    }
}

/// A DAP receiver as a shard verifier (Algorithm 2 behind the fabric).
#[derive(Debug)]
pub struct DapShard {
    receiver: DapReceiver,
    /// Precomputes for the current drain window's reveals, in window
    /// order; `on_frame` pops one per reveal. Pure crypto only — a
    /// popped entry that doesn't match its reveal (never, in practice:
    /// both sides parse the same bytes) is discarded by the receiver's
    /// own `(index, key)` filter and the scalar path runs instead.
    pre: VecDeque<RevealPrecompute>,
}

impl DapShard {
    /// Bootstraps one shard's receiver; `local_seed` must differ per
    /// node but *may* be shared across a node's shards (μMACs never
    /// cross shards either way).
    #[must_use]
    pub fn new(bootstrap: DapBootstrap, local_seed: &[u8]) -> Self {
        Self {
            receiver: DapReceiver::new(bootstrap, local_seed),
            pre: VecDeque::new(),
        }
    }

    /// The wrapped receiver (for post-run inspection).
    #[must_use]
    pub fn receiver(&self) -> &DapReceiver {
        &self.receiver
    }
}

impl FrameVerifier for DapShard {
    fn on_frame(
        &mut self,
        _sender: SenderId,
        frame: &DapMessage,
        at: SimTime,
        rng: &mut SimRng,
        registry: &mut Registry,
        live: &LiveCounters,
    ) -> FrameVerdict {
        match frame {
            DapMessage::Announce(a) => {
                let announce = self.receiver.on_announce(a, at, rng);
                let (key, outcome, kept) = match announce {
                    AnnounceOutcome::Stored => (keys::NET_ANNOUNCE_STORED, "stored", true),
                    AnnounceOutcome::Dropped => {
                        (keys::NET_ANNOUNCE_SAMPLED_OUT, "sampled_out", false)
                    }
                    AnnounceOutcome::Unsafe => (keys::NET_ANNOUNCE_UNSAFE, "unsafe", false),
                };
                registry.incr(key);
                // An unsafe announce never reached the reservoir.
                let buffer = (announce != AnnounceOutcome::Unsafe).then(|| BufferNote {
                    kept,
                    offered: self.receiver.offered(a.index),
                    capacity: self.receiver.buffer_capacity() as u64,
                });
                FrameVerdict {
                    outcome,
                    interval: a.index,
                    buffer,
                    key_reveal: false,
                    evicted: None,
                }
            }
            DapMessage::Reveal(r) => {
                registry.incr(keys::NET_REVEAL_TOTAL);
                let before = *self.receiver.stats();
                let outcome = match self.pre.pop_front() {
                    Some(pre) => self.receiver.on_reveal_precomputed(r, at, &pre),
                    None => self.receiver.on_reveal(r, at),
                };
                let after = self.receiver.stats();
                live.count_reveal_evidence(
                    after.buffered_decided - before.buffered_decided,
                    after.buffered_forged - before.buffered_forged,
                );
                let (key, outcome) = match outcome {
                    RevealOutcome::Authenticated { .. } => {
                        live.count_authenticated();
                        (keys::NET_REVEAL_AUTH, "auth")
                    }
                    RevealOutcome::WeakRejected { .. } => {
                        (keys::NET_REVEAL_WEAK_REJECTED, "weak_rejected")
                    }
                    RevealOutcome::StrongRejected { .. } => {
                        (keys::NET_REVEAL_STRONG_REJECTED, "strong_rejected")
                    }
                    RevealOutcome::NoCandidate { .. } => {
                        (keys::NET_REVEAL_NO_CANDIDATE, "no_candidate")
                    }
                };
                registry.incr(key);
                FrameVerdict {
                    outcome,
                    interval: r.index,
                    buffer: None,
                    key_reveal: true,
                    evicted: None,
                }
            }
        }
    }

    fn prefetch(&mut self, batch: &[(SenderId, DapMessage)]) {
        let items: Vec<(&DapReceiver, &Reveal)> = batch
            .iter()
            .filter_map(|(_, frame)| match frame {
                DapMessage::Reveal(r) => Some((&self.receiver, r)),
                DapMessage::Announce(_) => None,
            })
            .collect();
        self.pre = DapReceiver::precompute_reveals(&items).into();
    }

    fn on_posture(&mut self, directive: &PostureDirective) -> Option<PostureUpdate> {
        let from = self.receiver.buffer_capacity();
        let to = directive.effective_buffers();
        if from == to {
            return None;
        }
        self.receiver.set_buffers(to);
        Some(PostureUpdate {
            from_m: from as u64,
            to_m: to as u64,
        })
    }
}

/// A TESLA++ receiver behind the same fabric and codec — DAP and
/// TESLA++ share the announce/reveal wire shape, so the comparison
/// baseline rides the identical byte stream (`netbench`'s verify lanes
/// use this).
#[derive(Debug)]
pub struct TeslaPpShard {
    receiver: TeslaPpReceiver,
    /// One entry per frame of the current drain window (`None` for
    /// announces), in window order; `on_frame` pops one per frame.
    pre: VecDeque<Option<TeslaPpPrecompute>>,
}

impl TeslaPpShard {
    /// Bootstraps one shard's TESLA++ receiver.
    #[must_use]
    pub fn new(bootstrap: TeslaBootstrap, local_seed: &[u8]) -> Self {
        Self {
            receiver: TeslaPpReceiver::new(bootstrap, local_seed),
            pre: VecDeque::new(),
        }
    }

    /// Converts a decoded DAP frame into the TESLA++ message with the
    /// same fields.
    #[must_use]
    pub fn convert(frame: &DapMessage) -> TeslaPpMessage {
        match frame {
            DapMessage::Announce(a) => TeslaPpMessage::MacAnnounce {
                index: a.index,
                mac: a.mac,
            },
            DapMessage::Reveal(r) => TeslaPpMessage::Reveal {
                index: r.index,
                message: r.message.clone(),
                key: r.key,
            },
        }
    }
}

impl FrameVerifier for TeslaPpShard {
    fn on_frame(
        &mut self,
        _sender: SenderId,
        frame: &DapMessage,
        at: SimTime,
        _rng: &mut SimRng,
        registry: &mut Registry,
        live: &LiveCounters,
    ) -> FrameVerdict {
        let message = Self::convert(frame);
        let key_reveal = matches!(message, TeslaPpMessage::Reveal { .. });
        let interval = match frame {
            DapMessage::Announce(a) => a.index,
            DapMessage::Reveal(r) => r.index,
        };
        if key_reveal {
            registry.incr(keys::NET_REVEAL_TOTAL);
        }
        let outcome = match self.pre.pop_front().flatten() {
            Some(pre) => self.receiver.on_message_precomputed(&message, at, &pre),
            None => self.receiver.on_message(&message, at),
        };
        let (key, outcome) = match outcome {
            TeslaPpOutcome::AnnouncementStored { .. } => (keys::NET_ANNOUNCE_STORED, "stored"),
            TeslaPpOutcome::AnnouncementUnsafe { .. } => (keys::NET_ANNOUNCE_UNSAFE, "unsafe"),
            TeslaPpOutcome::Authenticated { .. } => {
                live.count_authenticated();
                (keys::NET_REVEAL_AUTH, "auth")
            }
            TeslaPpOutcome::KeyRejected { .. } => (keys::NET_REVEAL_WEAK_REJECTED, "weak_rejected"),
            TeslaPpOutcome::NoMatchingAnnouncement { .. } => {
                (keys::NET_REVEAL_NO_MATCH, "no_match")
            }
        };
        registry.incr(key);
        FrameVerdict {
            outcome,
            interval,
            buffer: None,
            key_reveal,
            evicted: None,
        }
    }

    fn prefetch(&mut self, batch: &[(SenderId, DapMessage)]) {
        let messages: Vec<TeslaPpMessage> = batch
            .iter()
            .map(|(_, frame)| Self::convert(frame))
            .collect();
        let items: Vec<(&TeslaPpReceiver, &TeslaPpMessage)> =
            messages.iter().map(|m| (&self.receiver, m)).collect();
        self.pre = TeslaPpReceiver::precompute_reveals(&items).into();
    }
}

/// One frame as it crosses the reader → shard boundary. The `*_ns`
/// stamps exist only when the flight recorder is on
/// ([`PoolObs::span_every`] > 0); otherwise they stay 0 and cost one
/// branch on the reader.
struct IngressFrame {
    bytes: Vec<u8>,
    at: SimTime,
    /// Reader-side routing + copy cost (the span's ingress stage).
    ingress_ns: u64,
    /// Reader clock reading at enqueue; the worker subtracts it at pop
    /// to charge the queue-wait stage.
    enqueued_ns: u64,
    /// Enqueue → pop wait, stamped by the worker at pop.
    queue_ns: u64,
}

/// One shard-queue item: a datagram, or a window-boundary control tick.
/// Ticks are what make a finite [`PoolConfig::drain_budget`]
/// deterministic — the *driver* decides where windows end (at interval
/// boundaries), so flush contents are a pure function of the pushed
/// sequence, never of how fast a worker happened to drain.
enum Ingress {
    Frame(IngressFrame),
    Tick,
    /// A control-plane posture directive, stamped with the driver time
    /// it was issued so the resulting trace events order with traffic.
    Posture {
        directive: PostureDirective,
        at: SimTime,
    },
}

/// The ingest side of a pool: cheap to clone, safe to hand to a socket
/// reader thread while the owner keeps the [`ReceiverPool`] for
/// shutdown.
#[derive(Clone)]
pub struct PoolHandle {
    queues: Arc<Vec<IngressQueue<Ingress>>>,
    overflow: OverflowPolicy,
    route: RoutePolicy,
    live: Arc<LiveCounters>,
    pins: Arc<BTreeSet<u64>>,
    reader_trace: Option<Arc<Mutex<TraceEmitter<RingSink>>>>,
    /// The pool's clock, cloned from [`PoolObs::time`] so the reader
    /// side can stamp ingress/enqueue times for the flight recorder.
    time: TimeSource,
    /// Whether the flight recorder is on (`span_every > 0`).
    span: bool,
}

impl PoolHandle {
    /// Which shard the routing key `key` (interval index or sender id,
    /// per [`RoutePolicy`]) lands on.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        (splitmix64(key) % self.queues.len() as u64) as usize
    }

    /// Routes one received datagram to its shard, stamped `at`.
    /// Returns `false` when the shard queue shed it (`DropCount` and
    /// full, or the pool is shutting down).
    pub fn ingest(&self, bytes: &[u8], at: SimTime) -> bool {
        let ingress_watch = self.span.then(|| self.time.stopwatch());
        // Unroutable garbage still goes to a worker (deterministically,
        // by length) so its decode failure is counted like any other.
        let key = match self.route {
            RoutePolicy::ByInterval => codec::peek_index(bytes),
            RoutePolicy::BySender => codec::peek_sender(bytes).map(|s| s.0),
        }
        .unwrap_or(bytes.len() as u64);
        let shard = self.shard_of(key);
        let queue = &self.queues[shard];
        let copied = bytes.to_vec();
        let (ingress_ns, enqueued_ns) = match &ingress_watch {
            Some(watch) => (watch.elapsed_ns(&self.time), self.time.now_ns()),
            None => (0, 0),
        };
        let frame = Ingress::Frame(IngressFrame {
            bytes: copied,
            at,
            ingress_ns,
            enqueued_ns,
            queue_ns: 0,
        });
        let outcome = match self.overflow {
            OverflowPolicy::DropCount => queue.try_push(frame),
            OverflowPolicy::Block => queue.push_blocking(frame),
        };
        match outcome {
            Ok(()) => {
                self.live.frames.fetch_add(1, Ordering::SeqCst);
                true
            }
            Err(PushError::Full(_)) => {
                self.live.dropped_full.fetch_add(1, Ordering::SeqCst);
                if self.claims_pinned_sender(bytes) {
                    self.live.dropped_full_pinned.fetch_add(1, Ordering::SeqCst);
                }
                if let Some(trace) = &self.reader_trace {
                    trace.lock().expect("reader trace poisoned").emit(
                        at.ticks(),
                        TraceEvent::ShardStall {
                            shard: shard as u32,
                            depth: queue.len() as u64,
                        },
                    );
                }
                false
            }
            Err(PushError::Closed(_)) => {
                self.live.dropped_closed.fetch_add(1, Ordering::SeqCst);
                if self.claims_pinned_sender(bytes) {
                    self.live
                        .dropped_closed_pinned
                        .fetch_add(1, Ordering::SeqCst);
                }
                false
            }
        }
    }

    /// Whether the frame's claimed (unauthenticated) sender tag is in
    /// the operator pin set — the reader-side drop attribution. Garbage
    /// without a readable tag attributes unpinned.
    fn claims_pinned_sender(&self, bytes: &[u8]) -> bool {
        codec::peek_sender(bytes).is_some_and(|s| self.pins.contains(&s.0))
    }

    /// Pushes a window-boundary tick to every shard queue: each worker
    /// running a finite drain budget flushes its buffered window — in
    /// priority order, shedding past the budget — when it pops the tick.
    /// Under `Block` the push backpressures like any frame; under
    /// `DropCount` a full queue loses the tick (its windows simply merge).
    pub fn tick(&self) {
        for queue in self.queues.iter() {
            let outcome = match self.overflow {
                OverflowPolicy::DropCount => queue.try_push(Ingress::Tick),
                OverflowPolicy::Block => queue.push_blocking(Ingress::Tick),
            };
            if outcome.is_ok() {
                self.live.ticks.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Broadcasts a control-plane posture directive to every shard,
    /// stamped `at`. Each worker flushes its buffered window first,
    /// then re-sizes its reservoir buffers (and give-up switch) before
    /// touching any later frame — so a directive posted at an interval
    /// boundary takes effect atomically at that boundary, per shard.
    /// Under `Block` the push backpressures like any frame; under
    /// `DropCount` a full queue loses the directive for that shard (the
    /// next epoch's directive re-converges it).
    pub fn post_posture(&self, directive: PostureDirective, at: SimTime) {
        for queue in self.queues.iter() {
            let item = Ingress::Posture { directive, at };
            let outcome = match self.overflow {
                OverflowPolicy::DropCount => queue.try_push(item),
                OverflowPolicy::Block => queue.push_blocking(item),
            };
            if outcome.is_ok() {
                self.live.postures.fetch_add(1, Ordering::SeqCst);
            }
        }
        self.live
            .posture_epoch
            .store(directive.epoch, Ordering::SeqCst);
        self.live
            .live_buffers
            .store(directive.effective_buffers() as u64, Ordering::SeqCst);
        self.live
            .give_up
            .store(u64::from(directive.give_up), Ordering::SeqCst);
    }

    /// Spins until the workers have handled every item pushed so far
    /// (frames, ticks and posture directives). After this returns, shed
    /// and auth counters
    /// are a deterministic function of the pushed sequence — this is
    /// what lets an adaptive adversary (or a controller) *observe*
    /// defender posture between intervals without racing the workers.
    /// Single-driver campaigns only: with concurrent producers the
    /// target moves and the wait is unbounded.
    pub fn quiesce(&self) {
        loop {
            let target = self.live.frames() + self.live.ticks() + self.live.postures();
            if self.live.processed() >= target {
                break;
            }
            std::thread::yield_now();
        }
    }

    /// The live counters (frames / authenticated / dropped).
    #[must_use]
    pub fn live(&self) -> &LiveCounters {
        &self.live
    }
}

/// Everything a pool run observed: the merged registry (counters,
/// latency histograms, queue gauges) and the total-ordered trace.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Merged per-shard registries plus reader-side drop attribution.
    pub registry: Registry,
    /// All trace records, sorted by `(source, seq)`.
    pub trace: Vec<TraceRecord>,
}

/// `N` verifier threads behind bounded ingress queues.
pub struct ReceiverPool {
    handle: PoolHandle,
    workers: Vec<JoinHandle<(Registry, Vec<TraceRecord>)>>,
}

impl ReceiverPool {
    /// Spawns the worker threads under the default (wall-clock,
    /// untraced) observability posture; see
    /// [`ReceiverPool::spawn_with_obs`].
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn spawn<V, F>(config: PoolConfig, seed: u64, make: F) -> Self
    where
        V: FrameVerifier + 'static,
        F: FnMut(usize) -> V,
    {
        Self::spawn_with_obs(config, seed, make, PoolObs::default())
    }

    /// Spawns the worker threads. `make(shard)` builds each shard's
    /// verifier; per-shard RNGs are forked deterministically from
    /// `seed` in shard order, so a run's sampling decisions depend only
    /// on each shard's frame sequence — not on thread scheduling. `obs`
    /// picks the observability posture (time source, trace depth, live
    /// publishing).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn spawn_with_obs<V, F>(config: PoolConfig, seed: u64, mut make: F, obs: PoolObs) -> Self
    where
        V: FrameVerifier + 'static,
        F: FnMut(usize) -> V,
    {
        assert!(config.shards >= 1, "need at least one shard");
        let queues: Arc<Vec<IngressQueue<Ingress>>> = Arc::new(
            (0..config.shards)
                .map(|_| IngressQueue::new(config.queue_depth))
                .collect(),
        );
        let live = Arc::new(LiveCounters::default());
        // Reserved trace source id: the socket reader sits one past the
        // last shard.
        let reader_trace = (obs.trace_depth > 0).then(|| {
            Arc::new(Mutex::new(TraceEmitter::new(
                config.shards as u32,
                RingSink::new(obs.trace_depth),
            )))
        });
        let mut parent = SimRng::new(seed);
        let workers = (0..config.shards)
            .map(|shard| {
                let queues = Arc::clone(&queues);
                let live = Arc::clone(&live);
                let mut rng = parent.fork(shard as u64);
                let mut verifier = make(shard);
                let obs = obs.clone();
                let budget = config.drain_budget;
                std::thread::Builder::new()
                    .name(format!("dap-net-shard-{shard}"))
                    .spawn(move || {
                        run_shard(
                            shard,
                            &queues[shard],
                            budget,
                            &mut verifier,
                            &mut rng,
                            &live,
                            &obs,
                        )
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            handle: PoolHandle {
                queues,
                overflow: config.overflow,
                route: config.route,
                live,
                pins: config.pins,
                reader_trace,
                time: obs.time.clone(),
                span: obs.span_every > 0,
            },
            workers,
        }
    }

    /// A cloneable ingest handle.
    #[must_use]
    pub fn handle(&self) -> PoolHandle {
        self.handle.clone()
    }

    /// Closes every shard queue, joins the workers and returns their
    /// merged counters (summation over shards — order-independent), with
    /// `net.ingress.dropped` folded in from the live counter. Histograms
    /// and traces are discarded; use
    /// [`ReceiverPool::shutdown_with_report`] to keep them.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn shutdown(self) -> Metrics {
        self.shutdown_with_report().registry.into_counters()
    }

    /// Closes every shard queue, joins the workers and returns the full
    /// observability picture: merged registries (drop reasons folded in
    /// from the live counters) and the `(source, seq)`-sorted trace.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn shutdown_with_report(self) -> PoolReport {
        for queue in self.handle.queues.iter() {
            queue.close();
        }
        let mut registry = Registry::new();
        let mut shards = Vec::with_capacity(self.workers.len());
        for worker in self.workers {
            let (shard_registry, shard_trace) = worker.join().expect("shard worker panicked");
            registry.merge(&shard_registry);
            shards.push(shard_trace);
        }
        // One exact-size allocation for the combined trace: a forensic
        // capture concatenates six-figure per-shard rings, and growing
        // into that incrementally doubles the copy traffic.
        let reader_len = self.handle.reader_trace.as_ref().map_or(0, |r| {
            r.lock()
                .expect("reader trace poisoned")
                .sink()
                .records()
                .count()
        });
        let mut trace = Vec::with_capacity(shards.iter().map(Vec::len).sum::<usize>() + reader_len);
        for mut shard_trace in shards {
            trace.append(&mut shard_trace);
        }
        if let Some(reader) = &self.handle.reader_trace {
            let reader = reader.lock().expect("reader trace poisoned");
            trace.extend(reader.sink().records().cloned());
        }
        dap_obs::sort_records(&mut trace);
        let full = self.handle.live.dropped_full();
        let closed = self.handle.live.dropped_closed();
        if full > 0 {
            registry.add(keys::NET_DROP_QUEUE_FULL, full);
        }
        if closed > 0 {
            registry.add(keys::NET_DROP_CLOSED, closed);
        }
        if full + closed > 0 {
            registry.add(keys::NET_INGRESS_DROPPED, full + closed);
        }
        // Per-class attribution of the same drops (pinned + unpinned
        // always sums back to the per-reason totals above).
        let full_pinned = self.handle.live.dropped_full_pinned();
        let closed_pinned = self.handle.live.dropped_closed_pinned();
        if full_pinned > 0 {
            registry.add(keys::NET_DROP_QUEUE_FULL_PINNED, full_pinned);
        }
        if full - full_pinned > 0 {
            registry.add(keys::NET_DROP_QUEUE_FULL_UNPINNED, full - full_pinned);
        }
        if closed_pinned > 0 {
            registry.add(keys::NET_DROP_CLOSED_PINNED, closed_pinned);
        }
        if closed - closed_pinned > 0 {
            registry.add(keys::NET_DROP_CLOSED_UNPINNED, closed - closed_pinned);
        }
        PoolReport { registry, trace }
    }
}

/// One shard's drain loop: decode, verify, count, trace, publish. With
/// a finite `drain_budget` the worker buffers frames and flushes the
/// window — in priority order, shedding past the budget — at every
/// [`PoolHandle::tick`] (and once more when the queue closes).
fn run_shard<V: FrameVerifier>(
    shard: usize,
    queue: &IngressQueue<Ingress>,
    drain_budget: usize,
    verifier: &mut V,
    rng: &mut SimRng,
    live: &LiveCounters,
    obs: &PoolObs,
) -> (Registry, Vec<TraceRecord>) {
    let mut registry = Registry::new();
    let mut trace = TraceEmitter::new(shard as u32, RingSink::new(obs.trace_depth));
    let mut datagrams = 0u64;
    let mut published_at = 0u64;
    let windowed = drain_budget != usize::MAX;
    let mut window: Vec<IngressFrame> = Vec::new();
    let mut flight = FlightState::new(obs.span_every);
    loop {
        // With live publishing the pop carries a timeout so a quiet wire
        // still gets fresh scrapes; without it, block outright — no
        // spurious wakeups in the deterministic runs.
        let item = if obs.publish.is_some() {
            match queue.pop_timeout(std::time::Duration::from_millis(200)) {
                Pop::Item(item) => item,
                Pop::Idle => {
                    if let Some(shared) = &obs.publish {
                        if published_at != datagrams {
                            flight.fold_into(&mut registry);
                            shared.publish(shard, &registry);
                            published_at = datagrams;
                        }
                    }
                    continue;
                }
                Pop::Closed => break,
            }
        } else {
            match queue.pop() {
                Some(item) => item,
                None => break,
            }
        };
        match item {
            Ingress::Frame(mut frame) => {
                if flight.enabled() {
                    frame.queue_ns = obs.time.now_ns().saturating_sub(frame.enqueued_ns);
                }
                if windowed {
                    window.push(frame);
                } else {
                    process_datagram(
                        shard,
                        &frame,
                        queue,
                        verifier,
                        rng,
                        live,
                        obs,
                        &mut flight,
                        &mut registry,
                        &mut trace,
                    );
                    datagrams += 1;
                }
            }
            Ingress::Tick => {
                datagrams += flush_window(
                    shard,
                    &mut window,
                    drain_budget,
                    queue,
                    verifier,
                    rng,
                    live,
                    obs,
                    &mut flight,
                    &mut registry,
                    &mut trace,
                );
            }
            Ingress::Posture { directive, at } => {
                // A directive is a window boundary too: drain what the
                // old posture admitted before re-sizing anything.
                datagrams += flush_window(
                    shard,
                    &mut window,
                    drain_budget,
                    queue,
                    verifier,
                    rng,
                    live,
                    obs,
                    &mut flight,
                    &mut registry,
                    &mut trace,
                );
                if let Some(update) = verifier.on_posture(&directive) {
                    trace.emit(
                        at.ticks(),
                        TraceEvent::PostureChange {
                            epoch: directive.epoch,
                            from_m: update.from_m,
                            to_m: update.to_m,
                            p_permille: u64::from(directive.p_permille),
                            give_up: directive.give_up,
                        },
                    );
                }
            }
        }
        live.processed.fetch_add(1, Ordering::SeqCst);
        if let Some(shared) = &obs.publish {
            if obs.publish_every > 0
                && datagrams > published_at
                && datagrams.is_multiple_of(obs.publish_every)
            {
                flight.fold_into(&mut registry);
                shared.publish(shard, &registry);
                published_at = datagrams;
            }
        }
    }
    // Close is the final window boundary: whatever the driver pushed
    // after its last tick still drains under the same policy.
    flush_window(
        shard,
        &mut window,
        drain_budget,
        queue,
        verifier,
        rng,
        live,
        obs,
        &mut flight,
        &mut registry,
        &mut trace,
    );
    verifier.on_shutdown(&mut registry);
    flight.fold_into(&mut registry);
    if let Some(shared) = &obs.publish {
        shared.publish(shard, &registry);
    }
    (registry, trace.into_sink().into_records())
}

/// The `net.stage.*` registry keys in [`SpanStage::ALL`] order.
const STAGE_KEYS: [&str; SpanStage::COUNT] = [
    keys::NET_STAGE_INGRESS_NS,
    keys::NET_STAGE_QUEUE_WAIT_NS,
    keys::NET_STAGE_DECODE_NS,
    keys::NET_STAGE_PREFETCH_NS,
    keys::NET_STAGE_VERIFY_NS,
    keys::NET_STAGE_BUFFER_NS,
    keys::NET_STAGE_REVEAL_AUTH_NS,
];

/// Per-shard flight-recorder state: the deterministic sampling ordinal,
/// the current window's amortised prefetch share, and local stage
/// histograms. Lives on the worker's stack — recording never allocates,
/// and the locals keep the per-frame path off the registry's keyed map
/// (samples fold into the shared registry only at publish boundaries).
struct FlightState {
    every: u64,
    ordinal: u64,
    /// The last batch-prefetch's per-frame cost share, charged to every
    /// sampled frame of the window it prefetched (0 unwindowed).
    prefetch_share_ns: u64,
    /// Stage-latency samples, indexed by [`SpanStage`] discriminant.
    stages: [Histogram; SpanStage::COUNT],
}

impl FlightState {
    fn new(every: u64) -> Self {
        Self {
            every,
            ordinal: 0,
            prefetch_share_ns: 0,
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }

    fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Consumes one verified-datagram ordinal; returns it when this
    /// datagram is sampled. Pure function of the shard's datagram
    /// sequence, so same-seed runs sample identically.
    fn sampled(&mut self) -> Option<u64> {
        if self.every == 0 {
            return None;
        }
        let ordinal = self.ordinal;
        self.ordinal += 1;
        ordinal.is_multiple_of(self.every).then_some(ordinal)
    }

    /// Records one stage sample into the local (allocation-free) pool.
    fn record(&mut self, stage: SpanStage, v: u64) {
        self.stages[stage as usize].record(v);
    }

    /// Drains the local stage samples into the registry's `net.stage.*`
    /// histograms. Called at publish boundaries and shard shutdown, so
    /// the per-frame hot path never touches the registry's keyed map.
    fn fold_into(&mut self, registry: &mut Registry) {
        for (stage, key) in self.stages.iter_mut().zip(STAGE_KEYS) {
            if !stage.is_empty() {
                registry.histogram(key).merge(stage);
                *stage = Histogram::new();
            }
        }
    }
}

/// Flushes one buffered window: classifies every frame by its claimed
/// sender, verifies the first `drain_budget` in `(class, arrival)`
/// order, sheds the rest with per-class attribution. Stable order means
/// FIFO *within* a class — a late forger cannot displace an earlier
/// genuine frame of the same class, it can only fill the tail that gets
/// shed. Returns the number of datagrams verified.
#[allow(clippy::too_many_arguments)]
fn flush_window<V: FrameVerifier>(
    shard: usize,
    window: &mut Vec<IngressFrame>,
    drain_budget: usize,
    queue: &IngressQueue<Ingress>,
    verifier: &mut V,
    rng: &mut SimRng,
    live: &LiveCounters,
    obs: &PoolObs,
    flight: &mut FlightState,
    registry: &mut Registry,
    trace: &mut TraceEmitter<RingSink>,
) -> u64 {
    if window.is_empty() {
        return 0;
    }
    let mut order: Vec<(PriorityClass, usize)> = window
        .iter()
        .enumerate()
        .map(|(idx, frame)| {
            let sender = codec::peek_sender(&frame.bytes).unwrap_or(SenderId::UNTAGGED);
            (verifier.classify(sender), idx)
        })
        .collect();
    order.sort_unstable_by_key(|&(class, idx)| (class, idx));
    // Pre-decode the in-budget prefix and offer it to the verifier as
    // one batch, in drain order. This parse is a *shadow* of the one
    // `process_datagram` performs — it emits no counters, traces or
    // latency samples, so the observable pipeline below is untouched;
    // it exists only so the verifier can run lane-parallel crypto over
    // the whole window before the sequential decision loop starts.
    // Shed frames (past the budget) are never decoded at all.
    let mut batch: Vec<(SenderId, DapMessage)> = Vec::new();
    for &(_, idx) in order.iter().take(drain_budget) {
        let mut assembler = FrameAssembler::new();
        assembler.push(&window[idx].bytes);
        while let Some(tagged) = assembler.next_tagged_frame() {
            batch.push((tagged.sender, tagged.message));
        }
    }
    if !batch.is_empty() {
        // The batch prefetch is one lane-parallel pass over the whole
        // window, so the recorder charges each sampled frame its
        // amortised share rather than billing the first frame for all
        // of it.
        let prefetch_watch = flight.enabled().then(|| obs.time.stopwatch());
        verifier.prefetch(&batch);
        if let Some(watch) = prefetch_watch {
            flight.prefetch_share_ns = watch.elapsed_ns(&obs.time) / batch.len() as u64;
        }
    }
    let mut verified = 0u64;
    for (pos, &(class, idx)) in order.iter().enumerate() {
        let frame = &window[idx];
        if pos < drain_budget {
            process_datagram(
                shard, frame, queue, verifier, rng, live, obs, flight, registry, trace,
            );
            verified += 1;
            continue;
        }
        // Shed: the frame still counts as ingress (it crossed the
        // reader), but never reaches decode or the verifier.
        registry.incr(keys::NET_INGRESS_FRAMES);
        registry.add(keys::NET_INGRESS_BYTES, frame.bytes.len() as u64);
        registry.incr(keys::NET_SHED_TOTAL);
        let (class_key, live_counter) = match class {
            PriorityClass::Pinned => (keys::NET_SHED_PINNED, &live.shed_pinned),
            PriorityClass::High => (keys::NET_SHED_HIGH, &live.shed_high),
            PriorityClass::Low => (keys::NET_SHED_LOW, &live.shed_low),
        };
        registry.incr(class_key);
        live_counter.fetch_add(1, Ordering::SeqCst);
        let sender = codec::peek_sender(&frame.bytes).unwrap_or(SenderId::UNTAGGED);
        trace.emit(
            frame.at.ticks(),
            TraceEvent::ShedDecision {
                sender: sender.0,
                class: class.label(),
                interval: codec::peek_index(&frame.bytes).unwrap_or(0),
            },
        );
    }
    window.clear();
    flight.prefetch_share_ns = 0;
    verified
}

/// Decode-and-verify for one datagram (the PR 4/5 hot path: counters,
/// latency histograms, per-frame trace events), plus the flight
/// recorder: on sampled datagrams every decoded frame's stage timing is
/// folded into the `net.stage.*` histograms and emitted as a
/// [`TraceEvent::FrameSpan`] — after the frame's causal events, so a
/// span always closes its frame's record group.
#[allow(clippy::too_many_arguments)]
fn process_datagram<V: FrameVerifier>(
    shard: usize,
    frame: &IngressFrame,
    queue: &IngressQueue<Ingress>,
    verifier: &mut V,
    rng: &mut SimRng,
    live: &LiveCounters,
    obs: &PoolObs,
    flight: &mut FlightState,
    registry: &mut Registry,
    trace: &mut TraceEmitter<RingSink>,
) {
    let at = frame.at.ticks();
    registry.incr(keys::NET_INGRESS_FRAMES);
    registry.add(keys::NET_INGRESS_BYTES, frame.bytes.len() as u64);
    if obs.time.is_wall() {
        // Occupancy depends on scheduler timing, so it is recorded
        // only on the wire — a deterministic run must not let thread
        // interleavings into its fingerprint.
        let depth = queue.len() as u64;
        registry.record(keys::NET_QUEUE_OCCUPANCY, depth);
        registry.gauge(keys::NET_QUEUE_DEPTH).set(depth);
    }
    trace.emit(
        at,
        TraceEvent::FrameRx {
            bytes: frame.bytes.len() as u64,
        },
    );
    // One assembler per datagram: frames may be packed back to back
    // inside one datagram, but never split across two — so leftover
    // bytes are damage, not a continuation, and must not poison the
    // next datagram.
    let decode_watch = obs.time.stopwatch();
    let mut assembler = FrameAssembler::new();
    assembler.push(&frame.bytes);
    let mut decoded = Vec::new();
    while let Some(tagged) = assembler.next_tagged_frame() {
        decoded.push(tagged);
    }
    let decode_ns = decode_watch.elapsed_ns(&obs.time);
    registry.record(keys::NET_DECODE_LATENCY_NS, decode_ns);
    let span_ord = flight.sampled();
    if span_ord.is_some() {
        // The pre-verify stages are per-datagram: record them once
        // here; the per-frame stages land inside the loop below.
        flight.record(SpanStage::Ingress, frame.ingress_ns);
        flight.record(SpanStage::QueueWait, frame.queue_ns);
        flight.record(SpanStage::Decode, decode_ns);
        let prefetch_share_ns = flight.prefetch_share_ns;
        flight.record(SpanStage::Prefetch, prefetch_share_ns);
    }
    for (frame_idx, tagged) in decoded.iter().enumerate() {
        let verify_watch = obs.time.stopwatch();
        let verdict = verifier.on_frame(
            tagged.sender,
            &tagged.message,
            frame.at,
            rng,
            registry,
            live,
        );
        let elapsed_ns = verify_watch.elapsed_ns(&obs.time);
        registry.record(keys::NET_VERIFY_LATENCY_NS, elapsed_ns);
        let book_watch = span_ord.map(|_| obs.time.stopwatch());
        trace.emit(
            at,
            TraceEvent::VerifyStart {
                interval: verdict.interval,
            },
        );
        trace.emit(
            at,
            TraceEvent::VerifyEnd {
                interval: verdict.interval,
                outcome: verdict.outcome,
                elapsed_ns,
            },
        );
        if let Some(note) = verdict.buffer {
            trace.emit(
                at,
                TraceEvent::BufferDecision {
                    interval: verdict.interval,
                    kept: note.kept,
                    k: note.offered,
                    m: note.capacity,
                },
            );
        }
        if verdict.key_reveal {
            trace.emit(
                at,
                TraceEvent::KeyReveal {
                    interval: verdict.interval,
                },
            );
        }
        if let Some(eviction) = verdict.evicted {
            trace.emit(
                at,
                TraceEvent::SessionEvicted {
                    sender: eviction.sender,
                    shard: shard as u32,
                    occupancy: eviction.occupancy,
                },
            );
        }
        if let Some(ordinal) = span_ord {
            let mut timer = SpanTimer::start(&obs.time);
            timer.set(SpanStage::Ingress, frame.ingress_ns);
            timer.set(SpanStage::QueueWait, frame.queue_ns);
            timer.set(SpanStage::Decode, decode_ns);
            timer.set(SpanStage::Prefetch, flight.prefetch_share_ns);
            // One on_frame call serves both paths: announces spend it
            // verifying, reveals spend it authenticating.
            if verdict.key_reveal {
                timer.set(SpanStage::RevealAuth, elapsed_ns);
            } else {
                timer.set(SpanStage::Verify, elapsed_ns);
            }
            let buffer_ns = match (&verdict.buffer, &book_watch) {
                (Some(_), Some(watch)) => watch.elapsed_ns(&obs.time),
                _ => 0,
            };
            timer.set(SpanStage::Buffer, buffer_ns);
            flight.record(SpanStage::Verify, timer.get(SpanStage::Verify));
            flight.record(SpanStage::Buffer, buffer_ns);
            flight.record(SpanStage::RevealAuth, timer.get(SpanStage::RevealAuth));
            trace.emit(
                at,
                timer.event(
                    span_id(ordinal, frame_idx),
                    verdict.interval,
                    verdict.outcome,
                ),
            );
        }
    }
    let junk = assembler.skipped_bytes() + assembler.pending_bytes() as u64;
    if junk > 0 {
        registry.incr(keys::NET_DECODE_ERRORS);
        registry.add(keys::NET_DECODE_RESYNC_BYTES, junk);
    }
}

/// SplitMix64's finalizer — mixes consecutive interval indices across
/// shards while staying a pure function of the index.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::{DapParams, DapSender};
    use dap_simnet::SimDuration;

    fn params(m: usize) -> DapParams {
        DapParams::new(SimDuration(100), 1, 0, m)
    }

    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn frames_route_by_interval_and_authenticate() {
        let mut sender = DapSender::new(b"pool", 64, params(4));
        let bootstrap = sender.bootstrap();
        let pool = ReceiverPool::spawn(
            PoolConfig {
                shards: 4,
                queue_depth: 64,
                overflow: OverflowPolicy::Block,
                route: RoutePolicy::ByInterval,
                ..PoolConfig::default()
            },
            7,
            |shard| DapShard::new(bootstrap, &[shard as u8]),
        );
        let handle = pool.handle();
        for i in 1..=20u64 {
            let ann =
                codec::encode(&DapMessage::Announce(sender.announce(i, b"r").unwrap())).unwrap();
            assert!(handle.ingest(&ann, during(i)));
            let rev = codec::encode(&DapMessage::Reveal(sender.reveal(i).unwrap())).unwrap();
            assert!(handle.ingest(&rev, during(i + 1)));
        }
        let metrics = pool.shutdown();
        assert_eq!(metrics.get(keys::NET_REVEAL_AUTH), 20);
        assert_eq!(metrics.get(keys::NET_REVEAL_TOTAL), 20);
        assert_eq!(metrics.get(keys::NET_INGRESS_FRAMES), 40);
        assert_eq!(metrics.get(keys::NET_DECODE_ERRORS), 0);
        assert_eq!(metrics.get(keys::NET_INGRESS_DROPPED), 0);
    }

    #[test]
    fn announce_and_reveal_share_a_shard() {
        let sender = DapSender::new(b"pool", 8, params(2));
        let pool = ReceiverPool::spawn(PoolConfig::default(), 1, |_| {
            DapShard::new(sender.bootstrap(), b"n")
        });
        let handle = pool.handle();
        let first: Vec<usize> = (0..1000u64).map(|i| handle.shard_of(i)).collect();
        let second: Vec<usize> = (0..1000u64).map(|i| handle.shard_of(i)).collect();
        assert_eq!(first, second, "routing must be a pure function");
        assert!(first.iter().all(|s| *s < 4));
        // The mix actually spreads intervals around.
        let hits: std::collections::BTreeSet<usize> =
            (0..64u64).map(|i| handle.shard_of(i)).collect();
        assert!(hits.len() > 1);
        let _ = pool.shutdown();
    }

    #[test]
    fn garbage_counts_as_decode_errors() {
        let sender = DapSender::new(b"pool", 8, params(2));
        let pool = ReceiverPool::spawn(PoolConfig::default(), 1, |_| {
            DapShard::new(sender.bootstrap(), b"n")
        });
        let handle = pool.handle();
        assert!(handle.ingest(&[0xff, 0xfe, 0xfd], SimTime(10)));
        let metrics = pool.shutdown();
        assert_eq!(metrics.get(keys::NET_INGRESS_FRAMES), 1);
        assert_eq!(metrics.get(keys::NET_DECODE_ERRORS), 1);
        assert_eq!(metrics.get(keys::NET_DECODE_RESYNC_BYTES), 3);
    }

    #[test]
    fn drop_count_policy_sheds_when_full() {
        // One shard, depth 1, and the worker can't start drain faster
        // than we push 200 frames — some must shed, all must be counted
        // and attributed to the queue-full reason.
        let sender = DapSender::new(b"pool", 8, params(2));
        let pool = ReceiverPool::spawn(
            PoolConfig {
                shards: 1,
                queue_depth: 1,
                overflow: OverflowPolicy::DropCount,
                route: RoutePolicy::ByInterval,
                ..PoolConfig::default()
            },
            1,
            |_| DapShard::new(sender.bootstrap(), b"n"),
        );
        let handle = pool.handle();
        let frame = codec::encode(&DapMessage::Announce(dap_core::Announce {
            index: 1,
            mac: dap_crypto::Mac80::from_slice(&[1; 10]).unwrap(),
        }))
        .unwrap();
        let mut accepted = 0u64;
        for _ in 0..200 {
            if handle.ingest(&frame, SimTime(10)) {
                accepted += 1;
            }
        }
        let dropped = handle.live().dropped();
        let report = pool.shutdown_with_report();
        let counters = report.registry.counters();
        assert_eq!(accepted + dropped, 200);
        assert_eq!(counters.get(keys::NET_INGRESS_FRAMES), accepted);
        assert_eq!(counters.get(keys::NET_INGRESS_DROPPED), dropped);
        assert_eq!(counters.get(keys::NET_DROP_QUEUE_FULL), dropped);
        assert_eq!(counters.get(keys::NET_DROP_CLOSED), 0);
    }

    #[test]
    fn teslapp_shard_authenticates_converted_frames() {
        use dap_tesla::teslapp::TeslaPpSender;
        use dap_tesla::TeslaParams;

        let tesla_params = TeslaParams::new(SimDuration(100), 1, 0);
        let mut sender = TeslaPpSender::new(b"tpp", 32, tesla_params);
        let pool = ReceiverPool::spawn(
            PoolConfig {
                shards: 2,
                queue_depth: 16,
                overflow: OverflowPolicy::Block,
                route: RoutePolicy::ByInterval,
                ..PoolConfig::default()
            },
            3,
            |_| TeslaPpShard::new(sender.bootstrap(), b"n"),
        );
        let handle = pool.handle();
        for i in 1..=5u64 {
            let TeslaPpMessage::MacAnnounce { index, mac } = sender.announce(i, b"m").unwrap()
            else {
                unreachable!()
            };
            let ann =
                codec::encode(&DapMessage::Announce(dap_core::Announce { index, mac })).unwrap();
            handle.ingest(&ann, during(i));
            let TeslaPpMessage::Reveal {
                index,
                message,
                key,
            } = sender.reveal(i).unwrap()
            else {
                unreachable!()
            };
            let rev = codec::encode(&DapMessage::Reveal(dap_core::Reveal {
                index,
                message,
                key,
            }))
            .unwrap();
            handle.ingest(&rev, during(i + 1));
        }
        let metrics = pool.shutdown();
        assert_eq!(metrics.get(keys::NET_REVEAL_AUTH), 5);
        assert_eq!(metrics.get(keys::NET_ANNOUNCE_STORED), 5);
    }

    #[test]
    fn traced_pool_reports_latency_histograms_and_ordered_events() {
        use dap_obs::ManualTime;

        let mut sender = DapSender::new(b"traced", 64, params(4));
        let bootstrap = sender.bootstrap();
        let obs = PoolObs {
            time: TimeSource::manual(ManualTime::new()),
            trace_depth: 4096,
            publish: None,
            publish_every: 0,
            span_every: 0,
        };
        let pool = ReceiverPool::spawn_with_obs(
            PoolConfig {
                shards: 2,
                queue_depth: 64,
                overflow: OverflowPolicy::Block,
                route: RoutePolicy::ByInterval,
                ..PoolConfig::default()
            },
            11,
            |shard| DapShard::new(bootstrap, &[b't', shard as u8]),
            obs,
        );
        let handle = pool.handle();
        for i in 1..=10u64 {
            let ann =
                codec::encode(&DapMessage::Announce(sender.announce(i, b"r").unwrap())).unwrap();
            handle.ingest(&ann, during(i));
            let rev = codec::encode(&DapMessage::Reveal(sender.reveal(i).unwrap())).unwrap();
            handle.ingest(&rev, during(i + 1));
        }
        let report = pool.shutdown_with_report();
        // 20 frames → 20 verify-latency samples (frozen clocks: all 0).
        let verify = report
            .registry
            .get_histogram(keys::NET_VERIFY_LATENCY_NS)
            .expect("verify histogram");
        assert_eq!(verify.count(), 20);
        assert_eq!(verify.max(), Some(0));
        // Manual time ⇒ no scheduler-dependent occupancy samples.
        assert!(report
            .registry
            .get_histogram(keys::NET_QUEUE_OCCUPANCY)
            .is_none());
        // The trace is sorted by (source, seq) and seqs are gapless per
        // source.
        let mut last: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for record in &report.trace {
            let next = last.entry(record.source).or_insert(0);
            assert_eq!(record.seq, *next, "gapless per-source seq");
            *next += 1;
        }
        // Every protocol event made it in: 10 buffer decisions (one per
        // announce), 10 key reveals, 20 verify start/end pairs.
        let count = |name: &str| {
            report
                .trace
                .iter()
                .filter(|r| r.event.name() == name)
                .count()
        };
        assert_eq!(count("frame_rx"), 20);
        assert_eq!(count("verify_start"), 20);
        assert_eq!(count("verify_end"), 20);
        assert_eq!(count("buffer_decision"), 10);
        assert_eq!(count("key_reveal"), 10);
        assert_eq!(count("shard_stall"), 0);
    }

    #[test]
    fn span_sampling_halves_the_flight_recorder_cadence() {
        use dap_obs::ManualTime;

        // One shard so the per-shard datagram ordinal is the global one:
        // span_every = 2 samples ordinals 0, 2, 4, … — exactly half of
        // the 20 single-frame datagrams get a FrameSpan, and each sampled
        // frame feeds every per-frame stage histogram once.
        let run = |every: u64| {
            let mut sender = DapSender::new(b"span", 64, params(4));
            let bootstrap = sender.bootstrap();
            let obs = PoolObs {
                time: TimeSource::manual(ManualTime::new()),
                trace_depth: 4096,
                publish: None,
                publish_every: 0,
                span_every: every,
            };
            let pool = ReceiverPool::spawn_with_obs(
                PoolConfig {
                    shards: 1,
                    queue_depth: 64,
                    overflow: OverflowPolicy::Block,
                    route: RoutePolicy::ByInterval,
                    ..PoolConfig::default()
                },
                11,
                |_| DapShard::new(bootstrap, b"s"),
                obs,
            );
            let handle = pool.handle();
            for i in 1..=10u64 {
                let ann = codec::encode(&DapMessage::Announce(sender.announce(i, b"r").unwrap()))
                    .unwrap();
                handle.ingest(&ann, during(i));
                let rev = codec::encode(&DapMessage::Reveal(sender.reveal(i).unwrap())).unwrap();
                handle.ingest(&rev, during(i + 1));
            }
            pool.shutdown_with_report()
        };
        let full = run(1);
        let spans = |report: &PoolReport| {
            report
                .trace
                .iter()
                .filter(|r| r.event.name() == "frame_span")
                .count() as u64
        };
        assert_eq!(spans(&full), 20, "span_every = 1 narrates every frame");
        for key in [
            keys::NET_STAGE_INGRESS_NS,
            keys::NET_STAGE_QUEUE_WAIT_NS,
            keys::NET_STAGE_DECODE_NS,
            keys::NET_STAGE_PREFETCH_NS,
            keys::NET_STAGE_VERIFY_NS,
            keys::NET_STAGE_BUFFER_NS,
            keys::NET_STAGE_REVEAL_AUTH_NS,
        ] {
            let hist = full
                .registry
                .get_histogram(key)
                .unwrap_or_else(|| panic!("stage histogram {key} present"));
            assert_eq!(hist.count(), 20, "{key} samples once per span");
            assert_eq!(hist.max(), Some(0), "manual clocks zero {key}");
        }
        let half = run(2);
        assert_eq!(spans(&half), 10, "span_every = 2 samples every other frame");
        let off = run(0);
        assert_eq!(spans(&off), 0, "span_every = 0 disables the recorder");
        assert!(
            off.registry
                .get_histogram(keys::NET_STAGE_VERIFY_NS)
                .is_none(),
            "stage histograms stay absent when the recorder is off"
        );
    }

    #[test]
    fn windowed_prefetch_drain_matches_the_unwindowed_path() {
        // Same traffic through a windowed pool (prefetch + precomputed
        // reveals) and an unwindowed one (pure scalar path): with a
        // budget that never sheds and one priority class, the drain
        // order is arrival order in both, so the registries must render
        // byte-identically — the batch pipeline is outcome-invisible.
        let run = |drain_budget: usize| {
            let mut sender = DapSender::new(b"batch", 64, params(4));
            let bootstrap = sender.bootstrap();
            let pool = ReceiverPool::spawn_with_obs(
                PoolConfig {
                    shards: 2,
                    queue_depth: 4096,
                    overflow: OverflowPolicy::Block,
                    route: RoutePolicy::ByInterval,
                    drain_budget,
                    ..PoolConfig::default()
                },
                21,
                |shard| DapShard::new(bootstrap, &[b'b', shard as u8]),
                PoolObs {
                    time: TimeSource::frozen(),
                    trace_depth: 0,
                    publish: None,
                    publish_every: 0,
                    span_every: 0,
                },
            );
            let handle = pool.handle();
            for i in 1..=24u64 {
                let ann = codec::encode(&DapMessage::Announce(sender.announce(i, b"r").unwrap()))
                    .unwrap();
                // Three copies per interval exercise the sampling coin
                // with the same per-shard RNG draw order in both modes.
                for _ in 0..3 {
                    assert!(handle.ingest(&ann, during(i)));
                }
                let rev = codec::encode(&DapMessage::Reveal(sender.reveal(i).unwrap())).unwrap();
                assert!(handle.ingest(&rev, during(i + 1)));
                handle.tick();
                handle.quiesce();
            }
            pool.shutdown_with_report()
        };
        let windowed = run(1 << 20);
        let scalar = run(usize::MAX);
        assert_eq!(windowed.registry.render(), scalar.registry.render());
        assert_eq!(windowed.registry.counters().get(keys::NET_REVEAL_AUTH), 24);
    }

    #[test]
    fn windowed_teslapp_drain_matches_the_unwindowed_path() {
        use dap_tesla::teslapp::TeslaPpSender;
        use dap_tesla::TeslaParams;

        let run = |drain_budget: usize| {
            let tesla_params = TeslaParams::new(SimDuration(100), 1, 0);
            let mut sender = TeslaPpSender::new(b"tppb", 64, tesla_params);
            let pool = ReceiverPool::spawn_with_obs(
                PoolConfig {
                    shards: 2,
                    queue_depth: 4096,
                    overflow: OverflowPolicy::Block,
                    route: RoutePolicy::ByInterval,
                    drain_budget,
                    ..PoolConfig::default()
                },
                23,
                |_| TeslaPpShard::new(sender.bootstrap(), b"n"),
                PoolObs {
                    time: TimeSource::frozen(),
                    trace_depth: 0,
                    publish: None,
                    publish_every: 0,
                    span_every: 0,
                },
            );
            let handle = pool.handle();
            for i in 1..=16u64 {
                let TeslaPpMessage::MacAnnounce { index, mac } = sender.announce(i, b"m").unwrap()
                else {
                    unreachable!()
                };
                let ann = codec::encode(&DapMessage::Announce(dap_core::Announce { index, mac }))
                    .unwrap();
                assert!(handle.ingest(&ann, during(i)));
                let TeslaPpMessage::Reveal {
                    index,
                    message,
                    key,
                } = sender.reveal(i).unwrap()
                else {
                    unreachable!()
                };
                let rev = codec::encode(&DapMessage::Reveal(dap_core::Reveal {
                    index,
                    message,
                    key,
                }))
                .unwrap();
                assert!(handle.ingest(&rev, during(i + 1)));
                handle.tick();
                handle.quiesce();
            }
            pool.shutdown_with_report()
        };
        let windowed = run(1 << 20);
        let scalar = run(usize::MAX);
        assert_eq!(windowed.registry.render(), scalar.registry.render());
        assert_eq!(windowed.registry.counters().get(keys::NET_REVEAL_AUTH), 16);
    }

    #[test]
    fn live_publish_feeds_the_shared_registry() {
        let mut sender = DapSender::new(b"pub", 32, params(4));
        let bootstrap = sender.bootstrap();
        let shared = Arc::new(SharedRegistry::new(2));
        let obs = PoolObs {
            time: TimeSource::frozen(),
            trace_depth: 0,
            publish: Some(Arc::clone(&shared)),
            publish_every: 1,
            span_every: 0,
        };
        let pool = ReceiverPool::spawn_with_obs(
            PoolConfig {
                shards: 2,
                queue_depth: 64,
                overflow: OverflowPolicy::Block,
                route: RoutePolicy::ByInterval,
                ..PoolConfig::default()
            },
            5,
            |shard| DapShard::new(bootstrap, &[b'p', shard as u8]),
            obs,
        );
        let handle = pool.handle();
        for i in 1..=8u64 {
            let ann =
                codec::encode(&DapMessage::Announce(sender.announce(i, b"r").unwrap())).unwrap();
            handle.ingest(&ann, during(i));
        }
        let report = pool.shutdown_with_report();
        // The final publish happens at worker exit, so the scraped view
        // agrees with the shutdown merge (reader-side drop folding
        // aside — there were no drops here).
        let snapshot = shared.snapshot();
        assert_eq!(
            snapshot.counters().get(keys::NET_INGRESS_FRAMES),
            report.registry.counters().get(keys::NET_INGRESS_FRAMES)
        );
        assert_eq!(snapshot.counters().get(keys::NET_INGRESS_FRAMES), 8);
    }
}
