//! # dap-net — the real-wire runtime
//!
//! Everything below this crate runs DAP inside a discrete-event
//! simulator; `dap-net` runs it on sockets and threads. The pieces:
//!
//! * [`transport`] — one [`Transport`] trait, two media: real UDP
//!   datagrams ([`UdpTransport`]) and a seeded in-process broadcast
//!   medium ([`LoopbackTransport`]) reusing the simulator's
//!   loss/corruption models so wire tests stay bit-reproducible;
//! * [`clock`] — [`NetClock`] bridges the simulator's tick grid to
//!   `std::time::Instant` ([`RealClock`]) or to an explicitly advanced
//!   test clock ([`ManualClock`]);
//! * [`pump`] — [`SenderPump`] paces Algorithm 1 (announce in `I_i`,
//!   reveal in `I_{i+d}`) onto a transport; [`Flooder`] is the paper's
//!   adversary, saturating the wire with forged announces at bandwidth
//!   share `p`;
//! * [`queue`] / [`pool`] — a sharded receiver: frames route to one of
//!   `N` worker threads by a hash of their interval index (or, in the
//!   fleet posture, their [`dap_core::SenderId`] wire tag —
//!   [`pool::RoutePolicy`]), each worker owns its reservoir buffers and
//!   drains a bounded ingress queue with an explicit [`OverflowPolicy`];
//! * [`session`] — per-sender receiver state at crowd scale: each shard
//!   owns a [`SessionTable`] mapping `SenderId` to chain anchor, skew
//!   and reservoirs, bounded by LRU + memory-budget eviction so fixed
//!   RAM serves an unbounded sender population (DESIGN §10);
//! * [`loopback`] — the seeded single-driver campaign the ci.sh soak
//!   gate runs: same seed ⇒ byte-identical metrics, and with
//!   `trace_depth > 0` a byte-identical structured trace too;
//! * [`fleet`] — the loopback campaign at fleet scale: `N` tagged
//!   senders, per-sender spoofing flooders, session-table shards — the
//!   `tests/fleet_soak.rs` and ci.sh fleet-gate scenario;
//! * [`adversary`] — the adaptive adversary suite (DESIGN §11): four
//!   deterministic attack plans beyond the Bernoulli flooder
//!   (burst-at-reanchor, collusion, replay-at-the-edge, adaptive),
//!   drivable through the fleet campaign and `dapd --adversary`;
//! * [`forensics`] — the trace-audit engine behind `daptrace`:
//!   reconstructs per-frame / per-sender timelines from a `--trace-out`
//!   JSONL file, checks the pipeline's causal invariants (verify spans
//!   pair, shed frames never authenticate, posture epochs are monotone,
//!   reservoirs respect `m`, pins are never evicted) and renders a
//!   byte-stable stage-latency + attack-onset report;
//! * [`telemetry`] — the live exposition plane: [`SharedRegistry`]
//!   collects per-shard [`dap_simnet::Registry`] snapshots without
//!   touching the verify hot path, and [`TelemetryServer`] serves the
//!   merged view as Prometheus text over a tiny std-only HTTP listener.
//!
//! The pool's workers are instrumented through `dap-obs`: verify and
//! decode latency histograms, queue-occupancy (wall-clock runs only —
//! see DESIGN §9 for the determinism rules), drop-reason counters, and
//! a typed trace (frame arrivals, verify spans, buffer decisions, key
//! reveals, shard stalls) ordered by per-source sequence numbers.
//!
//! Three binaries ship with the crate: `dapd` (sender / receiver /
//! flooder roles over UDP, plus `--loopback`; `--telemetry <addr>`
//! serves live metrics, `--trace-out <path>` writes the trace as
//! JSONL, and the receiver prints its final sorted snapshot on Ctrl-C),
//! `daptrace` (forensic audit / report / timeline over a `--trace-out`
//! file, exiting nonzero when a causal invariant is violated) and
//! `netbench` (ingress throughput and per-frame verify latency
//! with p50/p95/p99 tails, written to `BENCH_net.json`). See README
//! § "Running on a real wire".
//!
//! ## Quickstart (in-process)
//!
//! ```
//! use dap_net::loopback::{run_loopback, LoopbackSpec};
//!
//! let report = run_loopback(&LoopbackSpec {
//!     intervals: 40,
//!     ..LoopbackSpec::default()
//! });
//! // p = 0.9, m = 4 ⇒ about 1 − 0.9⁴ ≈ 34% of reveals authenticate.
//! assert!(report.auth_rate > 0.1 && report.auth_rate < 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod clock;
pub mod control;
pub mod fleet;
pub mod forensics;
pub mod loopback;
pub mod opts;
pub mod pool;
pub mod pump;
pub mod queue;
pub mod session;
pub mod telemetry;
pub mod transport;

pub use adversary::{AdversaryClass, AdversaryEmit, AdversaryPlan, PostureView};
pub use clock::{ManualClock, NetClock, RealClock};
pub use control::{ControlConfig, ControlPlane};
pub use fleet::{run_fleet, FleetReport, FleetShard, FleetSpec};
pub use forensics::{
    attack_onset, audit, forged_share_trajectory, render_report, render_timeline, Violation,
};
pub use loopback::{run_loopback, LoopbackReport, LoopbackSpec};
pub use pool::{
    BufferNote, DapShard, FrameVerdict, FrameVerifier, LiveCounters, OverflowPolicy, PoolConfig,
    PoolHandle, PoolObs, PoolReport, ReceiverPool, RoutePolicy, TeslaPpShard,
};
pub use pump::{Flooder, PumpStats, SenderPump};
pub use queue::{IngressQueue, Pop, PushError};
pub use session::{
    Admission, PriorityClass, SessionConfig, SessionEviction, SessionRef, SessionStats,
    SessionTable,
};
pub use telemetry::{SharedRegistry, TelemetryServer};
pub use transport::{LoopbackTransport, Transport, UdpTransport};
