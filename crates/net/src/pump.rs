//! Traffic sources: the paced genuine sender and the flooder adversary.
//!
//! [`SenderPump`] walks the interval grid on a [`NetClock`], emitting
//! Algorithm 1's schedule onto a [`Transport`]: in interval `i` it
//! broadcasts the announce for `i` (optionally several copies — the
//! paper's senders repeat announcements against loss) and the reveal
//! for `i − d`. [`Flooder`] is the adversary of the evaluation: it
//! saturates the wire with forged announces for the *current* interval
//! (stale indices would be shed by the safe-packet test for free), at a
//! rate derived from a bandwidth share `p` via
//! [`dap_simnet::FloodIntensity`].

use std::io;

use dap_core::{codec, DapMessage, DapSender, SenderId};
use dap_crypto::{ChainStore, Mac80};
use dap_simnet::{FloodIntensity, SimRng};

use crate::clock::NetClock;
use crate::transport::Transport;

/// Counters a pump run reports back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Announce frames sent (all copies).
    pub announces: u64,
    /// Reveal frames sent.
    pub reveals: u64,
    /// Intervals skipped because the chain was exhausted.
    pub exhausted: u64,
}

/// Paces a [`DapSender`] onto a transport in real time.
pub struct SenderPump<T: Transport, C: ChainStore, K: NetClock> {
    sender: DapSender<C>,
    transport: T,
    clock: K,
    /// Announce copies per interval (`a` in the flood arithmetic).
    copies: u32,
    /// Wire identity: `Some` emits `SenderId`-tagged frames (the fleet
    /// posture), `None` the legacy untagged shapes.
    tag: Option<SenderId>,
}

impl<T: Transport, C: ChainStore, K: NetClock> SenderPump<T, C, K> {
    /// A pump sending `copies` announce copies per interval.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero.
    pub fn new(sender: DapSender<C>, transport: T, clock: K, copies: u32) -> Self {
        assert!(copies >= 1, "need at least one announce copy");
        Self {
            sender,
            transport,
            clock,
            copies,
            tag: None,
        }
    }

    /// Tags every emitted frame with `id` (fleet mode: the receiver's
    /// session table routes and verifies per sender).
    #[must_use]
    pub fn with_sender_id(mut self, id: SenderId) -> Self {
        self.tag = Some(id);
        self
    }

    fn encode(&self, message: &DapMessage) -> io::Result<Vec<u8>> {
        match self.tag {
            Some(id) => codec::encode_tagged(id, message),
            None => codec::encode(message),
        }
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Runs intervals `1..=intervals`: each interval sends its announce
    /// copies and the reveal due that interval, then a final tail
    /// interval flushes the last pending reveals.
    ///
    /// `message(i)` supplies interval `i`'s payload.
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn run(
        &mut self,
        intervals: u64,
        mut message: impl FnMut(u64) -> Vec<u8>,
    ) -> io::Result<PumpStats> {
        let mut stats = PumpStats::default();
        let schedule = self.sender.params().schedule();
        let d = self.sender.params().disclosure_delay;
        for i in 1..=intervals {
            // Wake a hair into the interval, not at its boundary — a
            // receiver with a slightly fast clock would see a boundary
            // announce as already-disclosed.
            self.clock
                .sleep_until(schedule.start_of(i) + interval_nudge(&schedule));
            match self.sender.announce(i, &message(i)) {
                Ok(announce) => {
                    let frame = self.encode(&DapMessage::Announce(announce))?;
                    for _ in 0..self.copies {
                        self.transport.send(&frame)?;
                        stats.announces += 1;
                    }
                }
                Err(_) => stats.exhausted += 1,
            }
            if i > d {
                stats.reveals += self.send_reveal(i - d)?;
            }
        }
        // Flush: reveals for the last d intervals are due after the loop.
        for i in intervals.saturating_sub(d) + 1..=intervals {
            self.clock
                .sleep_until(schedule.start_of(i + d) + interval_nudge(&schedule));
            stats.reveals += self.send_reveal(i)?;
        }
        Ok(stats)
    }

    fn send_reveal(&mut self, index: u64) -> io::Result<u64> {
        let Some(reveal) = self.sender.reveal(index) else {
            return Ok(0);
        };
        let frame = self.encode(&DapMessage::Reveal(reveal))?;
        self.transport.send(&frame)?;
        Ok(1)
    }

    /// The pump's current interval on its own clock.
    #[must_use]
    pub fn interval_now(&self) -> u64 {
        self.sender.interval_at(self.clock.now())
    }
}

/// How far into an interval the pump wakes (one tenth, at least 1 tick).
fn interval_nudge(schedule: &dap_simnet::IntervalSchedule) -> dap_simnet::SimDuration {
    dap_simnet::SimDuration((schedule.interval().ticks() / 10).max(1))
}

/// The flooder adversary: forged announces for the current interval.
///
/// Forged MACs are drawn from a seeded RNG — they pass no verification,
/// but each one a receiver samples into its reservoir evicts genuine
/// evidence with the paper's `m/k` probability. That is the entire
/// attack.
pub struct Flooder<T: Transport> {
    transport: T,
    rng: SimRng,
    intensity: FloodIntensity,
}

impl<T: Transport> Flooder<T> {
    /// A flooder spending bandwidth share `p` (see
    /// [`FloodIntensity::of_bandwidth`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1)`.
    pub fn new(transport: T, seed: u64, p: f64) -> Self {
        Self {
            transport,
            rng: SimRng::new(seed),
            intensity: FloodIntensity::of_bandwidth(p),
        }
    }

    /// The forged copies accompanying `authentic` genuine copies at this
    /// intensity.
    #[must_use]
    pub fn forged_copies(&self, authentic: u64) -> u64 {
        self.intensity.forged_copies(authentic)
    }

    /// Emits one forged announce claiming interval `index`.
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn send_forged(&mut self, index: u64) -> io::Result<()> {
        let frame = self
            .forged_frame(None, index)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.transport.send(&frame)
    }

    /// Emits one forged announce *spoofing* sender `victim` — the fleet
    /// attack: the wire tag is unauthenticated, so the flooder claims
    /// any identity it likes and pollutes that sender's reservoirs.
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn send_forged_as(&mut self, victim: SenderId, index: u64) -> io::Result<()> {
        let frame = self
            .forged_frame(Some(victim), index)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.transport.send(&frame)
    }

    fn forged_frame(
        &mut self,
        victim: Option<SenderId>,
        index: u64,
    ) -> Result<Vec<u8>, codec::EncodeError> {
        let mut mac = [0u8; Mac80::LEN];
        self.rng.fill_bytes(&mut mac);
        let message = DapMessage::Announce(dap_core::Announce {
            index,
            mac: Mac80::from_slice(&mac).expect("fixed length"),
        });
        match victim {
            Some(id) => codec::encode_tagged(id, &message),
            None => codec::encode(&message),
        }
    }

    /// Floods `clock`'s current interval with `batch` forged announces,
    /// then returns (callers loop this against a duration or interval
    /// budget).
    ///
    /// # Errors
    ///
    /// Propagates transport send failures.
    pub fn flood_current<K: NetClock>(
        &mut self,
        clock: &K,
        schedule: &dap_simnet::IntervalSchedule,
        batch: u64,
    ) -> io::Result<u64> {
        let index = schedule.index_at(clock.now());
        for _ in 0..batch {
            self.send_forged(index)?;
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::RealClock;
    use crate::transport::LoopbackTransport;
    use dap_core::DapParams;
    use dap_simnet::{ChannelModel, IntervalSchedule, SimDuration};
    use std::time::Duration;

    #[test]
    fn pump_emits_the_full_schedule() {
        let params = DapParams::new(SimDuration(100), 1, 0, 4);
        let sender = DapSender::new(b"pump", 16, params);
        let wire = LoopbackTransport::new(1, ChannelModel::perfect(), 0.0);
        // 100 ticks × 20µs = 2ms per interval: the test runs in ~15ms.
        let clock = RealClock::new(Duration::from_micros(20));
        let mut pump = SenderPump::new(sender, wire.clone(), clock, 2);
        let stats = pump
            .run(5, |i| format!("reading {i}").into_bytes())
            .unwrap();
        assert_eq!(stats.announces, 10); // 5 intervals × 2 copies
        assert_eq!(stats.reveals, 5);
        assert_eq!(stats.exhausted, 0);
        assert_eq!(wire.wire_metrics().get("net.wire.sent"), 15);
    }

    #[test]
    fn pump_reports_chain_exhaustion() {
        let params = DapParams::new(SimDuration(10), 1, 0, 4);
        let sender = DapSender::new(b"short", 3, params);
        let wire = LoopbackTransport::new(1, ChannelModel::perfect(), 0.0);
        let clock = RealClock::new(Duration::from_micros(10));
        let mut pump = SenderPump::new(sender, wire, clock, 1);
        let stats = pump.run(5, |_| b"x".to_vec()).unwrap();
        assert_eq!(stats.announces, 3);
        assert_eq!(stats.exhausted, 2);
    }

    #[test]
    fn flooder_emits_decodable_forgeries() {
        let wire = LoopbackTransport::new(5, ChannelModel::perfect(), 0.0);
        let mut flooder = Flooder::new(wire.clone(), 99, 0.8);
        assert_eq!(flooder.forged_copies(5), 20);
        flooder.send_forged(7).unwrap();
        let mut rx = wire;
        let mut buf = [0u8; 64];
        let n = rx.recv(&mut buf).unwrap().unwrap();
        let decoded = codec::decode(&buf[..n]).unwrap();
        match decoded {
            DapMessage::Announce(a) => assert_eq!(a.index, 7),
            DapMessage::Reveal(_) => panic!("flooder sent a reveal"),
        }
    }

    #[test]
    fn flood_current_targets_the_live_interval() {
        let wire = LoopbackTransport::new(5, ChannelModel::perfect(), 0.0);
        let mut flooder = Flooder::new(wire.clone(), 99, 0.5);
        let clock = RealClock::new(Duration::from_micros(10));
        let schedule = IntervalSchedule::new(dap_simnet::SimTime::ZERO, SimDuration(100));
        let sent = flooder.flood_current(&clock, &schedule, 8).unwrap();
        assert_eq!(sent, 8);
        assert_eq!(wire.wire_metrics().get("net.wire.sent"), 8);
    }
}
