//! `daptrace` — forensic audit over a `--trace-out` JSONL trace.
//!
//! ```text
//! daptrace audit    <trace.jsonl> [--pin-first N] [--pin IDS]
//! daptrace report   <trace.jsonl>
//! daptrace timeline <trace.jsonl> [--sender ID] [--limit N]
//! ```
//!
//! * `audit` re-checks the pipeline's causal invariants against the
//!   recorded narration: every `verify_end` pairs with a
//!   `verify_start`, shed frames never reach the verifier, posture /
//!   estimator epochs are monotone, reservoir decisions respect the
//!   paper's `k <= m` keep rule, and operator-pinned senders (the same
//!   `--pin` / `--pin-first` roster the run was started with) are never
//!   evicted. A line that fails to parse is itself evidence of
//!   corruption and is reported as a violation. Exit code: 0 clean,
//!   1 violations, 2 usage / I/O errors.
//! * `report` prints the byte-stable forensic summary: event census,
//!   flight-recorder stage-latency breakdown (p50/p95/p99 per pipeline
//!   stage) and the attack-onset estimate read off the forged-share
//!   trajectory. Two same-seed traces render byte-identical reports —
//!   the ci.sh `daptrace` gate `cmp`s them.
//! * `timeline` renders the frame lifecycle one line per record,
//!   optionally filtered to the records naming `--sender ID`.
//!
//! The tool never loads the runtime: it is a pure function of the
//! trace file, so it can audit an incident capture long after the run
//! (and the machine) that produced it is gone.

use std::collections::BTreeSet;
use std::process::ExitCode;

use dap_net::forensics;
use dap_obs::{parse_trace, ParsedTrace};

fn usage() -> ExitCode {
    eprintln!(
        "usage: daptrace <audit|report|timeline> <trace.jsonl> \
         [--pin-first N] [--pin IDS] [--sender ID] [--limit N]"
    );
    ExitCode::from(2)
}

/// The hand-rolled CLI surface: one subcommand, one path, flag pairs.
struct Cli {
    command: String,
    path: String,
    pins: BTreeSet<u64>,
    sender: Option<u64>,
    limit: usize,
}

fn parse_cli(args: &[String]) -> Option<Cli> {
    let mut positional = Vec::new();
    let mut pins = BTreeSet::new();
    let mut sender = None;
    let mut limit = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pin-first" => {
                let n: u64 = it.next()?.parse().ok()?;
                pins.extend(1..=n);
            }
            "--pin" => {
                for id in it.next()?.split(',') {
                    pins.insert(id.trim().parse().ok()?);
                }
            }
            "--sender" => sender = Some(it.next()?.parse().ok()?),
            "--limit" => limit = it.next()?.parse().ok()?,
            flag if flag.starts_with("--") => return None,
            _ => positional.push(arg.clone()),
        }
    }
    let [command, path] = positional.as_slice() else {
        return None;
    };
    Some(Cli {
        command: command.clone(),
        path: path.clone(),
        pins,
        sender,
        limit,
    })
}

/// Loads and strictly parses the trace. A parse failure is reported in
/// the same shape as an audit violation — a line that does not
/// round-trip is corruption evidence, not a formatting nit.
fn load(path: &str) -> Result<ParsedTrace, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("daptrace: cannot read {path}: {err}");
            return Err(ExitCode::from(2));
        }
    };
    match parse_trace(&text) {
        Ok(trace) => Ok(trace),
        Err(err) => {
            println!("violation line {}: [parse] {}", err.line, err.reason);
            println!("audit: FAIL (1 violation)");
            Err(ExitCode::from(1))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cli) = parse_cli(&args) else {
        return usage();
    };
    let trace = match load(&cli.path) {
        Ok(trace) => trace,
        Err(code) => return code,
    };
    match cli.command.as_str() {
        "audit" => {
            let violations = forensics::audit(&trace, &cli.pins);
            for violation in &violations {
                println!("{}", violation.render());
            }
            if violations.is_empty() {
                println!(
                    "audit: OK ({} records, {} pinned senders, 0 violations)",
                    trace.records.len(),
                    cli.pins.len()
                );
                ExitCode::SUCCESS
            } else {
                println!("audit: FAIL ({} violations)", violations.len());
                ExitCode::from(1)
            }
        }
        "report" => {
            print!("{}", forensics::render_report(&trace));
            ExitCode::SUCCESS
        }
        "timeline" => {
            print!(
                "{}",
                forensics::render_timeline(&trace, cli.sender, cli.limit)
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
