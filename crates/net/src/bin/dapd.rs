//! `dapd` — DAP on a wire.
//!
//! One binary, four modes:
//!
//! ```text
//! # Deterministic in-process campaign (the ci.sh soak gate):
//! dapd --loopback [--seed N] [--intervals N] [--buffers M] [--shards S]
//!      [--queue-depth Q] [--flood P] [--copies G] [--loss L] [--corrupt C]
//!      [--tolerance T] [--assert-soak]
//!
//! # Real UDP, three roles (run in separate terminals):
//! dapd --role receiver --bind 127.0.0.1:7440 [--seed N] [--intervals N]
//!      [--buffers M] [--shards S] [--queue-depth Q] [--duration-ms T]
//!      [--tick-us U]
//! dapd --role sender   --target 127.0.0.1:7440 [--seed N] [--intervals N]
//!      [--copies G] [--tick-us U]
//! dapd --role flooder  --target 127.0.0.1:7440 [--flood P] [--rate FPS]
//!      [--duration-ms T] [--seed N] [--tick-us U]
//! ```
//!
//! `--seed` and `--intervals` together stand in for the out-of-band
//! bootstrap a real deployment would provision: the receiver re-derives
//! the sender's chain (same seed, same length — the commitment is the
//! chain's end) instead of being handed the commitment. One tick is
//! `--tick-us` microseconds (default 1000 — 100 ms intervals).

use std::time::{Duration, Instant};

use dap_core::{DapParams, DapSender};
use dap_net::clock::{NetClock, RealClock};
use dap_net::loopback::{run_loopback, LoopbackSpec};
use dap_net::opts::Opts;
use dap_net::pool::{DapShard, OverflowPolicy, PoolConfig, ReceiverPool};
use dap_net::pump::{Flooder, SenderPump};
use dap_net::transport::{Transport, UdpTransport};
use dap_simnet::SimDuration;

const FLAGS: &[&str] = &["loopback", "assert-soak"];

fn main() {
    let opts = Opts::parse(FLAGS);
    if opts.flag("loopback") {
        run_loopback_mode(&opts);
        return;
    }
    match opts.get("role") {
        Some("sender") => run_sender(&opts),
        Some("receiver") => run_receiver(&opts),
        Some("flooder") => run_flooder(&opts),
        Some(other) => panic!("unknown --role {other:?} (sender | receiver | flooder)"),
        None => panic!("need --loopback or --role sender|receiver|flooder"),
    }
}

/// Shared protocol parameters for the UDP roles: 100-tick intervals,
/// `d = 1`, a generous Δ (wall clocks on two processes are loose), `m`
/// buffers.
fn udp_params(buffers: usize) -> DapParams {
    DapParams::new(SimDuration(100), 1, 30, buffers)
}

fn run_loopback_mode(opts: &Opts) {
    let spec = LoopbackSpec {
        seed: opts.get_or("seed", 2016),
        intervals: opts.get_or("intervals", 400),
        buffers: opts.get_or("buffers", 4),
        shards: opts.get_or("shards", 4),
        queue_depth: opts.get_or("queue-depth", 256),
        flood: opts.get_or("flood", 0.9),
        copies: opts.get_or("copies", 4),
        loss: opts.get_or("loss", 0.0),
        corrupt: opts.get_or("corrupt", 0.0),
    };
    println!(
        "dapd --loopback seed={} intervals={} m={} shards={} p={} copies={} loss={} corrupt={}",
        spec.seed,
        spec.intervals,
        spec.buffers,
        spec.shards,
        spec.flood,
        spec.copies,
        spec.loss,
        spec.corrupt
    );
    let report = run_loopback(&spec);
    print!("{}", report.metrics.render());
    println!(
        "auth_rate {:.4}   expected {:.4}   (1 - p^m)",
        report.auth_rate, report.expected_rate
    );
    if opts.flag("assert-soak") {
        assert_soak(&spec, &report, opts.get_or("tolerance", 0.08));
        println!("soak: ok");
    }
}

/// The soak invariants the ci.sh gate relies on. Only meaningful on a
/// clean wire (`loss = corrupt = 0`): every reveal then arrives, and
/// the *only* way a genuine reveal fails is reservoir eviction by the
/// flood — which is precisely the `1 − p^m` experiment.
fn assert_soak(spec: &LoopbackSpec, report: &dap_net::loopback::LoopbackReport, tolerance: f64) {
    assert!(
        spec.loss == 0.0 && spec.corrupt == 0.0,
        "--assert-soak needs a clean wire (loss = corrupt = 0)"
    );
    let m = &report.metrics;
    // Nothing on a clean wire may be dropped, garbled or forged-key'd.
    assert_eq!(
        m.get("net.ingress.dropped"),
        0,
        "backpressure run shed frames"
    );
    assert_eq!(
        m.get("net.decode.errors"),
        0,
        "clean wire had decode errors"
    );
    assert_eq!(m.get("net.reveal.weak_rejected"), 0, "genuine key rejected");
    assert_eq!(
        m.get("net.reveal.no_candidate"),
        0,
        "pool vanished on clean wire"
    );
    // Every interval's reveal arrived and was decided one way:
    assert_eq!(m.get("net.reveal.total"), spec.intervals, "reveals lost");
    assert_eq!(
        m.get("net.reveal.auth") + m.get("net.reveal.strong_rejected"),
        m.get("net.reveal.total"),
        "reveal outcomes do not balance"
    );
    if spec.flood == 0.0 {
        // No adversary: 100% of genuine reveals must authenticate.
        assert_eq!(
            m.get("net.reveal.auth"),
            m.get("net.reveal.total"),
            "clean run failed to authenticate everything"
        );
    } else {
        // Under flood: the buffer-hit rate tracks the paper's 1 − p^m.
        let gap = (report.auth_rate - report.expected_rate).abs();
        assert!(
            gap <= tolerance,
            "auth rate {:.4} vs expected {:.4}: gap {gap:.4} > tolerance {tolerance}",
            report.auth_rate,
            report.expected_rate
        );
    }
}

fn run_sender(opts: &Opts) {
    let seed: u64 = opts.get_or("seed", 2016);
    let intervals: u64 = opts.get_or("intervals", 60);
    let copies: u32 = opts.get_or("copies", 2);
    let tick_us: u64 = opts.get_or("tick-us", 1000);
    let target = opts.get("target").expect("sender needs --target host:port");
    let bind = opts.get("bind").unwrap_or("127.0.0.1:0");

    let chain_len = usize::try_from(intervals).expect("interval count") + 2;
    let sender = DapSender::new(&seed.to_be_bytes(), chain_len, udp_params(8));
    let transport = UdpTransport::sender(bind, target).expect("bind sender socket");
    let clock = RealClock::new(Duration::from_micros(tick_us));
    println!(
        "dapd sender -> {target}: {intervals} intervals x {copies} copies, seed {seed}, \
         {tick_us}us ticks"
    );
    let mut pump = SenderPump::new(sender, transport, clock, copies);
    let stats = pump
        .run(intervals, |i| format!("reading {i}").into_bytes())
        .expect("send failed");
    println!(
        "sender done: {} announces, {} reveals, {} exhausted",
        stats.announces, stats.reveals, stats.exhausted
    );
}

fn run_receiver(opts: &Opts) {
    let seed: u64 = opts.get_or("seed", 2016);
    let intervals: u64 = opts.get_or("intervals", 60);
    let buffers: usize = opts.get_or("buffers", 8);
    let shards: usize = opts.get_or("shards", 4);
    let queue_depth: usize = opts.get_or("queue-depth", 1024);
    let duration_ms: u64 = opts.get_or("duration-ms", 10_000);
    let tick_us: u64 = opts.get_or("tick-us", 1000);
    let bind = opts.get("bind").expect("receiver needs --bind host:port");

    // Derive the sender's commitment from the shared seed (the demo's
    // stand-in for out-of-band bootstrap). The chain commitment is the
    // *end* of the chain, so both sides must agree on `--intervals` too
    // — a different chain length is a different commitment.
    let chain_len = usize::try_from(intervals).expect("interval count") + 2;
    let bootstrap = DapSender::new(&seed.to_be_bytes(), chain_len, udp_params(buffers)).bootstrap();
    let mut transport =
        UdpTransport::receiver(bind, Duration::from_millis(20)).expect("bind receiver socket");
    let pool = ReceiverPool::spawn(
        PoolConfig {
            shards,
            queue_depth,
            overflow: OverflowPolicy::DropCount,
        },
        seed,
        |shard| DapShard::new(bootstrap, &[b'u', b'd', b'p', shard as u8]),
    );
    let handle = pool.handle();
    println!(
        "dapd receiver on {bind}: m={buffers} shards={shards} depth={queue_depth}, \
         listening {duration_ms}ms"
    );
    let deadline = Instant::now() + Duration::from_millis(duration_ms);
    let schedule = udp_params(buffers).schedule();
    // The two processes share no epoch: anchor the receiver's clock on
    // the interval the first frame claims (loose sync by first contact).
    let mut clock: Option<RealClock> = None;
    let mut buf = vec![0u8; dap_core::codec::MAX_FRAME_LEN];
    while Instant::now() < deadline {
        match transport.recv(&mut buf) {
            Ok(Some(n)) => {
                let at = clock
                    .get_or_insert_with(|| {
                        let index = dap_core::codec::peek_index(&buf[..n]).unwrap_or(1);
                        RealClock::anchored_at(
                            Duration::from_micros(tick_us),
                            schedule.start_of(index),
                        )
                    })
                    .now();
                handle.ingest(&buf[..n], at);
            }
            Ok(None) => {}
            Err(e) => panic!("receiver socket error: {e}"),
        }
    }
    let metrics = pool.shutdown();
    print!("{}", metrics.render());
    let auth = metrics.get("net.reveal.auth");
    let total = metrics.get("net.reveal.total");
    println!("receiver done: {auth}/{total} reveals authenticated");
}

fn run_flooder(opts: &Opts) {
    let seed: u64 = opts.get_or("seed", 666);
    let p: f64 = opts.get_or("flood", 0.9);
    let rate: u64 = opts.get_or("rate", 2000);
    let duration_ms: u64 = opts.get_or("duration-ms", 10_000);
    let tick_us: u64 = opts.get_or("tick-us", 1000);
    let target = opts
        .get("target")
        .expect("flooder needs --target host:port");

    let transport = UdpTransport::sender("127.0.0.1:0", target).expect("bind flooder socket");
    let clock = RealClock::new(Duration::from_micros(tick_us));
    let schedule = udp_params(8).schedule();
    let mut flooder = Flooder::new(transport, seed, p);
    println!("dapd flooder -> {target}: p={p} ({rate} forged/s for {duration_ms}ms, seed {seed})");
    let deadline = Instant::now() + Duration::from_millis(duration_ms);
    // Send in 10ms batches so the claimed interval index stays current.
    let batch = (rate / 100).max(1);
    let mut sent = 0u64;
    while Instant::now() < deadline {
        sent += flooder
            .flood_current(&clock, &schedule, batch)
            .expect("flood send failed");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("flooder done: {sent} forged announces");
}
