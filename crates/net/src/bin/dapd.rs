//! `dapd` — DAP on a wire.
//!
//! One binary, five modes:
//!
//! ```text
//! # Deterministic in-process campaign (the ci.sh soak gate):
//! dapd --loopback [--seed N] [--intervals N] [--buffers M] [--shards S]
//!      [--queue-depth Q] [--flood P] [--flood-end P2] [--copies G]
//!      [--loss L] [--corrupt C] [--tolerance T] [--adaptive]
//!      [--assert-soak] [--assert-adaptive] [--assert-posture-stable]
//!      [--trace-out PATH] [--trace-depth D] [--span-every N]
//!      [--telemetry ADDR]
//!
//! # Adaptive defense (DESIGN §13): --adaptive runs the online control
//! # plane — the driver estimates the forged share from reveal-time
//! # buffer evidence and re-sizes every shard's reservoirs at the
//! # game's optimum as the flood changes. --flood-end P2 ramps the
//! # flood from --flood to P2 over the first half of the run.
//! # --assert-adaptive exits nonzero unless the loop actuated and the
//! # final m landed within ±1 of the offline Algorithm 3 optimum;
//! # --assert-posture-stable exits nonzero if any directive fired at
//! # all (the clean-wire no-flap gate).
//!
//! # Deterministic fleet campaign (the ci.sh fleet gate): N tagged
//! # senders, per-sender spoofing flood, session-table shards:
//! dapd --fleet [--senders N] [--seed N] [--intervals N] [--buffers M]
//!      [--shards S] [--queue-depth Q] [--flood P] [--copies G]
//!      [--max-sessions K] [--session-budget-bits B] [--tolerance T]
//!      [--pin IDS] [--pin-first N] [--adversary CLASS]
//!      [--drain-budget B] [--assert-pinned-floor PERMILLE]
//!      [--adaptive] [--assert-soak] [--assert-adaptive]
//!      [--assert-posture-stable] [--trace-out PATH] [--trace-depth D]
//!      [--span-every N] [--telemetry ADDR]
//!
//! # Overload posture: --pin 1,2,7 (or --pin-first N for ids 1..=N)
//! # marks operator-pinned senders — never evicted while an unpinned
//! # session exists, drained first under pressure. --drain-budget B
//! # caps per-shard verifies per interval (the priority drain sheds the
//! # rest, attributed under net.shed.*). --adversary picks the attack:
//! # bernoulli | burst-reanchor | collusion | replay-edge | adaptive
//! # (DESIGN §11). --assert-pinned-floor P exits nonzero if any pinned
//! # sender's auth rate lands below P permille.
//!
//! # Real UDP, three roles (run in separate terminals):
//! dapd --role receiver --bind 127.0.0.1:7440 [--seed N] [--intervals N]
//!      [--buffers M] [--shards S] [--queue-depth Q] [--duration-ms T]
//!      [--tick-us U] [--telemetry ADDR] [--trace-out PATH]
//! dapd --role sender   --target 127.0.0.1:7440 [--seed N] [--intervals N]
//!      [--copies G] [--tick-us U] [--sender-id ID]
//! dapd --role flooder  --target 127.0.0.1:7440 [--flood P] [--rate FPS]
//!      [--duration-ms T] [--seed N] [--tick-us U] [--spoof ID]
//! ```
//!
//! `--seed` and `--intervals` together stand in for the out-of-band
//! bootstrap a real deployment would provision: the receiver re-derives
//! the sender's chain (same seed, same length — the commitment is the
//! chain's end) instead of being handed the commitment. One tick is
//! `--tick-us` microseconds (default 1000 — 100 ms intervals).
//!
//! Observability: `--telemetry ADDR` serves the live registry in
//! Prometheus text format over HTTP (including the control plane's
//! `control_gauge_*` posture gauges under `--adaptive`); `--trace-out
//! PATH` writes the structured trace as JSONL — the header line's
//! timestamp comes from the run's own clock, so a seeded loopback/fleet
//! trace is byte-identical whole-file across same-seed runs.
//! `--span-every N` sets the flight-recorder cadence (default: every
//! verified datagram when traced; feed the file to `daptrace` for
//! timelines, audits and stage-latency reports); the receiver role
//! prints its final sorted telemetry snapshot on Ctrl-C or when
//! `--duration-ms` elapses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dap_core::{DapParams, DapSender, SenderId};
use dap_net::clock::{NetClock, RealClock};
use dap_net::fleet::{run_fleet_with, FleetSpec};
use dap_net::loopback::{run_loopback_with, LoopbackSpec};
use dap_net::opts::Opts;
use dap_net::pool::{DapShard, OverflowPolicy, PoolConfig, PoolObs, ReceiverPool, RoutePolicy};
use dap_net::pump::{Flooder, SenderPump};
use dap_net::telemetry::{SharedRegistry, TelemetryServer};
use dap_net::transport::{Transport, UdpTransport};
use dap_obs::{JsonlSink, TimeSource, TraceRecord, TraceSink};
use dap_simnet::SimDuration;

const FLAGS: &[&str] = &[
    "loopback",
    "fleet",
    "assert-soak",
    "adaptive",
    "assert-adaptive",
    "assert-posture-stable",
];

/// Stores a Ctrl-C so the receiver loop can drain, snapshot and exit
/// cleanly instead of dying mid-run with its telemetry unprinted.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT handler (raw `signal(2)` — the workspace is
    /// hermetic, so no signal-hook crate; the handler only stores an
    /// atomic flag, which is async-signal-safe).
    pub fn install() {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    /// Whether a SIGINT arrived since `install`.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}

    pub fn interrupted() -> bool {
        false
    }
}

fn main() {
    let opts = Opts::parse(FLAGS);
    if opts.flag("loopback") {
        run_loopback_mode(&opts);
        return;
    }
    if opts.flag("fleet") {
        run_fleet_mode(&opts);
        return;
    }
    match opts.get("role") {
        Some("sender") => run_sender(&opts),
        Some("receiver") => run_receiver(&opts),
        Some("flooder") => run_flooder(&opts),
        Some(other) => panic!("unknown --role {other:?} (sender | receiver | flooder)"),
        None => panic!("need --loopback, --fleet or --role sender|receiver|flooder"),
    }
}

/// Shared protocol parameters for the UDP roles: 100-tick intervals,
/// `d = 1`, a generous Δ (wall clocks on two processes are loose), `m`
/// buffers.
fn udp_params(buffers: usize) -> DapParams {
    DapParams::new(SimDuration(100), 1, 30, buffers)
}

/// Trace ring depth: explicit `--trace-depth`, else a generous default
/// whenever `--trace-out` asks for the trace at all.
fn trace_depth(opts: &Opts) -> usize {
    let default = if opts.get("trace-out").is_some() {
        65_536
    } else {
        0
    };
    opts.get_or("trace-depth", default)
}

/// Flight-recorder cadence: explicit `--span-every`, else record every
/// verified datagram whenever the run is traced at all (spans are what
/// `daptrace report` breaks latency down from).
fn span_every(opts: &Opts) -> u64 {
    let default = u64::from(trace_depth(opts) > 0);
    opts.get_or("span-every", default)
}

/// Writes the sorted trace as JSONL. The header line's timestamp comes
/// from the run's own `time` — frozen (0) for the deterministic
/// campaigns, so two same-seed traced runs are byte-identical whole-file
/// (no `tail -n +2` needed to compare them), wall for the UDP roles.
/// The note goes to stderr: stdout is the deterministic snapshot the
/// ci.sh gates `cmp`, and the note embeds a run-specific path.
fn write_trace(path: &str, records: &[TraceRecord], time: &TimeSource) {
    let mut sink = JsonlSink::create(path, time).expect("create --trace-out file");
    for record in records {
        sink.record(record.clone());
    }
    sink.finish().expect("flush --trace-out file");
    eprintln!("trace: {} records -> {path}", records.len());
}

fn run_loopback_mode(opts: &Opts) {
    let spec = LoopbackSpec {
        seed: opts.get_or("seed", 2016),
        intervals: opts.get_or("intervals", 400),
        buffers: opts.get_or("buffers", 4),
        shards: opts.get_or("shards", 4),
        queue_depth: opts.get_or("queue-depth", 256),
        flood: opts.get_or("flood", 0.9),
        copies: opts.get_or("copies", 4),
        loss: opts.get_or("loss", 0.0),
        corrupt: opts.get_or("corrupt", 0.0),
        flood_end: opts
            .get("flood-end")
            .map(|v| v.parse().expect("--flood-end is a bandwidth share")),
        adaptive: opts.flag("adaptive"),
        trace_depth: trace_depth(opts),
        span_every: span_every(opts),
    };
    println!(
        "dapd --loopback seed={} intervals={} m={} shards={} p={} p_end={} copies={} loss={} \
         corrupt={} adaptive={}",
        spec.seed,
        spec.intervals,
        spec.buffers,
        spec.shards,
        spec.flood,
        spec.flood_end.unwrap_or(spec.flood),
        spec.copies,
        spec.loss,
        spec.corrupt,
        spec.adaptive
    );
    // One telemetry slot per shard plus the control plane's gauge slot.
    let shared = opts
        .get("telemetry")
        .map(|_| Arc::new(SharedRegistry::new(spec.shards + 1)));
    let server = opts.get("telemetry").map(|addr| {
        let server = TelemetryServer::bind(addr, Arc::clone(shared.as_ref().expect("built above")))
            .expect("bind --telemetry listener");
        eprintln!("telemetry: http://{}/", server.local_addr());
        server
    });
    let report = run_loopback_with(&spec, shared);
    print!("{}", report.registry.render());
    println!(
        "auth_rate {:.4}   expected {:.4}   (1 - p^m)",
        report.auth_rate, report.expected_rate
    );
    if let Some(path) = opts.get("trace-out") {
        write_trace(path, &report.trace, &TimeSource::frozen());
    }
    if opts.flag("assert-soak") {
        assert_soak(&spec, &report, opts.get_or("tolerance", 0.08));
        println!("soak: ok");
    }
    if opts.flag("assert-adaptive") {
        assert_adaptive(spec.flood_end.unwrap_or(spec.flood), &report.metrics);
        println!("adaptive: ok");
    }
    if opts.flag("assert-posture-stable") {
        assert_posture_stable(&report.metrics);
        println!("posture: stable");
    }
    if let Some(server) = server {
        server.stop();
    }
}

/// The adaptive-gate invariants: the control loop sampled evidence,
/// actuated at least once, and commanded a final `m` within ±1 of the
/// offline Algorithm 3 optimum for the final flood share.
fn assert_adaptive(final_flood: f64, m: &dap_simnet::Metrics) {
    use dap_game::{optimal_buffer_count, DosGameParams};
    use dap_simnet::keys;

    assert!(m.get(keys::CONTROL_SAMPLES) > 0, "no evidence sampled");
    assert!(
        m.get(keys::CONTROL_DIRECTIVES) >= 1,
        "the control loop never actuated"
    );
    let offline = optimal_buffer_count(DosGameParams::paper_defaults(final_flood, 1), 50);
    let live = u32::try_from(m.get(keys::CONTROL_M)).expect("control.m fits u32");
    assert!(
        live.abs_diff(offline.m) <= 1,
        "live m {live} vs offline m* {} at p = {final_flood}",
        offline.m
    );
}

/// The no-flap gate: on a wire whose measured forged share never
/// leaves the solver's current optimum, no directive may fire.
fn assert_posture_stable(m: &dap_simnet::Metrics) {
    use dap_simnet::keys;

    assert!(m.get(keys::CONTROL_SAMPLES) > 0, "no evidence sampled");
    assert_eq!(
        m.get(keys::CONTROL_DIRECTIVES),
        0,
        "stationary run flipped posture"
    );
}

/// The pin roster: `--pin 1,2,7` (explicit ids) merged with
/// `--pin-first N` (ids `1..=N`), deduplicated and sorted.
fn parse_pins(opts: &Opts) -> Vec<u64> {
    let mut pins: std::collections::BTreeSet<u64> = opts
        .get("pin")
        .map(|list| {
            list.split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.trim().parse().expect("--pin takes comma-separated ids"))
                .collect()
        })
        .unwrap_or_default();
    pins.extend(1..=opts.get_or("pin-first", 0u64));
    pins.into_iter().collect()
}

fn run_fleet_mode(opts: &Opts) {
    let adversary = opts
        .get("adversary")
        .map_or(Ok(dap_net::AdversaryClass::Bernoulli), str::parse)
        .expect("--adversary");
    let spec = FleetSpec {
        seed: opts.get_or("seed", 2016),
        senders: opts.get_or("senders", 64),
        intervals: opts.get_or("intervals", 8),
        buffers: opts.get_or("buffers", 4),
        shards: opts.get_or("shards", 4),
        queue_depth: opts.get_or("queue-depth", 4096),
        flood: opts.get_or("flood", 0.8),
        copies: opts.get_or("copies", 4),
        max_sessions: opts.get_or("max-sessions", usize::MAX),
        memory_budget_bits: opts.get_or("session-budget-bits", 16 * 1024 * 1024),
        trace_depth: trace_depth(opts),
        span_every: span_every(opts),
        pins: parse_pins(opts),
        adversary,
        drain_budget: opts.get_or("drain-budget", usize::MAX),
        adaptive: opts.flag("adaptive"),
    };
    println!(
        "dapd --fleet seed={} senders={} intervals={} m={} shards={} p={} copies={} budget={}b \
         adversary={} pins={} drain_budget={} adaptive={}",
        spec.seed,
        spec.senders,
        spec.intervals,
        spec.buffers,
        spec.shards,
        spec.flood,
        spec.copies,
        spec.memory_budget_bits,
        spec.adversary.label(),
        spec.pins.len(),
        if spec.drain_budget == usize::MAX {
            "unbounded".to_string()
        } else {
            spec.drain_budget.to_string()
        },
        spec.adaptive
    );
    // One telemetry slot per shard plus the control plane's gauge slot.
    let shared = opts
        .get("telemetry")
        .map(|_| Arc::new(SharedRegistry::new(spec.shards + 1)));
    let server = opts.get("telemetry").map(|addr| {
        let server = TelemetryServer::bind(addr, Arc::clone(shared.as_ref().expect("built above")))
            .expect("bind --telemetry listener");
        eprintln!("telemetry: http://{}/", server.local_addr());
        server
    });
    let report = run_fleet_with(&spec, shared);
    print!("{}", report.registry.render());
    println!(
        "auth_rate {:.4}   expected {:.4}   (1 - p^m, per sender)",
        report.auth_rate, report.expected_rate
    );
    if let (Some(lo), Some(hi)) = (
        report.min_sender_auth_permille,
        report.max_sender_auth_permille,
    ) {
        println!("sender envelope: {lo}..{hi} permille");
    }
    if let (Some(lo), Some(hi)) = (
        report.min_pinned_auth_permille,
        report.max_pinned_auth_permille,
    ) {
        println!("pinned envelope: {lo}..{hi} permille");
    }
    if let (Some(lo), Some(hi)) = (
        report.min_unpinned_auth_permille,
        report.max_unpinned_auth_permille,
    ) {
        println!("unpinned envelope: {lo}..{hi} permille");
    }
    println!(
        "shed: {} of {} frames ({:.4}), evictions {}",
        report.shed_frames, report.frames, report.shed_fraction, report.evictions
    );
    if let Some(path) = opts.get("trace-out") {
        write_trace(path, &report.trace, &TimeSource::frozen());
    }
    if opts.flag("assert-soak") {
        assert_fleet_soak(&spec, &report, opts.get_or("tolerance", 0.08));
        println!("fleet soak: ok");
    }
    if let Some(floor) = opts.get("assert-pinned-floor") {
        let floor: u64 = floor.parse().expect("--assert-pinned-floor is permille");
        let lo = report
            .min_pinned_auth_permille
            .expect("--assert-pinned-floor needs pinned senders (--pin / --pin-first)");
        assert!(
            lo >= floor,
            "pinned auth floor {lo} permille below the asserted {floor}"
        );
        println!("pinned floor: ok ({lo} >= {floor} permille)");
    }
    if opts.flag("assert-adaptive") {
        assert_adaptive(spec.flood, &report.metrics);
        println!("adaptive: ok");
    }
    if opts.flag("assert-posture-stable") {
        assert_posture_stable(&report.metrics);
        println!("posture: stable");
    }
    if let Some(server) = server {
        server.stop();
    }
}

/// The fleet-soak invariants the ci.sh fleet gate relies on: the
/// loopback wire is clean by construction, so every genuine reveal is
/// decided, no forged announce ever authenticates, session residency
/// respects the configured budget, and the aggregate auth rate tracks
/// the per-sender `1 − p^m`.
fn assert_fleet_soak(spec: &FleetSpec, report: &dap_net::fleet::FleetReport, tolerance: f64) {
    use dap_simnet::keys;

    let m = &report.metrics;
    assert_eq!(
        m.get(keys::NET_INGRESS_DROPPED),
        0,
        "Block overflow shed frames"
    );
    assert_eq!(
        m.get(keys::NET_DECODE_ERRORS),
        0,
        "clean wire had decode errors"
    );
    assert_eq!(
        m.get(keys::NET_REVEAL_WEAK_REJECTED),
        0,
        "forged or cross-sender key accepted by the weak check"
    );
    if let Some(memory) = report.registry.get_gauge(keys::NET_SESSION_MEMORY_BITS) {
        assert!(
            memory.max().unwrap_or(0) <= spec.memory_budget_bits,
            "session memory exceeded the per-shard budget"
        );
    }
    // The remaining invariants describe the classic Bernoulli posture
    // with an unbounded drain: a replay adversary makes NoCandidate
    // legitimate, and a finite budget sheds whole reveal windows — both
    // break the exact balance and the 1 − p^m tracking by design.
    if spec.adversary != dap_net::AdversaryClass::Bernoulli || spec.drain_budget != usize::MAX {
        return;
    }
    assert_eq!(
        m.get(keys::NET_REVEAL_AUTH) + m.get(keys::NET_REVEAL_STRONG_REJECTED),
        m.get(keys::NET_REVEAL_TOTAL),
        "reveal outcomes do not balance"
    );
    if spec.flood == 0.0 && m.get(keys::NET_SESSION_EVICTED) == 0 {
        assert_eq!(
            m.get(keys::NET_REVEAL_AUTH),
            m.get(keys::NET_REVEAL_TOTAL),
            "clean un-evicted fleet failed to authenticate everything"
        );
    } else if spec.flood > 0.0 {
        let gap = (report.auth_rate - report.expected_rate).abs();
        assert!(
            gap <= tolerance,
            "fleet auth rate {:.4} vs expected {:.4}: gap {gap:.4} > tolerance {tolerance}",
            report.auth_rate,
            report.expected_rate
        );
    }
}

/// The soak invariants the ci.sh gate relies on. Only meaningful on a
/// clean wire (`loss = corrupt = 0`): every reveal then arrives, and
/// the *only* way a genuine reveal fails is reservoir eviction by the
/// flood — which is precisely the `1 − p^m` experiment.
fn assert_soak(spec: &LoopbackSpec, report: &dap_net::loopback::LoopbackReport, tolerance: f64) {
    use dap_simnet::keys;

    assert!(
        spec.loss == 0.0 && spec.corrupt == 0.0,
        "--assert-soak needs a clean wire (loss = corrupt = 0)"
    );
    let m = &report.metrics;
    // Nothing on a clean wire may be dropped, garbled or forged-key'd.
    assert_eq!(
        m.get(keys::NET_INGRESS_DROPPED),
        0,
        "backpressure run shed frames"
    );
    assert_eq!(
        m.get(keys::NET_DECODE_ERRORS),
        0,
        "clean wire had decode errors"
    );
    assert_eq!(
        m.get(keys::NET_REVEAL_WEAK_REJECTED),
        0,
        "genuine key rejected"
    );
    assert_eq!(
        m.get(keys::NET_REVEAL_NO_CANDIDATE),
        0,
        "pool vanished on clean wire"
    );
    // Every interval's reveal arrived and was decided one way:
    assert_eq!(
        m.get(keys::NET_REVEAL_TOTAL),
        spec.intervals,
        "reveals lost"
    );
    assert_eq!(
        m.get(keys::NET_REVEAL_AUTH) + m.get(keys::NET_REVEAL_STRONG_REJECTED),
        m.get(keys::NET_REVEAL_TOTAL),
        "reveal outcomes do not balance"
    );
    if spec.flood == 0.0 {
        // No adversary: 100% of genuine reveals must authenticate.
        assert_eq!(
            m.get(keys::NET_REVEAL_AUTH),
            m.get(keys::NET_REVEAL_TOTAL),
            "clean run failed to authenticate everything"
        );
    } else {
        // Under flood: the buffer-hit rate tracks the paper's 1 − p^m.
        let gap = (report.auth_rate - report.expected_rate).abs();
        assert!(
            gap <= tolerance,
            "auth rate {:.4} vs expected {:.4}: gap {gap:.4} > tolerance {tolerance}",
            report.auth_rate,
            report.expected_rate
        );
    }
}

fn run_sender(opts: &Opts) {
    let seed: u64 = opts.get_or("seed", 2016);
    let intervals: u64 = opts.get_or("intervals", 60);
    let copies: u32 = opts.get_or("copies", 2);
    let tick_us: u64 = opts.get_or("tick-us", 1000);
    let target = opts.get("target").expect("sender needs --target host:port");
    let bind = opts.get("bind").unwrap_or("127.0.0.1:0");

    let chain_len = usize::try_from(intervals).expect("interval count") + 2;
    let sender = DapSender::new(&seed.to_be_bytes(), chain_len, udp_params(8));
    let transport = UdpTransport::sender(bind, target).expect("bind sender socket");
    let clock = RealClock::new(Duration::from_micros(tick_us));
    let tag = opts
        .get("sender-id")
        .map(|id| SenderId(id.parse().expect("--sender-id must be a number")));
    println!(
        "dapd sender -> {target}: {intervals} intervals x {copies} copies, seed {seed}, \
         {tick_us}us ticks{}",
        tag.map_or(String::new(), |id| format!(", sender-id {}", id.0))
    );
    let mut pump = SenderPump::new(sender, transport, clock, copies);
    if let Some(id) = tag {
        pump = pump.with_sender_id(id);
    }
    let stats = pump
        .run(intervals, |i| format!("reading {i}").into_bytes())
        .expect("send failed");
    println!(
        "sender done: {} announces, {} reveals, {} exhausted",
        stats.announces, stats.reveals, stats.exhausted
    );
}

fn run_receiver(opts: &Opts) {
    let seed: u64 = opts.get_or("seed", 2016);
    let intervals: u64 = opts.get_or("intervals", 60);
    let buffers: usize = opts.get_or("buffers", 8);
    let shards: usize = opts.get_or("shards", 4);
    let queue_depth: usize = opts.get_or("queue-depth", 1024);
    let duration_ms: u64 = opts.get_or("duration-ms", 10_000);
    let tick_us: u64 = opts.get_or("tick-us", 1000);
    let bind = opts.get("bind").expect("receiver needs --bind host:port");

    sigint::install();

    // Derive the sender's commitment from the shared seed (the demo's
    // stand-in for out-of-band bootstrap). The chain commitment is the
    // *end* of the chain, so both sides must agree on `--intervals` too
    // — a different chain length is a different commitment.
    let chain_len = usize::try_from(intervals).expect("interval count") + 2;
    let bootstrap = DapSender::new(&seed.to_be_bytes(), chain_len, udp_params(buffers)).bootstrap();
    let mut transport =
        UdpTransport::receiver(bind, Duration::from_millis(20)).expect("bind receiver socket");
    let shared = opts
        .get("telemetry")
        .map(|_| Arc::new(SharedRegistry::new(shards)));
    let server = opts.get("telemetry").map(|addr| {
        let server = TelemetryServer::bind(addr, Arc::clone(shared.as_ref().expect("built above")))
            .expect("bind --telemetry listener");
        eprintln!("telemetry: http://{}/", server.local_addr());
        server
    });
    let pool = ReceiverPool::spawn_with_obs(
        PoolConfig {
            shards,
            queue_depth,
            overflow: OverflowPolicy::DropCount,
            route: RoutePolicy::ByInterval,
            ..PoolConfig::default()
        },
        seed,
        |shard| DapShard::new(bootstrap, &[b'u', b'd', b'p', shard as u8]),
        PoolObs {
            time: TimeSource::wall(),
            trace_depth: trace_depth(opts),
            publish: shared,
            // Live enough for a scrape without a per-frame lock.
            publish_every: 256,
            span_every: span_every(opts),
        },
    );
    let handle = pool.handle();
    println!(
        "dapd receiver on {bind}: m={buffers} shards={shards} depth={queue_depth}, \
         listening {duration_ms}ms (Ctrl-C for early snapshot)"
    );
    let deadline = Instant::now() + Duration::from_millis(duration_ms);
    let schedule = udp_params(buffers).schedule();
    // The two processes share no epoch: anchor the receiver's clock on
    // the interval the first frame claims (loose sync by first contact).
    let mut clock: Option<RealClock> = None;
    let mut buf = vec![0u8; dap_core::codec::MAX_FRAME_LEN];
    while Instant::now() < deadline && !sigint::interrupted() {
        match transport.recv(&mut buf) {
            Ok(Some(n)) => {
                let at = clock
                    .get_or_insert_with(|| {
                        let index = dap_core::codec::peek_index(&buf[..n]).unwrap_or(1);
                        RealClock::anchored_at(
                            Duration::from_micros(tick_us),
                            schedule.start_of(index),
                        )
                    })
                    .now();
                handle.ingest(&buf[..n], at);
            }
            Ok(None) => {}
            Err(e) => panic!("receiver socket error: {e}"),
        }
    }
    if sigint::interrupted() {
        println!("interrupted: draining shards and snapshotting");
    }
    let report = pool.shutdown_with_report();
    print!("{}", report.registry.render());
    if let Some(path) = opts.get("trace-out") {
        write_trace(path, &report.trace, &TimeSource::wall());
    }
    let counters = report.registry.counters();
    let auth = counters.get(dap_simnet::keys::NET_REVEAL_AUTH);
    let total = counters.get(dap_simnet::keys::NET_REVEAL_TOTAL);
    println!("receiver done: {auth}/{total} reveals authenticated");
    if let Some(server) = server {
        server.stop();
    }
}

fn run_flooder(opts: &Opts) {
    let seed: u64 = opts.get_or("seed", 666);
    let p: f64 = opts.get_or("flood", 0.9);
    let rate: u64 = opts.get_or("rate", 2000);
    let duration_ms: u64 = opts.get_or("duration-ms", 10_000);
    let tick_us: u64 = opts.get_or("tick-us", 1000);
    let target = opts
        .get("target")
        .expect("flooder needs --target host:port");

    let transport = UdpTransport::sender("127.0.0.1:0", target).expect("bind flooder socket");
    let clock = RealClock::new(Duration::from_micros(tick_us));
    let schedule = udp_params(8).schedule();
    let mut flooder = Flooder::new(transport, seed, p);
    let spoof = opts
        .get("spoof")
        .map(|id| SenderId(id.parse().expect("--spoof must be a sender id number")));
    println!(
        "dapd flooder -> {target}: p={p} ({rate} forged/s for {duration_ms}ms, seed {seed}{})",
        spoof.map_or(String::new(), |id| format!(", spoofing sender {}", id.0))
    );
    let deadline = Instant::now() + Duration::from_millis(duration_ms);
    // Send in 10ms batches so the claimed interval index stays current.
    let batch = (rate / 100).max(1);
    let mut sent = 0u64;
    while Instant::now() < deadline {
        match spoof {
            // Spoofed fleet attack: tagged forgeries claiming a victim.
            Some(victim) => {
                let index = schedule.index_at(clock.now());
                for _ in 0..batch {
                    flooder
                        .send_forged_as(victim, index)
                        .expect("flood send failed");
                }
                sent += batch;
            }
            None => {
                sent += flooder
                    .flood_current(&clock, &schedule, batch)
                    .expect("flood send failed");
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("flooder done: {sent} forged announces");
}
