//! Wire-runtime benchmarks: ingress throughput through the sharded
//! pool and per-frame verify latency for DAP and TESLA++ behind the
//! same codec.
//!
//! Usage: `cargo run --release -p dap-net --bin netbench [out_dir]`
//!
//! Writes `BENCH_net.json` into `out_dir` (default: current directory)
//! and prints the same numbers to stdout. Per-frame lanes stream their
//! samples through a [`Histogram`], so each lane reports p50/p95/p99
//! alongside the mean — tail latency is what a DoS posture cares
//! about, and a mean hides it. `DAP_BENCH_MS` scales the measurement
//! budget (default 100 ms) — `DAP_BENCH_MS=5` is the CI smoke shape.

use std::time::Instant;

use dap_bench::json::{array, JsonObject};
use dap_bench::timer::measure_counted;
use dap_core::{codec, DapMessage, DapParams, DapReceiver, DapSender, Reveal, SenderId};
use dap_net::adversary::AdversaryClass;
use dap_net::fleet::{run_fleet, FleetSpec};
use dap_net::loopback::{run_loopback, LoopbackSpec};
use dap_net::pool::{DapShard, FrameVerifier, LiveCounters, TeslaPpShard};
use dap_obs::Histogram;
use dap_simnet::{keys, Registry, SimDuration, SimRng, SimTime};
use dap_tesla::teslapp::{TeslaPpMessage, TeslaPpOutcome, TeslaPpReceiver, TeslaPpSender};
use dap_tesla::TeslaParams;

fn budget_ms() -> u64 {
    std::env::var("DAP_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// Survival numbers for one overload-matrix cell: what the fleet
/// report says happened to pinned vs unpinned senders under attack.
struct Survival {
    pinned_permille: u64,
    unpinned_permille: u64,
    shed_permille: u64,
    evictions: u64,
}

struct Lane {
    name: String,
    /// Mean nanoseconds spent per frame.
    ns_per_frame: u64,
    /// The same number as a rate.
    frames_per_sec: f64,
    /// Frames behind the measurement (1 for `measure`-style lanes).
    frames: u64,
    /// Per-frame latency quantiles `(p50, p95, p99)`; absent for lanes
    /// without per-frame samples.
    quantiles: Option<(u64, u64, u64)>,
    /// Overload-matrix cells carry their survival numbers into the
    /// JSON; absent for pure throughput/latency lanes.
    survival: Option<Survival>,
}

impl Lane {
    /// A `measure_counted`-style lane: mean ns per frame plus the
    /// number of timed iterations that produced it, so frames-weighted
    /// rollups of the JSON weigh the lane by real work.
    fn from_iters(name: impl Into<String>, (ns, iters): (u64, u64)) -> Self {
        Self {
            name: name.into(),
            ns_per_frame: ns,
            frames_per_sec: 1e9 / ns.max(1) as f64,
            frames: iters,
            quantiles: None,
            survival: None,
        }
    }

    fn from_batch(name: impl Into<String>, frames: u64, elapsed_ns: u128) -> Self {
        let ns = (elapsed_ns / u128::from(frames.max(1))).max(1) as u64;
        Self {
            name: name.into(),
            ns_per_frame: ns,
            frames_per_sec: 1e9 / ns as f64,
            frames,
            quantiles: None,
            survival: None,
        }
    }

    /// A batch lane with streamed per-frame samples: mean from the
    /// batch total, tail from the histogram.
    fn from_hist(name: impl Into<String>, frames: u64, elapsed_ns: u128, hist: &Histogram) -> Self {
        let mut lane = Self::from_batch(name, frames, elapsed_ns);
        lane.quantiles = match (hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99)) {
            (Some(p50), Some(p95), Some(p99)) => Some((p50, p95, p99)),
            _ => None,
        };
        lane
    }
}

/// End-to-end frames/sec through encode → transport → shard routing →
/// bounded queues → decode → verify, on the seeded loopback campaign.
/// The traced twin runs the identical campaign with the ring trace and
/// the flight recorder sampling every datagram — the pair is the
/// observability-overhead measurement ci.sh gates at ≤ 10%.
fn bench_ingest_pair() -> (Lane, Lane) {
    let spec_with = |trace_depth, span_every| LoopbackSpec {
        // Floor of 1000 even on the smoke budget: the traced/untraced
        // pair feeds a ratio gate, and under ~1000 intervals the fixed
        // setup costs (thread spawn, ring prealloc, trace collection)
        // swamp the per-frame signal the gate is about.
        intervals: (budget_ms() * 10).clamp(1000, 4000),
        trace_depth,
        span_every,
        ..LoopbackSpec::default()
    };
    // The traced twin runs the flight-recorder posture: per-shard
    // retain-last-8192 rings (the black-box model — keep the recent
    // window, bounded memory) with spans sampled on every frame.
    let specs = [spec_with(0, 0), spec_with(8192, 1)];
    // The gate divides these two numbers, so measure them as
    // interleaved best-of-4 pairs: alternating runs see the same box
    // weather, and the min discards contention spikes that would flap
    // a 10% ratio threshold if each lane were timed in isolation.
    let mut frames = [0u64; 2];
    let mut best = [u128::MAX; 2];
    for _ in 0..4 {
        for (i, spec) in specs.iter().enumerate() {
            let t0 = Instant::now();
            let report = run_loopback(spec);
            frames[i] = report.frames;
            best[i] = best[i].min(t0.elapsed().as_nanos());
        }
    }
    (
        Lane::from_batch("loopback_ingest", frames[0], best[0]),
        Lane::from_batch("loopback_ingest_traced", frames[1], best[1]),
    )
}

/// Fleet frames/sec: tagged frames from many senders through
/// sender-routing, session tables and per-session verify — the
/// many-to-one ingress path `tests/fleet_soak.rs` gates.
fn bench_fleet_ingest() -> Lane {
    let spec = FleetSpec {
        senders: (budget_ms() * 2).clamp(32, 512),
        intervals: 6,
        ..FleetSpec::default()
    };
    let t0 = Instant::now();
    let report = run_fleet(&spec);
    Lane::from_batch("fleet_ingest", report.frames, t0.elapsed().as_nanos())
}

/// The interval grid both verify lanes use: `d = 1`, synchronised.
fn bench_params() -> DapParams {
    DapParams::new(SimDuration(100), 1, 0, 8)
}

fn during(i: u64) -> SimTime {
    SimTime((i - 1) * 100 + 10)
}

/// Times one call, feeding the sample into `hist` and the batch total.
fn sample(hist: &mut Histogram, total: &mut u128, mut call: impl FnMut()) {
    let t0 = Instant::now();
    call();
    let ns = t0.elapsed().as_nanos();
    hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
    *total += ns;
}

/// DAP verify latency. The flood lane hammers one announce over and
/// over — the reservoir bounds state at `m`, so that is a stationary
/// measurement of the attack's per-frame cost. The announce and reveal
/// lanes interleave over fresh intervals (the receiver GCs pools more
/// than d + 2 intervals old — that bound is the point of the protocol)
/// with only the measured call inside the timer.
fn bench_dap_verify() -> (Lane, Lane, Lane) {
    const REVEALS: u64 = 2048;
    let chain = usize::try_from(REVEALS).expect("fits") + 4;
    let mut sender = DapSender::new(b"netbench/dap", chain, bench_params());
    let mut shard = DapShard::new(sender.bootstrap(), b"netbench");
    let mut rng = SimRng::new(7);
    let mut registry = Registry::new();
    let live = LiveCounters::default();

    let flood_frame = DapMessage::Announce(
        sender
            .announce(1, b"hot-path reading")
            .expect("fresh chain"),
    );
    let flood_sample = measure_counted(|| {
        shard.on_frame(
            SenderId::UNTAGGED,
            &flood_frame,
            during(1),
            &mut rng,
            &mut registry,
            &live,
        );
    });

    let mut announce_hist = Histogram::new();
    let mut reveal_hist = Histogram::new();
    let mut announce_elapsed: u128 = 0;
    let mut reveal_elapsed: u128 = 0;
    for i in 2..2 + REVEALS {
        let frame = DapMessage::Announce(sender.announce(i, b"batched reading").expect("chain"));
        sample(&mut announce_hist, &mut announce_elapsed, || {
            shard.on_frame(
                SenderId::UNTAGGED,
                &frame,
                during(i),
                &mut rng,
                &mut registry,
                &live,
            );
        });

        let frame = DapMessage::Reveal(sender.reveal(i).expect("announced"));
        sample(&mut reveal_hist, &mut reveal_elapsed, || {
            shard.on_frame(
                SenderId::UNTAGGED,
                &frame,
                during(i + 1),
                &mut rng,
                &mut registry,
                &live,
            );
        });
    }
    assert_eq!(
        registry.counters().get(keys::NET_REVEAL_AUTH),
        REVEALS,
        "bench reveals must authenticate for the timing to mean anything"
    );
    (
        Lane::from_iters("dap_flood_announce", flood_sample),
        Lane::from_hist(
            "dap_announce_verify",
            REVEALS,
            announce_elapsed,
            &announce_hist,
        ),
        Lane::from_hist("dap_reveal_verify", REVEALS, reveal_elapsed, &reveal_hist),
    )
}

/// TESLA++ over the identical byte stream (converted frames), as the
/// comparison baseline. No stationary flood lane here: TESLA++ stores
/// *every* safe announcement until its reveal window expires, so
/// hammering one index only measures that list growing — which is
/// TESLA++'s flood weakness, not a per-frame cost.
fn bench_teslapp_verify() -> (Lane, Lane) {
    const REVEALS: u64 = 2048;
    let chain = usize::try_from(REVEALS).expect("fits") + 4;
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let mut sender = TeslaPpSender::new(b"netbench/tpp", chain, params);
    let mut shard = TeslaPpShard::new(sender.bootstrap(), b"netbench");
    let mut rng = SimRng::new(7);
    let mut registry = Registry::new();
    let live = LiveCounters::default();

    let mut announce_hist = Histogram::new();
    let mut reveal_hist = Histogram::new();
    let mut announce_elapsed: u128 = 0;
    let mut reveal_elapsed: u128 = 0;
    for i in 1..=REVEALS {
        let TeslaPpMessage::MacAnnounce { index, mac } =
            sender.announce(i, b"batched reading").expect("fresh chain")
        else {
            unreachable!("announce returns MacAnnounce")
        };
        let frame = DapMessage::Announce(dap_core::Announce { index, mac });
        sample(&mut announce_hist, &mut announce_elapsed, || {
            shard.on_frame(
                SenderId::UNTAGGED,
                &frame,
                during(i),
                &mut rng,
                &mut registry,
                &live,
            );
        });

        let TeslaPpMessage::Reveal {
            index,
            message,
            key,
        } = sender.reveal(i).expect("announced")
        else {
            unreachable!("reveal returns Reveal")
        };
        let frame = DapMessage::Reveal(dap_core::Reveal {
            index,
            message,
            key,
        });
        sample(&mut reveal_hist, &mut reveal_elapsed, || {
            shard.on_frame(
                SenderId::UNTAGGED,
                &frame,
                during(i + 1),
                &mut rng,
                &mut registry,
                &live,
            );
        });
    }
    assert_eq!(
        registry.counters().get(keys::NET_REVEAL_AUTH),
        REVEALS,
        "bench reveals must authenticate for the timing to mean anything"
    );
    (
        Lane::from_hist(
            "teslapp_announce_verify",
            REVEALS,
            announce_elapsed,
            &announce_hist,
        ),
        Lane::from_hist(
            "teslapp_reveal_verify",
            REVEALS,
            reveal_elapsed,
            &reveal_hist,
        ),
    )
}

/// Batched DAP reveal verify: the amortized + lane-parallel pipeline
/// the windowed pool drain runs. 64 sender/receiver pairs per window —
/// the fleet shape, where one drain window carries one reveal from each
/// of many sessions — so every flush hands the multi-lane compressor a
/// full batch. Timed per window: one `precompute_reveals` over all 64
/// reveals, then the sequential consume loop. The scalar reference is
/// the `dap_reveal_verify` lane; ci.sh gates this one at ≥ 2× its
/// frames/sec.
fn bench_dap_reveal_batched() -> Lane {
    const PAIRS: usize = 64;
    const INTERVALS: u64 = 32;
    let chain = usize::try_from(INTERVALS).expect("fits") + 4;
    let mut senders: Vec<DapSender> = (0..PAIRS)
        .map(|p| {
            DapSender::new(
                format!("netbench/dap-batch/{p}").as_bytes(),
                chain,
                bench_params(),
            )
        })
        .collect();
    let mut receivers: Vec<DapReceiver> = senders
        .iter()
        .map(|s| DapReceiver::new(s.bootstrap(), b"netbench"))
        .collect();
    let mut rng = SimRng::new(7);
    let mut elapsed: u128 = 0;
    let mut hist = Histogram::new();
    let mut authenticated = 0u64;
    for i in 1..=INTERVALS {
        // Announces land untimed — this lane measures reveal verify.
        for (sender, receiver) in senders.iter_mut().zip(receivers.iter_mut()) {
            let announce = sender.announce(i, b"batched reading").expect("chain");
            receiver.on_announce(&announce, during(i), &mut rng);
        }
        let reveals: Vec<Reveal> = senders
            .iter_mut()
            .map(|s| s.reveal(i).expect("announced"))
            .collect();
        let t0 = Instant::now();
        let items: Vec<(&DapReceiver, &Reveal)> = receivers.iter().zip(reveals.iter()).collect();
        let pres = DapReceiver::precompute_reveals(&items);
        for ((receiver, reveal), pre) in receivers.iter_mut().zip(reveals.iter()).zip(pres.iter()) {
            if receiver
                .on_reveal_precomputed(reveal, during(i + 1), pre)
                .is_authenticated()
            {
                authenticated += 1;
            }
        }
        let window_ns = t0.elapsed().as_nanos();
        elapsed += window_ns;
        // The window is the amortization unit: each of its frames paid
        // an equal share, so the quantiles stream one share per frame.
        hist.record_n(
            u64::try_from(window_ns / PAIRS as u128).unwrap_or(u64::MAX),
            PAIRS as u64,
        );
    }
    assert_eq!(
        authenticated,
        PAIRS as u64 * INTERVALS,
        "bench reveals must authenticate for the timing to mean anything"
    );
    Lane::from_hist(
        "dap_reveal_verify_batched",
        PAIRS as u64 * INTERVALS,
        elapsed,
        &hist,
    )
}

/// Batched TESLA++ reveal verify over the same fleet shape, against the
/// `teslapp_reveal_verify` scalar lane.
fn bench_teslapp_reveal_batched() -> Lane {
    const PAIRS: usize = 64;
    const INTERVALS: u64 = 32;
    let chain = usize::try_from(INTERVALS).expect("fits") + 4;
    let params = TeslaParams::new(SimDuration(100), 1, 0);
    let mut senders: Vec<TeslaPpSender> = (0..PAIRS)
        .map(|p| TeslaPpSender::new(format!("netbench/tpp-batch/{p}").as_bytes(), chain, params))
        .collect();
    let mut receivers: Vec<TeslaPpReceiver> = senders
        .iter()
        .map(|s| TeslaPpReceiver::new(s.bootstrap(), b"netbench"))
        .collect();
    let mut elapsed: u128 = 0;
    let mut hist = Histogram::new();
    let mut authenticated = 0u64;
    for i in 1..=INTERVALS {
        for (sender, receiver) in senders.iter_mut().zip(receivers.iter_mut()) {
            let announce = sender.announce(i, b"batched reading").expect("chain");
            receiver.on_message(&announce, during(i));
        }
        let reveals: Vec<TeslaPpMessage> = senders
            .iter_mut()
            .map(|s| s.reveal(i).expect("announced"))
            .collect();
        let t0 = Instant::now();
        let items: Vec<(&TeslaPpReceiver, &TeslaPpMessage)> =
            receivers.iter().zip(reveals.iter()).collect();
        let pres = TeslaPpReceiver::precompute_reveals(&items);
        for ((receiver, message), pre) in receivers.iter_mut().zip(reveals.iter()).zip(pres.iter())
        {
            let outcome = match pre {
                Some(p) => receiver.on_message_precomputed(message, during(i + 1), p),
                None => receiver.on_message(message, during(i + 1)),
            };
            if matches!(outcome, TeslaPpOutcome::Authenticated { .. }) {
                authenticated += 1;
            }
        }
        let window_ns = t0.elapsed().as_nanos();
        elapsed += window_ns;
        hist.record_n(
            u64::try_from(window_ns / PAIRS as u128).unwrap_or(u64::MAX),
            PAIRS as u64,
        );
    }
    assert_eq!(
        authenticated,
        PAIRS as u64 * INTERVALS,
        "bench reveals must authenticate for the timing to mean anything"
    );
    Lane::from_hist(
        "teslapp_reveal_verify_batched",
        PAIRS as u64 * INTERVALS,
        elapsed,
        &hist,
    )
}

/// The adversary-class × defender-posture survival matrix (DESIGN §11,
/// EXPERIMENTS.md recipe): every adversary class at p = 0.9 against
/// two postures over the same pinned fleet (ids 1–4): `fifo` drains
/// unbounded in arrival order (the pre-overload defender — nothing
/// sheds, everyone pays), `prioritized` caps each shard's per-window
/// verify budget so pinned/high-score frames verify first and the
/// surplus is shed with attribution. Each cell is one seeded fleet
/// campaign; the lane carries ingest throughput plus the survival
/// numbers (worst pinned / unpinned auth permille, shed fraction,
/// eviction churn) into the JSON.
fn bench_overload_matrix() -> Vec<Lane> {
    let senders = (budget_ms() / 2).clamp(16, 64);
    let postures: [(&str, usize); 2] = [("fifo", usize::MAX), ("prioritized", 64)];
    let mut lanes = Vec::new();
    println!("overload survival matrix (p = 0.9, {senders} senders, pins 1-4):");
    println!(
        "  {:<16} {:<12} {:>9} {:>11} {:>7} {:>10}",
        "class", "posture", "pinned", "unpinned", "shed", "evictions"
    );
    for class in AdversaryClass::ALL {
        for (posture, drain_budget) in postures {
            let spec = FleetSpec {
                seed: 20_160_900,
                senders,
                intervals: 6,
                flood: 0.9,
                pins: vec![1, 2, 3, 4],
                adversary: class,
                drain_budget,
                ..FleetSpec::default()
            };
            let t0 = Instant::now();
            let report = run_fleet(&spec);
            let mut lane = Lane::from_batch(
                format!("overload_{}_{posture}", class.label()),
                report.frames,
                t0.elapsed().as_nanos(),
            );
            let survival = Survival {
                pinned_permille: report.min_pinned_auth_permille.unwrap_or(0),
                unpinned_permille: report.min_unpinned_auth_permille.unwrap_or(0),
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                shed_permille: (report.shed_fraction * 1000.0).round() as u64,
                evictions: report.evictions,
            };
            println!(
                "  {:<16} {:<12} {:>8}‰ {:>10}‰ {:>6}‰ {:>10}",
                class.label(),
                posture,
                survival.pinned_permille,
                survival.unpinned_permille,
                survival.shed_permille,
                survival.evictions
            );
            lane.survival = Some(survival);
            lanes.push(lane);
        }
    }
    lanes
}

/// Raw codec cost for context: encode + reassemble + decode one reveal.
fn bench_codec() -> Lane {
    let params = bench_params();
    let mut sender = DapSender::new(b"netbench/codec", 8, params);
    sender.announce(1, b"codec reading").expect("fresh chain");
    let frame = codec::encode(&DapMessage::Reveal(sender.reveal(1).expect("announced")))
        .expect("encodable");
    let sample = measure_counted(|| {
        let mut asm = codec::FrameAssembler::new();
        asm.push(&frame);
        asm.next_frame().expect("whole frame")
    });
    Lane::from_iters("codec_roundtrip", sample)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| ".".into());

    let (ingest, ingest_traced) = bench_ingest_pair();
    let fleet = bench_fleet_ingest();
    let (dap_flood, dap_announce, dap_reveal) = bench_dap_verify();
    let dap_reveal_batched = bench_dap_reveal_batched();
    let (tpp_announce, tpp_reveal) = bench_teslapp_verify();
    let tpp_reveal_batched = bench_teslapp_reveal_batched();
    let codec_lane = bench_codec();
    let mut lanes = vec![
        ingest,
        ingest_traced,
        fleet,
        dap_flood,
        dap_announce,
        dap_reveal,
        dap_reveal_batched,
        tpp_announce,
        tpp_reveal,
        tpp_reveal_batched,
        codec_lane,
    ];
    lanes.extend(bench_overload_matrix());

    for lane in &lanes {
        let tail = lane.quantiles.map_or(String::new(), |(p50, p95, p99)| {
            format!("   p50={p50} p95={p95} p99={p99}")
        });
        println!(
            "{:<26} {:>10} ns/frame   {:>14.0} frames/s   ({} frames){tail}",
            lane.name, lane.ns_per_frame, lane.frames_per_sec, lane.frames
        );
    }

    let json = array(&lanes, |lane| {
        let mut object = JsonObject::new()
            .str("name", &lane.name)
            .u64("ns_per_frame", lane.ns_per_frame)
            .f64("frames_per_sec", lane.frames_per_sec)
            .u64("frames", lane.frames);
        if let Some((p50, p95, p99)) = lane.quantiles {
            object = object
                .u64("p50_ns", p50)
                .u64("p95_ns", p95)
                .u64("p99_ns", p99);
        }
        if let Some(survival) = &lane.survival {
            object = object
                .u64("pinned_permille", survival.pinned_permille)
                .u64("unpinned_permille", survival.unpinned_permille)
                .u64("shed_permille", survival.shed_permille)
                .u64("evictions", survival.evictions);
        }
        object
    });
    let path = format!("{out_dir}/BENCH_net.json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_net.json");
    println!("wrote {path}");
}
