//! Trace forensics: the analysis engine behind the `daptrace` binary.
//!
//! A `--trace-out` JSONL file is a complete causal narration of a run —
//! every frame arrival, verify span, reservoir decision, key reveal,
//! shed, eviction and posture change, ordered by `(source, seq)`. This
//! module turns that narration into three artefacts:
//!
//! * [`audit`] — checks the causal invariants the pipeline promises
//!   (verify spans pair, shed frames never authenticate, posture epochs
//!   are monotone, reservoirs respect `m`, pinned sessions are never
//!   evicted) and returns every [`Violation`] with its file line;
//! * [`render_report`] — a byte-stable stage-latency breakdown (from
//!   the flight recorder's [`TraceEvent::FrameSpan`] samples) plus an
//!   attack-onset estimate read off the forged-share trajectory the
//!   reservoir decisions encode;
//! * [`render_timeline`] — the per-source / per-sender frame lifecycle,
//!   one human-readable line per record.
//!
//! Everything here is a pure function of the parsed records, so two
//! same-seed traces produce byte-identical audits, reports and
//! timelines — which is exactly what the ci.sh `daptrace` gate `cmp`s.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;

use dap_obs::{ParsedTrace, TraceEvent, TraceRecord};
use dap_simnet::Samples;

/// One broken invariant, pointing at the 1-indexed JSONL line of the
/// record that broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-indexed line in the trace file (header included in the count).
    pub line: usize,
    /// The invariant's stable rule name.
    pub rule: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    /// The stable one-line rendering the audit output uses.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "violation line {}: [{}] {}",
            self.line, self.rule, self.detail
        )
    }
}

/// Per-source audit state: one verify span may be open at a time, shed
/// tails must stay quiet, epochs must move forward.
#[derive(Debug, Default)]
struct SourceState {
    /// The open verify span's interval and line, if any.
    pending_verify: Option<(u64, usize)>,
    /// `true` between a `ShedDecision` and the next `FrameRx`: shed
    /// frames were never decoded, so nothing frame-scoped may happen.
    in_shed_tail: bool,
    /// Line of the shed that opened the current tail.
    shed_line: usize,
    /// Last posture epoch seen (strictly increasing per source).
    last_posture_epoch: Option<u64>,
    /// Last control-estimate epoch seen (non-decreasing per source).
    last_estimate_epoch: Option<u64>,
    /// Outcome and interval of the most recent `VerifyEnd`, which a
    /// following `FrameSpan` must agree with.
    last_verdict: Option<(&'static str, u64)>,
}

/// One reconstructed reservoir session stream: the paper's offer
/// counter `k` runs 1, 2, 3, … per session, so per `(source, interval)`
/// the decisions decompose into streams whose `k`s are sequential.
#[derive(Debug)]
struct ReservoirStream {
    last_k: u64,
    kept: u64,
    m: u64,
}

/// Audits a parsed trace against the pipeline's causal invariants.
/// `pinned` is the operator pin roster the run was started with
/// (`--pin` / `--pin-first`); pinned senders must never be evicted.
///
/// The returned violations are in file-line order.
#[must_use]
pub fn audit(trace: &ParsedTrace, pinned: &BTreeSet<u64>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let offset = usize::from(trace.header.is_some());
    let mut sources: BTreeMap<u32, SourceState> = BTreeMap::new();
    // Reservoir streams keyed by (source, interval): a `k == 1` opens a
    // stream, `k > 1` must extend the stream whose last offer was
    // `k - 1` (fleet shards interleave several senders' sessions on one
    // source, so this is a multiset, not a scalar).
    let mut reservoirs: BTreeMap<(u32, u64), Vec<ReservoirStream>> = BTreeMap::new();
    for (idx, record) in trace.records.iter().enumerate() {
        let line = idx + 1 + offset;
        let state = sources.entry(record.source).or_default();
        audit_record(
            record,
            line,
            state,
            &mut reservoirs,
            pinned,
            &mut violations,
        );
    }
    for (source, state) in &sources {
        if let Some((interval, line)) = state.pending_verify {
            violations.push(Violation {
                line,
                rule: "verify-pairing",
                detail: format!(
                    "source {source} ends with an unpaired verify_start (interval {interval})"
                ),
            });
        }
    }
    violations.sort_by_key(|v| v.line);
    violations
}

fn audit_record(
    record: &TraceRecord,
    line: usize,
    state: &mut SourceState,
    reservoirs: &mut BTreeMap<(u32, u64), Vec<ReservoirStream>>,
    pinned: &BTreeSet<u64>,
    violations: &mut Vec<Violation>,
) {
    // Shed quiescence: a shed frame was never decoded, so between its
    // ShedDecision and the next FrameRx on the same source nothing
    // frame-scoped (verify, buffer, reveal, eviction, span) may appear.
    let frame_scoped = matches!(
        record.event,
        TraceEvent::VerifyStart { .. }
            | TraceEvent::VerifyEnd { .. }
            | TraceEvent::BufferDecision { .. }
            | TraceEvent::KeyReveal { .. }
            | TraceEvent::SessionEvicted { .. }
            | TraceEvent::FrameSpan { .. }
    );
    if state.in_shed_tail && frame_scoped {
        violations.push(Violation {
            line,
            rule: "shed-quiescence",
            detail: format!(
                "{} after the shed at line {} with no new frame_rx — a shed frame must never \
                 reach the verifier",
                record.event.name(),
                state.shed_line
            ),
        });
    }
    match &record.event {
        TraceEvent::FrameRx { .. } => state.in_shed_tail = false,
        TraceEvent::ShedDecision { .. } => {
            state.in_shed_tail = true;
            state.shed_line = line;
        }
        TraceEvent::VerifyStart { interval } => {
            if let Some((open, open_line)) = state.pending_verify {
                violations.push(Violation {
                    line,
                    rule: "verify-pairing",
                    detail: format!(
                        "verify_start (interval {interval}) while the verify from line \
                         {open_line} (interval {open}) is still open"
                    ),
                });
            }
            state.pending_verify = Some((*interval, line));
        }
        TraceEvent::VerifyEnd {
            interval, outcome, ..
        } => {
            match state.pending_verify.take() {
                Some((open, _)) if open == *interval => {}
                Some((open, open_line)) => violations.push(Violation {
                    line,
                    rule: "verify-pairing",
                    detail: format!(
                        "verify_end interval {interval} closes the verify from line {open_line} \
                         which claimed interval {open}"
                    ),
                }),
                None => violations.push(Violation {
                    line,
                    rule: "verify-pairing",
                    detail: format!("verify_end (interval {interval}) with no open verify_start"),
                }),
            }
            state.last_verdict = Some((outcome, *interval));
        }
        TraceEvent::FrameSpan {
            interval, outcome, ..
        } => match state.last_verdict {
            Some((verdict, verdict_interval))
                if verdict == *outcome && verdict_interval == *interval => {}
            Some((verdict, verdict_interval)) => violations.push(Violation {
                line,
                rule: "span-agreement",
                detail: format!(
                    "frame_span says ({outcome}, interval {interval}) but the frame's verify_end \
                     said ({verdict}, interval {verdict_interval})"
                ),
            }),
            None => violations.push(Violation {
                line,
                rule: "span-agreement",
                detail: "frame_span with no preceding verify_end on this source".to_string(),
            }),
        },
        TraceEvent::BufferDecision {
            interval,
            kept,
            k,
            m,
        } => audit_reservoir(
            record.source,
            line,
            *interval,
            *kept,
            *k,
            *m,
            reservoirs,
            violations,
        ),
        TraceEvent::PostureChange { epoch, .. } => {
            if state.last_posture_epoch.is_some_and(|last| *epoch <= last) {
                violations.push(Violation {
                    line,
                    rule: "epoch-monotone",
                    detail: format!(
                        "posture_change epoch {epoch} does not advance past {}",
                        state.last_posture_epoch.unwrap_or(0)
                    ),
                });
            }
            state.last_posture_epoch = Some(*epoch);
        }
        TraceEvent::ControlEstimate { epoch, .. } => {
            if state.last_estimate_epoch.is_some_and(|last| *epoch < last) {
                violations.push(Violation {
                    line,
                    rule: "epoch-monotone",
                    detail: format!(
                        "control_estimate epoch {epoch} went backwards from {}",
                        state.last_estimate_epoch.unwrap_or(0)
                    ),
                });
            }
            state.last_estimate_epoch = Some(*epoch);
        }
        TraceEvent::SessionEvicted { sender, .. } => {
            if pinned.contains(sender) {
                violations.push(Violation {
                    line,
                    rule: "pin-respected",
                    detail: format!("pinned sender {sender} was evicted"),
                });
            }
        }
        TraceEvent::KeyReveal { .. }
        | TraceEvent::ShardStall { .. }
        | TraceEvent::FaultInjected { .. } => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn audit_reservoir(
    source: u32,
    line: usize,
    interval: u64,
    kept: bool,
    k: u64,
    m: u64,
    reservoirs: &mut BTreeMap<(u32, u64), Vec<ReservoirStream>>,
    violations: &mut Vec<Violation>,
) {
    // Algorithm 1: the first m offers are always stored; later offers
    // replace uniformly. `k <= m` with `kept == false` is impossible.
    if k <= m && !kept {
        violations.push(Violation {
            line,
            rule: "reservoir-bound",
            detail: format!("offer k={k} <= m={m} was rejected — the first m offers always keep"),
        });
    }
    if k == 0 {
        violations.push(Violation {
            line,
            rule: "reservoir-bound",
            detail: "offer counter k=0 — k is 1-indexed".to_string(),
        });
        return;
    }
    let streams = reservoirs.entry((source, interval)).or_default();
    if k == 1 {
        streams.push(ReservoirStream {
            last_k: 1,
            kept: u64::from(kept),
            m,
        });
        return;
    }
    // Greedy attachment: extend the session stream whose offer counter
    // sits at k - 1. Per-session ks are strictly sequential, so a miss
    // means the trace skipped (or duplicated) an offer.
    match streams.iter_mut().find(|s| s.last_k == k - 1) {
        Some(stream) => {
            stream.last_k = k;
            if kept && k <= stream.m {
                stream.kept += 1;
                if stream.kept > stream.m {
                    violations.push(Violation {
                        line,
                        rule: "reservoir-bound",
                        detail: format!(
                            "interval {interval} stream kept {} first-offer entries with m={}",
                            stream.kept, stream.m
                        ),
                    });
                }
            }
        }
        None => violations.push(Violation {
            line,
            rule: "reservoir-bound",
            detail: format!(
                "offer k={k} (interval {interval}) extends no session stream at k={}",
                k - 1
            ),
        }),
    }
}

/// The per-stage sample pools a report aggregates: label → collector.
fn stage_samples(trace: &ParsedTrace) -> Vec<(&'static str, Samples)> {
    let mut stages: Vec<(&'static str, Samples)> = [
        "ingress",
        "queue_wait",
        "decode",
        "prefetch",
        "verify",
        "buffer",
        "reveal_auth",
    ]
    .iter()
    .map(|label| (*label, Samples::new()))
    .collect();
    for record in &trace.records {
        if let TraceEvent::FrameSpan {
            ingress_ns,
            queue_ns,
            decode_ns,
            prefetch_ns,
            verify_ns,
            buffer_ns,
            reveal_ns,
            ..
        } = &record.event
        {
            let values = [
                *ingress_ns,
                *queue_ns,
                *decode_ns,
                *prefetch_ns,
                *verify_ns,
                *buffer_ns,
                *reveal_ns,
            ];
            for ((_, samples), value) in stages.iter_mut().zip(values) {
                samples.record(u64::from(value));
            }
        }
    }
    stages
}

/// Per-interval forged-share trajectory: rejected reservoir offers per
/// thousand decisions. A rejected offer (`kept == false`) means the
/// interval's pool was already past `m` offers — under flood, forged
/// announces drive `k` far beyond `m`, so the rejection rate tracks the
/// attacker's bandwidth share.
#[must_use]
pub fn forged_share_trajectory(trace: &ParsedTrace) -> Vec<(u64, u64)> {
    let mut per_interval: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for record in &trace.records {
        if let TraceEvent::BufferDecision { interval, kept, .. } = &record.event {
            let (total, rejected) = per_interval.entry(*interval).or_insert((0, 0));
            *total += 1;
            *rejected += u64::from(!kept);
        }
    }
    per_interval
        .into_iter()
        .map(|(interval, (total, rejected))| (interval, rejected * 1000 / total.max(1)))
        .collect()
}

/// Flood-onset estimate: the first interval opening a run of at least
/// three consecutive trajectory points with a rejection rate of 250
/// permille or more. `None` when the trace never sustains that.
#[must_use]
pub fn attack_onset(trajectory: &[(u64, u64)]) -> Option<u64> {
    let mut run_start = None;
    let mut run_len = 0usize;
    for &(interval, permille) in trajectory {
        if permille >= 250 {
            if run_len == 0 {
                run_start = Some(interval);
            }
            run_len += 1;
            if run_len >= 3 {
                return run_start;
            }
        } else {
            run_len = 0;
            run_start = None;
        }
    }
    None
}

/// Renders the forensic report: stage-latency breakdown, event census,
/// forged-share trajectory and the attack-onset estimate. Byte-stable —
/// a pure function of the records, with no wall-clock or path content.
#[must_use]
pub fn render_report(trace: &ParsedTrace) -> String {
    let mut out = String::new();
    out.push_str("daptrace report\n===============\n");
    let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
    for record in &trace.records {
        *census.entry(record.event.name()).or_insert(0) += 1;
    }
    let _ = writeln!(out, "records: {}", trace.records.len());
    for (name, count) in &census {
        let _ = writeln!(out, "  {name}: {count}");
    }
    out.push_str("\nstage latency (ns)\n");
    out.push_str("stage        count        p50        p95        p99        max\n");
    for (label, mut samples) in stage_samples(trace) {
        let q = |samples: &mut Samples, q: f64| samples.quantile(q).unwrap_or(0);
        let count = samples.len();
        let (p50, p95, p99, max) = (
            q(&mut samples, 0.50),
            q(&mut samples, 0.95),
            q(&mut samples, 0.99),
            samples.max().unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "{label:<12} {count:>5} {p50:>10} {p95:>10} {p99:>10} {max:>10}"
        );
    }
    out.push_str("\nforged-share trajectory (rejected offers, permille per interval)\n");
    let trajectory = forged_share_trajectory(trace);
    if trajectory.is_empty() {
        out.push_str("  (no buffer decisions in trace)\n");
    }
    for (interval, permille) in &trajectory {
        let _ = writeln!(out, "  interval {interval:>6}: {permille:>4}");
    }
    match attack_onset(&trajectory) {
        Some(interval) => {
            let _ = writeln!(
                out,
                "\nattack onset: interval {interval} (first of >=3 consecutive intervals at \
                 >=250 permille rejected)"
            );
        }
        None => out.push_str("\nattack onset: none detected\n"),
    }
    out
}

/// Renders one record as a timeline line: `source seq at event detail`.
#[must_use]
pub fn timeline_line(record: &TraceRecord) -> String {
    let head = format!(
        "src={:<3} seq={:<6} at={:<8} {:<16}",
        record.source,
        record.seq,
        record.at,
        record.event.name()
    );
    let detail = match &record.event {
        TraceEvent::FrameRx { bytes } => format!("bytes={bytes}"),
        TraceEvent::VerifyStart { interval } => format!("interval={interval}"),
        TraceEvent::VerifyEnd {
            interval,
            outcome,
            elapsed_ns,
        } => format!("interval={interval} outcome={outcome} elapsed_ns={elapsed_ns}"),
        TraceEvent::BufferDecision {
            interval,
            kept,
            k,
            m,
        } => format!("interval={interval} kept={kept} k={k} m={m}"),
        TraceEvent::KeyReveal { interval } => format!("interval={interval}"),
        TraceEvent::ShardStall { shard, depth } => format!("shard={shard} depth={depth}"),
        TraceEvent::FaultInjected { kind } => format!("kind={kind}"),
        TraceEvent::SessionEvicted {
            sender,
            shard,
            occupancy,
        } => format!("sender={sender} shard={shard} occupancy={occupancy}"),
        TraceEvent::ShedDecision {
            sender,
            class,
            interval,
        } => format!("sender={sender} class={class} interval={interval}"),
        TraceEvent::PostureChange {
            epoch,
            from_m,
            to_m,
            p_permille,
            give_up,
        } => format!("epoch={epoch} m {from_m}->{to_m} p_permille={p_permille} give_up={give_up}"),
        TraceEvent::FrameSpan {
            span,
            interval,
            outcome,
            ingress_ns,
            queue_ns,
            decode_ns,
            prefetch_ns,
            verify_ns,
            buffer_ns,
            reveal_ns,
        } => format!(
            "span={span} interval={interval} outcome={outcome} stages \
             ingress={ingress_ns} queue={queue_ns} decode={decode_ns} prefetch={prefetch_ns} \
             verify={verify_ns} buffer={buffer_ns} reveal={reveal_ns}"
        ),
        TraceEvent::ControlEstimate {
            epoch,
            sample_ppm,
            p_hat_ppm,
        } => format!("epoch={epoch} sample_ppm={sample_ppm} p_hat_ppm={p_hat_ppm}"),
    };
    format!("{head} {detail}")
}

/// The sender id a record names, when it names one (shed attribution
/// and evictions carry claimed / resident sender ids).
#[must_use]
pub fn record_sender(record: &TraceRecord) -> Option<u64> {
    match &record.event {
        TraceEvent::ShedDecision { sender, .. } | TraceEvent::SessionEvicted { sender, .. } => {
            Some(*sender)
        }
        _ => None,
    }
}

/// Renders the timeline: records in file order, optionally filtered to
/// the records naming `sender`, capped at `limit` lines (0 = no cap).
#[must_use]
pub fn render_timeline(trace: &ParsedTrace, sender: Option<u64>, limit: usize) -> String {
    let mut out = String::new();
    let mut lines = 0usize;
    for record in &trace.records {
        if sender.is_some() && record_sender(record) != sender {
            continue;
        }
        out.push_str(&timeline_line(record));
        out.push('\n');
        lines += 1;
        if limit > 0 && lines >= limit {
            let _ = writeln!(out, "... (truncated at {limit} lines)");
            break;
        }
    }
    if lines == 0 {
        out.push_str("(no matching records)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_obs::parse_trace;

    fn rec(source: u32, seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            source,
            seq,
            at: seq,
            event,
        }
    }

    fn parsed(records: Vec<TraceRecord>) -> ParsedTrace {
        ParsedTrace {
            header: None,
            records,
        }
    }

    fn clean_frame(source: u32, seq0: u64, interval: u64, k: u64) -> Vec<TraceRecord> {
        vec![
            rec(source, seq0, TraceEvent::FrameRx { bytes: 32 }),
            rec(source, seq0 + 1, TraceEvent::VerifyStart { interval }),
            rec(
                source,
                seq0 + 2,
                TraceEvent::VerifyEnd {
                    interval,
                    outcome: "stored",
                    elapsed_ns: 0,
                },
            ),
            rec(
                source,
                seq0 + 3,
                TraceEvent::BufferDecision {
                    interval,
                    kept: true,
                    k,
                    m: 4,
                },
            ),
        ]
    }

    #[test]
    fn clean_stream_audits_clean() {
        let mut records = clean_frame(0, 0, 7, 1);
        records.extend(clean_frame(0, 4, 7, 2));
        records.push(rec(
            0,
            8,
            TraceEvent::ShedDecision {
                sender: 9,
                class: "low",
                interval: 7,
            },
        ));
        records.extend(clean_frame(0, 9, 8, 1));
        let violations = audit(&parsed(records), &BTreeSet::new());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unpaired_and_mismatched_verifies_are_flagged() {
        let records = vec![
            rec(0, 0, TraceEvent::FrameRx { bytes: 32 }),
            rec(0, 1, TraceEvent::VerifyStart { interval: 3 }),
            rec(
                0,
                2,
                TraceEvent::VerifyEnd {
                    interval: 4,
                    outcome: "stored",
                    elapsed_ns: 0,
                },
            ),
            rec(0, 3, TraceEvent::VerifyStart { interval: 5 }),
        ];
        let violations = audit(&parsed(records), &BTreeSet::new());
        let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["verify-pairing", "verify-pairing"]);
        assert_eq!(violations[0].line, 3, "mismatched end points at its line");
    }

    #[test]
    fn authentication_after_a_shed_is_flagged() {
        let mut records = clean_frame(0, 0, 7, 1);
        records.push(rec(
            0,
            4,
            TraceEvent::ShedDecision {
                sender: 9,
                class: "low",
                interval: 7,
            },
        ));
        // No FrameRx in between: this KeyReveal claims a shed frame
        // reached the verifier.
        records.push(rec(0, 5, TraceEvent::KeyReveal { interval: 7 }));
        let violations = audit(&parsed(records), &BTreeSet::new());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "shed-quiescence");
    }

    #[test]
    fn reservoir_rejecting_an_early_offer_is_flagged() {
        let records = vec![rec(
            0,
            0,
            TraceEvent::BufferDecision {
                interval: 2,
                kept: false,
                k: 3,
                m: 4,
            },
        )];
        let violations = audit(&parsed(records), &BTreeSet::new());
        assert!(violations.iter().any(|v| v.rule == "reservoir-bound"));
    }

    #[test]
    fn interleaved_session_streams_reconstruct() {
        // Two senders' sessions on one shard, same interval: ks
        // interleave 1,1,2,2 and the greedy reconstruction must accept.
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::BufferDecision {
                    interval: 2,
                    kept: true,
                    k: 1,
                    m: 4,
                },
            ),
            rec(
                0,
                1,
                TraceEvent::BufferDecision {
                    interval: 2,
                    kept: true,
                    k: 1,
                    m: 4,
                },
            ),
            rec(
                0,
                2,
                TraceEvent::BufferDecision {
                    interval: 2,
                    kept: true,
                    k: 2,
                    m: 4,
                },
            ),
            rec(
                0,
                3,
                TraceEvent::BufferDecision {
                    interval: 2,
                    kept: true,
                    k: 2,
                    m: 4,
                },
            ),
        ];
        assert!(audit(&parsed(records), &BTreeSet::new()).is_empty());
        // A k that extends nothing is a gap.
        let gap = vec![rec(
            0,
            0,
            TraceEvent::BufferDecision {
                interval: 2,
                kept: true,
                k: 5,
                m: 4,
            },
        )];
        assert_eq!(
            audit(&parsed(gap), &BTreeSet::new())[0].rule,
            "reservoir-bound"
        );
    }

    #[test]
    fn epoch_regressions_and_pin_evictions_are_flagged() {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::PostureChange {
                    epoch: 2,
                    from_m: 4,
                    to_m: 8,
                    p_permille: 500,
                    give_up: false,
                },
            ),
            rec(
                0,
                1,
                TraceEvent::PostureChange {
                    epoch: 2,
                    from_m: 8,
                    to_m: 9,
                    p_permille: 600,
                    give_up: false,
                },
            ),
            rec(
                0,
                2,
                TraceEvent::SessionEvicted {
                    sender: 1,
                    shard: 0,
                    occupancy: 3,
                },
            ),
        ];
        let pins: BTreeSet<u64> = [1].into_iter().collect();
        let violations = audit(&parsed(records), &pins);
        let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["epoch-monotone", "pin-respected"]);
    }

    #[test]
    fn onset_needs_three_consecutive_hot_intervals() {
        assert_eq!(attack_onset(&[(1, 900), (2, 100), (3, 900)]), None);
        assert_eq!(
            attack_onset(&[(1, 100), (2, 300), (3, 400), (4, 900)]),
            Some(2)
        );
        assert_eq!(attack_onset(&[]), None);
    }

    #[test]
    fn report_and_timeline_are_byte_stable() {
        let mut records = clean_frame(0, 0, 7, 1);
        records.push(rec(
            0,
            4,
            TraceEvent::FrameSpan {
                span: 256,
                interval: 7,
                outcome: "stored",
                ingress_ns: 10,
                queue_ns: 20,
                decode_ns: 5,
                prefetch_ns: 0,
                verify_ns: 40,
                buffer_ns: 3,
                reveal_ns: 0,
            },
        ));
        let trace = parsed(records);
        assert_eq!(render_report(&trace), render_report(&trace.clone()));
        assert!(render_report(&trace).contains("verify"));
        assert_eq!(
            render_timeline(&trace, None, 0),
            render_timeline(&trace, None, 0)
        );
        assert!(render_timeline(&trace, Some(42), 0).contains("no matching records"));
    }

    #[test]
    fn line_numbers_offset_past_the_header() {
        let text = format!(
            "{}\n{}\n{}\n",
            dap_obs::header_line(0),
            rec(
                0,
                0,
                TraceEvent::VerifyEnd {
                    interval: 1,
                    outcome: "auth",
                    elapsed_ns: 0
                }
            )
            .to_json(),
            rec(0, 1, TraceEvent::KeyReveal { interval: 1 }).to_json(),
        );
        let trace = parse_trace(&text).expect("parses");
        let violations = audit(&trace, &BTreeSet::new());
        // The header is line 1, so the stray verify_end is line 2.
        assert_eq!(violations[0].line, 2);
        assert_eq!(violations[0].rule, "verify-pairing");
    }
}
