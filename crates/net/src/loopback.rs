//! The deterministic loopback campaign: genuine sender + flooder +
//! sharded pool, one seeded run, bit-reproducible metrics.
//!
//! A single driver thread plays both traffic sources onto a
//! [`LoopbackTransport`] in virtual time and drains the wire into the
//! pool after every interval, so the byte stream each shard sees is a
//! pure function of the seed. Combined with [`OverflowPolicy::Block`]
//! (no timing-dependent shedding) and the pool's deterministic per-shard
//! RNG forks, the merged metrics of two same-seed runs are identical to
//! the byte — which is exactly what the ci.sh soak gate diffs.
//!
//! The run reproduces the paper's flood experiment on the wire: `g`
//! genuine announce copies per interval, `f = round(g·p/(1−p))` forged
//! copies interleaved among them (a seeded shuffle — the attacker does
//! not get to always pre-empt the genuine copies), one reveal per
//! interval one interval later. With `m` buffers the genuine reveal
//! authenticates iff a genuine copy survived reservoir sampling:
//! probability `≈ 1 − p^m` (exactly hypergeometric at finite `n`).

use dap_core::{codec, DapMessage, DapParams, DapSender};
use dap_simnet::{ChannelModel, Metrics, SimDuration, SimRng, SimTime};

use crate::pool::{DapShard, OverflowPolicy, PoolConfig, ReceiverPool};
use crate::pump::Flooder;
use crate::transport::{LoopbackTransport, Transport};

/// Everything a loopback campaign needs; all fields seeded/explicit so
/// a spec fully determines the run.
#[derive(Debug, Clone, Copy)]
pub struct LoopbackSpec {
    /// Master seed (wire loss, flooder MACs, shard sampling).
    pub seed: u64,
    /// Intervals of traffic.
    pub intervals: u64,
    /// Receiver buffers `m` per pending interval.
    pub buffers: usize,
    /// Receiver pool shards.
    pub shards: usize,
    /// Per-shard ingress queue depth.
    pub queue_depth: usize,
    /// Flooder bandwidth share `p ∈ [0, 1)`.
    pub flood: f64,
    /// Genuine announce copies per interval.
    pub copies: u32,
    /// Wire loss probability.
    pub loss: f64,
    /// Wire corruption probability (one flipped bit per hit).
    pub corrupt: f64,
}

impl Default for LoopbackSpec {
    /// The soak-gate shape: 400 intervals, `m = 4`, `p = 0.9`, 4 genuine
    /// copies, clean wire.
    fn default() -> Self {
        Self {
            seed: 2016,
            intervals: 400,
            buffers: 4,
            shards: 4,
            queue_depth: 256,
            flood: 0.9,
            copies: 4,
            loss: 0.0,
            corrupt: 0.0,
        }
    }
}

/// What a loopback campaign produced.
#[derive(Debug, Clone)]
pub struct LoopbackReport {
    /// Merged pool + wire counters.
    pub metrics: Metrics,
    /// `authenticated / reveals` (0 when no reveal arrived).
    pub auth_rate: f64,
    /// The paper's large-`n` prediction `1 − p^m`.
    pub expected_rate: f64,
    /// Frames the driver pushed into the pool.
    pub frames: u64,
}

/// Runs one seeded campaign; see the module docs.
///
/// # Panics
///
/// Panics on invalid spec fields (zero shards/buffers, `p ∉ [0, 1)`,
/// loss/corruption outside `[0, 1]`) and if a pool worker panics.
#[must_use]
pub fn run_loopback(spec: &LoopbackSpec) -> LoopbackReport {
    let params = DapParams::new(SimDuration(100), 1, 0, spec.buffers);
    let schedule = params.schedule();
    let d = params.disclosure_delay;
    let chain_len = usize::try_from(spec.intervals).expect("interval count fits usize") + 2;
    let mut sender = DapSender::new(&spec.seed.to_be_bytes(), chain_len, params);
    let bootstrap = sender.bootstrap();

    let mut rng = SimRng::new(spec.seed);
    let wire_rng_seed = rng.next_u64();
    let pool_seed = rng.next_u64();
    let flooder_seed = rng.next_u64();
    let mut shuffle_rng = rng.fork(4);

    let wire = LoopbackTransport::new(wire_rng_seed, ChannelModel::lossy(spec.loss), spec.corrupt);
    let pool = ReceiverPool::spawn(
        PoolConfig {
            shards: spec.shards,
            queue_depth: spec.queue_depth,
            overflow: OverflowPolicy::Block,
        },
        pool_seed,
        |shard| DapShard::new(bootstrap, &[b'l', b'o', shard as u8]),
    );
    let handle = pool.handle();
    let mut flooder = Flooder::new(wire.clone(), flooder_seed, spec.flood);
    let forged_per_interval = flooder.forged_copies(u64::from(spec.copies));

    let mut tx = wire.clone();
    let mut rx = wire.clone();
    let mut recv_buf = vec![0u8; codec::MAX_FRAME_LEN];
    let mut drain = |rx: &mut LoopbackTransport, at: SimTime| {
        while let Some(n) = rx.recv(&mut recv_buf).expect("loopback recv") {
            handle.ingest(&recv_buf[..n], at);
        }
    };

    for i in 1..=spec.intervals {
        let at = SimTime(schedule.start_of(i).ticks() + 10);
        // The reveal for i − d leads the interval (Algorithm 1's order).
        if i > d {
            if let Some(reveal) = sender.reveal(i - d) {
                let frame = codec::encode(&DapMessage::Reveal(reveal)).expect("encodable reveal");
                tx.send(&frame).expect("loopback send");
            }
        }
        // Genuine copies and forged copies, interleaved by seeded draw:
        // position the genuine copies uniformly among the n total.
        let announce = sender
            .announce(i, format!("reading {i}").as_bytes())
            .expect("chain sized for the run");
        let genuine = codec::encode(&DapMessage::Announce(announce)).expect("encodable announce");
        let total = u64::from(spec.copies) + forged_per_interval;
        let mut genuine_left = u64::from(spec.copies);
        let mut slots_left = total;
        for _ in 0..total {
            // P(this slot genuine) = genuine_left / slots_left — a
            // uniform interleave without materialising the permutation.
            if genuine_left > 0 && shuffle_rng.below(slots_left) < genuine_left {
                tx.send(&genuine).expect("loopback send");
                genuine_left -= 1;
            } else {
                flooder.send_forged(i).expect("loopback send");
            }
            slots_left -= 1;
        }
        drain(&mut rx, at);
    }
    // Tail: flush the last reveals.
    for i in spec.intervals.saturating_sub(d) + 1..=spec.intervals {
        let at = SimTime(schedule.start_of(i + d).ticks() + 10);
        if let Some(reveal) = sender.reveal(i) {
            let frame = codec::encode(&DapMessage::Reveal(reveal)).expect("encodable reveal");
            tx.send(&frame).expect("loopback send");
        }
        drain(&mut rx, at);
    }

    let frames = handle.live().frames();
    let mut metrics = pool.shutdown();
    metrics.merge(&wire.wire_metrics());
    let auth_rate = metrics
        .ratio("net.reveal.auth", "net.reveal.total")
        .unwrap_or(0.0);
    LoopbackReport {
        auth_rate,
        expected_rate: 1.0
            - spec
                .flood
                .powi(i32::try_from(spec.buffers).unwrap_or(i32::MAX)),
        frames,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_identical_metrics() {
        let spec = LoopbackSpec {
            intervals: 60,
            ..LoopbackSpec::default()
        };
        let a = run_loopback(&spec);
        let b = run_loopback(&spec);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.frames, b.frames);
        assert!(a.frames > 0);
    }

    #[test]
    fn clean_channel_authenticates_everything() {
        let spec = LoopbackSpec {
            intervals: 50,
            flood: 0.0,
            copies: 1,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        assert_eq!(report.metrics.get("net.reveal.total"), 50);
        assert_eq!(report.metrics.get("net.reveal.auth"), 50);
        assert!((report.auth_rate - 1.0).abs() < f64::EPSILON);
        assert_eq!(report.metrics.get("net.decode.errors"), 0);
        assert_eq!(report.metrics.get("net.ingress.dropped"), 0);
    }

    #[test]
    fn flooded_run_tracks_one_minus_p_to_m() {
        let spec = LoopbackSpec {
            intervals: 400,
            buffers: 3,
            flood: 0.8,
            copies: 2,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        // Every reveal still weak-authenticates; only eviction hurts.
        assert_eq!(report.metrics.get("net.reveal.weak_rejected"), 0);
        assert_eq!(
            report.metrics.get("net.reveal.auth")
                + report.metrics.get("net.reveal.strong_rejected")
                + report.metrics.get("net.reveal.no_candidate"),
            report.metrics.get("net.reveal.total")
        );
        // 1 − 0.8³ = 0.488; seeded run, wide tolerance for the finite-n
        // hypergeometric correction.
        assert!(
            (report.auth_rate - report.expected_rate).abs() < 0.1,
            "rate {} expected {}",
            report.auth_rate,
            report.expected_rate
        );
    }

    #[test]
    fn lossy_wire_still_balances_counters() {
        let spec = LoopbackSpec {
            intervals: 120,
            loss: 0.2,
            flood: 0.5,
            copies: 2,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        let m = &report.metrics;
        assert_eq!(
            m.get("net.wire.sent"),
            m.get("net.wire.lost") + report.frames
        );
        // Reveals can be lost, so fewer than `intervals` arrive — but
        // every one that does is accounted for.
        assert!(m.get("net.reveal.total") <= 120);
        assert_eq!(
            m.get("net.reveal.auth")
                + m.get("net.reveal.strong_rejected")
                + m.get("net.reveal.no_candidate")
                + m.get("net.reveal.weak_rejected"),
            m.get("net.reveal.total")
        );
    }

    #[test]
    fn corruption_surfaces_as_decode_or_auth_failures() {
        let spec = LoopbackSpec {
            intervals: 80,
            flood: 0.0,
            copies: 1,
            corrupt: 0.3,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        let corrupted = report.metrics.get("net.wire.corrupted");
        assert!(corrupted > 0, "corruption never sampled");
        // A flipped bit can land anywhere (tag, index, MAC, key,
        // message): decode errors, weak rejects, strong rejects and
        // missing candidates are all legitimate fates — what must hold
        // is that not everything authenticates.
        assert!(report.metrics.get("net.reveal.auth") < 80);
    }
}
