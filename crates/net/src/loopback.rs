//! The deterministic loopback campaign: genuine sender + flooder +
//! sharded pool, one seeded run, bit-reproducible metrics.
//!
//! A single driver thread plays both traffic sources onto a
//! [`LoopbackTransport`] in virtual time and drains the wire into the
//! pool after every interval, so the byte stream each shard sees is a
//! pure function of the seed. Combined with [`OverflowPolicy::Block`]
//! (no timing-dependent shedding) and the pool's deterministic per-shard
//! RNG forks, the merged metrics of two same-seed runs are identical to
//! the byte — which is exactly what the ci.sh soak gate diffs.
//!
//! The run reproduces the paper's flood experiment on the wire: `g`
//! genuine announce copies per interval, `f = round(g·p/(1−p))` forged
//! copies interleaved among them (a seeded shuffle — the attacker does
//! not get to always pre-empt the genuine copies), one reveal per
//! interval one interval later. With `m` buffers the genuine reveal
//! authenticates iff a genuine copy survived reservoir sampling:
//! probability `≈ 1 − p^m` (exactly hypergeometric at finite `n`).

use std::sync::Arc;

use dap_core::{codec, DapMessage, DapParams, DapSender};
use dap_obs::{TimeSource, TraceRecord};
use dap_simnet::{
    keys, ChannelModel, FloodIntensity, Metrics, Registry, SimDuration, SimRng, SimTime,
};

use crate::control::{ControlConfig, ControlPlane};
use crate::pool::{DapShard, OverflowPolicy, PoolConfig, PoolObs, ReceiverPool, RoutePolicy};
use crate::pump::Flooder;
use crate::telemetry::SharedRegistry;
use crate::transport::{LoopbackTransport, Transport};

/// Everything a loopback campaign needs; all fields seeded/explicit so
/// a spec fully determines the run.
#[derive(Debug, Clone, Copy)]
pub struct LoopbackSpec {
    /// Master seed (wire loss, flooder MACs, shard sampling).
    pub seed: u64,
    /// Intervals of traffic.
    pub intervals: u64,
    /// Receiver buffers `m` per pending interval.
    pub buffers: usize,
    /// Receiver pool shards.
    pub shards: usize,
    /// Per-shard ingress queue depth.
    pub queue_depth: usize,
    /// Flooder bandwidth share `p ∈ [0, 1)` at campaign start.
    pub flood: f64,
    /// Flooder bandwidth share at the end of the ramp: the wire's `p`
    /// ramps linearly `flood → flood_end` over the first half of the
    /// campaign, then holds at `flood_end`. `None` (the default) keeps
    /// the wire stationary at [`flood`] — byte-identical to the
    /// pre-ramp driver.
    ///
    /// [`flood`]: LoopbackSpec::flood
    pub flood_end: Option<f64>,
    /// Runs the live control plane: at every interval boundary the
    /// driver quiesces the pool, feeds the reveal-time buffer evidence
    /// to the [`ControlPlane`] estimator, and broadcasts any resulting
    /// [`dap_core::PostureDirective`] so the shards re-size `m` before
    /// the next interval's traffic. Determinism survives the feedback
    /// edge: evidence is read only at quiesced boundaries, so the
    /// directive stream is a pure function of the seed.
    pub adaptive: bool,
    /// Genuine announce copies per interval.
    pub copies: u32,
    /// Wire loss probability.
    pub loss: f64,
    /// Wire corruption probability (one flipped bit per hit).
    pub corrupt: f64,
    /// Per-source trace ring capacity; 0 disables tracing. Traced runs
    /// stay bit-reproducible: the pool runs on frozen clocks and every
    /// record is stamped with protocol time, so two same-seed runs
    /// render identical JSONL.
    pub trace_depth: usize,
    /// Flight-recorder sampling cadence ([`PoolObs::span_every`]): every
    /// `span_every`-th verified datagram per shard emits a
    /// [`dap_obs::TraceEvent::FrameSpan`] and feeds the `net.stage.*`
    /// histograms. 0 (the default) disables the recorder — byte-identical
    /// to the pre-recorder driver.
    pub span_every: u64,
}

impl Default for LoopbackSpec {
    /// The soak-gate shape: 400 intervals, `m = 4`, `p = 0.9`, 4 genuine
    /// copies, clean wire.
    fn default() -> Self {
        Self {
            seed: 2016,
            intervals: 400,
            buffers: 4,
            shards: 4,
            queue_depth: 256,
            flood: 0.9,
            flood_end: None,
            adaptive: false,
            copies: 4,
            loss: 0.0,
            corrupt: 0.0,
            trace_depth: 0,
            span_every: 0,
        }
    }
}

/// What a loopback campaign produced.
#[derive(Debug, Clone)]
pub struct LoopbackReport {
    /// Merged pool + wire counters.
    pub metrics: Metrics,
    /// The full observability picture: the same counters plus latency
    /// histograms (zero-duration under frozen clocks — their *counts*
    /// fingerprint the run) and drop-reason attribution.
    pub registry: Registry,
    /// `(source, seq)`-sorted trace records (empty when
    /// [`LoopbackSpec::trace_depth`] is 0).
    pub trace: Vec<TraceRecord>,
    /// `authenticated / reveals` (0 when no reveal arrived).
    pub auth_rate: f64,
    /// The paper's large-`n` prediction `1 − p^m`.
    pub expected_rate: f64,
    /// Frames the driver pushed into the pool.
    pub frames: u64,
}

/// Runs one seeded campaign; see the module docs.
///
/// # Panics
///
/// Panics on invalid spec fields (zero shards/buffers, `p ∉ [0, 1)`,
/// loss/corruption outside `[0, 1]`) and if a pool worker panics.
#[must_use]
pub fn run_loopback(spec: &LoopbackSpec) -> LoopbackReport {
    run_loopback_with(spec, None)
}

/// [`run_loopback`] with an optional live telemetry registry the pool
/// shards publish into while the campaign runs (slot `i` = shard `i`;
/// the registry must have at least `spec.shards` slots).
///
/// # Panics
///
/// As [`run_loopback`].
#[must_use]
pub fn run_loopback_with(
    spec: &LoopbackSpec,
    publish: Option<Arc<SharedRegistry>>,
) -> LoopbackReport {
    let params = DapParams::new(SimDuration(100), 1, 0, spec.buffers);
    let schedule = params.schedule();
    let d = params.disclosure_delay;
    let chain_len = usize::try_from(spec.intervals).expect("interval count fits usize") + 2;
    let mut sender = DapSender::new(&spec.seed.to_be_bytes(), chain_len, params);
    let bootstrap = sender.bootstrap();

    let mut rng = SimRng::new(spec.seed);
    let wire_rng_seed = rng.next_u64();
    let pool_seed = rng.next_u64();
    let flooder_seed = rng.next_u64();
    let mut shuffle_rng = rng.fork(4);

    let wire = LoopbackTransport::new(wire_rng_seed, ChannelModel::lossy(spec.loss), spec.corrupt);
    if spec.trace_depth > 0 {
        // Reserved trace source ids: shards take 0..shards, the pool's
        // socket reader takes `shards`, the wire sits one past it.
        let wire_source = u32::try_from(spec.shards).expect("shard count fits u32") + 1;
        wire.enable_trace(wire_source, spec.trace_depth);
    }
    let pool = ReceiverPool::spawn_with_obs(
        PoolConfig {
            shards: spec.shards,
            queue_depth: spec.queue_depth,
            overflow: OverflowPolicy::Block,
            route: RoutePolicy::ByInterval,
            ..PoolConfig::default()
        },
        pool_seed,
        |shard| DapShard::new(bootstrap, &[b'l', b'o', shard as u8]),
        PoolObs {
            // Frozen clocks: stopwatch durations collapse to 0, so the
            // latency histograms carry no scheduler timing — only
            // deterministic sample counts — and the whole registry is a
            // pure function of the seed.
            time: TimeSource::frozen(),
            trace_depth: spec.trace_depth,
            publish: publish.clone(),
            publish_every: 64,
            span_every: spec.span_every,
        },
    );
    let handle = pool.handle();
    let mut flooder = Flooder::new(wire.clone(), flooder_seed, spec.flood);
    // The wire's forged fraction at interval `i`: a linear ramp
    // `flood → flood_end` across the first half of the campaign, then a
    // plateau. Stationary (`flood_end == flood`) this is `flood`
    // everywhere and the byte stream matches the pre-ramp driver.
    let ramp_half = (spec.intervals / 2).max(1);
    let flood_end = spec.flood_end.unwrap_or(spec.flood);
    let flood_at = |i: u64| -> f64 {
        let t = ((i - 1) as f64 / ramp_half as f64).min(1.0);
        spec.flood + (flood_end - spec.flood) * t
    };
    let mut controller = spec.adaptive.then(|| {
        ControlPlane::new(
            u32::try_from(spec.buffers).expect("buffer count fits u32"),
            ControlConfig::default(),
        )
    });
    // Control-plane narration: p̂ estimate samples trace at their own
    // reserved source id (one past the wire), so the forensic audit can
    // line the estimator's view up against the wire's actual behaviour.
    let ctrl_source = u32::try_from(spec.shards).expect("shard count fits u32") + 2;
    let mut ctrl_trace = (spec.adaptive && spec.trace_depth > 0)
        .then(|| dap_obs::TraceEmitter::new(ctrl_source, dap_obs::RingSink::new(spec.trace_depth)));

    let mut tx = wire.clone();
    let mut rx = wire.clone();
    let mut recv_buf = vec![0u8; codec::MAX_FRAME_LEN];
    let mut drain = |rx: &mut LoopbackTransport, at: SimTime| {
        while let Some(n) = rx.recv(&mut recv_buf).expect("loopback recv") {
            handle.ingest(&recv_buf[..n], at);
        }
    };

    for i in 1..=spec.intervals {
        let at = SimTime(schedule.start_of(i).ticks() + 10);
        // The reveal for i − d leads the interval (Algorithm 1's order).
        if i > d {
            if let Some(reveal) = sender.reveal(i - d) {
                let frame = codec::encode(&DapMessage::Reveal(reveal)).expect("encodable reveal");
                tx.send(&frame).expect("loopback send");
            }
        }
        // Genuine copies and forged copies, interleaved by seeded draw:
        // position the genuine copies uniformly among the n total.
        let announce = sender
            .announce(i, format!("reading {i}").as_bytes())
            .expect("chain sized for the run");
        let genuine = codec::encode(&DapMessage::Announce(announce)).expect("encodable announce");
        let forged_copies =
            FloodIntensity::of_bandwidth(flood_at(i)).forged_copies(u64::from(spec.copies));
        let total = u64::from(spec.copies) + forged_copies;
        let mut genuine_left = u64::from(spec.copies);
        let mut slots_left = total;
        for _ in 0..total {
            // P(this slot genuine) = genuine_left / slots_left — a
            // uniform interleave without materialising the permutation.
            if genuine_left > 0 && shuffle_rng.below(slots_left) < genuine_left {
                tx.send(&genuine).expect("loopback send");
                genuine_left -= 1;
            } else {
                flooder.send_forged(i).expect("loopback send");
            }
            slots_left -= 1;
        }
        drain(&mut rx, at);
        if let Some(ctrl) = controller.as_mut() {
            // Interval boundary: settle the pool, read the reveal-time
            // evidence, and re-posture before the next interval's
            // traffic touches the wire.
            handle.tick();
            handle.quiesce();
            let samples_before = ctrl.samples();
            let directive = ctrl.step(handle.live());
            if ctrl.samples() > samples_before {
                if let Some(emitter) = ctrl_trace.as_mut() {
                    emitter.emit(
                        at.ticks(),
                        dap_obs::TraceEvent::ControlEstimate {
                            epoch: ctrl.epoch(),
                            sample_ppm: ctrl.last_sample_ppm(),
                            p_hat_ppm: ctrl.estimate_ppm(),
                        },
                    );
                }
                // Live posture gauges land in the telemetry slot one
                // past the shards, when the caller provisioned it.
                if let Some(shared) = &publish {
                    if shared.slots() > spec.shards {
                        let mut gauges = Registry::new();
                        ctrl.publish_gauges(&mut gauges);
                        shared.publish(spec.shards, &gauges);
                    }
                }
            }
            if let Some(directive) = directive {
                handle.post_posture(directive, at);
                handle.quiesce();
            }
        }
    }
    // Tail: flush the last reveals.
    for i in spec.intervals.saturating_sub(d) + 1..=spec.intervals {
        let at = SimTime(schedule.start_of(i + d).ticks() + 10);
        if let Some(reveal) = sender.reveal(i) {
            let frame = codec::encode(&DapMessage::Reveal(reveal)).expect("encodable reveal");
            tx.send(&frame).expect("loopback send");
        }
        drain(&mut rx, at);
    }

    let frames = handle.live().frames();
    let report = pool.shutdown_with_report();
    let mut registry = report.registry;
    registry.merge_metrics(&wire.wire_metrics());
    if let Some(ctrl) = &controller {
        ctrl.publish(&mut registry);
    }
    let mut trace = report.trace;
    trace.extend(wire.take_trace());
    if let Some(emitter) = ctrl_trace {
        trace.extend(emitter.into_sink().into_records());
    }
    dap_obs::sort_records(&mut trace);
    let metrics = registry.counters().clone();
    let auth_rate = metrics
        .ratio(keys::NET_REVEAL_AUTH, keys::NET_REVEAL_TOTAL)
        .unwrap_or(0.0);
    LoopbackReport {
        auth_rate,
        expected_rate: 1.0
            - spec
                .flood
                .powi(i32::try_from(spec.buffers).unwrap_or(i32::MAX)),
        frames,
        metrics,
        registry,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_identical_metrics() {
        let spec = LoopbackSpec {
            intervals: 60,
            ..LoopbackSpec::default()
        };
        let a = run_loopback(&spec);
        let b = run_loopback(&spec);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.frames, b.frames);
        assert!(a.frames > 0);
    }

    #[test]
    fn adaptive_ramp_converges_to_the_ess_and_stays_deterministic() {
        use dap_game::{optimal_buffer_count, DosGameParams};
        let spec = LoopbackSpec {
            intervals: 300,
            buffers: 2,
            flood: 0.1,
            flood_end: Some(0.9),
            adaptive: true,
            trace_depth: 1 << 16,
            ..LoopbackSpec::default()
        };
        let a = run_loopback(&spec);
        let b = run_loopback(&spec);
        // Determinism survives the feedback edge: metrics *and* the
        // full trace (including every PostureChange) are identical.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.trace, b.trace);
        // The loop actuated, and narrated every re-size.
        let directives = a.metrics.get(keys::CONTROL_DIRECTIVES);
        assert!(directives >= 1, "ramp must trigger at least one re-size");
        let changes = a
            .trace
            .iter()
            .filter(|r| r.event.name() == "posture_change")
            .count() as u64;
        assert_eq!(
            changes,
            directives * spec.shards as u64,
            "each directive re-sizes every shard exactly once"
        );
        // Converged near the offline Algorithm 3 optimum at the plateau.
        let offline = optimal_buffer_count(DosGameParams::paper_defaults(0.9, 1), 50);
        let live_m = a.metrics.get(keys::CONTROL_M) as u32;
        assert!(
            live_m.abs_diff(offline.m) <= 1,
            "live m {live_m} vs offline m* {}",
            offline.m
        );
    }

    #[test]
    fn stationary_clean_adaptive_run_never_flips_posture() {
        let spec = LoopbackSpec {
            intervals: 120,
            buffers: 1,
            flood: 0.0,
            adaptive: true,
            copies: 1,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        assert_eq!(report.metrics.get(keys::CONTROL_DIRECTIVES), 0);
        assert_eq!(report.metrics.get(keys::CONTROL_M), 1);
        assert!(report.metrics.get(keys::CONTROL_SAMPLES) > 0);
        assert!((report.auth_rate - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn ramp_without_adaptive_defense_is_the_static_baseline() {
        let base = LoopbackSpec {
            intervals: 200,
            buffers: 2,
            flood: 0.1,
            flood_end: Some(0.9),
            adaptive: false,
            ..LoopbackSpec::default()
        };
        let static_run = run_loopback(&base);
        let adaptive_run = run_loopback(&LoopbackSpec {
            adaptive: true,
            ..base
        });
        assert_eq!(static_run.metrics.get(keys::CONTROL_DIRECTIVES), 0);
        // The adaptive defender grows `m` under the ramp, so it must
        // authenticate at least as much as the frozen m = 2 baseline.
        assert!(
            adaptive_run.metrics.get(keys::NET_REVEAL_AUTH)
                >= static_run.metrics.get(keys::NET_REVEAL_AUTH),
            "adaptive {} < static {}",
            adaptive_run.metrics.get(keys::NET_REVEAL_AUTH),
            static_run.metrics.get(keys::NET_REVEAL_AUTH)
        );
    }

    #[test]
    fn clean_channel_authenticates_everything() {
        let spec = LoopbackSpec {
            intervals: 50,
            flood: 0.0,
            copies: 1,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        assert_eq!(report.metrics.get(keys::NET_REVEAL_TOTAL), 50);
        assert_eq!(report.metrics.get(keys::NET_REVEAL_AUTH), 50);
        assert!((report.auth_rate - 1.0).abs() < f64::EPSILON);
        assert_eq!(report.metrics.get(keys::NET_DECODE_ERRORS), 0);
        assert_eq!(report.metrics.get(keys::NET_INGRESS_DROPPED), 0);
    }

    #[test]
    fn flooded_run_tracks_one_minus_p_to_m() {
        let spec = LoopbackSpec {
            intervals: 400,
            buffers: 3,
            flood: 0.8,
            copies: 2,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        // Every reveal still weak-authenticates; only eviction hurts.
        assert_eq!(report.metrics.get(keys::NET_REVEAL_WEAK_REJECTED), 0);
        assert_eq!(
            report.metrics.get(keys::NET_REVEAL_AUTH)
                + report.metrics.get(keys::NET_REVEAL_STRONG_REJECTED)
                + report.metrics.get(keys::NET_REVEAL_NO_CANDIDATE),
            report.metrics.get(keys::NET_REVEAL_TOTAL)
        );
        // 1 − 0.8³ = 0.488; seeded run, wide tolerance for the finite-n
        // hypergeometric correction.
        assert!(
            (report.auth_rate - report.expected_rate).abs() < 0.1,
            "rate {} expected {}",
            report.auth_rate,
            report.expected_rate
        );
    }

    #[test]
    fn lossy_wire_still_balances_counters() {
        let spec = LoopbackSpec {
            intervals: 120,
            loss: 0.2,
            flood: 0.5,
            copies: 2,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        let m = &report.metrics;
        assert_eq!(
            m.get(keys::NET_WIRE_SENT),
            m.get(keys::NET_WIRE_LOST) + report.frames
        );
        // Reveals can be lost, so fewer than `intervals` arrive — but
        // every one that does is accounted for.
        assert!(m.get(keys::NET_REVEAL_TOTAL) <= 120);
        assert_eq!(
            m.get(keys::NET_REVEAL_AUTH)
                + m.get(keys::NET_REVEAL_STRONG_REJECTED)
                + m.get(keys::NET_REVEAL_NO_CANDIDATE)
                + m.get(keys::NET_REVEAL_WEAK_REJECTED),
            m.get(keys::NET_REVEAL_TOTAL)
        );
    }

    #[test]
    fn corruption_surfaces_as_decode_or_auth_failures() {
        let spec = LoopbackSpec {
            intervals: 80,
            flood: 0.0,
            copies: 1,
            corrupt: 0.3,
            ..LoopbackSpec::default()
        };
        let report = run_loopback(&spec);
        let corrupted = report.metrics.get(keys::NET_WIRE_CORRUPTED);
        assert!(corrupted > 0, "corruption never sampled");
        // A flipped bit can land anywhere (tag, index, MAC, key,
        // message): decode errors, weak rejects, strong rejects and
        // missing candidates are all legitimate fates — what must hold
        // is that not everything authenticates.
        assert!(report.metrics.get(keys::NET_REVEAL_AUTH) < 80);
    }
}
