//! The wire: one trait, two media.
//!
//! [`UdpTransport`] is the real thing — `std::net::UdpSocket` datagrams,
//! one frame per datagram, on localhost or a LAN. [`LoopbackTransport`]
//! is an in-process broadcast medium driven by the *simulator's* channel
//! models: loss is sampled from a seeded [`ChannelModel`] (Bernoulli or
//! Gilbert-Elliott burst) and corruption flips a seeded bit — so a
//! multi-threaded run over loopback is exactly reproducible, which is
//! what the ci.sh soak gate and the determinism tests lean on.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dap_obs::{RingSink, TraceEmitter, TraceEvent, TraceRecord};
use dap_simnet::{keys, ChannelModel, Metrics, SimRng};

/// A broadcast medium a node can send frames into and read frames from.
///
/// `recv` is pull-based and non-blocking-ish: `Ok(None)` means "nothing
/// right now" (timeout on UDP, empty queue on loopback), so a reader
/// loop can interleave shutdown checks.
pub trait Transport: Send {
    /// Broadcasts one frame.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying medium (loopback never fails).
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receives one frame into `buf`, returning its length, or `None`
    /// when nothing arrived within the medium's polling window.
    ///
    /// # Errors
    ///
    /// I/O errors other than the timeout family.
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>>;
}

/// Real UDP datagrams, one frame per datagram.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    target: Option<SocketAddr>,
}

impl UdpTransport {
    /// A sending endpoint: binds `bind` (use `127.0.0.1:0` for an
    /// ephemeral port) and addresses every frame to `target`.
    ///
    /// # Errors
    ///
    /// Bind/resolve failures.
    pub fn sender(bind: &str, target: &str) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        let target = target.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "target resolved to nothing")
        })?;
        Ok(Self {
            socket,
            target: Some(target),
        })
    }

    /// A receiving endpoint bound to `bind`, polling with `timeout` so
    /// the read loop can check for shutdown between frames.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn receiver(bind: &str, timeout: Duration) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(Self {
            socket,
            target: None,
        })
    }

    /// The locally bound address (which port an ephemeral bind got).
    ///
    /// # Errors
    ///
    /// Propagated from the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let target = self.target.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "receiving endpoint cannot send",
            )
        })?;
        self.socket.send_to(frame, target)?;
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        match self.socket.recv_from(buf) {
            Ok((n, _peer)) => Ok(Some(n)),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

struct LoopbackState {
    queue: VecDeque<Vec<u8>>,
    channel: ChannelModel,
    corrupt_probability: f64,
    rng: SimRng,
    sent: u64,
    lost: u64,
    corrupted: u64,
    /// Wire-fault trace (loss/corruption injections), stamped with the
    /// send ordinal — fate is sampled at send time, so the ordinal is
    /// the deterministic "when" of the wire.
    trace: Option<TraceEmitter<RingSink>>,
}

/// A seeded in-process broadcast medium.
///
/// All clones share one FIFO; any clone may send (sender, flooder) and
/// any clone may receive. Frame fate is sampled *at send time* from the
/// shared seeded RNG, so the delivered byte stream depends only on the
/// order of `send` calls — single-driver runs are bit-reproducible no
/// matter how receiver threads are scheduled.
#[derive(Clone)]
pub struct LoopbackTransport {
    state: Arc<Mutex<LoopbackState>>,
}

impl LoopbackTransport {
    /// A loopback medium with the given loss/corruption behaviour.
    /// `channel` supplies the loss process (its delay/jitter fields are
    /// meaningless in-process and ignored); `corrupt_probability` flips
    /// one seeded bit in that fraction of delivered frames.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt_probability` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, channel: ChannelModel, corrupt_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&corrupt_probability),
            "corruption probability must be in [0,1], got {corrupt_probability}"
        );
        Self {
            state: Arc::new(Mutex::new(LoopbackState {
                queue: VecDeque::new(),
                channel,
                corrupt_probability,
                rng: SimRng::new(seed),
                sent: 0,
                lost: 0,
                corrupted: 0,
                trace: None,
            })),
        }
    }

    /// Enables wire-fault tracing: loss/corruption injections are
    /// recorded as [`TraceEvent::FaultInjected`] under `source`, ring-
    /// bounded at `depth` records. Pick a `source` id that does not
    /// collide with the pool's shard/reader ids.
    pub fn enable_trace(&self, source: u32, depth: usize) {
        self.state.lock().expect("loopback mutex poisoned").trace =
            Some(TraceEmitter::new(source, RingSink::new(depth)));
    }

    /// Drains the wire-fault trace records collected so far.
    #[must_use]
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        self.state
            .lock()
            .expect("loopback mutex poisoned")
            .trace
            .take()
            .map_or_else(Vec::new, |emitter| emitter.into_sink().into_records())
    }

    /// Wire-level counters (`net.wire.*`): frames sent, lost, corrupted.
    #[must_use]
    pub fn wire_metrics(&self) -> Metrics {
        let state = self.state.lock().expect("loopback mutex poisoned");
        let mut m = Metrics::new();
        m.add(keys::NET_WIRE_SENT, state.sent);
        m.add(keys::NET_WIRE_LOST, state.lost);
        m.add(keys::NET_WIRE_CORRUPTED, state.corrupted);
        m
    }

    /// Frames currently in flight (sent, not yet received).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.state
            .lock()
            .expect("loopback mutex poisoned")
            .queue
            .len()
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let mut guard = self.state.lock().expect("loopback mutex poisoned");
        let state = &mut *guard;
        state.sent += 1;
        let ordinal = state.sent;
        if state.channel.sample(&mut state.rng).is_none() {
            state.lost += 1;
            if let Some(trace) = &mut state.trace {
                trace.emit(ordinal, TraceEvent::FaultInjected { kind: "wire.loss" });
            }
            return Ok(());
        }
        let mut bytes = frame.to_vec();
        if state.corrupt_probability > 0.0 && state.rng.chance(state.corrupt_probability) {
            let bit = state.rng.below((bytes.len() as u64) * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            state.corrupted += 1;
            if let Some(trace) = &mut state.trace {
                trace.emit(
                    ordinal,
                    TraceEvent::FaultInjected {
                        kind: "wire.corrupt",
                    },
                );
            }
        }
        state.queue.push_back(bytes);
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        let mut state = self.state.lock().expect("loopback mutex poisoned");
        let Some(frame) = state.queue.pop_front() else {
            return Ok(None);
        };
        let n = frame.len().min(buf.len());
        buf[..n].copy_from_slice(&frame[..n]);
        Ok(Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_in_order() {
        let mut tx = LoopbackTransport::new(1, ChannelModel::perfect(), 0.0);
        let mut rx = tx.clone();
        tx.send(b"one").unwrap();
        tx.send(b"two").unwrap();
        assert_eq!(tx.in_flight(), 2);
        let mut buf = [0u8; 16];
        assert_eq!(rx.recv(&mut buf).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"one");
        assert_eq!(rx.recv(&mut buf).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"two");
        assert_eq!(rx.recv(&mut buf).unwrap(), None);
    }

    #[test]
    fn loopback_loss_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut t = LoopbackTransport::new(seed, ChannelModel::lossy(0.3), 0.0);
            for i in 0..200u32 {
                t.send(&i.to_be_bytes()).unwrap();
            }
            (t.wire_metrics().get("net.wire.lost"), t.in_flight())
        };
        let (lost_a, flight_a) = run(42);
        let (lost_b, flight_b) = run(42);
        assert_eq!(lost_a, lost_b);
        assert_eq!(flight_a, flight_b);
        assert_eq!(lost_a + flight_a as u64, 200);
        // ~30% loss over 200 frames: comfortably inside [20, 100].
        assert!((20..=100).contains(&lost_a), "lost {lost_a}");
    }

    #[test]
    fn loopback_corruption_flips_exactly_one_bit() {
        let mut t = LoopbackTransport::new(9, ChannelModel::perfect(), 1.0);
        let original = [0u8; 32];
        t.send(&original).unwrap();
        let mut buf = [0u8; 32];
        t.recv(&mut buf).unwrap().unwrap();
        let flipped: u32 = original
            .iter()
            .zip(buf.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(t.wire_metrics().get("net.wire.corrupted"), 1);
    }

    #[test]
    fn udp_roundtrip_on_localhost() {
        let mut rx = UdpTransport::receiver("127.0.0.1:0", Duration::from_millis(200)).unwrap();
        let addr = rx.local_addr().unwrap();
        let mut tx = UdpTransport::sender("127.0.0.1:0", &addr.to_string()).unwrap();
        tx.send(b"over the wire").unwrap();
        let mut buf = [0u8; 64];
        let mut got = None;
        // The datagram may take a few polls to surface.
        for _ in 0..50 {
            if let Some(n) = rx.recv(&mut buf).unwrap() {
                got = Some(n);
                break;
            }
        }
        assert_eq!(got, Some(13));
        assert_eq!(&buf[..13], b"over the wire");
    }

    #[test]
    fn udp_receiver_times_out_quietly() {
        let mut rx = UdpTransport::receiver("127.0.0.1:0", Duration::from_millis(10)).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(rx.recv(&mut buf).unwrap(), None);
    }

    #[test]
    fn udp_receiving_endpoint_refuses_to_send() {
        let mut rx = UdpTransport::receiver("127.0.0.1:0", Duration::from_millis(10)).unwrap();
        assert!(rx.send(b"nope").is_err());
    }
}
