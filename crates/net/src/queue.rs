//! A bounded MPSC ingress queue with an explicit overflow contract.
//!
//! Each receiver shard drains one of these. The socket-reader side picks
//! the overflow behaviour per call: [`IngressQueue::try_push`] never
//! blocks — a full queue rejects the frame so the reader can count the
//! drop and keep the socket drained (the UDP posture: the kernel buffer,
//! not our worker, is the scarce resource), while
//! [`IngressQueue::push_blocking`] applies backpressure (the loopback
//! posture, where blocking keeps the run deterministic instead of
//! dropping on scheduler timing).
//!
//! Built from `Mutex` + `Condvar` only — the workspace forbids `unsafe`,
//! so a lock-free ring is off the table, and a mutex around a `VecDeque`
//! is far below the cost of the HMAC work each frame triggers anyway.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected, carrying the item back so the caller can
/// count the drop (and attribute it: a full queue is congestion, a
/// closed queue is shutdown — different telemetry).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity (only `try_push` reports this).
    Full(T),
    /// The queue has been closed; no push can ever succeed again.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(item) | Self::Closed(item) => item,
        }
    }
}

/// What a timed pop yielded; see [`IngressQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item arrived (or was already queued).
    Item(T),
    /// The timeout elapsed with the queue open and empty.
    Idle,
    /// The queue is closed *and* drained — the worker is done.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue; see the module docs for the two push
/// flavours.
pub struct IngressQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes.
    readable: Condvar,
    /// Signalled when space frees up or the queue closes.
    writable: Condvar,
    capacity: usize,
}

impl<T> IngressQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: `Err` returns the item when the queue is full
    /// or closed — the caller decides whether that is a counted drop.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`IngressQueue::close`]; both carry the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space (backpressure).
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] (the only failure — a full queue parks the
    /// caller instead).
    pub fn push_blocking(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        while !state.closed && state.items.len() >= self.capacity {
            state = self.writable.wait(state).expect("queue mutex poisoned");
        }
        if state.closed {
            return Err(PushError::Closed(item));
        }
        state.items.push_back(item);
        drop(state);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocking pop: `None` once the queue is closed *and* drained —
    /// every item pushed before `close` is still delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.writable.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.readable.wait(state).expect("queue mutex poisoned");
        }
    }

    /// Like [`IngressQueue::pop`], but gives up after `timeout` when the
    /// queue is open and empty — so a worker can interleave periodic
    /// work (telemetry publishing) with draining, without busy-polling
    /// and without stalling live metrics behind a quiet wire.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> Pop<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.writable.notify_one();
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return Pop::Idle;
            };
            let (next, result) = self
                .readable
                .wait_timeout(state, remaining)
                .expect("queue mutex poisoned");
            state = next;
            if result.timed_out() && state.items.is_empty() && !state.closed {
                return Pop::Idle;
            }
        }
    }

    /// Closes the queue: pushes start failing, pops drain then end.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.closed = true;
        drop(state);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Items currently enqueued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue mutex poisoned").items.len()
    }

    /// The configured capacity (occupancy telemetry wants `len/cap`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pop_timeout_reports_idle_item_and_closed() {
        let q = IngressQueue::new(4);
        let t = std::time::Duration::from_millis(10);
        assert_eq!(q.pop_timeout(t), Pop::Idle);
        q.try_push(5).unwrap();
        assert_eq!(q.pop_timeout(t), Pop::Item(5));
        q.try_push(6).unwrap();
        q.close();
        // Items pushed before close still drain, then Closed — never
        // Idle on a closed queue.
        assert_eq!(q.pop_timeout(t), Pop::Item(6));
        assert_eq!(q.pop_timeout(t), Pop::Closed);
        assert_eq!(q.pop_timeout(t), Pop::Closed);
    }

    #[test]
    fn fifo_roundtrip() {
        let q = IngressQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn try_push_rejects_when_full() {
        let q = IngressQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err(PushError::Full("c")));
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = IngressQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.push_blocking(9).map_err(PushError::into_inner), Err(9));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocking_applies_backpressure() {
        let q = Arc::new(IngressQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1).is_ok())
        };
        // The producer must be parked until we pop.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_wakes_on_close() {
        let q = Arc::new(IngressQueue::<u8>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = IngressQueue::<u8>::new(0);
    }
}
