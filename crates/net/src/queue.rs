//! A bounded MPSC ingress queue with an explicit overflow contract.
//!
//! Each receiver shard drains one of these. The socket-reader side picks
//! the overflow behaviour per call: [`IngressQueue::try_push`] never
//! blocks — a full queue rejects the frame so the reader can count the
//! drop and keep the socket drained (the UDP posture: the kernel buffer,
//! not our worker, is the scarce resource), while
//! [`IngressQueue::push_blocking`] applies backpressure (the loopback
//! posture, where blocking keeps the run deterministic instead of
//! dropping on scheduler timing).
//!
//! Built from `Mutex` + `Condvar` only — the workspace forbids `unsafe`,
//! so a lock-free ring is off the table, and a mutex around a `VecDeque`
//! is far below the cost of the HMAC work each frame triggers anyway.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue; see the module docs for the two push
/// flavours.
pub struct IngressQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes.
    readable: Condvar,
    /// Signalled when space frees up or the queue closes.
    writable: Condvar,
    capacity: usize,
}

impl<T> IngressQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: `Err` returns the item when the queue is full
    /// or closed — the caller decides whether that is a counted drop.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space (backpressure). `Err` returns the
    /// item only when the queue has been closed.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        while !state.closed && state.items.len() >= self.capacity {
            state = self.writable.wait(state).expect("queue mutex poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocking pop: `None` once the queue is closed *and* drained —
    /// every item pushed before `close` is still delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.writable.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.readable.wait(state).expect("queue mutex poisoned");
        }
    }

    /// Closes the queue: pushes start failing, pops drain then end.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.closed = true;
        drop(state);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Items currently enqueued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue mutex poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let q = IngressQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn try_push_rejects_when_full() {
        let q = IngressQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = IngressQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        assert_eq!(q.push_blocking(9), Err(9));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocking_applies_backpressure() {
        let q = Arc::new(IngressQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1).is_ok())
        };
        // The producer must be parked until we pop.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_wakes_on_close() {
        let q = Arc::new(IngressQueue::<u8>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = IngressQueue::<u8>::new(0);
    }
}
