//! A tiny `--key value` / `--flag` argument parser for the binaries
//! (the workspace is hermetic — no clap).

use std::str::FromStr;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    /// Parses the process arguments. `known_flags` lists the `--name`
    /// switches that take no value; every other `--name` consumes the
    /// next argument as its value.
    ///
    /// # Panics
    ///
    /// Panics (with a readable message) on a positional argument or a
    /// valued option with no value — binaries surface that directly.
    #[must_use]
    pub fn parse(known_flags: &[&str]) -> Self {
        Self::from_iter(std::env::args().skip(1), known_flags)
    }

    /// [`Opts::parse`] over an explicit argument list (testable).
    ///
    /// # Panics
    ///
    /// See [`Opts::parse`].
    #[must_use]
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I, known_flags: &[&str]) -> Self {
        let mut opts = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                panic!("unexpected positional argument {arg:?} (options are --key value)");
            };
            if known_flags.contains(&name) {
                opts.flags.push(name.to_string());
            } else {
                let value = iter
                    .next()
                    .unwrap_or_else(|| panic!("option --{name} needs a value"));
                opts.pairs.push((name.to_string(), value));
            }
        }
        opts
    }

    /// The value of `--key`, if given (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `--key` parsed as `T`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but unparsable.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("--{key} got unparsable value {raw:?}")),
        }
    }

    /// Whether `--name` (a known flag) was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn pairs_flags_and_defaults() {
        let opts = Opts::from_iter(
            args(&["--seed", "7", "--loopback", "--flood", "0.9"]),
            &["loopback"],
        );
        assert_eq!(opts.get_or("seed", 0u64), 7);
        assert_eq!(opts.get_or("missing", 42u64), 42);
        assert!((opts.get_or("flood", 0.0f64) - 0.9).abs() < 1e-12);
        assert!(opts.flag("loopback"));
        assert!(!opts.flag("assert-soak"));
        assert_eq!(opts.get("missing"), None);
    }

    #[test]
    fn last_occurrence_wins() {
        let opts = Opts::from_iter(args(&["--m", "1", "--m", "2"]), &[]);
        assert_eq!(opts.get_or("m", 0u32), 2);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn dangling_option_panics() {
        let _ = Opts::from_iter(args(&["--seed"]), &[]);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_arguments_rejected() {
        let _ = Opts::from_iter(args(&["whoops"]), &[]);
    }

    #[test]
    #[should_panic(expected = "unparsable")]
    fn bad_value_panics() {
        let opts = Opts::from_iter(args(&["--seed", "pony"]), &[]);
        let _ = opts.get_or("seed", 0u64);
    }
}
