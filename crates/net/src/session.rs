//! Per-sender session state behind a bounded memory envelope.
//!
//! The crowdsensing setting is many-to-one: a base station authenticates
//! broadcasts from thousands of contributors, each running its own key
//! chain. A [`SessionTable`] holds one [`DapReceiver`] per *resident*
//! sender — chain anchor, clock skew and reservoir buffers — and is
//! owned outright by a single pool shard: frames hash to shards by
//! [`SenderId`], so a sender's whole session lives on exactly one thread
//! and the hot path takes no cross-shard locks.
//!
//! Residency is bounded two ways ([`SessionConfig`]): a session-count
//! cap and a memory budget in bits, accounted at each session's
//! *provisioned* capacity (`(d + 2)·m·56` bits plus a fixed overhead
//! constant) rather than its instantaneous buffer occupancy — so the
//! budget arithmetic is deterministic and admission never depends on
//! which announces happened to survive sampling. When admitting a new
//! sender would exceed either bound, the least-recently-used resident
//! session is evicted. An evicted sender is not banished: its next frame
//! re-admits it with a fresh receiver, which re-anchors off the chain
//! commitment via the multi-step recovery path (`accept_recovering`) —
//! the sender loses pending (unrevealed) intervals but authenticates
//! again from the next interval on. Bounded RAM thus serves an unbounded
//! sender population, trading tail latency for the flood immunity the
//! paper's fixed-memory analysis assumes.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use dap_core::{DapBootstrap, DapReceiver, SenderId};

/// Fixed per-session accounting overhead in bits (anchor, skew, map
/// slots — everything that is not reservoir buffers). A round constant,
/// not a `size_of` reading, so budget math never shifts under layout
/// changes.
pub const SESSION_OVERHEAD_BITS: u64 = 1024;

/// Initial priority score for a freshly admitted session, in permille.
pub const SCORE_INIT_PERMILLE: u32 = 500;

/// Resident sessions scoring at or above this are [`PriorityClass::High`].
pub const SCORE_HIGH_PERMILLE: u32 = 500;

/// Priority class of a sender, as seen by the pool's drain and eviction
/// policies. The ordering is the drain order: `Pinned` frames are
/// verified first under queue pressure, `Low` frames are shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Operator-pinned sender (`dapd --pin`): never evicted while any
    /// unpinned session exists, drained ahead of everything else.
    Pinned,
    /// Resident session whose recent auth success keeps its EWMA score
    /// at or above [`SCORE_HIGH_PERMILLE`].
    High,
    /// Everything else: unproven newcomers, senders whose reveals keep
    /// failing, and non-resident ids. Reputation is earned, not granted.
    Low,
}

impl PriorityClass {
    /// Stable lowercase label used in metrics keys and trace events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Pinned => "pinned",
            PriorityClass::High => "high",
            PriorityClass::Low => "low",
        }
    }
}

/// Residency bounds for a [`SessionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Hard cap on resident sessions (≥ 1 is enforced at admission:
    /// the newest sender always fits once the LRU is evicted).
    pub max_sessions: usize,
    /// Memory budget in bits across resident sessions, accounted at
    /// provisioned capacity + [`SESSION_OVERHEAD_BITS`] each.
    pub memory_budget_bits: u64,
}

impl Default for SessionConfig {
    /// 256 sessions under a 4 Mbit envelope.
    fn default() -> Self {
        Self {
            max_sessions: 256,
            memory_budget_bits: 4 * 1024 * 1024,
        }
    }
}

/// One LRU eviction, reported so the pool can trace it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionEviction {
    /// The sender whose session was dropped.
    pub sender: u64,
    /// Sessions still resident after the eviction.
    pub occupancy: u64,
}

/// Monotone counters the table keeps (mirrored into the registry by the
/// fleet verifier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Senders admitted for the first time.
    pub admitted: u64,
    /// Sessions evicted by the LRU/budget policy.
    pub evicted: u64,
    /// Previously evicted senders admitted again.
    pub readmitted: u64,
    /// Lookups for senders the directory does not know.
    pub unknown: u64,
}

/// How a lookup resolved (the receiver itself is borrowed separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The sender was already resident.
    Resident,
    /// First frame from this sender: a fresh session was provisioned.
    Admitted,
    /// The sender had been evicted earlier and was re-admitted with a
    /// fresh receiver (re-anchors via the chain-recovery path).
    Readmitted,
}

/// A resolved lookup: the sender's receiver plus what admission did.
#[derive(Debug)]
pub struct SessionRef<'a> {
    /// The sender's per-session receiver, LRU-touched.
    pub receiver: &'a mut DapReceiver,
    /// Resident / admitted / readmitted.
    pub admission: Admission,
    /// Evictions the admission forced (empty for residents; uniform
    /// session sizes force at most one).
    pub evicted: Vec<SessionEviction>,
}

#[derive(Debug, Clone)]
struct SessionEntry {
    receiver: DapReceiver,
    cost_bits: u64,
    last_used: u64,
    /// EWMA of recent reveal outcomes in permille (α = 1/8): converges
    /// to 1000 under steady success, decays toward 0 under failure.
    score_permille: u32,
}

/// A shard-owned map from [`SenderId`] to per-sender receiver state,
/// with LRU + memory-budget eviction. See the module docs for the
/// design; `local_seed` salts each session's node-local μMAC secret so
/// two senders' buffered evidence can never be confused (the splice
/// property in `tests/codec_fuzz.rs` pins this down end to end).
#[derive(Debug, Clone)]
pub struct SessionTable {
    config: SessionConfig,
    local_seed: u64,
    clock: u64,
    sessions: BTreeMap<u64, SessionEntry>,
    memory_bits: u64,
    evicted_ever: BTreeSet<u64>,
    stats: SessionStats,
    pins: Arc<BTreeSet<u64>>,
}

impl SessionTable {
    /// An empty table. `local_seed` derives every session's node-local
    /// secret (never transmitted); same seed + same lookup sequence ⇒
    /// identical state, which is what the fleet-soak byte-identity gate
    /// leans on.
    #[must_use]
    pub fn new(config: SessionConfig, local_seed: u64) -> Self {
        Self::with_pins(config, local_seed, Arc::new(BTreeSet::new()))
    }

    /// An empty table with an operator pin set: pinned senders are
    /// evicted only when every resident session is pinned, regardless of
    /// recency or score.
    #[must_use]
    pub fn with_pins(config: SessionConfig, local_seed: u64, pins: Arc<BTreeSet<u64>>) -> Self {
        Self {
            config,
            local_seed,
            clock: 0,
            sessions: BTreeMap::new(),
            memory_bits: 0,
            evicted_ever: BTreeSet::new(),
            stats: SessionStats::default(),
            pins,
        }
    }

    /// Resident sessions.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sessions.len()
    }

    /// Accounted memory across resident sessions, in bits.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        self.memory_bits
    }

    /// The configured bounds.
    #[must_use]
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Monotone table counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Whether `sender` is currently resident (no LRU touch).
    #[must_use]
    pub fn is_resident(&self, sender: SenderId) -> bool {
        self.sessions.contains_key(&sender.0)
    }

    /// The sender's receiver for post-run inspection (no LRU touch).
    #[must_use]
    pub fn peek(&self, sender: SenderId) -> Option<&DapReceiver> {
        self.sessions.get(&sender.0).map(|e| &e.receiver)
    }

    /// Whether `sender` is in the operator pin set.
    #[must_use]
    pub fn is_pinned(&self, sender: SenderId) -> bool {
        self.pins.contains(&sender.0)
    }

    /// The sender's current EWMA score in permille, if resident.
    #[must_use]
    pub fn score_permille(&self, sender: SenderId) -> Option<u32> {
        self.sessions.get(&sender.0).map(|e| e.score_permille)
    }

    /// The sender's priority class as the drain and eviction policies
    /// see it right now. Non-resident unpinned ids classify `Low`:
    /// reputation is earned by authenticating, never presumed — so a
    /// spoofed id the table has never admitted cannot jump the queue.
    #[must_use]
    pub fn priority_class(&self, sender: SenderId) -> PriorityClass {
        if self.pins.contains(&sender.0) {
            return PriorityClass::Pinned;
        }
        match self.sessions.get(&sender.0) {
            Some(entry) if entry.score_permille >= SCORE_HIGH_PERMILLE => PriorityClass::High,
            _ => PriorityClass::Low,
        }
    }

    /// Folds one reveal outcome into the sender's EWMA score
    /// (`score ← score − score/8 + success·125`, integer permille — the
    /// fixed point of steady success is exactly 1000, of steady failure
    /// exactly 0). No LRU touch: scoring a reveal must not change which
    /// session is coldest. No-op for non-resident senders.
    pub fn record_auth(&mut self, sender: SenderId, success: bool) {
        if let Some(entry) = self.sessions.get_mut(&sender.0) {
            let decayed = entry.score_permille - entry.score_permille / 8;
            entry.score_permille = decayed + if success { 125 } else { 0 };
        }
    }

    /// Re-provisions every resident session to `m` reservoir buffers —
    /// the control plane's live re-size. Each receiver keeps its anchor,
    /// skew and pending windows; only *future* intervals sample into the
    /// new capacity. Per-session memory accounting is recomputed (a
    /// bigger `m` costs more bits), but the budget is re-enforced lazily
    /// at the next admission, which evicts down as usual — re-sizing
    /// must not itself evict, or a directive could silently drop pinned
    /// sessions. Returns the number of sessions touched.
    pub fn reprovision(&mut self, m: usize) -> usize {
        let mut touched = 0;
        let mut total = 0u64;
        for entry in self.sessions.values_mut() {
            if entry.receiver.buffer_capacity() != m {
                entry.receiver.set_buffers(m);
                entry.cost_bits = entry.receiver.memory_capacity_bits() + SESSION_OVERHEAD_BITS;
                touched += 1;
            }
            total += entry.cost_bits;
        }
        self.memory_bits = total;
        touched
    }

    /// Resolves `sender` to its session, admitting (or re-admitting) it
    /// via `directory` when absent. Returns `None` when the directory
    /// does not know the sender — unknown senders never consume budget,
    /// so a flood of fabricated ids cannot evict real sessions.
    pub fn lookup(
        &mut self,
        sender: SenderId,
        directory: impl FnOnce(SenderId) -> Option<DapBootstrap>,
    ) -> Option<SessionRef<'_>> {
        self.clock += 1;
        let stamp = self.clock;
        // Two-step resident lookup: starting the mutable borrow inside
        // the branch (not in the condition) keeps the borrow checker
        // happy about the admission path below.
        if self.sessions.contains_key(&sender.0) {
            let entry = self
                .sessions
                .get_mut(&sender.0)
                .expect("residency checked above");
            entry.last_used = stamp;
            return Some(SessionRef {
                receiver: &mut entry.receiver,
                admission: Admission::Resident,
                evicted: Vec::new(),
            });
        }
        let Some(bootstrap) = directory(sender) else {
            self.stats.unknown += 1;
            return None;
        };
        // Per-sender node-local secret: seed ‖ sender id, so shard-local
        // μMAC keys differ across sessions.
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&self.local_seed.to_be_bytes());
        seed[8..].copy_from_slice(&sender.0.to_be_bytes());
        let receiver = DapReceiver::new(bootstrap, &seed);
        let cost_bits = receiver.memory_capacity_bits() + SESSION_OVERHEAD_BITS;
        let mut evicted = Vec::new();
        while !self.sessions.is_empty()
            && (self.sessions.len() + 1 > self.config.max_sessions
                || self.memory_bits + cost_bits > self.config.memory_budget_bits)
        {
            // Victim order: unpinned before pinned, then lowest score,
            // then coldest, then smallest id. A pinned session is thus
            // evicted only when *every* resident session is pinned, and
            // among equals the policy degrades to the PR 6 LRU exactly
            // (scores start equal and move only via `record_auth`).
            let victim = self
                .sessions
                .iter()
                .min_by_key(|(id, entry)| {
                    (
                        u8::from(self.pins.contains(id)),
                        entry.score_permille,
                        entry.last_used,
                        **id,
                    )
                })
                .map(|(id, _)| *id)
                .expect("non-empty table has an LRU victim");
            let dropped = self.sessions.remove(&victim).expect("victim resident");
            self.memory_bits -= dropped.cost_bits;
            self.evicted_ever.insert(victim);
            self.stats.evicted += 1;
            evicted.push(SessionEviction {
                sender: victim,
                occupancy: self.sessions.len() as u64,
            });
        }
        let admission = if self.evicted_ever.contains(&sender.0) {
            self.stats.readmitted += 1;
            Admission::Readmitted
        } else {
            self.stats.admitted += 1;
            Admission::Admitted
        };
        self.memory_bits += cost_bits;
        let entry = self.sessions.entry(sender.0).or_insert(SessionEntry {
            receiver,
            cost_bits,
            last_used: stamp,
            score_permille: SCORE_INIT_PERMILLE,
        });
        Some(SessionRef {
            receiver: &mut entry.receiver,
            admission,
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_core::{DapParams, DapSender};
    use dap_simnet::{SimDuration, SimRng, SimTime};

    fn params(m: usize) -> DapParams {
        DapParams::new(SimDuration(100), 1, 0, m)
    }

    fn directory(sender: SenderId) -> Option<DapBootstrap> {
        (sender.0 < 100).then(|| DapSender::new(&sender.0.to_be_bytes(), 8, params(4)).bootstrap())
    }

    fn config(max_sessions: usize) -> SessionConfig {
        SessionConfig {
            max_sessions,
            memory_budget_bits: u64::MAX,
        }
    }

    #[test]
    fn admits_then_finds_resident() {
        let mut table = SessionTable::new(config(4), 7);
        let first = table.lookup(SenderId(1), directory).expect("known sender");
        assert_eq!(first.admission, Admission::Admitted);
        assert!(first.evicted.is_empty());
        let again = table.lookup(SenderId(1), directory).expect("resident");
        assert_eq!(again.admission, Admission::Resident);
        assert_eq!(table.occupancy(), 1);
        assert_eq!(table.stats().admitted, 1);
    }

    #[test]
    fn unknown_senders_consume_nothing() {
        let mut table = SessionTable::new(config(4), 7);
        assert!(table.lookup(SenderId(1000), directory).is_none());
        assert_eq!(table.occupancy(), 0);
        assert_eq!(table.memory_bits(), 0);
        assert_eq!(table.stats().unknown, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_session() {
        let mut table = SessionTable::new(config(2), 7);
        table.lookup(SenderId(1), directory).unwrap();
        table.lookup(SenderId(2), directory).unwrap();
        // Touch 1 so 2 is the LRU.
        table.lookup(SenderId(1), directory).unwrap();
        let third = table.lookup(SenderId(3), directory).unwrap();
        assert_eq!(third.admission, Admission::Admitted);
        assert_eq!(
            third.evicted,
            vec![SessionEviction {
                sender: 2,
                occupancy: 1
            }]
        );
        assert!(table.is_resident(SenderId(1)));
        assert!(!table.is_resident(SenderId(2)));
    }

    #[test]
    fn memory_budget_caps_residency() {
        let probe = DapReceiver::new(directory(SenderId(0)).unwrap(), b"probe");
        let cost = probe.memory_capacity_bits() + SESSION_OVERHEAD_BITS;
        let mut table = SessionTable::new(
            SessionConfig {
                max_sessions: usize::MAX,
                memory_budget_bits: 3 * cost,
            },
            7,
        );
        for id in 0..10u64 {
            table.lookup(SenderId(id), directory).unwrap();
            assert!(table.memory_bits() <= 3 * cost, "budget exceeded at {id}");
        }
        assert_eq!(table.occupancy(), 3);
        assert_eq!(table.stats().evicted, 7);
    }

    #[test]
    fn evicted_sender_readmits_and_reanchors() {
        let mut sender = DapSender::new(&1u64.to_be_bytes(), 8, params(4));
        let mut table = SessionTable::new(config(1), 7);
        let mut rng = SimRng::new(3);

        // Interval 1 authenticates normally.
        let session = table.lookup(SenderId(1), directory).unwrap();
        let a1 = sender.announce(1, b"r1").unwrap();
        session.receiver.on_announce(&a1, SimTime(10), &mut rng);
        let session = table.lookup(SenderId(1), directory).unwrap();
        assert!(session
            .receiver
            .on_reveal(&sender.reveal(1).unwrap(), SimTime(110))
            .is_authenticated());

        // Another sender evicts it (capacity 1).
        table.lookup(SenderId(2), directory).unwrap();
        assert!(!table.is_resident(SenderId(1)));

        // Its next interval re-admits with a fresh receiver that
        // re-anchors across the gap and authenticates again.
        let session = table.lookup(SenderId(1), directory).unwrap();
        assert_eq!(session.admission, Admission::Readmitted);
        let a3 = sender.announce(3, b"r3").unwrap();
        session.receiver.on_announce(&a3, SimTime(210), &mut rng);
        let session = table.lookup(SenderId(1), directory).unwrap();
        assert!(session
            .receiver
            .on_reveal(&sender.reveal(3).unwrap(), SimTime(310))
            .is_authenticated());
        assert_eq!(table.stats().readmitted, 1);
    }

    fn pin_set(ids: &[u64]) -> Arc<BTreeSet<u64>> {
        Arc::new(ids.iter().copied().collect())
    }

    #[test]
    fn pinned_sessions_survive_while_unpinned_exist() {
        let mut table = SessionTable::with_pins(config(2), 7, pin_set(&[1]));
        table.lookup(SenderId(1), directory).unwrap();
        table.lookup(SenderId(2), directory).unwrap();
        // 1 is the coldest, but pinned: 2 must be the victim.
        let third = table.lookup(SenderId(3), directory).unwrap();
        assert_eq!(third.evicted.len(), 1);
        assert_eq!(third.evicted[0].sender, 2);
        assert!(table.is_resident(SenderId(1)));
        assert_eq!(table.priority_class(SenderId(1)), PriorityClass::Pinned);
    }

    #[test]
    fn all_pinned_table_still_admits_by_evicting_a_pin() {
        let mut table = SessionTable::with_pins(config(2), 7, pin_set(&[1, 2, 3]));
        table.lookup(SenderId(1), directory).unwrap();
        table.lookup(SenderId(2), directory).unwrap();
        let third = table.lookup(SenderId(3), directory).unwrap();
        assert_eq!(third.evicted[0].sender, 1, "coldest pin goes first");
    }

    #[test]
    fn low_score_sessions_are_evicted_before_colder_high_scores() {
        let mut table = SessionTable::new(config(2), 7);
        table.lookup(SenderId(1), directory).unwrap();
        table.lookup(SenderId(2), directory).unwrap();
        // 2 is warmer but keeps failing; 1 is colder but authenticates.
        table.record_auth(SenderId(1), true);
        table.record_auth(SenderId(2), false);
        let third = table.lookup(SenderId(3), directory).unwrap();
        assert_eq!(third.evicted[0].sender, 2, "score outranks recency");
    }

    #[test]
    fn ewma_score_converges_and_classifies() {
        let mut table = SessionTable::new(config(4), 7);
        table.lookup(SenderId(1), directory).unwrap();
        assert_eq!(table.score_permille(SenderId(1)), Some(SCORE_INIT_PERMILLE));
        assert_eq!(table.priority_class(SenderId(1)), PriorityClass::High);
        for _ in 0..64 {
            table.record_auth(SenderId(1), true);
        }
        assert_eq!(table.score_permille(SenderId(1)), Some(1000));
        for _ in 0..64 {
            table.record_auth(SenderId(1), false);
        }
        // Integer decay floors at 7 (7/8 == 0) — far below the High
        // threshold either way.
        assert_eq!(table.score_permille(SenderId(1)), Some(7));
        assert_eq!(table.priority_class(SenderId(1)), PriorityClass::Low);
        // Non-resident ids never classify above Low.
        assert_eq!(table.priority_class(SenderId(99)), PriorityClass::Low);
        // record_auth on a non-resident id is a no-op.
        table.record_auth(SenderId(99), true);
        assert!(!table.is_resident(SenderId(99)));
    }

    #[test]
    fn same_seed_tables_evolve_identically() {
        let mut a = SessionTable::new(config(3), 9);
        let mut b = SessionTable::new(config(3), 9);
        for id in [5u64, 1, 5, 2, 3, 1, 4, 5] {
            let ra = a.lookup(SenderId(id), directory).map(|s| s.admission);
            let rb = b.lookup(SenderId(id), directory).map(|s| s.admission);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.occupancy(), b.occupancy());
        assert_eq!(a.memory_bits(), b.memory_bits());
        assert_eq!(a.stats(), b.stats());
    }
}
