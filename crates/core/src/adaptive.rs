//! The QoS-balanced DAP of §V: evolutionary-game-driven buffer
//! provisioning.
//!
//! A node cannot see the whole network, so it estimates the attack level
//! `p` from its own authentication outcomes, solves the attacker/defender
//! game (Algorithm 3 in [`dap_game::optimize`]) and re-provisions its
//! buffer pool each epoch. The resulting [`DefensePolicy`] carries both
//! the buffer count and the ESS — including the *give-up* regimes where
//! buying more buffers no longer pays (`(X′, 1)`: cost saturates at
//! `R_a`; `(0, 1)`: defense abandoned).

use dap_game::ess::EssKind;
use dap_game::{optimal_buffer_count, DosGameParams, EssOutcome};

use crate::receiver::DapStats;

/// Static configuration of the adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Reward of a successful attack `R_a` (= data value).
    pub ra: f64,
    /// Attacker cost coefficient `k1`.
    pub k1: f64,
    /// Defender cost coefficient `k2`.
    pub k2: f64,
    /// Hardware bound on buffers (`M`, ≤ 50 for sensor nodes per the
    /// paper's §VI-B-1).
    pub buffer_cap: u32,
    /// Exponential smoothing factor for the attack-level estimate,
    /// in `(0, 1]` (1 = trust the latest epoch completely).
    pub smoothing: f64,
}

impl AdaptiveConfig {
    /// The paper's §VI-B economy: `R_a = 200`, `k1 = 20`, `k2 = 4`,
    /// `M = 50`, with mild smoothing.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            ra: 200.0,
            k1: 20.0,
            k2: 4.0,
            buffer_cap: 50,
            smoothing: 0.5,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive coefficients, a zero cap, or smoothing
    /// outside `(0, 1]`.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(
            self.ra > 0.0 && self.k1 > 0.0 && self.k2 > 0.0,
            "coefficients must be positive"
        );
        assert!(self.buffer_cap >= 1, "buffer cap must be at least 1");
        assert!(
            self.smoothing > 0.0 && self.smoothing <= 1.0,
            "smoothing must be in (0, 1]"
        );
        self
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// The controller's recommendation for the next epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct DefensePolicy {
    /// Buffers to provision (`m*` from Algorithm 3).
    pub buffers: u32,
    /// The defending fraction `X` at the ESS — a fleet-level knob: when
    /// `X < 1`, only this fraction of nodes needs to pay for buffers.
    pub defend_fraction: f64,
    /// The expected per-node defense cost at the ESS.
    pub expected_cost: f64,
    /// The full ESS outcome.
    pub ess: EssOutcome,
    /// The attack-level estimate the policy was computed from.
    pub estimated_p: f64,
}

impl DefensePolicy {
    /// `true` when the game says extra buffers no longer pay — the
    /// paper's "it turns to give up" regimes.
    #[must_use]
    pub fn is_give_up(&self) -> bool {
        matches!(
            self.ess.kind,
            EssKind::PartialDefenseFullAttack | EssKind::GiveUpDefense
        )
    }

    /// Whether node `node_id` should provision buffers during `epoch`.
    ///
    /// At a partial-defense ESS (`X < 1`) only an `X` fraction of the
    /// fleet needs to pay for buffers. The assignment is a deterministic
    /// hash of `(node, epoch)`, so (a) no coordination traffic is needed
    /// — every node can evaluate it locally, (b) across the fleet an
    /// ≈ `X` fraction defends in every epoch, and (c) the duty *rotates*:
    /// no node is permanently stuck paying the memory bill.
    #[must_use]
    pub fn should_defend(&self, node_id: u64, epoch: u64) -> bool {
        if self.defend_fraction >= 1.0 {
            return true;
        }
        if self.defend_fraction <= 0.0 {
            return false;
        }
        let h = mix(node_id ^ mix(epoch));
        // Map the hash to [0, 1) and compare against X.
        (h >> 11) as f64 / (1u64 << 53) as f64 <= self.defend_fraction
    }
}

/// A live re-provisioning order from the control plane.
///
/// This is the unit that crosses the feedback edge: the controller (an
/// online estimator + game solve, see `dap-net`'s `control` module)
/// emits one directive whenever the recommended posture changes, and
/// every shard applies it at its next interval boundary. All fields are
/// integers so two same-seed runs produce bit-identical directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostureDirective {
    /// Monotone directive number (one per posture change in a run).
    pub epoch: u64,
    /// The reservoir count `m*` the solver chose.
    pub buffers: u32,
    /// The §V give-up verdict: buffers no longer pay; shards should fall
    /// back to the minimum reservoir and stop paying for memory.
    pub give_up: bool,
    /// The forged-fraction estimate (permille) that drove the solve.
    pub p_permille: u32,
}

impl PostureDirective {
    /// The reservoir capacity a shard should actually provision: the
    /// solver's `m*`, or the 1-buffer minimum when the game says give up
    /// (a receiver always keeps at least one reservoir slot so genuine
    /// traffic still authenticates at `1 − p` when the flood subsides).
    #[must_use]
    pub fn effective_buffers(&self) -> usize {
        if self.give_up {
            1
        } else {
            self.buffers.max(1) as usize
        }
    }
}

impl DefensePolicy {
    /// Renders the policy as a fixed-point [`PostureDirective`] for
    /// `epoch` — the bridge from the offline f64 controller to the live
    /// integer control plane.
    #[must_use]
    pub fn directive(&self, epoch: u64) -> PostureDirective {
        PostureDirective {
            epoch,
            buffers: self.buffers,
            give_up: self.is_give_up(),
            p_permille: (self.estimated_p.clamp(0.0, 1.0) * 1000.0).round() as u32,
        }
    }
}

/// SplitMix64 finaliser — a cheap, well-distributed 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Estimates the forged-traffic fraction `p` from one epoch of receiver
/// counters.
///
/// Of everything offered to the buffers, the authentic copies are the
/// ones that later matched a reveal; everything else (strong rejections,
/// evicted copies, expired entries) is attributable to the flood. The
/// estimator is conservative (it counts authentic copies evicted by the
/// flood as forged), which errs toward more defense.
///
/// Returns `None` when the epoch saw no announcements.
#[must_use]
pub fn estimate_forged_fraction(epoch: &DapStats) -> Option<f64> {
    if epoch.announces_offered == 0 {
        return None;
    }
    let authentic = epoch.authenticated.min(epoch.announces_offered);
    Some(1.0 - authentic as f64 / epoch.announces_offered as f64)
}

/// The adaptive controller: smooths attack-level estimates and turns
/// them into [`DefensePolicy`] recommendations.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    estimate: Option<f64>,
    history: Vec<DefensePolicy>,
}

impl AdaptiveController {
    /// Creates a controller.
    #[must_use]
    pub fn new(config: AdaptiveConfig) -> Self {
        Self {
            config: config.validated(),
            estimate: None,
            history: Vec::new(),
        }
    }

    /// The smoothed attack-level estimate.
    #[must_use]
    pub fn estimated_p(&self) -> Option<f64> {
        self.estimate
    }

    /// Past recommendations, oldest first.
    #[must_use]
    pub fn history(&self) -> &[DefensePolicy] {
        &self.history
    }

    /// Feeds one epoch's observation of the forged fraction.
    pub fn observe(&mut self, forged_fraction: f64) {
        let clamped = forged_fraction.clamp(0.0, 0.999);
        self.estimate = Some(match self.estimate {
            None => clamped,
            Some(prev) => prev + self.config.smoothing * (clamped - prev),
        });
    }

    /// Feeds one epoch of receiver counters (no-op if the epoch was
    /// silent).
    pub fn observe_stats(&mut self, epoch: &DapStats) {
        if let Some(p) = estimate_forged_fraction(epoch) {
            self.observe(p);
        }
    }

    /// Computes the recommendation for the current estimate (defaults to
    /// a modest `m` when nothing has been observed yet).
    pub fn recommend(&mut self) -> DefensePolicy {
        let p = self.estimate.unwrap_or(0.0);
        let policy = if p <= 0.0 {
            // No attack observed: one buffer suffices (P = 1 − 0^1 = 1).
            let params = DosGameParams {
                ra: self.config.ra,
                k1: self.config.k1,
                k2: self.config.k2,
                p: 0.0,
                m: 1,
            };
            let (ess, cost) = dap_game::optimize::ess_cost(params);
            DefensePolicy {
                buffers: 1,
                defend_fraction: ess.point.x(),
                expected_cost: cost,
                ess,
                estimated_p: 0.0,
            }
        } else {
            let params = DosGameParams {
                ra: self.config.ra,
                k1: self.config.k1,
                k2: self.config.k2,
                p,
                m: 1,
            };
            let opt = optimal_buffer_count(params, self.config.buffer_cap);
            DefensePolicy {
                buffers: opt.m,
                defend_fraction: opt.ess.point.x(),
                expected_cost: opt.cost,
                ess: opt.ess,
                estimated_p: p,
            }
        };
        self.history.push(policy.clone());
        policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_reads_stats() {
        let mut stats = DapStats::default();
        assert_eq!(estimate_forged_fraction(&stats), None);
        stats.announces_offered = 100;
        stats.authenticated = 20;
        assert!((estimate_forged_fraction(&stats).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn smoothing_converges_to_observations() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        for _ in 0..20 {
            c.observe(0.8);
        }
        assert!((c.estimated_p().unwrap() - 0.8).abs() < 1e-3);
    }

    #[test]
    fn first_observation_taken_verbatim() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(0.6);
        assert!((c.estimated_p().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn no_attack_recommends_minimal_buffers() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        let policy = c.recommend();
        assert_eq!(policy.buffers, 1);
        assert_eq!(policy.estimated_p, 0.0);
        assert_eq!(c.history().len(), 1);
    }

    #[test]
    fn stronger_attack_more_buffers() {
        let mut weak = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        weak.observe(0.5);
        let weak_policy = weak.recommend();

        let mut strong = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        strong.observe(0.9);
        let strong_policy = strong.recommend();

        assert!(
            weak_policy.buffers < strong_policy.buffers,
            "weak {} vs strong {}",
            weak_policy.buffers,
            strong_policy.buffers
        );
    }

    #[test]
    fn near_jamming_is_give_up_regime() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(0.99);
        let policy = c.recommend();
        assert!(policy.is_give_up(), "{policy:?}");
        // In the give-up regime the per-node cost saturates at R_a.
        assert!((policy.expected_cost - 200.0).abs() < 2.0, "{policy:?}");
    }

    #[test]
    fn moderate_attack_cost_below_naive() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(0.8);
        let policy = c.recommend();
        let naive = dap_game::cost::naive_defense_cost(
            DosGameParams {
                ra: 200.0,
                k1: 20.0,
                k2: 4.0,
                p: 0.8,
                m: 1,
            },
            50,
        );
        assert!(
            policy.expected_cost <= naive,
            "adaptive {} vs naive {naive}",
            policy.expected_cost
        );
    }

    #[test]
    fn observe_stats_ignores_silent_epochs() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe_stats(&DapStats::default());
        assert_eq!(c.estimated_p(), None);
    }

    #[test]
    fn observations_clamped_below_one() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(1.0);
        assert!(c.estimated_p().unwrap() < 1.0);
        let _ = c.recommend(); // must not panic on p ≈ 1
    }

    fn policy_with_fraction(x: f64) -> DefensePolicy {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(0.99); // lands on a partial-defense ESS
        let mut p = c.recommend();
        p.defend_fraction = x;
        p
    }

    #[test]
    fn fleet_assignment_matches_the_fraction() {
        let policy = policy_with_fraction(0.6);
        let nodes = 20_000u64;
        for epoch in [0u64, 7, 123] {
            let defending = (0..nodes)
                .filter(|n| policy.should_defend(*n, epoch))
                .count() as f64;
            let fraction = defending / nodes as f64;
            assert!(
                (fraction - 0.6).abs() < 0.02,
                "epoch {epoch}: fraction {fraction}"
            );
        }
    }

    #[test]
    fn fleet_assignment_rotates_across_epochs() {
        let policy = policy_with_fraction(0.5);
        // A fixed node's duty changes over epochs (not always on/off).
        let node = 42u64;
        let states: Vec<bool> = (0..64).map(|e| policy.should_defend(node, e)).collect();
        assert!(states.iter().any(|&s| s));
        assert!(states.iter().any(|&s| !s));
    }

    #[test]
    fn fleet_assignment_extremes() {
        let full = policy_with_fraction(1.0);
        let none = policy_with_fraction(0.0);
        for n in 0..100u64 {
            assert!(full.should_defend(n, 3));
            assert!(!none.should_defend(n, 3));
        }
    }

    #[test]
    fn fleet_assignment_is_deterministic() {
        let policy = policy_with_fraction(0.37);
        for n in 0..50u64 {
            assert_eq!(policy.should_defend(n, 9), policy.should_defend(n, 9));
        }
    }

    #[test]
    fn directive_round_trips_policy() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(0.8);
        let policy = c.recommend();
        let d = policy.directive(3);
        assert_eq!(d.epoch, 3);
        assert_eq!(d.buffers, policy.buffers);
        assert_eq!(d.p_permille, 800);
        assert!(!d.give_up);
        assert_eq!(d.effective_buffers(), policy.buffers as usize);
    }

    #[test]
    fn give_up_directive_falls_back_to_one_buffer() {
        let mut c = AdaptiveController::new(AdaptiveConfig::paper_defaults());
        c.observe(0.99);
        let policy = c.recommend();
        let d = policy.directive(1);
        assert!(d.give_up, "{policy:?}");
        assert_eq!(d.effective_buffers(), 1);
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn bad_smoothing_rejected() {
        let mut cfg = AdaptiveConfig::paper_defaults();
        cfg.smoothing = 0.0;
        let _ = AdaptiveController::new(cfg);
    }
}
