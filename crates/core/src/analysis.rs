//! Analytic models behind DAP's evaluation (§IV-D, §VI-A).
//!
//! Everything here is closed-form; the simulation counterparts live in
//! [`crate::sim`] and the `dap-bench` experiment binaries validate one
//! against the other.

/// Attack success probability `P = p^m`: all `m` buffers hold forged
/// copies when the forged-traffic fraction is `p`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]` or `m == 0`.
#[must_use]
pub fn attack_success(p: f64, m: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    assert!(m >= 1, "m must be at least 1");
    p.powi(m as i32)
}

/// The probability the receiver holds at least one authentic copy:
/// `P = 1 − p^m` (§IV-A).
#[must_use]
pub fn authentic_presence(p: f64, m: u32) -> f64 {
    1.0 - attack_success(p, m)
}

/// The smallest `m` achieving `authentic_presence ≥ target` under forged
/// fraction `p`; `None` if no finite `m` suffices (`p = 1`).
///
/// # Panics
///
/// Panics if `p` or `target` is not a probability.
#[must_use]
pub fn required_buffers(p: f64, target: f64) -> Option<u32> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    assert!(
        (0.0..=1.0).contains(&target),
        "target must be a probability, got {target}"
    );
    if target == 0.0 {
        return Some(1);
    }
    if p == 0.0 {
        return Some(1);
    }
    if p >= 1.0 {
        return None;
    }
    // 1 − p^m ≥ target  ⇔  m ≥ ln(1−target)/ln(p)
    let m = ((1.0 - target).ln() / p.ln()).ceil();
    Some((m as u32).max(1))
}

/// Fig. 5 model: the fraction of channel bandwidth the sender must spend
/// on MAC announcements so that an attacker cannot push the attack
/// success probability above `tolerated_success`, with `m` buffers and a
/// data-traffic share of `x_d`.
///
/// With tolerated success `P`, the forged share among MAC-bearing
/// traffic may reach `p = P^{1/m}`, leaving the legitimate share
/// `x_m = (1 − P^{1/m})·(1 − x_d)` of the non-data bandwidth.
///
/// (The paper prints `x_m = m√P·(1−x_d)`, which contradicts its own
/// conclusion that DAP — with more buffers — needs *less* bandwidth; see
/// DESIGN.md §4. The literal form is provided as
/// [`required_mac_bandwidth_paper_literal`].)
///
/// # Panics
///
/// Panics if the inputs are not probabilities or `m == 0`.
#[must_use]
pub fn required_mac_bandwidth(tolerated_success: f64, m: u32, x_d: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&tolerated_success),
        "tolerated success must be a probability"
    );
    assert!((0.0..=1.0).contains(&x_d), "x_d must be a fraction");
    assert!(m >= 1, "m must be at least 1");
    (1.0 - tolerated_success.powf(1.0 / f64::from(m))) * (1.0 - x_d)
}

/// The formula exactly as printed in §VI-A:
/// `x_m = P^{1/m}·(1 − x_d)`.
#[must_use]
pub fn required_mac_bandwidth_paper_literal(tolerated_success: f64, m: u32, x_d: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&tolerated_success),
        "tolerated success must be a probability"
    );
    assert!((0.0..=1.0).contains(&x_d), "x_d must be a fraction");
    assert!(m >= 1, "m must be at least 1");
    tolerated_success.powf(1.0 / f64::from(m)) * (1.0 - x_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_success_basics() {
        assert!((attack_success(0.8, 5) - 0.32768).abs() < 1e-12);
        assert_eq!(attack_success(0.0, 3), 0.0);
        assert_eq!(attack_success(1.0, 3), 1.0);
        assert!((authentic_presence(0.8, 5) - 0.67232).abs() < 1e-12);
    }

    #[test]
    fn presence_increases_with_buffers() {
        let mut last = 0.0;
        for m in 1..=50 {
            let p = authentic_presence(0.9, m);
            assert!(p >= last, "m={m}");
            last = p;
        }
    }

    #[test]
    fn required_buffers_inverts_presence() {
        for &(p, target) in &[(0.8, 0.9), (0.9, 0.99), (0.5, 0.999)] {
            let m = required_buffers(p, target).unwrap();
            assert!(
                authentic_presence(p, m) >= target,
                "p={p} target={target} m={m}"
            );
            if m > 1 {
                assert!(authentic_presence(p, m - 1) < target, "m not minimal");
            }
        }
    }

    #[test]
    fn required_buffers_edge_cases() {
        assert_eq!(required_buffers(0.0, 0.99), Some(1));
        assert_eq!(required_buffers(0.5, 0.0), Some(1));
        assert_eq!(required_buffers(1.0, 0.9), None);
    }

    /// The Fig.-5 headline: for the same tolerated attack success, more
    /// buffers (DAP's 5× from μMAC storage) need less MAC bandwidth.
    #[test]
    fn more_buffers_need_less_mac_bandwidth() {
        let x_d = 0.2;
        for &p_target in &[0.01, 0.1, 0.3, 0.5, 0.9] {
            let teslapp = required_mac_bandwidth(p_target, 29, x_d); // 1 Mib / 280 b ≈ 3744... scaled example
            let dap = required_mac_bandwidth(p_target, 29 * 5, x_d);
            assert!(
                dap < teslapp,
                "P={p_target}: DAP {dap:.4} should be below TESLA++ {teslapp:.4}"
            );
        }
    }

    #[test]
    fn bandwidth_decreases_with_tolerated_success() {
        // Tolerating a higher attack-success probability needs less
        // legitimate MAC bandwidth.
        let mut last = f64::INFINITY;
        for &s in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let b = required_mac_bandwidth(s, 10, 0.2);
            assert!(b < last);
            last = b;
        }
    }

    #[test]
    fn literal_form_is_the_complement() {
        let (s, m, xd) = (0.3, 7, 0.2);
        let ours = required_mac_bandwidth(s, m, xd);
        let literal = required_mac_bandwidth_paper_literal(s, m, xd);
        assert!((ours + literal - (1.0 - xd)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn attack_success_rejects_bad_p() {
        let _ = attack_success(1.5, 3);
    }

    #[test]
    #[should_panic(expected = "m must be at least 1")]
    fn bandwidth_rejects_zero_m() {
        let _ = required_mac_bandwidth(0.5, 0, 0.2);
    }
}
