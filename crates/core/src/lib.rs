//! **DAP — the DoS-Resistant Authentication Protocol** (Ruan et al.,
//! ICDCS 2016, §IV) and its QoS-balanced adaptive variant (§V).
//!
//! DAP is a TESLA variant tuned for crowdsensing networks, combining two
//! ideas against memory-based DoS attacks:
//!
//! 1. **μMAC storage** — in interval `I_i` the sender broadcasts only
//!    `(MAC_i, i)`; the message and key follow one interval later
//!    (Algorithm 1, [`sender`]). The receiver re-keys the received MAC
//!    under a local secret and stores just a 24-bit **μMAC** plus the
//!    32-bit index: 56 bits instead of 280, an ~80 % saving that buys 5×
//!    more buffers in the same memory ([`memory`]).
//! 2. **multi-buffer random selection** — the `k`-th copy received in an
//!    interval is kept with probability `m/k` (reservoir sampling), so
//!    the authentic copy survives a flood of forged fraction `p` with
//!    probability `P = 1 − p^m` (Algorithm 2, [`receiver`];
//!    analytic forms in [`analysis`]).
//!
//! On top, [`adaptive`] implements the paper's evolutionary-game answer
//! to "how many buffers?": estimate the attack level, solve the game from
//! [`dap_game`], and re-provision `m` (giving up on extra buffers when
//! the channel is nearly jammed — the `(X′, 1)` regime).
//!
//! [`sim`] provides [`dap_simnet`] node adapters so whole crowdsensing
//! campaigns run in simulation; the workspace's examples and benches are
//! built on them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analysis;
pub mod codec;
pub mod memory;
pub mod multi;
pub mod receiver;
pub mod sender;
pub mod sim;
pub mod wire;

pub use adaptive::{AdaptiveConfig, AdaptiveController, DefensePolicy, PostureDirective};
pub use multi::{DapMultiReceiver, SenderId};
pub use receiver::{AnnounceOutcome, DapReceiver, DapStats, RevealOutcome, RevealPrecompute};
pub use sender::{DapBootstrap, DapSender};
pub use wire::{Announce, DapMessage, DapParams, Reveal};
