//! Algorithm 1 — DAP message broadcasting.
//!
//! In interval `I_i` the sender selects `K_i` from its one-way chain,
//! computes `MAC_i = MAC_{K'_i}(M_i)` and broadcasts only `(MAC_i, i)`.
//! One interval later it sends `(M_i, K_i, i)` — key disclosure and
//! message delivery ride together (as in TESLA++), so the receiver never
//! buffers a full message.

use dap_crypto::mac::mac80;
use dap_crypto::oneway::Domain;
use dap_crypto::{ChainExhausted, ChainStore, Key, KeyChain, PebbledChain};
use dap_simnet::SimTime;

use crate::wire::{Announce, DapParams, Reveal};

/// What a receiver needs at bootstrap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DapBootstrap {
    /// Chain commitment `K_0`.
    pub commitment: Key,
    /// Protocol parameters.
    pub params: DapParams,
}

/// The broadcasting side of DAP, generic over how the key chain is
/// stored.
///
/// The default store is the fully materialised [`KeyChain`]; campaigns
/// with very long chains construct the sender over a [`PebbledChain`]
/// via [`DapSender::new_pebbled`] — same wire behavior, O(log n) memory.
///
/// ```
/// use dap_core::{DapParams, DapSender};
///
/// let mut sender = DapSender::new(b"secret", 16, DapParams::default());
/// let announce = sender.announce(1, b"task").unwrap(); // interval 1
/// let reveal = sender.reveal(1).expect("announced");
/// assert_eq!(announce.index, reveal.index);
/// ```
#[derive(Debug, Clone)]
pub struct DapSender<C: ChainStore = KeyChain> {
    chain: C,
    params: DapParams,
    pending: std::collections::BTreeMap<u64, Vec<u8>>,
}

impl DapSender {
    /// Creates a sender with a `chain_len`-key chain derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0`.
    #[must_use]
    pub fn new(seed: &[u8], chain_len: usize, params: DapParams) -> Self {
        Self::with_chain(KeyChain::generate(seed, chain_len, Domain::F), params)
    }
}

impl DapSender<PebbledChain> {
    /// Like [`DapSender::new`], but holding the chain as O(log n)
    /// pebbles — same keys, announces and reveals for the same `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0`.
    #[must_use]
    pub fn new_pebbled(seed: &[u8], chain_len: usize, params: DapParams) -> Self {
        Self::with_chain(PebbledChain::generate(seed, chain_len, Domain::F), params)
    }
}

impl<C: ChainStore> DapSender<C> {
    /// Creates a sender over an existing chain store.
    #[must_use]
    pub fn with_chain(chain: C, params: DapParams) -> Self {
        Self {
            chain,
            params,
            pending: std::collections::BTreeMap::new(),
        }
    }

    /// The receiver bootstrap record.
    #[must_use]
    pub fn bootstrap(&self) -> DapBootstrap {
        DapBootstrap {
            commitment: self.chain.commitment(),
            params: self.params,
        }
    }

    /// Protocol parameters.
    #[must_use]
    pub fn params(&self) -> &DapParams {
        &self.params
    }

    /// Last usable interval.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.chain.len() as u64
    }

    /// The sender's interval at its own clock `now`.
    #[must_use]
    pub fn interval_at(&self, now: SimTime) -> u64 {
        self.params.schedule().index_at(now)
    }

    /// Algorithm 1 lines 1–4: announce `message` for interval `index`.
    /// The message is retained for the later [`reveal`](Self::reveal).
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when `index` lies beyond the chain
    /// horizon — an operational end-of-chain condition, not a bug.
    pub fn announce(&mut self, index: u64, message: &[u8]) -> Result<Announce, ChainExhausted> {
        let horizon = self.horizon();
        let key = self
            .chain
            .key(index as usize)
            .ok_or(ChainExhausted { index, horizon })?;
        let mac = mac80(&key, message);
        self.pending.insert(index, message.to_vec());
        Ok(Announce { index, mac })
    }

    /// Algorithm 1 line 6: reveal `(M_i, K_i, i)` for a previously
    /// announced interval. Returns `None` if nothing is pending for
    /// `index` (or it was already revealed).
    pub fn reveal(&mut self, index: u64) -> Option<Reveal> {
        let message = self.pending.remove(&index)?;
        let key = self.chain.key(index as usize)?;
        Some(Reveal {
            index,
            message,
            key,
        })
    }

    /// Intervals announced but not yet revealed.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_crypto::mac::verify_mac80;

    #[test]
    fn announce_mac_matches_reveal() {
        let mut sender = DapSender::new(b"s", 16, DapParams::default());
        let ann = sender.announce(3, b"m3").unwrap();
        let rev = sender.reveal(3).unwrap();
        assert_eq!(ann.index, rev.index);
        assert!(verify_mac80(&rev.key, &rev.message, &ann.mac));
    }

    #[test]
    fn reveal_requires_prior_announce() {
        let mut sender = DapSender::new(b"s", 16, DapParams::default());
        assert!(sender.reveal(1).is_none());
        sender.announce(1, b"x").unwrap();
        assert_eq!(sender.pending_count(), 1);
        assert!(sender.reveal(1).is_some());
        assert!(sender.reveal(1).is_none());
        assert_eq!(sender.pending_count(), 0);
    }

    #[test]
    fn distinct_intervals_use_distinct_keys() {
        let mut sender = DapSender::new(b"s", 16, DapParams::default());
        sender.announce(1, b"same").unwrap();
        sender.announce(2, b"same").unwrap();
        let r1 = sender.reveal(1).unwrap();
        let r2 = sender.reveal(2).unwrap();
        assert_ne!(r1.key, r2.key);
    }

    #[test]
    fn bootstrap_exposes_commitment_only() {
        let sender = DapSender::new(b"s", 16, DapParams::default());
        let b = sender.bootstrap();
        // The commitment is K_0, not any usable key.
        assert_eq!(b.params, DapParams::default());
    }

    #[test]
    fn interval_at_uses_schedule() {
        let sender = DapSender::new(b"s", 16, DapParams::default());
        assert_eq!(sender.interval_at(SimTime(0)), 1);
        assert_eq!(sender.interval_at(SimTime(250)), 3);
        assert_eq!(sender.horizon(), 16);
    }

    #[test]
    fn pebbled_sender_is_wire_identical() {
        // Same seed → same bootstrap, announces and reveals, whichever
        // store backs the chain.
        let mut dense = DapSender::new(b"s", 32, DapParams::default());
        let mut pebbled = DapSender::new_pebbled(b"s", 32, DapParams::default());
        assert_eq!(dense.bootstrap(), pebbled.bootstrap());
        assert_eq!(dense.horizon(), pebbled.horizon());
        for i in 1..=32u64 {
            let msg = i.to_le_bytes();
            assert_eq!(dense.announce(i, &msg), pebbled.announce(i, &msg));
            assert_eq!(dense.reveal(i), pebbled.reveal(i));
        }
    }

    #[test]
    fn announce_past_horizon_is_typed_error() {
        let mut sender = DapSender::new(b"s", 4, DapParams::default());
        assert_eq!(
            sender.announce(5, b"x"),
            Err(ChainExhausted {
                index: 5,
                horizon: 4
            })
        );
        // The failed announce retains nothing.
        assert_eq!(sender.pending_count(), 0);
    }
}
