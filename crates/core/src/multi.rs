//! Multi-sender DAP.
//!
//! In an MCN "the sender and receiver can be any mobile node" (§IV-A):
//! a participant hears broadcasts from many task distributors at once.
//! [`DapMultiReceiver`] maintains one chain anchor per registered sender
//! while all senders' pending announcements share a **single** `m`-buffer
//! pool — memory is the contested resource, so the DoS analysis must hold
//! for the pool as a whole, not per sender.
//!
//! Entries are tagged `(sender, index, μMAC)` (64 + 56 bits in a real
//! implementation; the paper's 56-bit figure is per-sender — both
//! accountings are exposed).
//!
//! Design note: unlike the single-sender [`crate::DapReceiver`] (which
//! scopes its reservoirs per pending interval to defeat boundary
//! eviction — see EXPERIMENTS.md "Model notes"), this multi-sender pool
//! is deliberately *shared*: with many senders, per-(sender, interval)
//! pools would multiply memory by the sender count, defeating the whole
//! point of the constrained-memory design. The price is coupling — a
//! flood aimed at one sender's traffic also crowds out the others
//! (demonstrated by `flood_against_one_sender_degrades_the_other`) and a
//! boundary burst can evict a previous interval's entries. Deployments
//! that need per-sender isolation should run one `DapReceiver` per
//! trusted sender and cap the sender set.

use std::collections::BTreeMap;

use dap_crypto::mac::{mac80, micro_mac_prepared, prepare_receiver_key, MicroMac};
use dap_crypto::oneway::{one_way_iter, Domain};
use dap_crypto::{ChainAnchor, Key, PreparedMacKey};
use dap_simnet::{SimRng, SimTime};
use dap_tesla::ReservoirBuffer;

use crate::receiver::{AnnounceOutcome, RevealOutcome};
use crate::sender::DapBootstrap;
use crate::wire::{Announce, DapParams, Reveal};

/// Identifies a registered sender (task distributor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SenderId(pub u64);

impl SenderId {
    /// The implicit sender of untagged (single-sender) wire frames —
    /// what [`crate::codec::decode_prefix_tagged`] attributes a legacy
    /// `0x01`/`0x02` frame to.
    pub const UNTAGGED: SenderId = SenderId(0);
}

impl std::fmt::Display for SenderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sender#{}", self.0)
    }
}

/// Outcome of a multi-receiver operation addressed at an unregistered
/// sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSender(pub SenderId);

impl std::fmt::Display for UnknownSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no bootstrap registered for {}", self.0)
    }
}

impl std::error::Error for UnknownSender {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    sender: SenderId,
    index: u64,
    micro: MicroMac,
}

/// Per-run counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiStats {
    /// Announcements offered to the shared pool.
    pub announces_offered: u64,
    /// Announcements discarded as unsafe.
    pub announces_unsafe: u64,
    /// Messages authenticated (all senders).
    pub authenticated: u64,
    /// Reveals with forged keys.
    pub weak_rejected: u64,
    /// Reveals failing the μMAC match.
    pub strong_rejected: u64,
    /// Reveals with no buffered candidate.
    pub no_candidate: u64,
}

/// A DAP receiver listening to many senders at once.
#[derive(Debug, Clone)]
pub struct DapMultiReceiver {
    params: DapParams,
    /// `K_recv` with its HMAC key schedule cached (see
    /// [`crate::DapReceiver`] — same announce-hot-path optimisation).
    local_key: PreparedMacKey,
    anchors: BTreeMap<SenderId, ChainAnchor>,
    pool: ReservoirBuffer<Entry>,
    rx_interval: u64,
    authenticated: Vec<(SenderId, u64, Vec<u8>)>,
    stats: MultiStats,
}

impl DapMultiReceiver {
    /// Creates a receiver with the given shared-pool parameters;
    /// `local_seed` derives the node-local μMAC secret.
    #[must_use]
    pub fn new(params: DapParams, local_seed: &[u8]) -> Self {
        Self {
            params,
            local_key: prepare_receiver_key(&Key::derive(b"dap/multi-receiver-local", local_seed)),
            anchors: BTreeMap::new(),
            pool: ReservoirBuffer::new(params.buffers),
            rx_interval: 0,
            authenticated: Vec::new(),
            stats: MultiStats::default(),
        }
    }

    /// Registers a sender's bootstrap (its chain commitment). Senders
    /// must share the receiver's interval grid; their `params` are
    /// otherwise ignored in favour of the receiver's.
    pub fn register(&mut self, id: SenderId, bootstrap: &DapBootstrap) {
        self.anchors
            .insert(id, ChainAnchor::new(bootstrap.commitment, 0, Domain::F));
    }

    /// Registered sender count.
    #[must_use]
    pub fn sender_count(&self) -> usize {
        self.anchors.len()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &MultiStats {
        &self.stats
    }

    /// Authenticated `(sender, interval, message)` triples.
    #[must_use]
    pub fn authenticated(&self) -> &[(SenderId, u64, Vec<u8>)] {
        &self.authenticated
    }

    /// Occupied shared-pool memory, counting the paper's 56 bits per
    /// entry plus a 64-bit sender tag.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        self.pool.len() as u64 * (u64::from(dap_crypto::sizes::DAP_BUFFER_ENTRY_BITS) + 64)
    }

    /// Processes an announcement attributed to `sender`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSender`] when `sender` was never registered
    /// (nothing is buffered for unknown sources).
    pub fn on_announce(
        &mut self,
        sender: SenderId,
        announce: &Announce,
        local_time: SimTime,
        rng: &mut SimRng,
    ) -> Result<AnnounceOutcome, UnknownSender> {
        if !self.anchors.contains_key(&sender) {
            return Err(UnknownSender(sender));
        }
        self.tick(local_time);
        if !self.params.safety().is_safe(announce.index, local_time) {
            self.stats.announces_unsafe += 1;
            return Ok(AnnounceOutcome::Unsafe);
        }
        self.stats.announces_offered += 1;
        let micro = micro_mac_prepared(&self.local_key, &announce.mac);
        let outcome = self.pool.offer(
            Entry {
                sender,
                index: announce.index,
                micro,
            },
            rng,
        );
        Ok(if outcome.is_stored() {
            AnnounceOutcome::Stored
        } else {
            AnnounceOutcome::Dropped
        })
    }

    /// Processes a reveal attributed to `sender`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSender`] when `sender` was never registered.
    pub fn on_reveal(
        &mut self,
        sender: SenderId,
        reveal: &Reveal,
        local_time: SimTime,
    ) -> Result<RevealOutcome, UnknownSender> {
        self.tick(local_time);
        let anchor = self.anchors.get_mut(&sender).ok_or(UnknownSender(sender))?;

        // Weak authentication against *this sender's* chain.
        let weak_ok = match anchor.accept(&reveal.key, reveal.index) {
            Ok(_) => true,
            Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {
                let idx = anchor.index();
                reveal.index <= idx
                    && dap_crypto::ct_eq(
                        one_way_iter(Domain::F, anchor.key(), (idx - reveal.index) as usize)
                            .as_bytes(),
                        reveal.key.as_bytes(),
                    )
            }
            Err(_) => false,
        };
        if !weak_ok {
            self.stats.weak_rejected += 1;
            return Ok(RevealOutcome::WeakRejected {
                index: reveal.index,
            });
        }

        let expect = micro_mac_prepared(&self.local_key, &mac80(&reveal.key, &reveal.message));
        let candidates = self
            .pool
            .extract(|e| e.sender == sender && e.index == reveal.index);
        if candidates.is_empty() {
            self.stats.no_candidate += 1;
            return Ok(RevealOutcome::NoCandidate {
                index: reveal.index,
            });
        }
        if candidates.iter().any(|e| e.micro == expect) {
            self.stats.authenticated += 1;
            self.authenticated
                .push((sender, reveal.index, reveal.message.clone()));
            Ok(RevealOutcome::Authenticated {
                index: reveal.index,
                message: reveal.message.clone(),
            })
        } else {
            self.stats.strong_rejected += 1;
            Ok(RevealOutcome::StrongRejected {
                index: reveal.index,
            })
        }
    }

    fn tick(&mut self, local_time: SimTime) {
        let now = self.params.schedule().index_at(local_time);
        if now == self.rx_interval {
            return;
        }
        self.rx_interval = now;
        self.pool.reset_counter();
        let d = self.params.disclosure_delay;
        let _ = self.pool.purge(|e| e.index.saturating_add(d + 1) < now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::DapSender;
    use dap_simnet::SimDuration;

    fn params(m: usize) -> DapParams {
        DapParams::new(SimDuration(100), 1, 0, m)
    }

    fn setup(m: usize) -> (DapSender, DapSender, DapMultiReceiver, SimRng) {
        let p = params(m);
        let a = DapSender::new(b"sender-a", 32, p);
        let b = DapSender::new(b"sender-b", 32, p);
        let mut rx = DapMultiReceiver::new(p, b"multi-node");
        rx.register(SenderId(1), &a.bootstrap());
        rx.register(SenderId(2), &b.bootstrap());
        (a, b, rx, SimRng::new(3))
    }

    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn interleaved_senders_both_authenticate() {
        let (mut a, mut b, mut rx, mut rng) = setup(8);
        let ann_a = a.announce(1, b"from A").unwrap();
        let ann_b = b.announce(1, b"from B").unwrap();
        rx.on_announce(SenderId(1), &ann_a, during(1), &mut rng)
            .unwrap();
        rx.on_announce(SenderId(2), &ann_b, during(1), &mut rng)
            .unwrap();
        assert!(rx
            .on_reveal(SenderId(1), &a.reveal(1).unwrap(), during(2))
            .unwrap()
            .is_authenticated());
        assert!(rx
            .on_reveal(SenderId(2), &b.reveal(1).unwrap(), during(2))
            .unwrap()
            .is_authenticated());
        assert_eq!(rx.authenticated().len(), 2);
        assert_eq!(rx.sender_count(), 2);
    }

    #[test]
    fn cross_sender_key_is_rejected() {
        let (mut a, mut b, mut rx, mut rng) = setup(8);
        let ann = a.announce(1, b"msg").unwrap();
        rx.on_announce(SenderId(1), &ann, during(1), &mut rng)
            .unwrap();
        // Replay sender B's reveal under sender A's identity: B's key is
        // not on A's chain → weak rejection.
        b.announce(1, b"msg").unwrap();
        let rev_b = b.reveal(1).unwrap();
        let out = rx.on_reveal(SenderId(1), &rev_b, during(2)).unwrap();
        assert_eq!(out, RevealOutcome::WeakRejected { index: 1 });
    }

    #[test]
    fn unknown_sender_is_an_error() {
        let (mut a, _, mut rx, mut rng) = setup(4);
        let ann = a.announce(1, b"m").unwrap();
        assert_eq!(
            rx.on_announce(SenderId(9), &ann, during(1), &mut rng),
            Err(UnknownSender(SenderId(9)))
        );
        let rev = {
            a.announce(2, b"m2").unwrap();
            a.reveal(2).unwrap()
        };
        assert!(rx.on_reveal(SenderId(9), &rev, during(3)).is_err());
        assert_eq!(
            UnknownSender(SenderId(9)).to_string(),
            "no bootstrap registered for sender#9"
        );
    }

    #[test]
    fn shared_pool_is_bounded_across_senders() {
        let (mut a, mut b, mut rx, mut rng) = setup(3);
        for i in [1u64] {
            let ann_a = a.announce(i, b"a").unwrap();
            let ann_b = b.announce(i, b"b").unwrap();
            for _ in 0..10 {
                rx.on_announce(SenderId(1), &ann_a, during(i), &mut rng)
                    .unwrap();
                rx.on_announce(SenderId(2), &ann_b, during(i), &mut rng)
                    .unwrap();
            }
        }
        // 3 entries × (56 + 64) bits.
        assert!(rx.memory_bits() <= 3 * 120);
    }

    #[test]
    fn flood_against_one_sender_degrades_the_other() {
        // The shared pool means a flood "against" sender A also crowds
        // out sender B — the coupling the per-node game model prices in.
        let (mut a, mut b, mut rx, mut rng) = setup(2);
        let mut b_ok = 0;
        for i in 1..=30u64 {
            let ann_b = b.announce(i, b"b").unwrap();
            // 9 forged copies claiming sender A.
            for _ in 0..9 {
                let mut mac = [0u8; 10];
                rng.fill_bytes(&mut mac);
                rx.on_announce(
                    SenderId(1),
                    &Announce {
                        index: i,
                        mac: dap_crypto::Mac80::from_slice(&mac).unwrap(),
                    },
                    during(i),
                    &mut rng,
                )
                .unwrap();
            }
            rx.on_announce(SenderId(2), &ann_b, during(i), &mut rng)
                .unwrap();
            let _ = a.announce(i, b"a").unwrap();
            if rx
                .on_reveal(SenderId(2), &b.reveal(i).unwrap(), during(i + 1))
                .unwrap()
                .is_authenticated()
            {
                b_ok += 1;
            }
        }
        // B's survival ≈ m/n = 2/10; far below 1.
        assert!(b_ok < 15, "b_ok = {b_ok}");
        assert!(b_ok > 0);
    }

    #[test]
    fn per_sender_anchors_advance_independently() {
        let (mut a, mut b, mut rx, mut rng) = setup(8);
        // Sender A active in intervals 1..=3; B only at 3.
        for i in 1..=3u64 {
            let ann = a.announce(i, b"a").unwrap();
            rx.on_announce(SenderId(1), &ann, during(i), &mut rng)
                .unwrap();
            rx.on_reveal(SenderId(1), &a.reveal(i).unwrap(), during(i + 1))
                .unwrap();
        }
        let ann = b.announce(3, b"b late start").unwrap();
        rx.on_announce(SenderId(2), &ann, during(3), &mut rng)
            .unwrap();
        // B's anchor must recover the 3-step gap on its own chain.
        assert!(rx
            .on_reveal(SenderId(2), &b.reveal(3).unwrap(), during(4))
            .unwrap()
            .is_authenticated());
    }
}
