//! Wire encoding of DAP frames, following the field layout of Fig. 4.
//!
//! | frame | layout (big-endian) | size |
//! |---|---|---|
//! | announce | `0x01 ‖ index:u32 ‖ mac:10B` | 15 B |
//! | reveal | `0x02 ‖ index:u32 ‖ key:10B ‖ len:u16 ‖ message` | 17 B + len |
//!
//! The paper counts 112 bits (14 B) for the announcement; the one extra
//! byte here is the frame tag a self-describing codec needs. Decoding is
//! total: any byte string yields either a frame or a [`DecodeError`],
//! never a panic — receivers parse attacker-controlled bytes.

use dap_crypto::{Key, Mac80};

use crate::wire::{Announce, DapMessage, Reveal};

/// Frame tag for announcements.
const TAG_ANNOUNCE: u8 = 0x01;
/// Frame tag for reveals.
const TAG_REVEAL: u8 = 0x02;

/// Why a frame could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// The interval index exceeds the 32-bit wire field of Fig. 4.
    IndexOverflow {
        /// The offending index.
        index: u64,
    },
    /// The message exceeds the 16-bit length field.
    MessageTooLong {
        /// The offending length in bytes.
        len: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::IndexOverflow { index } => {
                write!(f, "interval index {index} exceeds the 32-bit wire field")
            }
            EncodeError::MessageTooLong { len } => {
                write!(f, "message of {len} bytes exceeds the 16-bit length field")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Why a byte string is not a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// The first byte is not a known frame tag.
    UnknownTag(u8),
    /// Valid frame followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("frame truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a frame.
///
/// # Errors
///
/// Fails when a field does not fit its wire representation — see
/// [`EncodeError`].
pub fn encode(message: &DapMessage) -> Result<Vec<u8>, EncodeError> {
    match message {
        DapMessage::Announce(a) => {
            let index = wire_index(a.index)?;
            let mut out = Vec::with_capacity(1 + 4 + Mac80::LEN);
            out.push(TAG_ANNOUNCE);
            out.extend_from_slice(&index.to_be_bytes());
            out.extend_from_slice(a.mac.as_bytes());
            Ok(out)
        }
        DapMessage::Reveal(r) => {
            let index = wire_index(r.index)?;
            let len = u16::try_from(r.message.len()).map_err(|_| EncodeError::MessageTooLong {
                len: r.message.len(),
            })?;
            let mut out = Vec::with_capacity(1 + 4 + Key::LEN + 2 + r.message.len());
            out.push(TAG_REVEAL);
            out.extend_from_slice(&index.to_be_bytes());
            out.extend_from_slice(r.key.as_bytes());
            out.extend_from_slice(&len.to_be_bytes());
            out.extend_from_slice(&r.message);
            Ok(out)
        }
    }
}

fn wire_index(index: u64) -> Result<u32, EncodeError> {
    u32::try_from(index).map_err(|_| EncodeError::IndexOverflow { index })
}

/// Decodes a frame; total over arbitrary input.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode(bytes: &[u8]) -> Result<DapMessage, DecodeError> {
    let (&tag, rest) = bytes.split_first().ok_or(DecodeError::Truncated)?;
    match tag {
        TAG_ANNOUNCE => {
            let (index, rest) = take_u32(rest)?;
            let (mac, rest) = take_mac(rest)?;
            ensure_empty(rest)?;
            Ok(DapMessage::Announce(Announce {
                index: u64::from(index),
                mac,
            }))
        }
        TAG_REVEAL => {
            let (index, rest) = take_u32(rest)?;
            let (key, rest) = take_key(rest)?;
            let (len, rest) = take_u16(rest)?;
            if rest.len() < usize::from(len) {
                return Err(DecodeError::Truncated);
            }
            let (message, rest) = rest.split_at(usize::from(len));
            ensure_empty(rest)?;
            Ok(DapMessage::Reveal(Reveal {
                index: u64::from(index),
                key,
                message: message.to_vec(),
            }))
        }
        other => Err(DecodeError::UnknownTag(other)),
    }
}

fn take_u32(bytes: &[u8]) -> Result<(u32, &[u8]), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(4);
    Ok((u32::from_be_bytes(head.try_into().expect("4 bytes")), rest))
}

fn take_u16(bytes: &[u8]) -> Result<(u16, &[u8]), DecodeError> {
    if bytes.len() < 2 {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(2);
    Ok((u16::from_be_bytes(head.try_into().expect("2 bytes")), rest))
}

fn take_mac(bytes: &[u8]) -> Result<(Mac80, &[u8]), DecodeError> {
    if bytes.len() < Mac80::LEN {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(Mac80::LEN);
    Ok((Mac80::from_slice(head).expect("exact length"), rest))
}

fn take_key(bytes: &[u8]) -> Result<(Key, &[u8]), DecodeError> {
    if bytes.len() < Key::LEN {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(Key::LEN);
    Ok((Key::from_slice(head).expect("exact length"), rest))
}

fn ensure_empty(rest: &[u8]) -> Result<(), DecodeError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(DecodeError::TrailingBytes { extra: rest.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_announce() -> DapMessage {
        DapMessage::Announce(Announce {
            index: 42,
            mac: Mac80::from_slice(&[7u8; 10]).unwrap(),
        })
    }

    fn sample_reveal() -> DapMessage {
        DapMessage::Reveal(Reveal {
            index: 42,
            key: Key::derive(b"codec", b"k"),
            message: b"sensor reading".to_vec(),
        })
    }

    #[test]
    fn roundtrip_announce() {
        let encoded = encode(&sample_announce()).unwrap();
        assert_eq!(encoded.len(), 15);
        assert_eq!(decode(&encoded).unwrap(), sample_announce());
    }

    #[test]
    fn roundtrip_reveal() {
        let encoded = encode(&sample_reveal()).unwrap();
        assert_eq!(encoded.len(), 17 + 14);
        assert_eq!(decode(&encoded).unwrap(), sample_reveal());
    }

    #[test]
    fn empty_message_reveal_roundtrips() {
        let msg = DapMessage::Reveal(Reveal {
            index: 1,
            key: Key::derive(b"c", b"k"),
            message: Vec::new(),
        });
        let encoded = encode(&msg).unwrap();
        assert_eq!(decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn index_overflow_is_an_encode_error() {
        let msg = DapMessage::Announce(Announce {
            index: u64::from(u32::MAX) + 1,
            mac: Mac80::from_slice(&[0u8; 10]).unwrap(),
        });
        assert!(matches!(
            encode(&msg),
            Err(EncodeError::IndexOverflow { .. })
        ));
        assert!(encode(&msg).unwrap_err().to_string().contains("32-bit"));
    }

    #[test]
    fn oversize_message_is_an_encode_error() {
        let msg = DapMessage::Reveal(Reveal {
            index: 1,
            key: Key::derive(b"c", b"k"),
            message: vec![0u8; 70_000],
        });
        assert!(matches!(
            encode(&msg),
            Err(EncodeError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn truncations_at_every_length_are_rejected() {
        for sample in [sample_announce(), sample_reveal()] {
            let full = encode(&sample).unwrap();
            for cut in 0..full.len() {
                assert_eq!(
                    decode(&full[..cut]),
                    Err(DecodeError::Truncated),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode(&sample_announce()).unwrap();
        encoded.push(0);
        assert_eq!(
            decode(&encoded),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0x7f, 0, 0]), Err(DecodeError::UnknownTag(0x7f)));
        assert!(DecodeError::UnknownTag(0x7f).to_string().contains("0x7f"));
    }

    #[test]
    fn decode_never_accepts_mutated_length_silently() {
        let mut encoded = encode(&sample_reveal()).unwrap();
        // Grow the claimed message length beyond the buffer.
        encoded[15] = 0xff;
        encoded[16] = 0xff;
        assert_eq!(decode(&encoded), Err(DecodeError::Truncated));
    }
}
