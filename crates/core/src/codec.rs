//! Wire encoding of DAP frames, following the field layout of Fig. 4.
//!
//! | frame | layout (big-endian) | size |
//! |---|---|---|
//! | announce | `0x01 ‖ index:u32 ‖ mac:10B` | 15 B |
//! | reveal | `0x02 ‖ index:u32 ‖ key:10B ‖ len:u16 ‖ message` | 17 B + len |
//! | tagged announce | `0x03 ‖ sender:u32 ‖ index:u32 ‖ mac:10B` | 19 B |
//! | tagged reveal | `0x04 ‖ sender:u32 ‖ index:u32 ‖ key:10B ‖ len:u16 ‖ message` | 21 B + len |
//!
//! The paper counts 112 bits (14 B) for the announcement; the one extra
//! byte here is the frame tag a self-describing codec needs. The tagged
//! shapes carry the crowdsensing many-to-one attribution — a
//! [`SenderId`] naming which contributor's chain the frame claims —
//! so a fleet receiver can route and verify per sender; untagged frames
//! decode as [`SenderId::UNTAGGED`], which keeps every single-sender
//! deployment on the wire format it already speaks. Decoding is total:
//! any byte string yields either a frame or a [`DecodeError`], never a
//! panic — receivers parse attacker-controlled bytes.

use dap_crypto::{Key, Mac80};

use crate::multi::SenderId;
use crate::wire::{Announce, DapMessage, Reveal};

/// Frame tag for announcements.
const TAG_ANNOUNCE: u8 = 0x01;
/// Frame tag for reveals.
const TAG_REVEAL: u8 = 0x02;
/// Frame tag for sender-tagged announcements.
const TAG_ANNOUNCE_FROM: u8 = 0x03;
/// Frame tag for sender-tagged reveals.
const TAG_REVEAL_FROM: u8 = 0x04;

/// A decoded frame together with the sender it claims to be from.
///
/// The sender field is *attribution, not authentication*: it only says
/// which chain anchor to verify against. A forger can claim any id, but
/// the claimed sender's chain then rejects the forged key — see the
/// cross-sender splice property in `tests/codec_fuzz.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedFrame {
    /// The claimed sender ([`SenderId::UNTAGGED`] for legacy frames).
    pub sender: SenderId,
    /// The frame payload.
    pub message: DapMessage,
}

/// Why a frame could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// The interval index exceeds the 32-bit wire field of Fig. 4.
    IndexOverflow {
        /// The offending index.
        index: u64,
    },
    /// The message exceeds the 16-bit length field.
    MessageTooLong {
        /// The offending length in bytes.
        len: usize,
    },
    /// The sender id exceeds the 32-bit wire field of the tagged frames.
    SenderOverflow {
        /// The offending sender id.
        sender: u64,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::IndexOverflow { index } => {
                write!(f, "interval index {index} exceeds the 32-bit wire field")
            }
            EncodeError::MessageTooLong { len } => {
                write!(f, "message of {len} bytes exceeds the 16-bit length field")
            }
            EncodeError::SenderOverflow { sender } => {
                write!(f, "sender id {sender} exceeds the 32-bit wire field")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Why a byte string is not a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// The first byte is not a known frame tag.
    UnknownTag(u8),
    /// Valid frame followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("frame truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a frame.
///
/// # Errors
///
/// Fails when a field does not fit its wire representation — see
/// [`EncodeError`].
pub fn encode(message: &DapMessage) -> Result<Vec<u8>, EncodeError> {
    encode_frame(None, message)
}

/// Encodes a frame tagged with the sender it is from (the `0x03`/`0x04`
/// wire shapes).
///
/// # Errors
///
/// As [`encode`], plus [`EncodeError::SenderOverflow`] when the sender
/// id does not fit the 32-bit wire field.
pub fn encode_tagged(sender: SenderId, message: &DapMessage) -> Result<Vec<u8>, EncodeError> {
    let wire =
        u32::try_from(sender.0).map_err(|_| EncodeError::SenderOverflow { sender: sender.0 })?;
    encode_frame(Some(wire), message)
}

fn encode_frame(sender: Option<u32>, message: &DapMessage) -> Result<Vec<u8>, EncodeError> {
    let sender_len = if sender.is_some() { 4 } else { 0 };
    match message {
        DapMessage::Announce(a) => {
            let index = wire_index(a.index)?;
            let mut out = Vec::with_capacity(1 + sender_len + 4 + Mac80::LEN);
            out.push(if sender.is_some() {
                TAG_ANNOUNCE_FROM
            } else {
                TAG_ANNOUNCE
            });
            if let Some(s) = sender {
                out.extend_from_slice(&s.to_be_bytes());
            }
            out.extend_from_slice(&index.to_be_bytes());
            out.extend_from_slice(a.mac.as_bytes());
            Ok(out)
        }
        DapMessage::Reveal(r) => {
            let index = wire_index(r.index)?;
            let len = u16::try_from(r.message.len()).map_err(|_| EncodeError::MessageTooLong {
                len: r.message.len(),
            })?;
            let mut out = Vec::with_capacity(1 + sender_len + 4 + Key::LEN + 2 + r.message.len());
            out.push(if sender.is_some() {
                TAG_REVEAL_FROM
            } else {
                TAG_REVEAL
            });
            if let Some(s) = sender {
                out.extend_from_slice(&s.to_be_bytes());
            }
            out.extend_from_slice(&index.to_be_bytes());
            out.extend_from_slice(r.key.as_bytes());
            out.extend_from_slice(&len.to_be_bytes());
            out.extend_from_slice(&r.message);
            Ok(out)
        }
    }
}

fn wire_index(index: u64) -> Result<u32, EncodeError> {
    u32::try_from(index).map_err(|_| EncodeError::IndexOverflow { index })
}

/// The largest encoded frame: a sender-tagged reveal with a maximal
/// 16-bit message.
pub const MAX_FRAME_LEN: usize = 1 + 4 + 4 + Key::LEN + 2 + u16::MAX as usize;

/// Decodes a frame; total over arbitrary input.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode(bytes: &[u8]) -> Result<DapMessage, DecodeError> {
    let (message, used) = decode_prefix(bytes)?;
    ensure_empty(&bytes[used..])?;
    Ok(message)
}

/// Decodes a frame keeping its sender attribution; total over arbitrary
/// input. Untagged frames decode as [`SenderId::UNTAGGED`].
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode_tagged(bytes: &[u8]) -> Result<TaggedFrame, DecodeError> {
    let (frame, used) = decode_prefix_tagged(bytes)?;
    ensure_empty(&bytes[used..])?;
    Ok(frame)
}

/// Decodes one frame from the front of `bytes`, tolerating trailing
/// data: returns the frame and how many bytes it consumed. This is the
/// stream-reassembly entry point ([`FrameAssembler`] is built on it);
/// [`decode`] adds the no-trailing-bytes check datagram transports want.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when the buffer ends mid-frame (more bytes
/// may complete it), [`DecodeError::UnknownTag`] when the first byte is
/// not a frame tag. Never [`DecodeError::TrailingBytes`].
pub fn decode_prefix(bytes: &[u8]) -> Result<(DapMessage, usize), DecodeError> {
    let (frame, used) = decode_prefix_tagged(bytes)?;
    Ok((frame.message, used))
}

/// [`decode_prefix`] keeping the sender attribution: legacy `0x01`/`0x02`
/// frames decode as [`SenderId::UNTAGGED`], the `0x03`/`0x04` shapes
/// carry their explicit sender field.
///
/// # Errors
///
/// As [`decode_prefix`].
pub fn decode_prefix_tagged(bytes: &[u8]) -> Result<(TaggedFrame, usize), DecodeError> {
    let (&tag, rest) = bytes.split_first().ok_or(DecodeError::Truncated)?;
    let (sender, rest, header) = match tag {
        TAG_ANNOUNCE | TAG_REVEAL => (SenderId::UNTAGGED, rest, 1),
        TAG_ANNOUNCE_FROM | TAG_REVEAL_FROM => {
            let (sender, rest) = take_u32(rest)?;
            (SenderId(u64::from(sender)), rest, 1 + 4)
        }
        other => return Err(DecodeError::UnknownTag(other)),
    };
    match tag {
        TAG_ANNOUNCE | TAG_ANNOUNCE_FROM => {
            let (index, rest) = take_u32(rest)?;
            let (mac, _) = take_mac(rest)?;
            Ok((
                TaggedFrame {
                    sender,
                    message: DapMessage::Announce(Announce {
                        index: u64::from(index),
                        mac,
                    }),
                },
                header + 4 + Mac80::LEN,
            ))
        }
        TAG_REVEAL | TAG_REVEAL_FROM => {
            let (index, rest) = take_u32(rest)?;
            let (key, rest) = take_key(rest)?;
            let (len, rest) = take_u16(rest)?;
            if rest.len() < usize::from(len) {
                return Err(DecodeError::Truncated);
            }
            let message = &rest[..usize::from(len)];
            Ok((
                TaggedFrame {
                    sender,
                    message: DapMessage::Reveal(Reveal {
                        index: u64::from(index),
                        key,
                        message: message.to_vec(),
                    }),
                },
                header + 4 + Key::LEN + 2 + usize::from(len),
            ))
        }
        _ => unreachable!("tag classified above"),
    }
}

/// Reads the interval index of the frame at the front of `bytes`
/// without decoding the rest — enough for a receiver pool to route a
/// frame to its shard before any cryptographic work. `None` when the
/// prefix is not a known tag followed by a full index field.
#[must_use]
pub fn peek_index(bytes: &[u8]) -> Option<u64> {
    let (&tag, rest) = bytes.split_first()?;
    let rest = match tag {
        TAG_ANNOUNCE | TAG_REVEAL => rest,
        TAG_ANNOUNCE_FROM | TAG_REVEAL_FROM => rest.get(4..)?,
        _ => return None,
    };
    let (index, _) = take_u32(rest).ok()?;
    Some(u64::from(index))
}

/// Reads the claimed sender of the frame at the front of `bytes`
/// without decoding the rest — the pre-crypto routing key of a
/// by-sender sharded pool. Legacy untagged frames report
/// [`SenderId::UNTAGGED`]; `None` when the prefix is not a known tag
/// followed by a full sender field.
#[must_use]
pub fn peek_sender(bytes: &[u8]) -> Option<SenderId> {
    let (&tag, rest) = bytes.split_first()?;
    match tag {
        TAG_ANNOUNCE | TAG_REVEAL => Some(SenderId::UNTAGGED),
        TAG_ANNOUNCE_FROM | TAG_REVEAL_FROM => {
            let (sender, _) = take_u32(rest).ok()?;
            Some(SenderId(u64::from(sender)))
        }
        _ => None,
    }
}

/// Reassembles frames from a byte stream that may split or concatenate
/// them arbitrarily (TCP-style framing, or UDP datagrams carrying
/// several frames back to back).
///
/// Feed bytes with [`push`](Self::push), then drain complete frames with
/// [`next_frame`](Self::next_frame). Garbage resynchronises: an unknown
/// tag byte is skipped (and counted in
/// [`skipped_bytes`](Self::skipped_bytes)) until a decodable frame
/// starts; a truncated prefix is kept until more bytes arrive. After a
/// drain, at most [`MAX_FRAME_LEN`] bytes stay pending — a hostile
/// stream cannot pin unbounded memory behind a forever-incomplete frame.
///
/// ```
/// use dap_core::codec::{encode, FrameAssembler};
/// use dap_core::{Announce, DapMessage};
/// use dap_crypto::Mac80;
///
/// let frame = DapMessage::Announce(Announce {
///     index: 9,
///     mac: Mac80::from_slice(&[0x5a; 10]).unwrap(),
/// });
/// let bytes = encode(&frame).unwrap();
/// let mut asm = FrameAssembler::new();
/// asm.push(&bytes[..7]); // first half…
/// assert!(asm.next_frame().is_none());
/// asm.push(&bytes[7..]); // …second half
/// assert_eq!(asm.next_frame(), Some(frame));
/// ```
#[derive(Debug, Default, Clone)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    skipped: u64,
}

impl FrameAssembler {
    /// An empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame, skipping garbage as needed.
    /// `None` means the buffered bytes hold no complete frame yet.
    pub fn next_frame(&mut self) -> Option<DapMessage> {
        self.next_tagged_frame().map(|frame| frame.message)
    }

    /// [`next_frame`](Self::next_frame) keeping the sender attribution
    /// (untagged frames come back as [`SenderId::UNTAGGED`]).
    pub fn next_tagged_frame(&mut self) -> Option<TaggedFrame> {
        loop {
            if self.buf.is_empty() {
                return None;
            }
            match decode_prefix_tagged(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Some(frame);
                }
                Err(DecodeError::UnknownTag(_)) => {
                    self.buf.drain(..1);
                    self.skipped += 1;
                }
                Err(DecodeError::Truncated) => {
                    if self.buf.len() > MAX_FRAME_LEN {
                        // Cannot be a genuine half-frame: the longest
                        // frame fits in MAX_FRAME_LEN. Shed and resync.
                        self.buf.drain(..1);
                        self.skipped += 1;
                    } else {
                        return None;
                    }
                }
                // decode_prefix never reports trailing bytes.
                Err(DecodeError::TrailingBytes { .. }) => unreachable!(),
            }
        }
    }

    /// Bytes discarded while resynchronising.
    #[must_use]
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped
    }

    /// Bytes buffered awaiting the rest of a frame.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

fn take_u32(bytes: &[u8]) -> Result<(u32, &[u8]), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(4);
    Ok((u32::from_be_bytes(head.try_into().expect("4 bytes")), rest))
}

fn take_u16(bytes: &[u8]) -> Result<(u16, &[u8]), DecodeError> {
    if bytes.len() < 2 {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(2);
    Ok((u16::from_be_bytes(head.try_into().expect("2 bytes")), rest))
}

fn take_mac(bytes: &[u8]) -> Result<(Mac80, &[u8]), DecodeError> {
    if bytes.len() < Mac80::LEN {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(Mac80::LEN);
    Ok((Mac80::from_slice(head).expect("exact length"), rest))
}

fn take_key(bytes: &[u8]) -> Result<(Key, &[u8]), DecodeError> {
    if bytes.len() < Key::LEN {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = bytes.split_at(Key::LEN);
    Ok((Key::from_slice(head).expect("exact length"), rest))
}

fn ensure_empty(rest: &[u8]) -> Result<(), DecodeError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(DecodeError::TrailingBytes { extra: rest.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_announce() -> DapMessage {
        DapMessage::Announce(Announce {
            index: 42,
            mac: Mac80::from_slice(&[7u8; 10]).unwrap(),
        })
    }

    fn sample_reveal() -> DapMessage {
        DapMessage::Reveal(Reveal {
            index: 42,
            key: Key::derive(b"codec", b"k"),
            message: b"sensor reading".to_vec(),
        })
    }

    #[test]
    fn roundtrip_announce() {
        let encoded = encode(&sample_announce()).unwrap();
        assert_eq!(encoded.len(), 15);
        assert_eq!(decode(&encoded).unwrap(), sample_announce());
    }

    #[test]
    fn roundtrip_reveal() {
        let encoded = encode(&sample_reveal()).unwrap();
        assert_eq!(encoded.len(), 17 + 14);
        assert_eq!(decode(&encoded).unwrap(), sample_reveal());
    }

    #[test]
    fn empty_message_reveal_roundtrips() {
        let msg = DapMessage::Reveal(Reveal {
            index: 1,
            key: Key::derive(b"c", b"k"),
            message: Vec::new(),
        });
        let encoded = encode(&msg).unwrap();
        assert_eq!(decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn index_overflow_is_an_encode_error() {
        let msg = DapMessage::Announce(Announce {
            index: u64::from(u32::MAX) + 1,
            mac: Mac80::from_slice(&[0u8; 10]).unwrap(),
        });
        assert!(matches!(
            encode(&msg),
            Err(EncodeError::IndexOverflow { .. })
        ));
        assert!(encode(&msg).unwrap_err().to_string().contains("32-bit"));
    }

    #[test]
    fn oversize_message_is_an_encode_error() {
        let msg = DapMessage::Reveal(Reveal {
            index: 1,
            key: Key::derive(b"c", b"k"),
            message: vec![0u8; 70_000],
        });
        assert!(matches!(
            encode(&msg),
            Err(EncodeError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn truncations_at_every_length_are_rejected() {
        for sample in [sample_announce(), sample_reveal()] {
            let full = encode(&sample).unwrap();
            for cut in 0..full.len() {
                assert_eq!(
                    decode(&full[..cut]),
                    Err(DecodeError::Truncated),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode(&sample_announce()).unwrap();
        encoded.push(0);
        assert_eq!(
            decode(&encoded),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0x7f, 0, 0]), Err(DecodeError::UnknownTag(0x7f)));
        assert!(DecodeError::UnknownTag(0x7f).to_string().contains("0x7f"));
    }

    #[test]
    fn decode_prefix_reports_consumed_bytes() {
        let mut stream = encode(&sample_announce()).unwrap();
        let reveal = encode(&sample_reveal()).unwrap();
        stream.extend_from_slice(&reveal);
        let (first, used) = decode_prefix(&stream).unwrap();
        assert_eq!(first, sample_announce());
        assert_eq!(used, 15);
        let (second, used2) = decode_prefix(&stream[used..]).unwrap();
        assert_eq!(second, sample_reveal());
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn peek_index_reads_only_the_header() {
        let ann = encode(&sample_announce()).unwrap();
        assert_eq!(peek_index(&ann), Some(42));
        // Enough for tag + index even if the rest is missing.
        assert_eq!(peek_index(&ann[..5]), Some(42));
        assert_eq!(peek_index(&ann[..4]), None);
        assert_eq!(peek_index(&[0x7f, 0, 0, 0, 1]), None);
        assert_eq!(peek_index(&[]), None);
    }

    #[test]
    fn assembler_reassembles_split_frames() {
        let frame = sample_reveal();
        let bytes = encode(&frame).unwrap();
        let mut asm = FrameAssembler::new();
        asm.push(&bytes[..9]);
        assert_eq!(asm.next_frame(), None);
        assert_eq!(asm.pending_bytes(), 9);
        asm.push(&bytes[9..]);
        assert_eq!(asm.next_frame(), Some(frame));
        assert_eq!(asm.next_frame(), None);
        assert_eq!(asm.skipped_bytes(), 0);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn assembler_resynchronises_past_garbage() {
        let frame = sample_announce();
        let mut stream = vec![0xffu8; 7]; // no byte of this aliases a tag
        stream.extend_from_slice(&encode(&frame).unwrap());
        let mut asm = FrameAssembler::new();
        asm.push(&stream);
        assert_eq!(asm.next_frame(), Some(frame));
        assert_eq!(asm.skipped_bytes(), 7);
    }

    #[test]
    fn roundtrip_tagged_announce() {
        let encoded = encode_tagged(SenderId(9), &sample_announce()).unwrap();
        assert_eq!(encoded.len(), 19);
        assert_eq!(
            decode_tagged(&encoded).unwrap(),
            TaggedFrame {
                sender: SenderId(9),
                message: sample_announce(),
            }
        );
        // The legacy decoder accepts the same bytes, dropping the tag.
        assert_eq!(decode(&encoded).unwrap(), sample_announce());
    }

    #[test]
    fn roundtrip_tagged_reveal() {
        let encoded = encode_tagged(SenderId(u64::from(u32::MAX)), &sample_reveal()).unwrap();
        assert_eq!(encoded.len(), 21 + 14);
        let frame = decode_tagged(&encoded).unwrap();
        assert_eq!(frame.sender, SenderId(u64::from(u32::MAX)));
        assert_eq!(frame.message, sample_reveal());
    }

    #[test]
    fn untagged_frames_decode_as_the_untagged_sender() {
        for sample in [sample_announce(), sample_reveal()] {
            let encoded = encode(&sample).unwrap();
            let frame = decode_tagged(&encoded).unwrap();
            assert_eq!(frame.sender, SenderId::UNTAGGED);
            assert_eq!(frame.message, sample);
        }
    }

    #[test]
    fn sender_overflow_is_an_encode_error() {
        let err = encode_tagged(SenderId(u64::from(u32::MAX) + 1), &sample_announce());
        assert!(matches!(err, Err(EncodeError::SenderOverflow { .. })));
        assert!(err.unwrap_err().to_string().contains("32-bit"));
    }

    #[test]
    fn tagged_truncations_at_every_length_are_rejected() {
        for sample in [sample_announce(), sample_reveal()] {
            let full = encode_tagged(SenderId(3), &sample).unwrap();
            for cut in 0..full.len() {
                assert_eq!(
                    decode_tagged(&full[..cut]),
                    Err(DecodeError::Truncated),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn peek_sender_and_index_read_tagged_headers() {
        let tagged = encode_tagged(SenderId(7), &sample_announce()).unwrap();
        assert_eq!(peek_sender(&tagged), Some(SenderId(7)));
        assert_eq!(peek_index(&tagged), Some(42));
        // Enough for tag + sender, even if the index is missing.
        assert_eq!(peek_sender(&tagged[..5]), Some(SenderId(7)));
        assert_eq!(peek_index(&tagged[..8]), None);
        let legacy = encode(&sample_announce()).unwrap();
        assert_eq!(peek_sender(&legacy), Some(SenderId::UNTAGGED));
        assert_eq!(peek_sender(&[0x7f, 0, 0, 0, 1]), None);
        assert_eq!(peek_sender(&[]), None);
    }

    #[test]
    fn assembler_yields_tagged_frames_with_attribution() {
        let tagged = encode_tagged(SenderId(11), &sample_reveal()).unwrap();
        let legacy = encode(&sample_announce()).unwrap();
        let mut asm = FrameAssembler::new();
        asm.push(&tagged[..10]);
        assert_eq!(asm.next_tagged_frame(), None);
        asm.push(&tagged[10..]);
        asm.push(&legacy);
        assert_eq!(
            asm.next_tagged_frame(),
            Some(TaggedFrame {
                sender: SenderId(11),
                message: sample_reveal(),
            })
        );
        assert_eq!(
            asm.next_tagged_frame(),
            Some(TaggedFrame {
                sender: SenderId::UNTAGGED,
                message: sample_announce(),
            })
        );
        assert_eq!(asm.next_tagged_frame(), None);
        assert_eq!(asm.skipped_bytes(), 0);
        assert_eq!(asm.pending_bytes(), 0);
    }

    #[test]
    fn decode_never_accepts_mutated_length_silently() {
        let mut encoded = encode(&sample_reveal()).unwrap();
        // Grow the claimed message length beyond the buffer.
        encoded[15] = 0xff;
        encoded[16] = 0xff;
        assert_eq!(decode(&encoded), Err(DecodeError::Truncated));
    }
}
