//! [`dap_simnet`] adapters: run DAP campaigns — sender, receivers with
//! bounded buffers, and a MAC-flooding adversary — inside the
//! discrete-event simulator.
//!
//! The flood model follows the paper: the attacker spends an `x_a = p`
//! fraction of the announcement bandwidth on forged `(MAC, i)` copies for
//! the current interval. Forged *reveals* are pointless (they fail weak
//! authentication), so the rational attacker floods announcements.

use std::any::Any;

use dap_crypto::Mac80;
use dap_simnet::{Context, FloodIntensity, Frame, Node, SimDuration, TimerToken};

use crate::receiver::{AnnounceOutcome, DapReceiver, RevealOutcome};
use crate::sender::{DapBootstrap, DapSender};
use crate::wire::{Announce, DapMessage};

/// Timer used by periodic nodes.
const TICK: TimerToken = TimerToken(0);

/// Broadcasts one announcement per interval (repeated `announce_copies`
/// times for loss resilience) and the corresponding reveal one interval
/// later.
#[derive(Debug)]
pub struct DapSenderNode {
    sender: DapSender,
    interval: u64,
    announce_copies: u32,
    payload: Vec<u8>,
}

impl DapSenderNode {
    /// Creates the node. `announce_copies` models the sender re-sending
    /// its MAC within the interval (the paper's bandwidth-for-MACs knob).
    #[must_use]
    pub fn new(sender: DapSender, announce_copies: u32, payload: Vec<u8>) -> Self {
        Self {
            sender,
            interval: 0,
            announce_copies,
            payload,
        }
    }

    /// The underlying protocol sender.
    #[must_use]
    pub fn sender(&self) -> &DapSender {
        &self.sender
    }
}

impl Node<DapMessage> for DapSenderNode {
    fn on_start(&mut self, ctx: &mut Context<'_, DapMessage>) {
        ctx.set_timer(SimDuration(1), TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DapMessage>, _timer: TimerToken) {
        self.interval += 1;
        // Reveal for the previous interval rides at the start of this one.
        if self.interval > 1 {
            if let Some(reveal) = self.sender.reveal(self.interval - 1) {
                let bits = reveal.size_bits();
                ctx.metrics().incr("dap.sender.reveals");
                ctx.broadcast(DapMessage::Reveal(reveal), bits);
            }
        }
        if self.interval <= self.sender.horizon() {
            let mut message = self.payload.clone();
            message.extend_from_slice(&self.interval.to_be_bytes());
            match self.sender.announce(self.interval, &message) {
                Ok(announce) => {
                    for _ in 0..self.announce_copies {
                        ctx.metrics().incr("dap.sender.announces");
                        ctx.broadcast(DapMessage::Announce(announce), announce.size_bits());
                    }
                }
                Err(_) => ctx.metrics().incr("dap.sender.exhausted"),
            }
        }
        if self.interval <= self.sender.horizon() {
            let step = self.sender.params().interval;
            ctx.set_timer(step, TICK);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A receiver node wrapping [`DapReceiver`].
#[derive(Debug)]
pub struct DapReceiverNode {
    receiver: DapReceiver,
    peak_memory_bits: u64,
}

impl DapReceiverNode {
    /// Bootstraps the node; `local_seed` derives `K_recv`.
    #[must_use]
    pub fn new(bootstrap: DapBootstrap, local_seed: &[u8]) -> Self {
        Self {
            receiver: DapReceiver::new(bootstrap, local_seed),
            peak_memory_bits: 0,
        }
    }

    /// The protocol state.
    #[must_use]
    pub fn receiver(&self) -> &DapReceiver {
        &self.receiver
    }

    /// Largest buffer footprint observed (bounded by `m × 56` bits by
    /// construction — contrast with plain TESLA's unbounded buffer).
    #[must_use]
    pub fn peak_memory_bits(&self) -> u64 {
        self.peak_memory_bits
    }
}

impl Node<DapMessage> for DapReceiverNode {
    fn on_frame(&mut self, ctx: &mut Context<'_, DapMessage>, frame: &Frame<DapMessage>) {
        let local = ctx.local_time();
        match &frame.message {
            DapMessage::Announce(a) => {
                let outcome = {
                    let rng = ctx.rng();
                    // Split borrow: rng first, metrics after.
                    self.receiver.on_announce(a, local, rng)
                };
                match outcome {
                    AnnounceOutcome::Stored => ctx.metrics().incr("dap.rx.announce_stored"),
                    AnnounceOutcome::Dropped => ctx.metrics().incr("dap.rx.announce_dropped"),
                    AnnounceOutcome::Unsafe => ctx.metrics().incr("dap.rx.announce_unsafe"),
                }
            }
            DapMessage::Reveal(r) => match self.receiver.on_reveal(r, local) {
                RevealOutcome::Authenticated { .. } => {
                    ctx.metrics().incr("dap.rx.authenticated");
                }
                RevealOutcome::WeakRejected { .. } => ctx.metrics().incr("dap.rx.weak_rejected"),
                RevealOutcome::StrongRejected { .. } => {
                    ctx.metrics().incr("dap.rx.strong_rejected");
                }
                RevealOutcome::NoCandidate { .. } => ctx.metrics().incr("dap.rx.no_candidate"),
            },
        }
        self.peak_memory_bits = self.peak_memory_bits.max(self.receiver.memory_bits());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Floods forged announcements for the current interval at a bandwidth
/// fraction `p` relative to the sender's announcement rate.
#[derive(Debug)]
pub struct DapFloodAttacker {
    bootstrap: DapBootstrap,
    intensity: FloodIntensity,
    authentic_copies_per_interval: u32,
    horizon: u64,
    interval: u64,
    front_running: bool,
}

impl DapFloodAttacker {
    /// Creates the attacker; its flood lands *after* the sender's
    /// announcements each interval.
    #[must_use]
    pub fn new(
        bootstrap: DapBootstrap,
        intensity: FloodIntensity,
        authentic_copies_per_interval: u32,
        horizon: u64,
    ) -> Self {
        Self {
            bootstrap,
            intensity,
            authentic_copies_per_interval,
            horizon,
            interval: 0,
            front_running: false,
        }
    }

    /// A front-running attacker: its burst lands *before* the genuine
    /// announcement every interval — the strongest ordering against a
    /// keep-first-m buffer, and provably irrelevant against DAP's
    /// reservoir (`tests` assert the rate is unchanged).
    #[must_use]
    pub fn front_running(mut self) -> Self {
        self.front_running = true;
        self
    }
}

impl Node<DapMessage> for DapFloodAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_, DapMessage>) {
        let delay = if self.front_running { 0 } else { 2 };
        ctx.set_timer(SimDuration(delay), TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DapMessage>, _timer: TimerToken) {
        self.interval += 1;
        if self.interval > self.horizon {
            return;
        }
        let forged = self
            .intensity
            .forged_copies(u64::from(self.authentic_copies_per_interval));
        for _ in 0..forged {
            let mut mac = [0u8; Mac80::LEN];
            ctx.rng().fill_bytes(&mut mac);
            let announce = Announce {
                index: self.interval,
                mac: Mac80::from_slice(&mac).expect("fixed length"),
            };
            ctx.metrics().incr("dap.attacker.forged");
            ctx.broadcast(DapMessage::Announce(announce), announce.size_bits());
        }
        ctx.set_timer(self.bootstrap.params.interval, TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Convenience: run one DAP campaign and return the authentication rate
/// (authenticated / reveals seen) at a single receiver.
///
/// Used by the Fig.-5 validation and the examples; all knobs that matter
/// to the paper's model are parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSpec {
    /// Forged-traffic fraction `p` (`= x_a`).
    pub attack_fraction: f64,
    /// Authentic announcement copies per interval (the sender's
    /// loss-resilience re-sends; the attacker scales its flood to keep
    /// the forged fraction at `attack_fraction`).
    pub announce_copies: u32,
    /// Receiver buffers `m`.
    pub buffers: usize,
    /// Intervals to simulate.
    pub intervals: u64,
    /// Channel loss probability toward the receiver.
    pub loss: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of [`run_campaign`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Messages authenticated at the receiver.
    pub authenticated: u64,
    /// Reveals that found no candidate (announcement flooded out/lost).
    pub no_candidate: u64,
    /// Total reveals processed.
    pub reveals: u64,
    /// Peak receiver buffer memory in bits.
    pub peak_memory_bits: u64,
    /// Authenticated / reveals, the empirical `P`.
    pub authentication_rate: f64,
    /// Total bits put on the air — the transmit-energy tally an
    /// [`dap_simnet::EnergyModel`] converts to joules.
    pub bits_sent: u64,
    /// Total bits delivered to receivers — the receive-energy tally.
    pub bits_delivered: u64,
    /// Every `fault.*` counter the run produced, sorted by name (empty
    /// when no fault plan was installed or no window fired).
    pub fault_counters: Vec<(String, u64)>,
}

/// Runs a one-sender, one-attacker, one-receiver campaign.
#[must_use]
pub fn run_campaign(spec: &CampaignSpec) -> CampaignOutcome {
    run_campaign_with_faults(spec, None)
}

/// [`run_campaign`] with a scripted [`FaultPlan`](dap_simnet::FaultPlan)
/// layered on the channel: blackouts, crashes, duplication, reorder
/// spikes and bit corruption (routed through the wire codec — a frame
/// whose mutated bytes no longer parse is dropped like a bad checksum).
/// The injected-fault tally comes back in
/// [`CampaignOutcome::fault_counters`].
#[must_use]
pub fn run_campaign_with_faults(
    spec: &CampaignSpec,
    plan: Option<dap_simnet::FaultPlan>,
) -> CampaignOutcome {
    use dap_simnet::{ChannelModel, Network, SimTime};

    let params = crate::wire::DapParams::default().with_buffers(spec.buffers);
    let sender = DapSender::new(b"campaign-sender", spec.intervals as usize, params);
    let bootstrap = sender.bootstrap();

    let copies = spec.announce_copies.max(1);
    let mut net: Network<DapMessage> = Network::new(spec.seed);
    net.add_node(
        DapSenderNode::new(sender, copies, b"reading".to_vec()),
        ChannelModel::perfect(),
    );
    if spec.attack_fraction > 0.0 {
        net.add_node(
            DapFloodAttacker::new(
                bootstrap,
                FloodIntensity::of_bandwidth(spec.attack_fraction),
                copies,
                spec.intervals,
            ),
            ChannelModel::perfect(),
        );
    }
    let rx = net.add_node(
        DapReceiverNode::new(bootstrap, b"campaign-rx"),
        ChannelModel::lossy(spec.loss).with_delay(SimDuration(1)),
    );
    if let Some(plan) = plan {
        net.set_fault_plan(plan);
        net.set_corruptor(|m: &DapMessage, rng| {
            let mut bytes = crate::codec::encode(m).ok()?;
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.below(8);
            crate::codec::decode(&bytes).ok()
        });
    }
    net.run_until(SimTime((spec.intervals + 3) * params.interval.ticks()));

    let node = net.node_as::<DapReceiverNode>(rx).expect("receiver node");
    let stats = node.receiver().stats();
    let reveals = stats.reveals;
    CampaignOutcome {
        authenticated: stats.authenticated,
        no_candidate: stats.no_candidate,
        reveals,
        peak_memory_bits: node.peak_memory_bits(),
        authentication_rate: if reveals == 0 {
            0.0
        } else {
            stats.authenticated as f64 / reveals as f64
        },
        bits_sent: net.metrics().get("net.bits_sent"),
        bits_delivered: net.metrics().get("net.bits_delivered"),
        fault_counters: {
            let mut counters: Vec<(String, u64)> = net
                .metrics()
                .iter()
                .filter(|(name, _)| name.starts_with("fault."))
                .map(|(name, value)| (name.to_string(), value))
                .collect();
            counters.sort();
            counters
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_authenticates_everything() {
        let out = run_campaign(&CampaignSpec {
            attack_fraction: 0.0,
            announce_copies: 1,
            buffers: 4,
            intervals: 30,
            loss: 0.0,
            seed: 1,
        });
        assert_eq!(out.reveals, 30);
        assert_eq!(out.authenticated, 30);
        assert!((out.authentication_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flood_rate_tracks_one_minus_p_to_m() {
        // p = 0.8, m = 3: the authentic announcement is one of 5 copies
        // competing for 3 buffers → kept with probability 3/5 = 0.6
        // (exact small-n value; 1 − p^m = 0.488 is the large-n limit).
        let out = run_campaign(&CampaignSpec {
            attack_fraction: 0.8,
            announce_copies: 1,
            buffers: 3,
            intervals: 2000,
            loss: 0.0,
            seed: 2,
        });
        assert!(
            (out.authentication_rate - 0.6).abs() < 0.05,
            "rate {}",
            out.authentication_rate
        );
    }

    #[test]
    fn more_buffers_higher_rate() {
        let mut last = 0.0;
        for m in [1usize, 2, 4] {
            let out = run_campaign(&CampaignSpec {
                attack_fraction: 0.8,
                announce_copies: 1,
                buffers: m,
                intervals: 800,
                loss: 0.0,
                seed: 3,
            });
            assert!(
                out.authentication_rate > last,
                "m={m}: {} !> {last}",
                out.authentication_rate
            );
            last = out.authentication_rate;
        }
    }

    /// Reservoir order-independence end to end: a front-running burst
    /// (all forged copies land before the genuine announce) achieves
    /// nothing more than the trailing flood.
    #[test]
    fn front_running_flood_gains_nothing() {
        let run = |front: bool| {
            let params = crate::wire::DapParams::default().with_buffers(3);
            let sender = DapSender::new(b"front", 1500, params);
            let bootstrap = sender.bootstrap();
            let mut net: Network<DapMessage> = Network::new(77);
            net.add_node(
                DapSenderNode::new(sender, 1, b"r".to_vec()),
                ChannelModel::perfect(),
            );
            let attacker =
                DapFloodAttacker::new(bootstrap, FloodIntensity::of_bandwidth(0.8), 1, 1500);
            net.add_node(
                if front {
                    attacker.front_running()
                } else {
                    attacker
                },
                ChannelModel::perfect(),
            );
            let rx = net.add_node(
                DapReceiverNode::new(bootstrap, b"rx"),
                ChannelModel::perfect().with_delay(SimDuration(1)),
            );
            net.run_until(SimTime(1503 * 100));
            let node = net.node_as::<DapReceiverNode>(rx).unwrap();
            let s = node.receiver().stats();
            s.authenticated as f64 / s.reveals.max(1) as f64
        };
        let trailing = run(false);
        let front = run(true);
        // Both near the m/n = 3/5 reservoir value; order cannot help.
        assert!((trailing - 0.6).abs() < 0.05, "trailing {trailing}");
        assert!((front - 0.6).abs() < 0.05, "front {front}");
        assert!((front - trailing).abs() < 0.06, "{front} vs {trailing}");
    }

    use dap_simnet::{ChannelModel, Network, SimTime};

    #[test]
    fn memory_stays_bounded_under_flood() {
        let out = run_campaign(&CampaignSpec {
            attack_fraction: 0.9,
            announce_copies: 1,
            buffers: 5,
            intervals: 100,
            loss: 0.0,
            seed: 4,
        });
        assert!(out.peak_memory_bits <= 5 * 56);
    }

    #[test]
    fn lossy_channel_reduces_but_does_not_break() {
        let out = run_campaign(&CampaignSpec {
            attack_fraction: 0.0,
            announce_copies: 1,
            buffers: 4,
            intervals: 200,
            loss: 0.3,
            seed: 5,
        });
        // Reveal or announce may be lost; what authenticates is genuine.
        assert!(out.authenticated > 50);
        assert!(out.authenticated < 200);
    }

    #[test]
    fn faulted_campaign_counts_faults_and_recovers() {
        use dap_simnet::{FaultPlan, FaultWindow};
        let spec = CampaignSpec {
            attack_fraction: 0.0,
            announce_copies: 1,
            buffers: 4,
            intervals: 40,
            loss: 0.0,
            seed: 11,
        };
        let plan = FaultPlan::new(5)
            .blackout(FaultWindow::new(SimTime(800), SimTime(1200)))
            .corrupt(FaultWindow::new(SimTime(1500), SimTime(2000)), 0.8);
        let out = run_campaign_with_faults(&spec, Some(plan.clone()));
        assert!(out
            .fault_counters
            .iter()
            .any(|(n, v)| n == "fault.blackout_dropped" && *v > 0));
        // Faults cost intervals, but the clean tail recovers.
        assert!(out.authenticated < 40, "{out:?}");
        assert!(out.authenticated > 20, "{out:?}");
        // Same plan, same seed: bit-identical outcome.
        assert_eq!(out, run_campaign_with_faults(&spec, Some(plan)));
        // No plan: no counters, and identical to the plain entry point.
        let plain = run_campaign(&spec);
        assert!(plain.fault_counters.is_empty());
        assert_eq!(plain, run_campaign_with_faults(&spec, None));
    }

    #[test]
    fn campaign_is_deterministic() {
        let spec = CampaignSpec {
            attack_fraction: 0.5,
            announce_copies: 1,
            buffers: 3,
            intervals: 100,
            loss: 0.2,
            seed: 42,
        };
        let a = run_campaign(&spec);
        let b = run_campaign(&spec);
        assert_eq!(a, b);
    }
}
