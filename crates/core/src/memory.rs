//! Receiver memory accounting across protocols (§IV-D and the Fig.-5
//! settings).
//!
//! The paper's numbers: a pending packet costs a TESLA-style receiver
//! `s₁ = 280` bits (200-bit message + 80-bit MAC) but a DAP receiver only
//! `s₂ = 56` bits (24-bit μMAC + 32-bit index), so a node with `Mem` bits
//! of buffer memory holds `M = Mem/s` buffers — five times more under
//! DAP.

use dap_crypto::sizes;

/// Which protocol's storage layout to account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StorageScheme {
    /// TESLA / μTESLA: full message + MAC buffered (280 b; the paper
    /// also charges TESLA++ this much in Fig. 5).
    MessageAndMac,
    /// TESLA++ as implemented here: 80-bit self-MAC + 32-bit index.
    SelfMac,
    /// DAP: 24-bit μMAC + 32-bit index.
    MicroMac,
}

impl StorageScheme {
    /// Bits stored per pending packet.
    #[must_use]
    pub fn entry_bits(self) -> u32 {
        match self {
            StorageScheme::MessageAndMac => sizes::TESLA_BUFFER_ENTRY_BITS,
            StorageScheme::SelfMac => sizes::MAC_BITS + sizes::INDEX_BITS,
            StorageScheme::MicroMac => sizes::DAP_BUFFER_ENTRY_BITS,
        }
    }

    /// Buffers that fit in `memory_bits` (`M = Mem/s`).
    #[must_use]
    pub fn buffers_in(self, memory_bits: u64) -> u64 {
        sizes::buffers_for_memory(memory_bits, self.entry_bits())
    }

    /// Memory saved relative to [`StorageScheme::MessageAndMac`].
    #[must_use]
    pub fn saving_vs_message_and_mac(self) -> f64 {
        1.0 - f64::from(self.entry_bits()) / f64::from(sizes::TESLA_BUFFER_ENTRY_BITS)
    }
}

/// One row of the memory-cost table the `memory_table` experiment prints.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRow {
    /// Scheme label.
    pub scheme: String,
    /// Bits per buffered packet.
    pub entry_bits: u32,
    /// Buffers in 1024 kb.
    pub buffers_1024kb: u64,
    /// Buffers in 512 kb.
    pub buffers_512kb: u64,
    /// Saving vs message+MAC storage.
    pub saving: f64,
}

/// Builds the full comparison table. `kb` here follows the paper's
/// usage: 1 kb = 1000 bits.
#[must_use]
pub fn memory_table() -> Vec<MemoryRow> {
    let schemes = [
        ("TESLA / μTESLA (message+MAC)", StorageScheme::MessageAndMac),
        ("TESLA++ (self-MAC, as implemented)", StorageScheme::SelfMac),
        ("DAP (μMAC)", StorageScheme::MicroMac),
    ];
    schemes
        .into_iter()
        .map(|(label, scheme)| MemoryRow {
            scheme: label.to_owned(),
            entry_bits: scheme.entry_bits(),
            buffers_1024kb: scheme.buffers_in(1_024_000),
            buffers_512kb: scheme.buffers_in(512_000),
            saving: scheme.saving_vs_message_and_mac(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_bits_match_paper() {
        assert_eq!(StorageScheme::MessageAndMac.entry_bits(), 280);
        assert_eq!(StorageScheme::MicroMac.entry_bits(), 56);
        assert_eq!(StorageScheme::SelfMac.entry_bits(), 112);
    }

    #[test]
    fn dap_saves_eighty_percent() {
        assert!((StorageScheme::MicroMac.saving_vs_message_and_mac() - 0.8).abs() < 1e-12);
        assert_eq!(
            StorageScheme::MessageAndMac.saving_vs_message_and_mac(),
            0.0
        );
    }

    #[test]
    fn dap_holds_five_times_more_buffers() {
        let mem = 1_024_000;
        assert_eq!(
            StorageScheme::MicroMac.buffers_in(mem),
            5 * StorageScheme::MessageAndMac.buffers_in(mem)
        );
    }

    #[test]
    fn table_has_three_rows_in_order() {
        let t = memory_table();
        assert_eq!(t.len(), 3);
        assert!(t[0].scheme.contains("TESLA"));
        assert!(t[2].scheme.contains("DAP"));
        assert_eq!(t[2].buffers_1024kb, 1_024_000 / 56);
        assert_eq!(t[2].buffers_512kb, 512_000 / 56);
    }
}
