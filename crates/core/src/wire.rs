//! DAP wire formats and parameters (Fig. 4 of the paper).

use dap_crypto::{Key, Mac80};
use dap_simnet::{IntervalSchedule, SimDuration, SimTime};
use dap_tesla::SafetyCheck;

/// Protocol parameters for a DAP deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DapParams {
    /// Interval length in ticks.
    pub interval: SimDuration,
    /// Key disclosure delay `d` in intervals (the protocol sketch uses 1:
    /// the reveal follows one interval after the announcement).
    pub disclosure_delay: u64,
    /// Loose-synchronisation bound `Δ` in ticks.
    pub max_clock_offset: u64,
    /// Number of receiver buffers `m`.
    pub buffers: usize,
}

impl DapParams {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if `interval` or `disclosure_delay` or `buffers` is zero.
    #[must_use]
    pub fn new(
        interval: SimDuration,
        disclosure_delay: u64,
        max_clock_offset: u64,
        buffers: usize,
    ) -> Self {
        assert!(interval.ticks() > 0, "interval must be positive");
        assert!(disclosure_delay >= 1, "disclosure delay must be at least 1");
        assert!(buffers >= 1, "need at least one buffer");
        Self {
            interval,
            disclosure_delay,
            max_clock_offset,
            buffers,
        }
    }

    /// The interval grid (starting at `t = 0`).
    #[must_use]
    pub fn schedule(&self) -> IntervalSchedule {
        IntervalSchedule::new(SimTime::ZERO, self.interval)
    }

    /// The safe-packet test for these parameters (Algorithm 2 line 2:
    /// "if `i + d < x` then discard").
    #[must_use]
    pub fn safety(&self) -> SafetyCheck {
        SafetyCheck {
            schedule: self.schedule(),
            disclosure_delay: self.disclosure_delay,
            max_clock_offset: self.max_clock_offset,
        }
    }

    /// Replaces the buffer count (used by the adaptive controller).
    #[must_use]
    pub fn with_buffers(mut self, buffers: usize) -> Self {
        assert!(buffers >= 1, "need at least one buffer");
        self.buffers = buffers;
        self
    }
}

impl Default for DapParams {
    /// 100-tick intervals, `d = 1`, synchronised clocks, 8 buffers.
    fn default() -> Self {
        Self::new(SimDuration(100), 1, 0, 8)
    }
}

/// Phase 1: the MAC announcement `(MAC_i, i)` — 112 bits on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Announce {
    /// Interval index `i`.
    pub index: u64,
    /// `MAC_i = MAC_{K'_i}(M_i)`.
    pub mac: Mac80,
}

impl Announce {
    /// Airtime size in bits (`MACi (80b) + i (32b)` in Fig. 4).
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        dap_crypto::sizes::ANNOUNCE_PACKET_BITS
    }
}

/// Phase 2: the reveal `(M_i, K_i, i)` — 312 bits for a 200-bit message.
#[derive(Debug, Clone, PartialEq)]
pub struct Reveal {
    /// Interval index `i`.
    pub index: u64,
    /// The message `M_i`.
    pub message: Vec<u8>,
    /// The disclosed key `K_i`.
    pub key: Key,
}

impl Reveal {
    /// Airtime size in bits.
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        (self.message.len() as u32) * 8
            + dap_crypto::sizes::KEY_BITS
            + dap_crypto::sizes::INDEX_BITS
    }
}

/// Any DAP frame (for running over [`dap_simnet`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DapMessage {
    /// Phase-1 announcement.
    Announce(Announce),
    /// Phase-2 reveal.
    Reveal(Reveal),
}

impl DapMessage {
    /// Airtime size in bits.
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        match self {
            DapMessage::Announce(a) => a.size_bits(),
            DapMessage::Reveal(r) => r.size_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_sane() {
        let p = DapParams::default();
        assert_eq!(p.disclosure_delay, 1);
        assert_eq!(p.buffers, 8);
        assert_eq!(p.schedule().index_at(SimTime(150)), 2);
    }

    #[test]
    fn with_buffers_replaces() {
        let p = DapParams::default().with_buffers(3);
        assert_eq!(p.buffers, 3);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_buffers_rejected() {
        let _ = DapParams::default().with_buffers(0);
    }

    #[test]
    #[should_panic(expected = "disclosure delay")]
    fn zero_delay_rejected() {
        let _ = DapParams::new(SimDuration(10), 0, 0, 1);
    }

    #[test]
    fn announce_is_112_bits() {
        let a = Announce {
            index: 1,
            mac: Mac80::from_slice(&[0; 10]).unwrap(),
        };
        assert_eq!(a.size_bits(), 112);
        assert_eq!(DapMessage::Announce(a).size_bits(), 112);
    }

    #[test]
    fn reveal_is_312_bits_for_paper_message() {
        let r = Reveal {
            index: 1,
            message: vec![0u8; 25],
            key: Key::derive(b"t", b"k"),
        };
        assert_eq!(r.size_bits(), 312);
        assert_eq!(DapMessage::Reveal(r).size_bits(), 312);
    }

    #[test]
    fn safety_wires_through_params() {
        let p = DapParams::new(SimDuration(100), 1, 30, 4);
        let s = p.safety();
        assert_eq!(s.disclosure_delay, 1);
        assert_eq!(s.max_clock_offset, 30);
    }
}
