//! Algorithm 2 — DAP authentication at receivers.
//!
//! Processing an announcement `(MAC_i, i)` received in interval `I_x`:
//!
//! 1. **safe-packet test** — discard if the key for `i` may already be
//!    public (`i + d < x` under worst-case skew);
//! 2. compute `μMAC_i = MAC_{K_recv}(MAC_i)` (24 bits; `K_recv` never
//!    leaves the node) and offer `(μMAC_i, i)` — 56 bits — to the
//!    `m`-buffer reservoir: the `k`-th copy of the receiving interval is
//!    kept with probability `m/k`.
//!
//! Processing a reveal `(M_i, K_i, i)` one interval later:
//!
//! 3. **weak authentication** — `K_i` must verify against the chain
//!    anchor (`h(K_i) = K_{i−1}`, generalised over gaps);
//! 4. **strong authentication** — recompute
//!    `μMAC′ = MAC_{K_recv}(MAC_{K'_i}(M_i))` and search the buffers for
//!    a matching entry with index `i`; equality authenticates `M_i`.

use dap_crypto::mac::{
    mac80_many_prepared, mac80_prepared, micro_mac_many, micro_mac_prepared, prepare_chain_key,
    prepare_chain_keys, prepare_receiver_key, MicroMac,
};
use dap_crypto::oneway::{one_way_iter, one_way_many, Domain};
use dap_crypto::{ChainAnchor, Key, PreparedMacKey};
use dap_simnet::{SimRng, SimTime};
use dap_tesla::ReservoirBuffer;

use crate::sender::DapBootstrap;
use crate::wire::{Announce, DapParams, Reveal};

/// Outcome of processing an announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnounceOutcome {
    /// Discarded by the safe-packet test (Algorithm 2 line 3).
    Unsafe,
    /// Stored in a buffer (lines 6–12, kept).
    Stored,
    /// Offered but dropped by the sampling coin (line 9, not kept).
    Dropped,
}

/// Outcome of processing a reveal.
#[derive(Debug, Clone, PartialEq)]
pub enum RevealOutcome {
    /// Weak + strong authentication both passed; `M_i` is trusted.
    Authenticated {
        /// Interval index.
        index: u64,
        /// The trusted message.
        message: Vec<u8>,
    },
    /// The disclosed key failed chain verification (line 16).
    WeakRejected {
        /// Claimed interval.
        index: u64,
    },
    /// The key was genuine but no stored μMAC matched (line 20) —
    /// the message was tampered with.
    StrongRejected {
        /// Claimed interval.
        index: u64,
    },
    /// The key was genuine but no candidate for `index` was buffered —
    /// the announcement was lost, evicted by the flood, or never sent.
    NoCandidate {
        /// Claimed interval.
        index: u64,
    },
}

impl RevealOutcome {
    /// `true` for [`RevealOutcome::Authenticated`].
    #[must_use]
    pub fn is_authenticated(&self) -> bool {
        matches!(self, RevealOutcome::Authenticated { .. })
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DapStats {
    /// Announcements offered to the buffers (post safe-packet test).
    pub announces_offered: u64,
    /// Announcements stored (empty buffer or replacement).
    pub announces_stored: u64,
    /// Announcements discarded as unsafe.
    pub announces_unsafe: u64,
    /// Reveals processed.
    pub reveals: u64,
    /// Messages authenticated.
    pub authenticated: u64,
    /// Reveals with a forged key.
    pub weak_rejected: u64,
    /// Reveals whose message matched no stored μMAC.
    pub strong_rejected: u64,
    /// Reveals with no buffered candidate at all.
    pub no_candidate: u64,
    /// Stale buffer entries garbage-collected (reveal never arrived).
    pub entries_expired: u64,
    /// Times the receiver noticed its chain anchor had fallen more than
    /// [`DESYNC_GRACE_INTERVALS`] behind the current interval (blackout,
    /// crash, or sustained loss).
    pub desyncs: u64,
    /// Weak authentications that re-anchored across a gap (more than one
    /// one-way step) — the bounded multi-step recovery path.
    pub chain_recoveries: u64,
    /// Largest number of one-way steps walked in a single re-anchoring.
    pub max_recovery_depth: u64,
    /// Buffered candidates whose fate a reveal decided (matched against
    /// the strong μMAC). Reservoir sampling is uniform over the offers,
    /// so the forged share of these entries is an unbiased estimate of
    /// the wire's forged fraction `p` — the control plane's signal.
    pub buffered_decided: u64,
    /// Of [`Self::buffered_decided`], the entries that failed the strong
    /// μMAC check (forged or corrupted announces that won a reservoir
    /// slot).
    pub buffered_forged: u64,
}

/// Intervals the anchor may lag behind the receiver's clock (beyond the
/// disclosure delay) before the receiver declares itself desynchronised.
pub const DESYNC_GRACE_INTERVALS: u64 = 2;

/// The receiving side of DAP.
///
/// ```
/// use dap_core::{DapParams, DapReceiver, DapSender};
/// use dap_simnet::{SimRng, SimTime};
///
/// let mut sender = DapSender::new(b"secret", 16, DapParams::default());
/// let mut receiver = DapReceiver::new(sender.bootstrap(), b"node-local");
/// let mut rng = SimRng::new(1);
///
/// let announce = sender.announce(1, b"reading").unwrap();
/// receiver.on_announce(&announce, SimTime(10), &mut rng);
/// let outcome = receiver.on_reveal(&sender.reveal(1).unwrap(), SimTime(110));
/// assert!(outcome.is_authenticated());
/// ```
#[derive(Debug, Clone)]
pub struct DapReceiver {
    anchor: ChainAnchor,
    params: DapParams,
    /// `K_recv` with its HMAC key schedule run once at bootstrap: the
    /// announce hot path re-keys every incoming MAC under this secret,
    /// so caching the midstates halves its compression count.
    local_key: PreparedMacKey,
    /// Chain keys recovered while re-anchoring across a gap, kept for
    /// duplicate reveals of in-gap intervals ([`Self::weak_authenticate`]
    /// answers those from here instead of re-walking the chain).
    recovered: std::collections::BTreeMap<u64, Key>,
    buffers: usize,
    /// One `m`-buffer reservoir per pending interval: the copies of
    /// interval `i` compete only with each other (the competition scope
    /// of the paper's `P = 1 − p^m` analysis). A shared pool would let a
    /// burst for interval `i+1` evict interval `i`'s still-pending
    /// evidence right before its reveal — a boundary attack our
    /// `front_running_flood_gains_nothing` test pins down. At most
    /// `d + 2` intervals are pending (older pools are GC'd), so memory
    /// is bounded by `(d + 2)·m·56` bits.
    pools: std::collections::BTreeMap<u64, ReservoirBuffer<MicroMac>>,
    rx_interval: u64,
    desynced: bool,
    authenticated: Vec<(u64, Vec<u8>)>,
    stats: DapStats,
    /// The most recent interval's verified MAC-key schedule, as
    /// `(interval, chain key, K'_i schedule)`: one F′ derivation + HMAC
    /// re-key serves every frame claiming the same interval. Installed
    /// only after weak authentication, so a forged key can never seed
    /// it; a hit requires both interval and key to match, so a stale
    /// entry is simply a miss. `prepare_chain_key` is a pure function,
    /// making the cache invisible to outcomes, stats and traces.
    interval_key: Option<(u64, Key, PreparedMacKey)>,
}

/// Pure-crypto products of a reveal, computed ahead of
/// [`DapReceiver::on_reveal_precomputed`] — typically for a whole drain
/// window at once via [`DapReceiver::precompute_reveals`], which runs
/// every hash lane-parallel (`dap_crypto::lanes`).
///
/// Every field is a deterministic function of the receiver's local key
/// and the reveal bytes, independent of receiver *state*, so computing
/// them early (or batched, or in a different order) cannot change any
/// outcome: the consuming call is bit-identical to scalar
/// [`DapReceiver::on_reveal`].
#[derive(Debug, Clone)]
pub struct RevealPrecompute {
    /// Interval the precomputed reveal claimed.
    index: u64,
    /// Disclosed chain key the products were derived from.
    key: Key,
    /// `F(key)` — answers the steady-state one-step chain walk.
    chain_image: Key,
    /// The `K'_i = F'(K_i)` HMAC key schedule.
    prepared: PreparedMacKey,
    /// The μMAC the receiver expects to find buffered.
    expect: MicroMac,
}

impl DapReceiver {
    /// Bootstraps a receiver. `local_seed` derives the node-local secret
    /// `K_recv` used for μMAC computation; it is never transmitted.
    #[must_use]
    pub fn new(bootstrap: DapBootstrap, local_seed: &[u8]) -> Self {
        Self {
            anchor: ChainAnchor::new(bootstrap.commitment, 0, Domain::F),
            params: bootstrap.params,
            local_key: prepare_receiver_key(&Key::derive(b"dap/receiver-local", local_seed)),
            recovered: std::collections::BTreeMap::new(),
            buffers: bootstrap.params.buffers,
            pools: std::collections::BTreeMap::new(),
            rx_interval: 0,
            desynced: false,
            authenticated: Vec::new(),
            stats: DapStats::default(),
            interval_key: None,
        }
    }

    /// Whether the receiver currently considers itself desynchronised
    /// (anchor more than `d +` [`DESYNC_GRACE_INTERVALS`] behind the
    /// clock). Cleared by the next successful weak authentication.
    #[must_use]
    pub fn is_desynced(&self) -> bool {
        self.desynced
    }

    /// Receiver counters.
    #[must_use]
    pub fn stats(&self) -> &DapStats {
        &self.stats
    }

    /// Messages authenticated so far, in order.
    #[must_use]
    pub fn authenticated(&self) -> &[(u64, Vec<u8>)] {
        &self.authenticated
    }

    /// Buffers currently occupied (entries across all pending intervals).
    #[must_use]
    pub fn buffered_count(&self) -> usize {
        self.pools.values().map(ReservoirBuffer::len).sum()
    }

    /// The configured buffer count `m` (per pending interval).
    #[must_use]
    pub fn buffer_capacity(&self) -> usize {
        self.buffers
    }

    /// Announce copies offered to interval `index`'s reservoir so far —
    /// the `k` of the paper's `m/k` sampling probability. Zero when the
    /// interval has no pool (nothing offered yet, or already GC'd).
    #[must_use]
    pub fn offered(&self, index: u64) -> u64 {
        self.pools.get(&index).map_or(0, ReservoirBuffer::offered)
    }

    /// Occupied buffer memory in bits (56 bits per entry — Fig. 4).
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        self.buffered_count() as u64 * u64::from(dap_crypto::sizes::DAP_BUFFER_ENTRY_BITS)
    }

    /// Worst-case provisioned buffer memory in bits:
    /// `(d + 2) × m × 56` — up to `d + 2` intervals can be pending at a
    /// boundary before GC. (The paper's `m × Mem/s` accounting ignores
    /// the boundary; with its `d = 1` this is a 3× constant.)
    #[must_use]
    pub fn memory_capacity_bits(&self) -> u64 {
        (self.params.disclosure_delay + 2)
            * self.buffers as u64
            * u64::from(dap_crypto::sizes::DAP_BUFFER_ENTRY_BITS)
    }

    /// Re-provisions the buffer pools to `m` buffers per pending
    /// interval (the adaptive controller's knob).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn set_buffers(&mut self, m: usize) {
        assert!(m >= 1, "need at least one buffer");
        self.buffers = m;
        for pool in self.pools.values_mut() {
            pool.set_capacity(m);
        }
    }

    /// Algorithm 2 lines 1–14: process an announcement received at local
    /// clock `local_time`.
    pub fn on_announce(
        &mut self,
        announce: &Announce,
        local_time: SimTime,
        rng: &mut SimRng,
    ) -> AnnounceOutcome {
        self.tick(local_time);

        if !self.params.safety().is_safe(announce.index, local_time) {
            self.stats.announces_unsafe += 1;
            return AnnounceOutcome::Unsafe;
        }

        let micro = micro_mac_prepared(&self.local_key, &announce.mac);
        self.stats.announces_offered += 1;
        let pool = self
            .pools
            .entry(announce.index)
            .or_insert_with(|| ReservoirBuffer::new(self.buffers));
        let outcome = pool.offer(micro, rng);
        if outcome.is_stored() {
            self.stats.announces_stored += 1;
            AnnounceOutcome::Stored
        } else {
            AnnounceOutcome::Dropped
        }
    }

    /// Algorithm 2 lines 15–25: process a reveal.
    pub fn on_reveal(&mut self, reveal: &Reveal, local_time: SimTime) -> RevealOutcome {
        self.on_reveal_inner(reveal, local_time, None)
    }

    /// [`on_reveal`](Self::on_reveal) consuming crypto products computed
    /// ahead of time by [`precompute_reveals`](Self::precompute_reveals).
    ///
    /// The precompute must have been taken from this receiver for this
    /// reveal; a mismatched `(index, key)` pairing is detected and falls
    /// back to the scalar computation, so the call is always
    /// bit-identical to [`on_reveal`](Self::on_reveal).
    pub fn on_reveal_precomputed(
        &mut self,
        reveal: &Reveal,
        local_time: SimTime,
        pre: &RevealPrecompute,
    ) -> RevealOutcome {
        self.on_reveal_inner(reveal, local_time, Some(pre))
    }

    /// Batched pure-crypto prefix of [`on_reveal`](Self::on_reveal) for a
    /// window of `(receiver, reveal)` pairs: one lane-parallel pass for
    /// the chain images (`F(K_i)`), one for the `K'_i` re-keys (skipping
    /// pairs answered by a receiver's interval cache), one for the
    /// message MACs and one for the μMAC re-keys.
    ///
    /// Receivers may repeat across pairs (one receiver draining several
    /// frames) — only `&self` is needed here, state changes happen in
    /// [`on_reveal_precomputed`](Self::on_reveal_precomputed).
    #[must_use]
    pub fn precompute_reveals(items: &[(&DapReceiver, &Reveal)]) -> Vec<RevealPrecompute> {
        let keys: Vec<Key> = items.iter().map(|(_, r)| r.key).collect();
        let images = one_way_many(Domain::F, &keys);

        // Interval-cache lookups first; batch the re-key only for misses.
        let mut prepared: Vec<Option<PreparedMacKey>> = items
            .iter()
            .map(|(rx, r)| rx.cached_interval_key(r.index, &r.key))
            .collect();
        let miss_keys: Vec<Key> = prepared
            .iter()
            .zip(keys.iter())
            .filter(|(p, _)| p.is_none())
            .map(|(_, k)| *k)
            .collect();
        let mut fresh = prepare_chain_keys(&miss_keys).into_iter();
        for slot in prepared.iter_mut() {
            if slot.is_none() {
                *slot = Some(fresh.next().expect("one schedule per miss"));
            }
        }
        let prepared: Vec<PreparedMacKey> = prepared.into_iter().map(Option::unwrap).collect();

        let messages: Vec<&[u8]> = items.iter().map(|(_, r)| r.message.as_slice()).collect();
        let tags = mac80_many_prepared(&prepared, &messages);
        let recv_keys: Vec<&PreparedMacKey> = items.iter().map(|(rx, _)| &rx.local_key).collect();
        let expects = micro_mac_many(&recv_keys, &tags);

        items
            .iter()
            .zip(images)
            .zip(prepared)
            .zip(expects)
            .map(
                |((((_, r), chain_image), prepared), expect)| RevealPrecompute {
                    index: r.index,
                    key: r.key,
                    chain_image,
                    prepared,
                    expect,
                },
            )
            .collect()
    }

    /// The cached `K'` schedule for `(index, key)`, if this receiver
    /// verified exactly that pairing before.
    fn cached_interval_key(&self, index: u64, key: &Key) -> Option<PreparedMacKey> {
        self.interval_key
            .as_ref()
            .filter(|(i, k, _)| *i == index && dap_crypto::ct_eq(k.as_bytes(), key.as_bytes()))
            .map(|(_, _, prepared)| *prepared)
    }

    fn on_reveal_inner(
        &mut self,
        reveal: &Reveal,
        local_time: SimTime,
        pre: Option<&RevealPrecompute>,
    ) -> RevealOutcome {
        self.tick(local_time);
        self.stats.reveals += 1;

        // A precompute pairs with exactly one (index, key); anything else
        // (a misrouted entry) downgrades to the scalar computation.
        let pre = pre.filter(|p| {
            p.index == reveal.index && dap_crypto::ct_eq(p.key.as_bytes(), reveal.key.as_bytes())
        });

        // Weak authentication: the disclosed key must be on the chain.
        let weak = match pre {
            Some(p) => self.weak_authenticate_with_image(&reveal.key, reveal.index, &p.chain_image),
            None => self.weak_authenticate(&reveal.key, reveal.index),
        };
        if !weak {
            self.stats.weak_rejected += 1;
            return RevealOutcome::WeakRejected {
                index: reveal.index,
            };
        }

        // Strong authentication: match the recomputed μMAC against the
        // buffered candidates for this interval.
        //
        // Any weak-auth-passing reveal *consumes* the interval's
        // candidates, freeing the buffers for the next interval (the
        // uniform-survival analysis assumes each interval's copies
        // compete for the full pool). Injecting a weak-valid reveal
        // requires the disclosed key, so an active attacker racing the
        // genuine reveal can at worst suppress that one interval —
        // exactly what jamming the reveal would do; it can never get a
        // forged message authenticated.
        let (prepared, expect) = match pre {
            Some(p) => (p.prepared, p.expect),
            None => {
                let prepared = self
                    .cached_interval_key(reveal.index, &reveal.key)
                    .unwrap_or_else(|| prepare_chain_key(&reveal.key));
                let tag = mac80_prepared(&prepared, &reveal.message);
                (prepared, micro_mac_prepared(&self.local_key, &tag))
            }
        };
        // Weak auth vouched for the key, so the schedule may be cached
        // for the interval's remaining frames.
        self.interval_key = Some((reveal.index, reveal.key, prepared));
        let Some(pool) = self.pools.remove(&reveal.index) else {
            self.stats.no_candidate += 1;
            return RevealOutcome::NoCandidate {
                index: reveal.index,
            };
        };
        if pool.is_empty() {
            self.stats.no_candidate += 1;
            return RevealOutcome::NoCandidate {
                index: reveal.index,
            };
        }
        let mut matched = false;
        for micro in pool.iter() {
            self.stats.buffered_decided += 1;
            if *micro == expect {
                matched = true;
            } else {
                self.stats.buffered_forged += 1;
            }
        }
        if matched {
            self.stats.authenticated += 1;
            self.authenticated
                .push((reveal.index, reveal.message.clone()));
            RevealOutcome::Authenticated {
                index: reveal.index,
                message: reveal.message.clone(),
            }
        } else {
            self.stats.strong_rejected += 1;
            RevealOutcome::StrongRejected {
                index: reveal.index,
            }
        }
    }

    /// Garbage-collects pools whose reveal window has passed: an entry
    /// for interval `i` is useless once the reveal (due in interval
    /// `i + d`) is more than one interval overdue. Each pool's offer
    /// counter is naturally scoped to its interval — exactly Algorithm
    /// 2's "the k-th copy received in `I_x`" competition.
    fn tick(&mut self, local_time: SimTime) {
        let now = self.params.schedule().index_at(local_time);
        if now == self.rx_interval {
            return;
        }
        self.rx_interval = now;
        let d = self.params.disclosure_delay;
        // Desync detection: the anchor should track `now − d` under
        // normal delivery; falling further behind than the grace window
        // means a blackout/crash interrupted the disclosure stream.
        if now > self.anchor.index() + d + DESYNC_GRACE_INTERVALS {
            if !self.desynced {
                self.desynced = true;
                self.stats.desyncs += 1;
            }
        } else {
            self.desynced = false;
        }
        let stale: Vec<u64> = self
            .pools
            .keys()
            .copied()
            .filter(|i| i.saturating_add(d + 1) < now)
            .collect();
        for i in stale {
            if let Some(pool) = self.pools.remove(&i) {
                self.stats.entries_expired += pool.len() as u64;
            }
        }
    }

    /// Intervals a recovered gap key stays cached behind the anchor —
    /// long enough to answer any duplicate reveal still inside the
    /// pending window.
    const RECOVERED_RETENTION: u64 = 8;

    fn weak_authenticate(&mut self, key: &Key, index: u64) -> bool {
        let result = self.anchor.accept_recovering(key, index);
        self.finish_weak_authenticate(key, index, result)
    }

    /// [`weak_authenticate`] with `F(key)` already computed (batched):
    /// the steady-state one-step walk is answered by the image, every
    /// other shape falls through to the full walk — bit-identical either
    /// way (`ChainAnchor::accept_recovering_with_image`).
    fn weak_authenticate_with_image(&mut self, key: &Key, index: u64, image: &Key) -> bool {
        let result = self.anchor.accept_recovering_with_image(key, index, image);
        self.finish_weak_authenticate(key, index, result)
    }

    fn finish_weak_authenticate(
        &mut self,
        key: &Key,
        index: u64,
        result: Result<Vec<Key>, dap_crypto::ChainVerifyError>,
    ) -> bool {
        match result {
            Ok(segment) => {
                let steps = segment.len() as u64;
                if steps > 1 {
                    self.stats.chain_recoveries += 1;
                    // Cache the gap's keys: each duplicate reveal inside
                    // it is then a lookup, not a fresh chain walk.
                    let base = index - steps;
                    for (offset, k) in segment.into_iter().enumerate() {
                        self.recovered.insert(base + 1 + offset as u64, k);
                    }
                    let floor = self
                        .anchor
                        .index()
                        .saturating_sub(Self::RECOVERED_RETENTION);
                    self.recovered.retain(|i, _| *i >= floor);
                }
                self.stats.max_recovery_depth = self.stats.max_recovery_depth.max(steps);
                self.desynced = false;
                true
            }
            Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {
                // Key for an interval at or before the anchor: duplicate
                // reveal of a known interval. Answer from the recovered
                // cache when possible, otherwise re-derive and compare.
                let anchor_index = self.anchor.index();
                if index > anchor_index {
                    return false;
                }
                if let Some(cached) = self.recovered.get(&index) {
                    return dap_crypto::ct_eq(cached.as_bytes(), key.as_bytes());
                }
                let derived = one_way_iter(
                    Domain::F,
                    self.anchor.key(),
                    (anchor_index - index) as usize,
                );
                dap_crypto::ct_eq(derived.as_bytes(), key.as_bytes())
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::DapSender;
    use dap_simnet::SimDuration;

    fn params_with(m: usize) -> DapParams {
        DapParams::new(SimDuration(100), 1, 0, m)
    }

    fn setup(m: usize) -> (DapSender, DapReceiver, SimRng) {
        let sender = DapSender::new(b"dap", 64, params_with(m));
        let receiver = DapReceiver::new(sender.bootstrap(), b"node-7");
        (sender, receiver, SimRng::new(77))
    }

    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn happy_path_authenticates() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"temp 21.5").unwrap();
        assert_eq!(
            receiver.on_announce(&ann, during(1), &mut rng),
            AnnounceOutcome::Stored
        );
        let rev = sender.reveal(1).unwrap();
        let out = receiver.on_reveal(&rev, during(2));
        assert!(out.is_authenticated());
        assert_eq!(receiver.authenticated().len(), 1);
        assert_eq!(receiver.stats().authenticated, 1);
        // Entry consumed: buffers freed.
        assert_eq!(receiver.buffered_count(), 0);
    }

    #[test]
    fn stale_announce_fails_safety() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"m").unwrap();
        // Received during interval 2: K_1 is being disclosed → unsafe.
        assert_eq!(
            receiver.on_announce(&ann, during(2), &mut rng),
            AnnounceOutcome::Unsafe
        );
        assert_eq!(receiver.stats().announces_unsafe, 1);
    }

    #[test]
    fn forged_key_weakly_rejected() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"m").unwrap();
        receiver.on_announce(&ann, during(1), &mut rng);
        let mut rev = sender.reveal(1).unwrap();
        rev.key = Key::random(&mut rng);
        assert_eq!(
            receiver.on_reveal(&rev, during(2)),
            RevealOutcome::WeakRejected { index: 1 }
        );
    }

    #[test]
    fn tampered_message_strongly_rejected() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"genuine").unwrap();
        receiver.on_announce(&ann, during(1), &mut rng);
        let mut rev = sender.reveal(1).unwrap();
        rev.message = b"tampered".to_vec();
        assert_eq!(
            receiver.on_reveal(&rev, during(2)),
            RevealOutcome::StrongRejected { index: 1 }
        );
        assert!(receiver.authenticated().is_empty());
    }

    #[test]
    fn lost_announcement_reports_no_candidate() {
        let (mut sender, mut receiver, _rng) = setup(4);
        sender.announce(1, b"m").unwrap();
        let rev = sender.reveal(1).unwrap();
        assert_eq!(
            receiver.on_reveal(&rev, during(2)),
            RevealOutcome::NoCandidate { index: 1 }
        );
    }

    #[test]
    fn flood_cannot_grow_memory_beyond_m() {
        let (sender, mut receiver, mut rng) = setup(5);
        let _ = sender; // authentic traffic irrelevant here
        for k in 0..10_000u64 {
            let forged = Announce {
                index: 1,
                mac: {
                    let mut b = [0u8; 10];
                    rng.fill_bytes(&mut b);
                    dap_crypto::Mac80::from_slice(&b).unwrap()
                },
            };
            receiver.on_announce(&forged, during(1), &mut rng);
            let _ = k;
            assert!(receiver.buffered_count() <= 5);
        }
        // Capacity bound is per pending interval: (d + 2) pools of m.
        assert_eq!(receiver.memory_capacity_bits(), 3 * 5 * 56);
        // A single-interval flood occupies just one pool.
        assert!(receiver.memory_bits() <= 5 * 56);
    }

    /// The paper's P = 1 − p^m: empirical authentication rate under a
    /// flood of forged fraction p with m buffers.
    #[test]
    fn authentication_rate_tracks_one_minus_p_to_m() {
        let m = 3;
        let trials = 3000u32;
        let mut ok = 0u32;
        let mut rng = SimRng::new(99);
        for trial in 0..trials {
            let mut sender = DapSender::new(&trial.to_be_bytes(), 4, params_with(m));
            let mut receiver = DapReceiver::new(sender.bootstrap(), b"n");
            let ann = sender.announce(1, b"real").unwrap();
            // 1 authentic copy among 5 total (p = 0.8): interleave.
            let mut copies: Vec<Announce> = Vec::new();
            for _ in 0..4 {
                let mut b = [0u8; 10];
                rng.fill_bytes(&mut b);
                copies.push(Announce {
                    index: 1,
                    mac: dap_crypto::Mac80::from_slice(&b).unwrap(),
                });
            }
            copies.insert((trial % 5) as usize, ann);
            for c in &copies {
                receiver.on_announce(c, during(1), &mut rng);
            }
            let rev = sender.reveal(1).unwrap();
            if receiver.on_reveal(&rev, during(2)).is_authenticated() {
                ok += 1;
            }
        }
        let rate = f64::from(ok) / f64::from(trials);
        // Exact (hypergeometric, 1 authentic of 5 kept 3): 3/5 = 0.6.
        // Paper approximation: 1 − 0.8³ = 0.488 (large-n limit).
        assert!((rate - 0.6).abs() < 0.03, "rate {rate:.3}");
    }

    #[test]
    fn duplicate_reveal_keeps_weak_auth_passing() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let a1 = sender.announce(1, b"m1").unwrap();
        let a2 = sender.announce(2, b"m2").unwrap();
        receiver.on_announce(&a1, during(1), &mut rng);
        let r1 = sender.reveal(1).unwrap();
        assert!(receiver.on_reveal(&r1, during(2)).is_authenticated());
        receiver.on_announce(&a2, during(2), &mut rng);
        let r2 = sender.reveal(2).unwrap();
        assert!(receiver.on_reveal(&r2, during(3)).is_authenticated());
        // Replay r1 (anchor is now past it): weak auth still passes via
        // derivation, but the entry is consumed → NoCandidate.
        assert_eq!(
            receiver.on_reveal(&r1, during(3)),
            RevealOutcome::NoCandidate { index: 1 }
        );
    }

    #[test]
    fn stale_entries_expire() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"m").unwrap();
        receiver.on_announce(&ann, during(1), &mut rng);
        assert_eq!(receiver.buffered_count(), 1);
        // No reveal ever arrives; by interval 4 the entry is GC'd
        // (i + d + 1 = 3 < 4).
        let a4 = sender.announce(4, b"m4").unwrap();
        receiver.on_announce(&a4, during(4), &mut rng);
        assert_eq!(receiver.stats().entries_expired, 1);
        assert_eq!(receiver.buffered_count(), 1); // only interval 4's entry
    }

    #[test]
    fn memory_accounting_is_56_bits_per_entry() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"m").unwrap();
        receiver.on_announce(&ann, during(1), &mut rng);
        assert_eq!(receiver.memory_bits(), 56);
        assert_eq!(receiver.memory_capacity_bits(), 3 * 4 * 56);
    }

    #[test]
    fn set_buffers_reprovisions() {
        let (_, mut receiver, _) = setup(4);
        receiver.set_buffers(10);
        assert_eq!(receiver.buffer_capacity(), 10);
        assert_eq!(receiver.memory_capacity_bits(), 3 * 10 * 56);
    }

    #[test]
    fn counter_resets_each_interval() {
        // With m = 1 and one copy per interval, every copy must be
        // stored directly (k = 1 each interval → empty-or-replace path
        // never rolls the m/k coin against a stale k).
        let (mut sender, mut receiver, mut rng) = setup(1);
        for i in 1..=5u64 {
            let ann = sender.announce(i, b"x").unwrap();
            receiver.on_announce(&ann, during(i), &mut rng);
            let rev = sender.reveal(i).unwrap();
            assert!(
                receiver.on_reveal(&rev, during(i + 1)).is_authenticated(),
                "interval {i}"
            );
        }
    }

    #[test]
    fn reveal_before_announce_reports_no_candidate_then_announce_expires() {
        // Jitter can reorder frames: the reveal overtakes the announce.
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"m").unwrap();
        let rev = sender.reveal(1).unwrap();
        assert_eq!(
            receiver.on_reveal(&rev, during(2)),
            RevealOutcome::NoCandidate { index: 1 }
        );
        // The late announce now fails the safe-packet test (its key is
        // public) — it must not be buffered.
        assert_eq!(
            receiver.on_announce(&ann, during(2), &mut rng),
            AnnounceOutcome::Unsafe
        );
        assert!(receiver.authenticated().is_empty());
    }

    #[test]
    fn reannouncing_an_interval_replaces_the_pending_message() {
        // The sender holds one message per interval (Fig. 4's layout);
        // announcing twice replaces the pending reveal payload, and only
        // the matching (second) announcement authenticates.
        let (mut sender, mut receiver, mut rng) = setup(4);
        let first = sender.announce(1, b"v1").unwrap();
        let second = sender.announce(1, b"v2").unwrap();
        receiver.on_announce(&first, during(1), &mut rng);
        receiver.on_announce(&second, during(1), &mut rng);
        let rev = sender.reveal(1).unwrap();
        assert_eq!(&rev.message[..], b"v2");
        let out = receiver.on_reveal(&rev, during(2));
        assert!(out.is_authenticated());
    }

    #[test]
    fn cross_interval_entries_coexist() {
        // d = 2: two intervals' entries are in flight at once.
        let params = DapParams::new(SimDuration(100), 2, 0, 8);
        let mut sender = DapSender::new(b"s", 16, params);
        let mut receiver = DapReceiver::new(sender.bootstrap(), b"n");
        let mut rng = SimRng::new(5);
        let a1 = sender.announce(1, b"m1").unwrap();
        let a2 = sender.announce(2, b"m2").unwrap();
        receiver.on_announce(&a1, during(1), &mut rng);
        receiver.on_announce(&a2, during(2), &mut rng);
        assert_eq!(receiver.buffered_count(), 2);
        assert!(receiver
            .on_reveal(&sender.reveal(1).unwrap(), during(3))
            .is_authenticated());
        assert!(receiver
            .on_reveal(&sender.reveal(2).unwrap(), during(4))
            .is_authenticated());
    }

    #[test]
    fn in_gap_duplicate_reveals_answered_from_recovered_cache() {
        let (mut sender, mut receiver, _rng) = setup(4);
        // Intervals 1..=5 lost; reveal 6 re-anchors across the gap and
        // caches the gap's keys.
        for i in 1..=6u64 {
            sender.announce(i, b"x").unwrap();
        }
        let r6 = sender.reveal(6).unwrap();
        assert_eq!(
            receiver.on_reveal(&r6, during(7)),
            RevealOutcome::NoCandidate { index: 6 }
        );
        assert_eq!(receiver.stats().chain_recoveries, 1);
        // A genuine reveal inside the gap still passes weak auth (served
        // from the cache; nothing buffered, so NoCandidate not Rejected)…
        let r3 = sender.reveal(3).unwrap();
        assert_eq!(
            receiver.on_reveal(&r3, during(7)),
            RevealOutcome::NoCandidate { index: 3 }
        );
        // …while a forged in-gap key is still weakly rejected.
        let mut forged = sender.reveal(4).unwrap();
        forged.key = Key::derive(b"forged", b"k");
        assert_eq!(
            receiver.on_reveal(&forged, during(7)),
            RevealOutcome::WeakRejected { index: 4 }
        );
    }

    #[test]
    fn precomputed_reveals_match_scalar_path_exactly() {
        // Two receivers share a window: genuine reveals, a tampered
        // message, a forged key and a duplicate — the precomputed path
        // must mirror the scalar receiver outcome-for-outcome and
        // stat-for-stat.
        let (mut sender, scalar_rx, mut rng) = setup(4);
        let mut batch_rx = scalar_rx.clone();
        let mut scalar_rx = scalar_rx;

        let mut reveals: Vec<(Reveal, SimTime)> = Vec::new();
        for i in 1..=6u64 {
            let ann = sender.announce(i, format!("m{i}").as_bytes()).unwrap();
            scalar_rx.on_announce(&ann, during(i), &mut rng);
            batch_rx.on_announce(&ann, during(i), &mut SimRng::new(1000 + i));
            let rev = sender.reveal(i).unwrap();
            reveals.push((rev, during(i + 1)));
        }
        // m = 4 with one offer per interval stores deterministically, so
        // both receivers buffered every announce despite distinct coins.
        let mut tampered = reveals[2].0.clone();
        tampered.message = b"evil".to_vec();
        reveals[2].0 = tampered;
        let mut forged = reveals[4].0.clone();
        forged.key = Key::derive(b"forged", b"k");
        reveals[4].0 = forged;
        // Duplicate of interval 1 at the end.
        reveals.push((reveals[0].0.clone(), during(7)));

        let scalar_outcomes: Vec<RevealOutcome> = reveals
            .iter()
            .map(|(r, t)| scalar_rx.on_reveal(r, *t))
            .collect();

        let reveal_refs: Vec<(&DapReceiver, &Reveal)> =
            reveals.iter().map(|(r, _)| (&batch_rx as &_, r)).collect();
        // Note: precomputes for the whole window are taken against the
        // receiver's *initial* state — exactly what the pool drain does.
        let pres = DapReceiver::precompute_reveals(&reveal_refs);
        let batch_outcomes: Vec<RevealOutcome> = reveals
            .iter()
            .zip(pres.iter())
            .map(|((r, t), pre)| batch_rx.on_reveal_precomputed(r, *t, pre))
            .collect();

        assert_eq!(scalar_outcomes, batch_outcomes);
        assert_eq!(scalar_rx.stats(), batch_rx.stats());
        assert_eq!(scalar_rx.authenticated(), batch_rx.authenticated());
    }

    #[test]
    fn mismatched_precompute_falls_back_to_scalar() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"real").unwrap();
        receiver.on_announce(&ann, during(1), &mut rng);
        let rev = sender.reveal(1).unwrap();
        // Precompute taken for a *different* reveal (forged key): the
        // consuming call must detect the mismatch and still authenticate.
        let mut other = rev.clone();
        other.key = Key::derive(b"other", b"k");
        let pre = DapReceiver::precompute_reveals(&[(&receiver, &other)])
            .pop()
            .unwrap();
        assert!(receiver
            .on_reveal_precomputed(&rev, during(2), &pre)
            .is_authenticated());
    }

    #[test]
    fn interval_cache_is_outcome_invisible() {
        // Replayed weak-valid reveals for one interval: second call hits
        // the interval cache; outcomes must match a cache-cold clone.
        let (mut sender, mut receiver, mut rng) = setup(4);
        let ann = sender.announce(1, b"m").unwrap();
        receiver.on_announce(&ann, during(1), &mut rng);
        let rev = sender.reveal(1).unwrap();
        let mut cold = receiver.clone();
        assert!(receiver.on_reveal(&rev, during(2)).is_authenticated());
        assert!(receiver.interval_key.is_some());
        // Same reveal again: NoCandidate on both, stats agree.
        let warm = receiver.on_reveal(&rev, during(2));
        cold.on_reveal(&rev, during(2));
        cold.interval_key = None; // force the scalar re-key
        let cold_again = cold.on_reveal(&rev, during(2));
        assert_eq!(warm, cold_again);
        assert_eq!(receiver.stats(), cold.stats());
    }

    #[test]
    fn blackout_gap_triggers_desync_then_bounded_recovery() {
        let (mut sender, mut receiver, mut rng) = setup(4);
        // Interval 1 authenticates normally.
        let a1 = sender.announce(1, b"pre-blackout").unwrap();
        receiver.on_announce(&a1, during(1), &mut rng);
        assert!(receiver
            .on_reveal(&sender.reveal(1).unwrap(), during(2))
            .is_authenticated());
        assert!(!receiver.is_desynced());

        // Blackout: intervals 2..=7 never arrive. The first frame after
        // the fault clears exposes the gap.
        let a8 = sender.announce(8, b"post-blackout").unwrap();
        receiver.on_announce(&a8, during(8), &mut rng);
        assert!(receiver.is_desynced());
        assert_eq!(receiver.stats().desyncs, 1);

        // The next genuine reveal re-anchors across the whole gap.
        let out = receiver.on_reveal(&sender.reveal(8).unwrap(), during(9));
        assert!(out.is_authenticated());
        assert!(!receiver.is_desynced());
        assert_eq!(receiver.stats().chain_recoveries, 1);
        assert_eq!(receiver.stats().max_recovery_depth, 7);
    }
}
