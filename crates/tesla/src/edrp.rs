//! EDRP — the Enhanced DoS-Resistant Protocol (§III-B, Fig. 3).
//!
//! Multi-level μTESLA's CDMs are a DoS target because a CDM can only be
//! MAC-verified one high-level interval after it arrives; until then
//! every candidate (authentic or forged) occupies buffer space. EDRP
//! closes the window with a **hash chain over the CDMs themselves**:
//! `CDM_i` carries `H(CDM_{i+1})`, so once `CDM_i` is authenticated the
//! very next CDM authenticates *instantly* by hash comparison —
//!
//! * forged `CDM_{i+1}` copies are rejected on arrival and consume **no
//!   buffer space**, and
//! * the commitment it distributes is installed immediately, so the
//!   resistance to DoS attacks continues across intervals even while the
//!   MAC-verification pipeline would still be waiting.
//!
//! When a CDM *is* lost, EDRP degrades to exactly the buffered,
//! delayed-MAC path of multi-level μTESLA (plus the high-level-chain
//! recovery `F0(F0(K_i)) = K_{i−2}` described in the paper), and the
//! hash expectation re-arms as soon as one CDM re-authenticates.

use std::collections::BTreeMap;

use dap_crypto::mac::{mac80, verify_mac80, Mac80};
use dap_crypto::{ChainExhausted, Key};
use dap_simnet::{SimRng, SimTime};

use crate::buffer::ReservoirBuffer;
use crate::multilevel::{
    CommitmentSource, LowKeyDisclosure, LowPacket, MlBootstrap, MlEvent, MultiLevelParams,
    MultiLevelReceiver, MultiLevelSender,
};

/// An EDRP commitment distribution message.
#[derive(Debug, Clone, PartialEq)]
pub struct EdrpCdm {
    /// High-level interval (MAC key index).
    pub index: u64,
    /// Low-level commitment `K_{index+2, 0}`.
    pub low_commitment: Key,
    /// `H(CDM_{index+1})` — the hash of the *next* CDM.
    pub next_hash: Key,
    /// Disclosed high-level key `K_{index−1}`, when it exists.
    pub disclosed_high: Option<(u64, Key)>,
    /// `MAC_{K'_index}(index | commitment | next_hash)`.
    pub mac: Mac80,
}

impl EdrpCdm {
    /// MAC input encoding.
    #[must_use]
    pub fn mac_input(index: u64, low_commitment: &Key, next_hash: &Key) -> Vec<u8> {
        let mut input = Vec::with_capacity(8 + 2 * Key::LEN);
        input.extend_from_slice(&index.to_be_bytes());
        input.extend_from_slice(low_commitment.as_bytes());
        input.extend_from_slice(next_hash.as_bytes());
        input
    }

    /// `H(CDM)` — the pseudorandom hash of the complete message, used as
    /// the next-CDM expectation.
    #[must_use]
    pub fn hash(&self) -> Key {
        let mut enc = Vec::with_capacity(8 + 3 * Key::LEN + Mac80::LEN + 9);
        enc.extend_from_slice(&self.index.to_be_bytes());
        enc.extend_from_slice(self.low_commitment.as_bytes());
        enc.extend_from_slice(self.next_hash.as_bytes());
        match &self.disclosed_high {
            Some((i, k)) => {
                enc.push(1);
                enc.extend_from_slice(&i.to_be_bytes());
                enc.extend_from_slice(k.as_bytes());
            }
            None => enc.push(0),
        }
        enc.extend_from_slice(self.mac.as_bytes());
        Key::derive(b"edrp/cdm-hash", &enc)
    }

    /// Airtime size in bits (adds one hash to the multi-level CDM).
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        let mut bits = dap_crypto::sizes::INDEX_BITS
            + 2 * dap_crypto::sizes::KEY_BITS
            + dap_crypto::sizes::MAC_BITS;
        if self.disclosed_high.is_some() {
            bits += dap_crypto::sizes::INDEX_BITS + dap_crypto::sizes::KEY_BITS;
        }
        bits
    }
}

/// The base-station side: a [`MultiLevelSender`] whose CDM stream is
/// precomputed back-to-front so each CDM can embed the hash of the next.
#[derive(Debug, Clone)]
pub struct EdrpSender {
    ml: MultiLevelSender,
    cdms: Vec<EdrpCdm>,
}

impl EdrpSender {
    /// Creates a sender; CDMs are precomputed for the whole horizon.
    #[must_use]
    pub fn new(seed: &[u8], params: MultiLevelParams) -> Self {
        let ml = MultiLevelSender::new(seed, params);
        // Determine how many CDMs exist (commitment for i+2 must exist).
        let mut bodies = Vec::new();
        for i in 1.. {
            match ml.cdm(i) {
                Some(c) => bodies.push(c),
                None => break,
            }
        }
        // Build EDRP CDMs backwards: last one has a zero next-hash.
        let mut cdms: Vec<EdrpCdm> = Vec::with_capacity(bodies.len());
        let mut next_hash = Key::derive(b"edrp/terminal", b"");
        for body in bodies.iter().rev() {
            let key = ml.high_chain_key(body.index).expect("within horizon");
            let mac = mac80(
                &key,
                &EdrpCdm::mac_input(body.index, &body.low_commitment, &next_hash),
            );
            let cdm = EdrpCdm {
                index: body.index,
                low_commitment: body.low_commitment,
                next_hash,
                disclosed_high: body.disclosed_high,
                mac,
            };
            next_hash = cdm.hash();
            cdms.push(cdm);
        }
        cdms.reverse();
        Self { ml, cdms }
    }

    /// Deployment parameters.
    #[must_use]
    pub fn params(&self) -> &MultiLevelParams {
        self.ml.params()
    }

    /// Receiver bootstrap: the multi-level record plus the hash of the
    /// first CDM (so `CDM_1` already authenticates instantly).
    #[must_use]
    pub fn bootstrap(&self) -> EdrpBootstrap {
        EdrpBootstrap {
            ml: self.ml.bootstrap(),
            first_cdm_hash: self.cdms.first().map(EdrpCdm::hash),
        }
    }

    /// `CDM_i`, or `None` past the horizon.
    #[must_use]
    pub fn cdm(&self, i: u64) -> Option<&EdrpCdm> {
        self.cdms.get((i - 1) as usize)
    }

    /// Delegates to [`MultiLevelSender::data_packet`].
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when the indices lie beyond the chain
    /// horizon.
    pub fn data_packet(
        &self,
        high: u64,
        low: u32,
        message: &[u8],
    ) -> Result<LowPacket, ChainExhausted> {
        self.ml.data_packet(high, low, message)
    }

    /// Delegates to [`MultiLevelSender::low_disclosure`].
    #[must_use]
    pub fn low_disclosure(&self, high: u64, low: u32) -> Option<LowKeyDisclosure> {
        self.ml.low_disclosure(high, low)
    }
}

/// EDRP receiver bootstrap.
#[derive(Debug, Clone, PartialEq)]
pub struct EdrpBootstrap {
    /// The underlying multi-level bootstrap.
    pub ml: MlBootstrap,
    /// `H(CDM_1)`, distributed at setup.
    pub first_cdm_hash: Option<Key>,
}

/// How a CDM was (or wasn't) authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdmDisposition {
    /// Matched the stored hash expectation — authenticated on arrival,
    /// zero buffer cost.
    Instant,
    /// An expectation existed but the hash mismatched — forged, rejected
    /// on arrival, zero buffer cost.
    RejectedByHash,
    /// No expectation (previous CDM lost): buffered for delayed MAC
    /// verification.
    Buffered,
    /// Failed the safe-packet test.
    Unsafe,
    /// Duplicate of an already authenticated CDM.
    Duplicate,
}

/// EDRP-specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdrpStats {
    /// CDMs authenticated instantly via the hash chain.
    pub cdm_instant: u64,
    /// Forged CDMs rejected instantly (hash mismatch) — these consumed no
    /// buffer space.
    pub cdm_rejected_by_hash: u64,
    /// CDM copies that had to be buffered (hash expectation missing).
    pub cdm_buffered: u64,
    /// CDMs authenticated through the delayed MAC path.
    pub cdm_delayed: u64,
    /// Buffered copies that failed delayed MAC verification.
    pub cdm_forged_rejected: u64,
}

#[derive(Debug, Clone)]
struct EdrpCandidate {
    cdm: EdrpCdm,
}

/// The receiving side.
#[derive(Debug, Clone)]
pub struct EdrpReceiver {
    inner: MultiLevelReceiver,
    params: MultiLevelParams,
    expected: BTreeMap<u64, Key>,
    authenticated_cdms: BTreeMap<u64, ()>,
    pools: BTreeMap<u64, ReservoirBuffer<EdrpCandidate>>,
    stats: EdrpStats,
}

impl EdrpReceiver {
    /// Bootstraps a receiver.
    #[must_use]
    pub fn new(bootstrap: EdrpBootstrap) -> Self {
        let params = bootstrap.ml.params;
        let mut expected = BTreeMap::new();
        if let Some(h) = bootstrap.first_cdm_hash {
            expected.insert(1, h);
        }
        Self {
            inner: MultiLevelReceiver::new(bootstrap.ml),
            params,
            expected,
            authenticated_cdms: BTreeMap::new(),
            pools: BTreeMap::new(),
            stats: EdrpStats::default(),
        }
    }

    /// EDRP counters.
    #[must_use]
    pub fn stats(&self) -> &EdrpStats {
        &self.stats
    }

    /// The underlying multi-level receiver (authenticated data, recovery
    /// log, …).
    #[must_use]
    pub fn inner(&self) -> &MultiLevelReceiver {
        &self.inner
    }

    /// Processes a CDM; returns its disposition plus any downstream
    /// events (commitments installed, data authenticated, …).
    pub fn on_cdm(
        &mut self,
        cdm: &EdrpCdm,
        local_time: SimTime,
        rng: &mut SimRng,
    ) -> (CdmDisposition, Vec<MlEvent>) {
        let mut events = Vec::new();

        // Hash path first: when an expectation exists, *every* copy is
        // judged by it — forged copies are rejected on arrival even
        // after the genuine CDM already authenticated.
        if let Some(expect) = self.expected.get(&cdm.index).copied() {
            if cdm.hash() != expect {
                // A hash mismatch means the whole message is not the one
                // the sender built; nothing in it is trustworthy.
                self.stats.cdm_rejected_by_hash += 1;
                return (CdmDisposition::RejectedByHash, events);
            }
            if self.authenticated_cdms.contains_key(&cdm.index) {
                // A verbatim re-broadcast of an authenticated CDM; still
                // harvest the key disclosure (idempotent).
                if let Some((i, k)) = &cdm.disclosed_high {
                    events.extend(self.inner.accept_high_key_external(*i, k, local_time));
                }
                return (CdmDisposition::Duplicate, events);
            }
            self.stats.cdm_instant += 1;
            events.extend(self.authenticate_cdm(cdm, local_time));
            return (CdmDisposition::Instant, events);
        }

        if self.authenticated_cdms.contains_key(&cdm.index) {
            // Authenticated through the delayed path (no expectation was
            // armed); treat further copies as duplicates.
            if let Some((i, k)) = &cdm.disclosed_high {
                events.extend(self.inner.accept_high_key_external(*i, k, local_time));
            }
            return (CdmDisposition::Duplicate, events);
        }

        // Delayed path: buffer under the safe-packet test.
        if !self.params.high_safety().is_safe(cdm.index, local_time) {
            if let Some((i, k)) = &cdm.disclosed_high {
                events.extend(self.inner.accept_high_key_external(*i, k, local_time));
                self.verify_buffered(local_time, &mut events);
            }
            return (CdmDisposition::Unsafe, events);
        }
        self.stats.cdm_buffered += 1;
        self.pools
            .entry(cdm.index)
            .or_insert_with(|| ReservoirBuffer::new(self.params.cdm_buffers))
            .offer(EdrpCandidate { cdm: cdm.clone() }, rng);

        if let Some((i, k)) = &cdm.disclosed_high {
            events.extend(self.inner.accept_high_key_external(*i, k, local_time));
            self.verify_buffered(local_time, &mut events);
        }
        (CdmDisposition::Buffered, events)
    }

    /// Delegates to the multi-level data path.
    pub fn on_low_packet(&mut self, packet: &LowPacket, local_time: SimTime) -> Vec<MlEvent> {
        self.inner.on_low_packet(packet, local_time)
    }

    /// Delegates to the multi-level disclosure path.
    pub fn on_low_disclosure(
        &mut self,
        disclosure: &LowKeyDisclosure,
        local_time: SimTime,
    ) -> Vec<MlEvent> {
        self.inner.on_low_disclosure(disclosure, local_time)
    }

    /// Marks a CDM authentic: install its commitment, arm the hash
    /// expectation for the next CDM, harvest its key disclosure.
    fn authenticate_cdm(&mut self, cdm: &EdrpCdm, local_time: SimTime) -> Vec<MlEvent> {
        let mut events = Vec::new();
        self.authenticated_cdms.insert(cdm.index, ());
        self.expected.insert(cdm.index + 1, cdm.next_hash);
        self.pools.remove(&cdm.index);
        events.push(MlEvent::CdmAuthenticated { index: cdm.index });
        events.extend(self.inner.install_commitment_external(
            cdm.index + 2,
            cdm.low_commitment,
            0,
            CommitmentSource::Cdm,
        ));
        if let Some((i, k)) = &cdm.disclosed_high {
            events.extend(self.inner.accept_high_key_external(*i, k, local_time));
            self.verify_buffered(local_time, &mut events);
        }
        events
    }

    /// Delayed MAC verification of buffered CDMs whose key is now known.
    fn verify_buffered(&mut self, local_time: SimTime, events: &mut Vec<MlEvent>) {
        let ready: Vec<u64> = self
            .pools
            .keys()
            .copied()
            .filter(|v| self.inner.high_key_at(*v).is_some())
            .collect();
        for v in ready {
            // A nested authenticate_cdm may already have consumed this
            // pool (or advanced past it); skip in that case.
            let Some(pool) = self.pools.remove(&v) else {
                continue;
            };
            let Some(key) = self.inner.high_key_at(v) else {
                self.pools.insert(v, pool);
                continue;
            };
            let mut winner: Option<EdrpCdm> = None;
            for cand in pool.iter() {
                let input = EdrpCdm::mac_input(v, &cand.cdm.low_commitment, &cand.cdm.next_hash);
                if verify_mac80(&key, &input, &cand.cdm.mac) {
                    if winner.is_none() {
                        winner = Some(cand.cdm.clone());
                    }
                } else {
                    self.stats.cdm_forged_rejected += 1;
                }
            }
            if let Some(cdm) = winner {
                self.stats.cdm_delayed += 1;
                events.extend(self.authenticate_cdm(&cdm, local_time));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::Linkage;
    use dap_simnet::SimDuration;

    fn params() -> MultiLevelParams {
        MultiLevelParams::new(SimDuration(25), 4, 16, 3, Linkage::Eftp)
    }

    fn setup() -> (EdrpSender, EdrpReceiver, SimRng) {
        let sender = EdrpSender::new(b"edrp-base", params());
        let receiver = EdrpReceiver::new(sender.bootstrap());
        (sender, receiver, SimRng::new(11))
    }

    fn at(p: &MultiLevelParams, high: u64, low: u32) -> SimTime {
        SimTime((p.global_low_index(high, low) - 1) * p.low_interval.ticks() + 2)
    }

    #[test]
    fn cdm_hash_chain_is_consistent() {
        let (sender, _, _) = setup();
        for i in 1..=10u64 {
            let this = sender.cdm(i).unwrap();
            let next = sender.cdm(i + 1).unwrap();
            assert_eq!(this.next_hash, next.hash(), "CDM_{i} → CDM_{}", i + 1);
        }
    }

    #[test]
    fn first_cdm_authenticates_instantly() {
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        let (disp, events) = receiver.on_cdm(sender.cdm(1).unwrap(), at(&p, 1, 1), &mut rng);
        assert_eq!(disp, CdmDisposition::Instant);
        assert!(events.contains(&MlEvent::CdmAuthenticated { index: 1 }));
        assert!(receiver.inner().has_commitment(3));
        assert_eq!(receiver.stats().cdm_instant, 1);
    }

    #[test]
    fn unbroken_chain_stays_instant() {
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        for i in 1..=8u64 {
            let (disp, _) = receiver.on_cdm(sender.cdm(i).unwrap(), at(&p, i, 1), &mut rng);
            assert_eq!(disp, CdmDisposition::Instant, "CDM_{i}");
        }
        assert_eq!(receiver.stats().cdm_instant, 8);
        assert_eq!(receiver.stats().cdm_buffered, 0);
    }

    #[test]
    fn forged_cdm_rejected_instantly_with_zero_buffer_cost() {
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        receiver.on_cdm(sender.cdm(1).unwrap(), at(&p, 1, 1), &mut rng);
        // Flood with forged CDM_2 copies.
        for _ in 0..50 {
            let mut forged = sender.cdm(2).unwrap().clone();
            forged.low_commitment = Key::random(&mut rng);
            let (disp, _) = receiver.on_cdm(&forged, at(&p, 2, 1), &mut rng);
            assert_eq!(disp, CdmDisposition::RejectedByHash);
        }
        assert_eq!(receiver.stats().cdm_rejected_by_hash, 50);
        assert_eq!(receiver.stats().cdm_buffered, 0);
        // The genuine CDM_2 still lands instantly.
        let (disp, _) = receiver.on_cdm(sender.cdm(2).unwrap(), at(&p, 2, 1), &mut rng);
        assert_eq!(disp, CdmDisposition::Instant);
    }

    #[test]
    fn lost_cdm_falls_back_to_delayed_and_rearms() {
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        receiver.on_cdm(sender.cdm(1).unwrap(), at(&p, 1, 1), &mut rng);
        // CDM_2 lost entirely. CDM_3 arrives: no expectation → buffered.
        let (disp, _) = receiver.on_cdm(sender.cdm(3).unwrap(), at(&p, 3, 1), &mut rng);
        assert_eq!(disp, CdmDisposition::Buffered);
        // The first CDM_4 copy has no expectation yet either, but it
        // discloses K_3 → the buffered CDM_3 MAC-verifies → the
        // expectation for CDM_4 is armed. That is too late for this copy
        // (already buffered), but CDMs are broadcast in multiple copies
        // per interval precisely for loss/DoS resistance — the *second*
        // copy of CDM_4 authenticates instantly and re-arms the chain.
        let (disp4, _) = receiver.on_cdm(sender.cdm(4).unwrap(), at(&p, 4, 1), &mut rng);
        assert_eq!(disp4, CdmDisposition::Buffered);
        assert_eq!(receiver.stats().cdm_delayed, 1, "CDM_3 delayed-verified");
        let (disp4b, _) = receiver.on_cdm(sender.cdm(4).unwrap(), at(&p, 4, 2), &mut rng);
        assert_eq!(disp4b, CdmDisposition::Instant, "second copy is instant");
        let (disp5, _) = receiver.on_cdm(sender.cdm(5).unwrap(), at(&p, 5, 1), &mut rng);
        assert_eq!(disp5, CdmDisposition::Instant, "hash chain re-armed");
    }

    #[test]
    fn duplicate_cdm_detected() {
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        receiver.on_cdm(sender.cdm(1).unwrap(), at(&p, 1, 1), &mut rng);
        let (disp, _) = receiver.on_cdm(sender.cdm(1).unwrap(), at(&p, 1, 1), &mut rng);
        assert_eq!(disp, CdmDisposition::Duplicate);
        assert_eq!(receiver.stats().cdm_instant, 1);
    }

    #[test]
    fn data_path_works_through_edrp() {
        let (sender, mut receiver, _rng) = setup();
        let p = *sender.params();
        receiver.on_low_packet(&sender.data_packet(1, 1, b"reading").unwrap(), at(&p, 1, 1));
        let events =
            receiver.on_low_disclosure(&sender.low_disclosure(1, 2).unwrap(), at(&p, 1, 2));
        assert!(events.iter().any(|e| matches!(
            e,
            MlEvent::LowAuthenticated {
                high: 1,
                low: 1,
                ..
            }
        )));
        assert_eq!(receiver.inner().stats().low_authenticated, 1);
    }

    #[test]
    fn continuity_under_loss_and_flood_beats_buffering_alone() {
        // With the chain intact up to CDM_1 and heavy flooding of later
        // CDMs, EDRP authenticates every genuine CDM instantly; the
        // flood never reaches a buffer.
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        for i in 1..=6u64 {
            for _ in 0..30 {
                let mut forged = sender.cdm(i).unwrap().clone();
                forged.low_commitment = Key::random(&mut rng);
                receiver.on_cdm(&forged, at(&p, i, 1), &mut rng);
            }
            let (disp, _) = receiver.on_cdm(sender.cdm(i).unwrap(), at(&p, i, 1), &mut rng);
            assert_eq!(disp, CdmDisposition::Instant, "CDM_{i}");
        }
        assert_eq!(receiver.stats().cdm_rejected_by_hash, 180);
        assert_eq!(receiver.stats().cdm_buffered, 0);
    }

    #[test]
    fn stale_cdm_unsafe_on_delayed_path() {
        let (sender, mut receiver, mut rng) = setup();
        let p = *sender.params();
        // No expectation for CDM_2 (CDM_1 lost); receive CDM_2 during
        // interval 3 → its key may be out → unsafe.
        let (disp, _) = receiver.on_cdm(sender.cdm(2).unwrap(), at(&p, 3, 1), &mut rng);
        assert_eq!(disp, CdmDisposition::Unsafe);
    }

    #[test]
    fn edrp_cdm_size_adds_one_hash() {
        let (sender, _, _) = setup();
        let c1 = sender.cdm(1).unwrap();
        assert_eq!(c1.size_bits(), 32 + 80 + 80 + 80);
        let c2 = sender.cdm(2).unwrap();
        assert_eq!(c2.size_bits(), 32 + 80 + 80 + 80 + 32 + 80);
    }
}
