//! [`dap_simnet`] adapters for the two-level protocols: multi-level
//! μTESLA (with either linkage) and EDRP, plus a CDM-flooding adversary.
//!
//! These run the full CDM + data + disclosure schedule on the event loop,
//! so experiments can combine bursty channel loss, clock skew and CDM
//! floods — the conditions under which EFTP's recovery and EDRP's hash
//! chain earn their keep.

use std::any::Any;

use dap_crypto::{Key, Mac80};
use dap_simnet::{keys, Context, Frame, Node, SimDuration, TimerToken};

use crate::edrp::{EdrpCdm, EdrpReceiver, EdrpSender};
use crate::multilevel::{
    Cdm, LowKeyDisclosure, LowPacket, MlEvent, MultiLevelParams, MultiLevelReceiver,
    MultiLevelSender,
};

/// Wire type for multi-level μTESLA networks (EDRP reuses the data and
/// disclosure frames and adds its own CDM).
#[derive(Debug, Clone, PartialEq)]
pub enum MlNet {
    /// A commitment distribution message (possibly forged).
    Cdm(Cdm),
    /// An EDRP commitment distribution message (possibly forged).
    EdrpCdm(EdrpCdm),
    /// A low-level data packet.
    Low(LowPacket),
    /// A low-level key disclosure.
    LowKey(LowKeyDisclosure),
}

impl MlNet {
    /// Airtime size in bits.
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        match self {
            MlNet::Cdm(c) => c.size_bits(),
            MlNet::EdrpCdm(c) => c.size_bits(),
            MlNet::Low(p) => {
                (p.message.len() as u32) * 8
                    + dap_crypto::sizes::MAC_BITS
                    + 2 * dap_crypto::sizes::INDEX_BITS
            }
            MlNet::LowKey(_) => dap_crypto::sizes::KEY_BITS + 2 * dap_crypto::sizes::INDEX_BITS,
        }
    }
}

/// Which CDM flavour a sender node broadcasts.
#[derive(Debug)]
enum SenderFlavor {
    MultiLevel(MultiLevelSender),
    Edrp(EdrpSender),
}

/// Broadcasts the full two-level schedule: `cdm_copies` CDMs at the start
/// of each high-level interval, one data packet per low-level interval,
/// and the per-low-interval key disclosure.
#[derive(Debug)]
pub struct MlSenderNode {
    flavor: SenderFlavor,
    params: MultiLevelParams,
    cdm_copies: u32,
    tick: u64, // global low interval counter
    horizon_high: u64,
    payload: Vec<u8>,
}

impl MlSenderNode {
    /// A multi-level μTESLA sender node (the linkage comes from the
    /// sender's params).
    #[must_use]
    pub fn multilevel(sender: MultiLevelSender, cdm_copies: u32, payload: Vec<u8>) -> Self {
        let params = *sender.params();
        Self {
            flavor: SenderFlavor::MultiLevel(sender),
            params,
            cdm_copies,
            tick: 0,
            horizon_high: params.high_chain_len as u64,
            payload,
        }
    }

    /// An EDRP sender node.
    #[must_use]
    pub fn edrp(sender: EdrpSender, cdm_copies: u32, payload: Vec<u8>) -> Self {
        let params = *sender.params();
        Self {
            flavor: SenderFlavor::Edrp(sender),
            params,
            cdm_copies,
            tick: 0,
            horizon_high: params.high_chain_len as u64,
            payload,
        }
    }

    fn emit(&self, ctx: &mut Context<'_, MlNet>, high: u64, low: u32) {
        if low == 1 {
            for _ in 0..self.cdm_copies {
                match &self.flavor {
                    SenderFlavor::MultiLevel(s) => {
                        if let Some(cdm) = s.cdm(high) {
                            let bits = cdm.size_bits();
                            ctx.metrics().incr(keys::ML_SENDER_CDM);
                            ctx.broadcast(MlNet::Cdm(cdm), bits);
                        }
                    }
                    SenderFlavor::Edrp(s) => {
                        if let Some(cdm) = s.cdm(high) {
                            let bits = cdm.size_bits();
                            ctx.metrics().incr(keys::ML_SENDER_CDM);
                            ctx.broadcast(MlNet::EdrpCdm(cdm.clone()), bits);
                        }
                    }
                }
            }
        }
        let mut message = self.payload.clone();
        message.extend_from_slice(&high.to_be_bytes());
        message.push(low as u8);
        let (packet, disclosure) = match &self.flavor {
            SenderFlavor::MultiLevel(s) => (
                s.data_packet(high, low, &message).ok(),
                s.low_disclosure(high, low),
            ),
            SenderFlavor::Edrp(s) => (
                s.data_packet(high, low, &message).ok(),
                s.low_disclosure(high, low),
            ),
        };
        if let Some(packet) = packet {
            let bits = MlNet::Low(packet.clone()).size_bits();
            ctx.metrics().incr(keys::ML_SENDER_DATA);
            ctx.broadcast(MlNet::Low(packet), bits);
        } else {
            ctx.metrics().incr(keys::ML_SENDER_EXHAUSTED);
        }
        if let Some(d) = disclosure {
            let bits = MlNet::LowKey(d).size_bits();
            ctx.metrics().incr(keys::ML_SENDER_DISCLOSURE);
            ctx.broadcast(MlNet::LowKey(d), bits);
        }
    }
}

impl Node<MlNet> for MlSenderNode {
    fn on_start(&mut self, ctx: &mut Context<'_, MlNet>) {
        ctx.set_timer(SimDuration(1), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, MlNet>, _timer: TimerToken) {
        self.tick += 1;
        let (high, low) = self.params.split_low_index(self.tick);
        if high > self.horizon_high {
            return;
        }
        self.emit(ctx, high, low);
        ctx.set_timer(self.params.low_interval, TimerToken(0));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A multi-level μTESLA receiver node.
#[derive(Debug)]
pub struct MlReceiverNode {
    receiver: MultiLevelReceiver,
}

impl MlReceiverNode {
    /// Bootstraps the node.
    #[must_use]
    pub fn new(receiver: MultiLevelReceiver) -> Self {
        Self { receiver }
    }

    /// The protocol state.
    #[must_use]
    pub fn receiver(&self) -> &MultiLevelReceiver {
        &self.receiver
    }
}

fn count_events(ctx: &mut Context<'_, MlNet>, events: &[MlEvent]) {
    for e in events {
        let name = match e {
            MlEvent::CdmUnsafe { .. } => keys::ML_RX_CDM_UNSAFE,
            MlEvent::HighKeyAccepted { .. } => keys::ML_RX_HIGH_KEY_ACCEPTED,
            MlEvent::HighKeyRejected { .. } => keys::ML_RX_HIGH_KEY_REJECTED,
            MlEvent::CdmAuthenticated { .. } => keys::ML_RX_CDM_AUTHENTICATED,
            MlEvent::CommitmentInstalled { .. } => keys::ML_RX_COMMITMENT_INSTALLED,
            MlEvent::LowAuthenticated { .. } => keys::ML_RX_LOW_AUTHENTICATED,
            MlEvent::LowRejected { .. } => keys::ML_RX_LOW_REJECTED,
            MlEvent::LowUnsafe { .. } => keys::ML_RX_LOW_UNSAFE,
        };
        ctx.metrics().incr(name);
    }
}

impl Node<MlNet> for MlReceiverNode {
    fn on_frame(&mut self, ctx: &mut Context<'_, MlNet>, frame: &Frame<MlNet>) {
        let t = ctx.local_time();
        let events = match &frame.message {
            MlNet::Cdm(cdm) => {
                let rng = ctx.rng();
                self.receiver.on_cdm(cdm, t, rng)
            }
            MlNet::Low(p) => self.receiver.on_low_packet(p, t),
            MlNet::LowKey(d) => self.receiver.on_low_disclosure(d, t),
            MlNet::EdrpCdm(_) => Vec::new(), // not our protocol; ignore
        };
        count_events(ctx, &events);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An EDRP receiver node.
#[derive(Debug)]
pub struct EdrpReceiverNode {
    receiver: EdrpReceiver,
}

impl EdrpReceiverNode {
    /// Bootstraps the node.
    #[must_use]
    pub fn new(receiver: EdrpReceiver) -> Self {
        Self { receiver }
    }

    /// The protocol state.
    #[must_use]
    pub fn receiver(&self) -> &EdrpReceiver {
        &self.receiver
    }
}

impl Node<MlNet> for EdrpReceiverNode {
    fn on_frame(&mut self, ctx: &mut Context<'_, MlNet>, frame: &Frame<MlNet>) {
        let t = ctx.local_time();
        let events = match &frame.message {
            MlNet::EdrpCdm(cdm) => {
                let rng = ctx.rng();
                let (_disposition, events) = self.receiver.on_cdm(cdm, t, rng);
                events
            }
            MlNet::Low(p) => self.receiver.on_low_packet(p, t),
            MlNet::LowKey(d) => self.receiver.on_low_disclosure(d, t),
            MlNet::Cdm(_) => Vec::new(),
        };
        count_events(ctx, &events);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Floods forged CDMs (random commitments and MACs) for the current
/// high-level interval, for both CDM flavours.
#[derive(Debug)]
pub struct CdmFloodAttacker {
    params: MultiLevelParams,
    copies_per_interval: u32,
    edrp: bool,
    interval: u64,
}

impl CdmFloodAttacker {
    /// An attacker flooding plain multi-level CDMs.
    #[must_use]
    pub fn new(params: MultiLevelParams, copies_per_interval: u32) -> Self {
        Self {
            params,
            copies_per_interval,
            edrp: false,
            interval: 0,
        }
    }

    /// An attacker flooding EDRP-shaped CDMs.
    #[must_use]
    pub fn edrp(params: MultiLevelParams, copies_per_interval: u32) -> Self {
        Self {
            params,
            copies_per_interval,
            edrp: true,
            interval: 0,
        }
    }
}

impl Node<MlNet> for CdmFloodAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_, MlNet>) {
        ctx.set_timer(SimDuration(2), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, MlNet>, _timer: TimerToken) {
        self.interval += 1;
        if self.interval > self.params.high_chain_len as u64 {
            return;
        }
        for _ in 0..self.copies_per_interval {
            let commitment = Key::random(ctx.rng());
            let mut mac_bytes = [0u8; Mac80::LEN];
            ctx.rng().fill_bytes(&mut mac_bytes);
            let mac = Mac80::from_slice(&mac_bytes).expect("fixed length");
            let msg = if self.edrp {
                MlNet::EdrpCdm(EdrpCdm {
                    index: self.interval,
                    low_commitment: commitment,
                    next_hash: Key::random(ctx.rng()),
                    disclosed_high: None,
                    mac,
                })
            } else {
                MlNet::Cdm(Cdm {
                    index: self.interval,
                    low_commitment: commitment,
                    mac,
                    disclosed_high: None,
                })
            };
            let bits = msg.size_bits();
            ctx.metrics().incr(keys::ML_ATTACKER_FORGED_CDM);
            ctx.broadcast(msg, bits);
        }
        ctx.set_timer(self.params.high_interval(), TimerToken(0));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::Linkage;
    use dap_simnet::{ChannelModel, Network, SimTime};

    fn params(linkage: Linkage) -> MultiLevelParams {
        MultiLevelParams::new(SimDuration(25), 4, 20, 3, linkage)
    }

    #[test]
    fn multilevel_network_authenticates_data() {
        let p = params(Linkage::Eftp);
        let sender = MultiLevelSender::new(b"net-ml", p);
        let bootstrap = sender.bootstrap();
        let mut net: Network<MlNet> = Network::new(1);
        net.add_node(
            MlSenderNode::multilevel(sender, 2, b"m".to_vec()),
            ChannelModel::perfect(),
        );
        let rx = net.add_node(
            MlReceiverNode::new(MultiLevelReceiver::new(bootstrap)),
            ChannelModel::perfect(),
        );
        net.run_until(SimTime(22 * 100));
        let node = net.node_as::<MlReceiverNode>(rx).unwrap();
        let stats = node.receiver().stats();
        // 20 high intervals × 4 low packets, minus the last disclosure lag.
        assert!(stats.low_authenticated >= 75, "{stats:?}");
        assert_eq!(stats.low_rejected, 0, "{stats:?}");
        assert!(stats.cdm_authenticated >= 18, "{stats:?}");
    }

    #[test]
    fn edrp_network_instant_under_flood() {
        let p = params(Linkage::Eftp);
        let sender = EdrpSender::new(b"net-edrp", p);
        let bootstrap = sender.bootstrap();
        let mut net: Network<MlNet> = Network::new(2);
        net.add_node(
            MlSenderNode::edrp(sender, 1, b"m".to_vec()),
            ChannelModel::perfect(),
        );
        net.add_node(CdmFloodAttacker::edrp(p, 10), ChannelModel::perfect());
        let rx = net.add_node(
            EdrpReceiverNode::new(EdrpReceiver::new(bootstrap)),
            ChannelModel::perfect(),
        );
        net.run_until(SimTime(22 * 100));
        let node = net.node_as::<EdrpReceiverNode>(rx).unwrap();
        let stats = node.receiver().stats();
        assert!(stats.cdm_instant >= 19, "{stats:?}");
        // Forged EDRP CDMs rejected by hash, never buffered.
        assert!(stats.cdm_rejected_by_hash > 150, "{stats:?}");
        assert_eq!(stats.cdm_buffered, 0, "{stats:?}");
        assert!(node.receiver().inner().stats().low_authenticated >= 75);
    }

    #[test]
    fn bursty_cdm_loss_recovered_through_linkage() {
        // A Gilbert-Elliott channel wipes out whole stretches of CDMs;
        // EFTP's chain recovery keeps the data flowing.
        let p = params(Linkage::Eftp);
        let sender = MultiLevelSender::new(b"net-burst", p);
        let bootstrap = sender.bootstrap();
        let mut net: Network<MlNet> = Network::new(3);
        net.add_node(
            MlSenderNode::multilevel(sender, 1, b"m".to_vec()),
            ChannelModel::perfect(),
        );
        let rx = net.add_node(
            MlReceiverNode::new(MultiLevelReceiver::new(bootstrap)),
            // Bad state loses everything; dwell ~5 frames.
            ChannelModel::perfect().with_burst_loss(0.05, 0.2, 1.0),
        );
        net.run_until(SimTime(22 * 100));
        let node = net.node_as::<MlReceiverNode>(rx).unwrap();
        let stats = node.receiver().stats();
        assert!(
            stats.chain_recoveries > 0 || stats.cdm_authenticated >= 18,
            "burst loss should trigger recoveries or be absorbed: {stats:?}"
        );
        // Data still flows despite the bursts.
        assert!(stats.low_authenticated > 30, "{stats:?}");
        assert_eq!(stats.low_rejected, 0);
    }

    #[test]
    fn flooded_multilevel_loses_cdms_but_recovers_chains() {
        let p = params(Linkage::Eftp);
        let sender = MultiLevelSender::new(b"net-flood", p);
        let bootstrap = sender.bootstrap();
        let mut net: Network<MlNet> = Network::new(4);
        net.add_node(
            MlSenderNode::multilevel(sender, 1, b"m".to_vec()),
            ChannelModel::perfect(),
        );
        net.add_node(CdmFloodAttacker::new(p, 20), ChannelModel::perfect());
        let rx = net.add_node(
            MlReceiverNode::new(MultiLevelReceiver::new(bootstrap)),
            ChannelModel::perfect(),
        );
        net.run_until(SimTime(22 * 100));
        let node = net.node_as::<MlReceiverNode>(rx).unwrap();
        let stats = node.receiver().stats();
        // The flood crowds genuine CDMs out of the 3-buffer pool...
        assert!(stats.cdm_authenticated < 15, "{stats:?}");
        // ...but the F01 linkage recovers the missing chains and data
        // still authenticates.
        assert!(stats.chain_recoveries > 0, "{stats:?}");
        assert!(stats.low_authenticated > 60, "{stats:?}");
    }

    #[test]
    fn frame_sizes_cover_all_variants() {
        let p = params(Linkage::Eftp);
        let sender = MultiLevelSender::new(b"sz", p);
        let cdm = sender.cdm(2).unwrap();
        assert!(MlNet::Cdm(cdm).size_bits() > 0);
        let esender = EdrpSender::new(b"sz", p);
        assert!(MlNet::EdrpCdm(esender.cdm(2).unwrap().clone()).size_bits() > 0);
        let pkt = sender.data_packet(1, 1, b"abc").unwrap();
        assert_eq!(MlNet::Low(pkt).size_bits(), 24 + 80 + 64);
        let d = sender.low_disclosure(1, 2).unwrap();
        assert_eq!(MlNet::LowKey(d).size_bits(), 80 + 64);
    }
}
