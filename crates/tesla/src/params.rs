//! Shared protocol parameters and the TESLA safe-packet test.

use dap_simnet::{IntervalSchedule, SimDuration, SimTime};

/// Parameters common to every single-level TESLA variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeslaParams {
    /// The interval grid packets and keys live on.
    pub schedule: IntervalSchedule,
    /// Key disclosure delay `d` in intervals: `K_i` becomes public in
    /// interval `i + d`.
    pub disclosure_delay: u64,
    /// The loose-synchronisation bound `Δ` in ticks: a receiver's clock
    /// is never more than `Δ` away from the sender's.
    pub max_clock_offset: u64,
}

impl TeslaParams {
    /// Convenience constructor starting the grid at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (via [`IntervalSchedule::new`]) or if
    /// `disclosure_delay == 0` — with `d = 0` the key for an interval is
    /// public during the interval itself and authentication is void.
    #[must_use]
    pub fn new(interval: SimDuration, disclosure_delay: u64, max_clock_offset: u64) -> Self {
        assert!(
            disclosure_delay >= 1,
            "disclosure delay must be at least 1 interval"
        );
        Self {
            schedule: IntervalSchedule::new(SimTime::ZERO, interval),
            disclosure_delay,
            max_clock_offset,
        }
    }

    /// The safe-packet test for these parameters.
    #[must_use]
    pub fn safety(&self) -> SafetyCheck {
        SafetyCheck {
            schedule: self.schedule,
            disclosure_delay: self.disclosure_delay,
            max_clock_offset: self.max_clock_offset,
        }
    }
}

/// The TESLA *safe packet test*.
///
/// A buffered packet claiming interval `i` is only useful if the sender
/// cannot have disclosed `K_i` yet — otherwise an attacker may already
/// know the key. The sender discloses `K_i` at the start of interval
/// `i + d`. A receiver reading local clock `t` knows the sender's clock
/// is at most `t + Δ`, so the packet is **safe** iff
///
/// ```text
/// interval_at(t + Δ) < i + d
/// ```
///
/// (The paper's Algorithm 2 writes the discard condition as
/// `i + d < x`; the `≤`-boundary and the `Δ` shift here make the check
/// sound under worst-case skew, which Algorithm 2 leaves implicit in its
/// "loose time synchronisation".)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyCheck {
    /// Interval grid.
    pub schedule: IntervalSchedule,
    /// Disclosure delay `d`.
    pub disclosure_delay: u64,
    /// Synchronisation bound `Δ`.
    pub max_clock_offset: u64,
}

impl SafetyCheck {
    /// `true` iff a packet claiming `claimed_index` received at local
    /// time `local_time` is safe to buffer.
    #[must_use]
    pub fn is_safe(&self, claimed_index: u64, local_time: SimTime) -> bool {
        let latest_sender_interval = self
            .schedule
            .index_at(local_time + SimDuration(self.max_clock_offset));
        latest_sender_interval < claimed_index + self.disclosure_delay
    }

    /// `true` iff the key for `index` is certainly already disclosed at
    /// `local_time` (used by receivers to decide a buffered packet can
    /// never be authenticated and should be garbage-collected).
    #[must_use]
    pub fn surely_disclosed(&self, index: u64, local_time: SimTime) -> bool {
        // The sender's clock is at least local_time − Δ.
        let earliest_sender_interval = self.schedule.index_at(SimTime(
            local_time.ticks().saturating_sub(self.max_clock_offset),
        ));
        earliest_sender_interval >= index + self.disclosure_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TeslaParams {
        // 100-tick intervals, d = 2, Δ = 30.
        TeslaParams::new(SimDuration(100), 2, 30)
    }

    #[test]
    fn packet_from_current_interval_is_safe() {
        let s = params().safety();
        // t = 150 → interval 2; packet claims interval 2; key K_2 comes
        // at interval 4.
        assert!(s.is_safe(2, SimTime(150)));
    }

    #[test]
    fn packet_is_unsafe_once_key_could_be_out() {
        let s = params().safety();
        // Key K_1 is disclosed at interval 3 (t = 200). At local t = 180
        // the sender might already be at t = 210 → interval 3 → unsafe.
        assert!(!s.is_safe(1, SimTime(180)));
        // At local t = 150 the sender is at most at 180 → interval 2 →
        // still safe.
        assert!(s.is_safe(1, SimTime(150)));
    }

    #[test]
    fn skew_bound_shrinks_the_safe_window() {
        let tight = TeslaParams::new(SimDuration(100), 2, 0).safety();
        let loose = TeslaParams::new(SimDuration(100), 2, 90).safety();
        // t = 190: interval 2. With Δ=0 a packet for interval 1 is safe
        // (disclosure at interval 3); with Δ=90 the sender may already be
        // in interval 3.
        assert!(tight.is_safe(1, SimTime(190)));
        assert!(!loose.is_safe(1, SimTime(190)));
    }

    #[test]
    fn surely_disclosed_is_conservative() {
        let s = params().safety();
        // K_1 disclosed at interval 3 start (t=200). With Δ=30 we are only
        // *sure* once local time ≥ 230.
        assert!(!s.surely_disclosed(1, SimTime(210)));
        assert!(s.surely_disclosed(1, SimTime(230)));
    }

    #[test]
    fn future_packets_are_safe() {
        let s = params().safety();
        assert!(s.is_safe(100, SimTime(0)));
    }

    #[test]
    #[should_panic(expected = "disclosure delay")]
    fn zero_delay_panics() {
        let _ = TeslaParams::new(SimDuration(100), 0, 0);
    }

    #[test]
    fn safe_and_surely_disclosed_never_overlap() {
        let s = params().safety();
        for idx in 1..20u64 {
            for t in (0..3000).step_by(37) {
                let time = SimTime(t);
                assert!(
                    !(s.is_safe(idx, time) && s.surely_disclosed(idx, time)),
                    "index {idx} at t={t} both safe and disclosed"
                );
            }
        }
    }
}
