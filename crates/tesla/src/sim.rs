//! Adapters running the TESLA state machines inside the [`dap_simnet`]
//! event loop: a periodic sender, receiver nodes, and a flooding
//! adversary.
//!
//! These are used by the integration tests and the `recovery` experiment
//! to exercise the protocols under lossy channels and DoS floods with
//! realistic timing, rather than the hand-fed timelines of the unit
//! tests.

use std::any::Any;

use dap_crypto::Mac80;
use dap_simnet::{keys, Context, FloodIntensity, Frame, Node, SimDuration, TimerToken};

use crate::tesla::{
    Bootstrap, DisclosedKey, ReceiverEvent, TeslaPacket, TeslaReceiver, TeslaSender,
};

/// Wire type for TESLA networks.
#[derive(Debug, Clone, PartialEq)]
pub enum TeslaNet {
    /// A (possibly forged) TESLA packet.
    Packet(TeslaPacket),
}

/// Broadcasts `messages_per_interval` authenticated packets in every
/// interval up to the chain horizon.
#[derive(Debug)]
pub struct TeslaSenderNode {
    sender: TeslaSender,
    messages_per_interval: u32,
    interval: u64,
    payload: Vec<u8>,
}

impl TeslaSenderNode {
    /// Creates the node; `payload` is the message body template (the
    /// interval number is appended to make each message distinct).
    #[must_use]
    pub fn new(sender: TeslaSender, messages_per_interval: u32, payload: Vec<u8>) -> Self {
        Self {
            sender,
            messages_per_interval,
            interval: 0,
            payload,
        }
    }

    fn interval_len(&self) -> SimDuration {
        self.sender.bootstrap().params.schedule.interval()
    }
}

impl Node<TeslaNet> for TeslaSenderNode {
    fn on_start(&mut self, ctx: &mut Context<'_, TeslaNet>) {
        ctx.set_timer(SimDuration(1), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TeslaNet>, _timer: TimerToken) {
        self.interval += 1;
        if self.interval > self.sender.horizon() {
            return;
        }
        for copy in 0..self.messages_per_interval {
            let mut message = self.payload.clone();
            message.extend_from_slice(&self.interval.to_be_bytes());
            message.push(copy as u8);
            // The horizon guard above makes exhaustion unreachable, but a
            // fault plan may still perturb scheduling — degrade to silence
            // rather than crash the node.
            let Ok(packet) = self.sender.packet(self.interval, &message) else {
                ctx.metrics().incr(keys::TESLA_SENDER_EXHAUSTED);
                return;
            };
            let bits = packet.size_bits();
            ctx.metrics().incr(keys::TESLA_SENDER_PACKETS);
            ctx.broadcast(TeslaNet::Packet(packet), bits);
        }
        ctx.set_timer(self.interval_len(), TimerToken(0));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A receiver node wrapping [`TeslaReceiver`]; exposes the final protocol
/// state after the run and tracks peak buffer memory.
#[derive(Debug)]
pub struct TeslaReceiverNode {
    receiver: TeslaReceiver,
    peak_buffered_bits: u64,
}

impl TeslaReceiverNode {
    /// Bootstraps the node.
    #[must_use]
    pub fn new(bootstrap: Bootstrap) -> Self {
        Self {
            receiver: TeslaReceiver::new(bootstrap),
            peak_buffered_bits: 0,
        }
    }

    /// The protocol state (authenticated messages etc.).
    #[must_use]
    pub fn receiver(&self) -> &TeslaReceiver {
        &self.receiver
    }

    /// The largest buffer footprint observed, in bits — the memory-DoS
    /// exposure of plain TESLA.
    #[must_use]
    pub fn peak_buffered_bits(&self) -> u64 {
        self.peak_buffered_bits
    }
}

impl Node<TeslaNet> for TeslaReceiverNode {
    fn on_frame(&mut self, ctx: &mut Context<'_, TeslaNet>, frame: &Frame<TeslaNet>) {
        let TeslaNet::Packet(packet) = &frame.message;
        let events = self.receiver.on_packet(packet, ctx.local_time());
        for event in events {
            match event {
                ReceiverEvent::Authenticated { .. } => {
                    ctx.metrics().incr(keys::TESLA_RX_AUTHENTICATED)
                }
                ReceiverEvent::RejectedMac { .. } => {
                    ctx.metrics().incr(keys::TESLA_RX_REJECTED_MAC)
                }
                ReceiverEvent::DiscardedUnsafe { .. } => ctx.metrics().incr(keys::TESLA_RX_UNSAFE),
                ReceiverEvent::KeyAccepted { .. } => {
                    ctx.metrics().incr(keys::TESLA_RX_KEY_ACCEPTED)
                }
                ReceiverEvent::KeyRejected { .. } => {
                    ctx.metrics().incr(keys::TESLA_RX_KEY_REJECTED)
                }
            }
        }
        self.peak_buffered_bits = self.peak_buffered_bits.max(self.receiver.buffered_bits());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Floods forged TESLA packets claiming the current interval: random
/// MACs over attacker-chosen messages, sized so the attacker consumes a
/// `p` fraction of the packet traffic.
#[derive(Debug)]
pub struct TeslaFloodAttacker {
    bootstrap: Bootstrap,
    intensity: FloodIntensity,
    authentic_per_interval: u32,
    horizon: u64,
    interval: u64,
    payload_len: usize,
}

impl TeslaFloodAttacker {
    /// Creates the attacker. `authentic_per_interval` is the legitimate
    /// sender's rate, used to size the flood to the requested bandwidth
    /// fraction.
    #[must_use]
    pub fn new(
        bootstrap: Bootstrap,
        intensity: FloodIntensity,
        authentic_per_interval: u32,
        horizon: u64,
        payload_len: usize,
    ) -> Self {
        Self {
            bootstrap,
            intensity,
            authentic_per_interval,
            horizon,
            interval: 0,
            payload_len,
        }
    }
}

impl Node<TeslaNet> for TeslaFloodAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_, TeslaNet>) {
        // Fire just after the sender each interval.
        ctx.set_timer(SimDuration(2), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TeslaNet>, _timer: TimerToken) {
        self.interval += 1;
        if self.interval > self.horizon {
            return;
        }
        let forged = self
            .intensity
            .forged_copies(u64::from(self.authentic_per_interval));
        for _ in 0..forged {
            let mut message = vec![0u8; self.payload_len];
            ctx.rng().fill_bytes(&mut message);
            let mut mac = [0u8; Mac80::LEN];
            ctx.rng().fill_bytes(&mut mac);
            let packet = TeslaPacket {
                index: self.interval,
                message,
                mac: Mac80::from_slice(&mac).expect("fixed length"),
                disclosed: None,
            };
            let bits = packet.size_bits();
            ctx.metrics().incr(keys::TESLA_ATTACKER_FORGED);
            ctx.broadcast(TeslaNet::Packet(packet), bits);
        }
        ctx.set_timer(self.bootstrap.params.schedule.interval(), TimerToken(0));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A forged disclosed key helper for tests: a packet that claims to
/// disclose a key for `index` but carries attacker bytes.
#[must_use]
pub fn forged_disclosure(index: u64, rng: &mut dap_simnet::SimRng) -> DisclosedKey {
    DisclosedKey {
        index,
        key: dap_crypto::Key::random(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TeslaParams;
    use dap_simnet::{ChannelModel, Network, SimTime};

    fn run_network(
        loss: f64,
        flood: Option<FloodIntensity>,
        seed: u64,
    ) -> (Network<TeslaNet>, dap_simnet::NodeId) {
        let params = TeslaParams::new(SimDuration(100), 2, 5);
        let sender = TeslaSender::new(b"net-sender", 30, params);
        let bootstrap = sender.bootstrap();
        let mut net = Network::new(seed);
        net.add_node(
            TeslaSenderNode::new(sender, 2, b"payload".to_vec()),
            ChannelModel::perfect(),
        );
        if let Some(intensity) = flood {
            net.add_node(
                TeslaFloodAttacker::new(bootstrap, intensity, 2, 30, 25),
                ChannelModel::perfect(),
            );
        }
        let rx = net.add_node(
            TeslaReceiverNode::new(bootstrap),
            ChannelModel::lossy(loss).with_delay(SimDuration(1)),
        );
        net.run_until(SimTime(40 * 100));
        (net, rx)
    }

    #[test]
    fn clean_channel_authenticates_everything_disclosed() {
        let (net, rx) = run_network(0.0, None, 1);
        let node = net.node_as::<TeslaReceiverNode>(rx).unwrap();
        // 30 intervals, keys disclosed up to interval 28 (d = 2).
        assert_eq!(node.receiver().authenticated().len(), 28 * 2);
        assert_eq!(net.metrics().get(keys::TESLA_RX_REJECTED_MAC), 0);
    }

    #[test]
    fn lossy_channel_still_makes_progress() {
        let (net, rx) = run_network(0.3, None, 2);
        let node = net.node_as::<TeslaReceiverNode>(rx).unwrap();
        let authed = node.receiver().authenticated().len();
        // ~70% of 56 packets arrive; all arriving packets eventually
        // authenticate because any later disclosure recovers the chain.
        assert!(authed > 20, "authenticated {authed}");
        assert_eq!(net.metrics().get(keys::TESLA_RX_REJECTED_MAC), 0);
    }

    #[test]
    fn flood_consumes_receiver_memory_but_never_authenticates() {
        let (net, rx) = run_network(0.0, Some(FloodIntensity::of_bandwidth(0.8)), 3);
        let node = net.node_as::<TeslaReceiverNode>(rx).unwrap();
        // No forged message ever authenticates...
        for (idx, msg) in node.receiver().authenticated() {
            assert!(
                msg.starts_with(b"payload"),
                "forged message authenticated at {idx}"
            );
        }
        // ...but the flood inflates the buffer: 8 forged per interval of
        // 25-byte payloads is far more than the 2 authentic packets.
        assert!(
            node.peak_buffered_bits() > 2_000,
            "peak {} bits",
            node.peak_buffered_bits()
        );
        assert!(net.metrics().get(keys::TESLA_RX_REJECTED_MAC) > 0);
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let (net_a, rx_a) = run_network(0.2, Some(FloodIntensity::of_bandwidth(0.5)), 9);
        let (net_b, rx_b) = run_network(0.2, Some(FloodIntensity::of_bandwidth(0.5)), 9);
        let a = net_a.node_as::<TeslaReceiverNode>(rx_a).unwrap();
        let b = net_b.node_as::<TeslaReceiverNode>(rx_b).unwrap();
        assert_eq!(
            a.receiver().authenticated().len(),
            b.receiver().authenticated().len()
        );
        assert_eq!(a.peak_buffered_bits(), b.peak_buffered_bits());
    }

    #[test]
    fn forged_disclosure_helper_is_random() {
        let mut rng = dap_simnet::SimRng::new(4);
        let a = forged_disclosure(3, &mut rng);
        let b = forged_disclosure(3, &mut rng);
        assert_eq!(a.index, 3);
        assert_ne!(a.key, b.key);
    }
}
