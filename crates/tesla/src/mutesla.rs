//! μTESLA (SPINS — Perrig, Szewczyk, Tygar, Wen, Culler, 2002).
//!
//! μTESLA adapts TESLA to severely constrained sensor networks with two
//! changes:
//!
//! 1. **symmetric bootstrap** — the chain commitment reaches each node
//!    through a key shared with the base station instead of a digital
//!    signature (modelled here by constructing the receiver directly from
//!    the [`crate::tesla::Bootstrap`] record);
//! 2. **one disclosure per interval** — instead of repeating a key in
//!    every packet, the sender broadcasts a single
//!    [`MuTeslaMessage::KeyDisclosure`] per interval, saving bandwidth.
//!
//! The receiver logic is otherwise TESLA's; packet-loss recovery through
//! the one-way chain carries over unchanged.

use dap_crypto::mac::{mac80, verify_mac80};
use dap_crypto::oneway::{one_way_iter, Domain};
use dap_crypto::{ChainAnchor, ChainExhausted, Key, KeyChain, Mac80};
use dap_simnet::SimTime;

use crate::params::TeslaParams;
use crate::tesla::{Bootstrap, ReceiverEvent};

/// Wire messages of μTESLA.
#[derive(Debug, Clone, PartialEq)]
pub enum MuTeslaMessage {
    /// An authenticated-later data packet.
    Data(DataPacket),
    /// The once-per-interval key disclosure.
    KeyDisclosure {
        /// Interval the key belongs to.
        index: u64,
        /// The disclosed chain key.
        key: Key,
    },
}

impl MuTeslaMessage {
    /// Airtime size in bits.
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        match self {
            MuTeslaMessage::Data(d) => {
                (d.message.len() as u32) * 8
                    + dap_crypto::sizes::MAC_BITS
                    + dap_crypto::sizes::INDEX_BITS
            }
            MuTeslaMessage::KeyDisclosure { .. } => {
                dap_crypto::sizes::KEY_BITS + dap_crypto::sizes::INDEX_BITS
            }
        }
    }
}

/// A μTESLA data packet: `(i, M, MAC_{K'_i}(M))` — no embedded key.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// Interval index.
    pub index: u64,
    /// Payload.
    pub message: Vec<u8>,
    /// `MAC_{K'_i}(message)`.
    pub mac: Mac80,
}

/// The base-station side.
///
/// ```
/// use dap_simnet::{SimDuration, SimTime};
/// use dap_tesla::mutesla::{MuTeslaReceiver, MuTeslaSender};
/// use dap_tesla::TeslaParams;
///
/// let params = TeslaParams::new(SimDuration(100), 1, 0);
/// let sender = MuTeslaSender::new(b"bs", 32, params);
/// let mut receiver = MuTeslaReceiver::new(sender.bootstrap());
///
/// receiver.on_message(&sender.data(1, b"m").unwrap(), SimTime(10));
/// receiver.on_message(&sender.disclosure(2).unwrap(), SimTime(110));
/// assert_eq!(receiver.authenticated().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MuTeslaSender {
    chain: KeyChain,
    params: TeslaParams,
}

impl MuTeslaSender {
    /// Creates a sender with a chain of `chain_len` keys.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0`.
    #[must_use]
    pub fn new(seed: &[u8], chain_len: usize, params: TeslaParams) -> Self {
        Self {
            chain: KeyChain::generate(seed, chain_len, Domain::F),
            params,
        }
    }

    /// The bootstrap record (distributed via the pre-shared node key in
    /// real SPINS deployments).
    #[must_use]
    pub fn bootstrap(&self) -> Bootstrap {
        Bootstrap {
            commitment: *self.chain.commitment(),
            params: self.params,
        }
    }

    /// Builds the data packet for interval `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when `index` lies beyond the chain
    /// horizon — the operational end of this sender's key chain.
    pub fn data(&self, index: u64, message: &[u8]) -> Result<MuTeslaMessage, ChainExhausted> {
        let horizon = self.chain.len() as u64;
        let key = self
            .chain
            .key(index as usize)
            .ok_or(ChainExhausted { index, horizon })?;
        Ok(MuTeslaMessage::Data(DataPacket {
            index,
            message: message.to_vec(),
            mac: mac80(key, message),
        }))
    }

    /// The disclosure message to broadcast during interval
    /// `current_interval`, i.e. the key of `current_interval − d`;
    /// `None` during the first `d` intervals.
    #[must_use]
    pub fn disclosure(&self, current_interval: u64) -> Option<MuTeslaMessage> {
        let index = current_interval.checked_sub(self.params.disclosure_delay)?;
        if index == 0 {
            return None;
        }
        let key = *self.chain.key(index as usize)?;
        Some(MuTeslaMessage::KeyDisclosure { index, key })
    }
}

/// A bootstrap request from a node to the base station (SPINS §"
/// bootstrapping a new receiver": the node sends a nonce; the response is
/// MACed under the key it already shares with the base station).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapRequest {
    /// Freshness nonce chosen by the node.
    pub nonce: u64,
}

/// The base station's authenticated bootstrap response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResponse {
    /// The chain commitment `K_0`.
    pub commitment: Key,
    /// Interval length in ticks.
    pub interval_ticks: u64,
    /// Disclosure delay `d`.
    pub disclosure_delay: u64,
    /// Synchronisation bound `Δ`.
    pub max_clock_offset: u64,
    /// `MAC_{K_node}(nonce | commitment | params)`.
    pub mac: Mac80,
}

impl BootstrapResponse {
    fn mac_input(nonce: u64, commitment: &Key, params: &TeslaParams) -> Vec<u8> {
        let mut input = Vec::with_capacity(8 + Key::LEN + 24);
        input.extend_from_slice(&nonce.to_be_bytes());
        input.extend_from_slice(commitment.as_bytes());
        input.extend_from_slice(&params.schedule.interval().ticks().to_be_bytes());
        input.extend_from_slice(&params.disclosure_delay.to_be_bytes());
        input.extend_from_slice(&params.max_clock_offset.to_be_bytes());
        input
    }
}

impl MuTeslaSender {
    /// Answers a node's bootstrap request, authenticating the commitment
    /// and parameters under the key shared with that node (`node_key`).
    #[must_use]
    pub fn answer_bootstrap(
        &self,
        node_key: &Key,
        request: &BootstrapRequest,
    ) -> BootstrapResponse {
        let commitment = *self.chain.commitment();
        let input = BootstrapResponse::mac_input(request.nonce, &commitment, &self.params);
        BootstrapResponse {
            commitment,
            interval_ticks: self.params.schedule.interval().ticks(),
            disclosure_delay: self.params.disclosure_delay,
            max_clock_offset: self.params.max_clock_offset,
            mac: mac80(node_key, &input),
        }
    }
}

/// Verifies a bootstrap response against the node's shared key and the
/// nonce it sent; yields a ready [`Bootstrap`] on success, `None` when
/// the MAC does not bind this nonce/commitment/parameter combination
/// (tampering or a replay of another node's bootstrap).
#[must_use]
pub fn verify_bootstrap(
    node_key: &Key,
    sent_nonce: u64,
    response: &BootstrapResponse,
) -> Option<Bootstrap> {
    if response.interval_ticks == 0 || response.disclosure_delay == 0 {
        return None;
    }
    let params = TeslaParams::new(
        dap_simnet::SimDuration(response.interval_ticks),
        response.disclosure_delay,
        response.max_clock_offset,
    );
    let input = BootstrapResponse::mac_input(sent_nonce, &response.commitment, &params);
    if dap_crypto::mac::verify_mac80(node_key, &input, &response.mac) {
        Some(Bootstrap {
            commitment: response.commitment,
            params,
        })
    } else {
        None
    }
}

/// A μTESLA receiver node.
#[derive(Debug, Clone)]
pub struct MuTeslaReceiver {
    anchor: ChainAnchor,
    params: TeslaParams,
    buffer: Vec<DataPacket>,
    authenticated: Vec<(u64, Vec<u8>)>,
}

impl MuTeslaReceiver {
    /// Bootstraps from the base station's commitment.
    #[must_use]
    pub fn new(bootstrap: Bootstrap) -> Self {
        Self {
            anchor: ChainAnchor::new(bootstrap.commitment, 0, Domain::F),
            params: bootstrap.params,
            buffer: Vec::new(),
            authenticated: Vec::new(),
        }
    }

    /// Handles any μTESLA message at local clock `local_time`.
    pub fn on_message(
        &mut self,
        message: &MuTeslaMessage,
        local_time: SimTime,
    ) -> Vec<ReceiverEvent> {
        match message {
            MuTeslaMessage::Data(d) => self.on_data(d, local_time),
            MuTeslaMessage::KeyDisclosure { index, key } => self.on_disclosure(*index, key),
        }
    }

    fn on_data(&mut self, packet: &DataPacket, local_time: SimTime) -> Vec<ReceiverEvent> {
        if self.params.safety().is_safe(packet.index, local_time) {
            self.buffer.push(packet.clone());
            Vec::new()
        } else {
            vec![ReceiverEvent::DiscardedUnsafe {
                index: packet.index,
            }]
        }
    }

    fn on_disclosure(&mut self, index: u64, key: &Key) -> Vec<ReceiverEvent> {
        let mut events = Vec::new();
        match self.anchor.accept(key, index) {
            Ok(steps) => {
                events.push(ReceiverEvent::KeyAccepted { index, steps });
                self.drain_verifiable(&mut events);
            }
            Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {}
            Err(_) => events.push(ReceiverEvent::KeyRejected { index }),
        }
        events
    }

    fn drain_verifiable(&mut self, events: &mut Vec<ReceiverEvent>) {
        let anchor_index = self.anchor.index();
        let anchor_key = *self.anchor.key();
        let mut kept = Vec::with_capacity(self.buffer.len());
        for pkt in self.buffer.drain(..) {
            if pkt.index > anchor_index || pkt.index == 0 {
                kept.push(pkt);
                continue;
            }
            let key = one_way_iter(Domain::F, &anchor_key, (anchor_index - pkt.index) as usize);
            if verify_mac80(&key, &pkt.message, &pkt.mac) {
                self.authenticated.push((pkt.index, pkt.message.clone()));
                events.push(ReceiverEvent::Authenticated {
                    index: pkt.index,
                    message: pkt.message,
                });
            } else {
                events.push(ReceiverEvent::RejectedMac { index: pkt.index });
            }
        }
        self.buffer = kept;
    }

    /// Messages authenticated so far.
    #[must_use]
    pub fn authenticated(&self) -> &[(u64, Vec<u8>)] {
        &self.authenticated
    }

    /// Packets awaiting disclosure.
    #[must_use]
    pub fn buffered_count(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_simnet::SimDuration;

    fn setup() -> (MuTeslaSender, MuTeslaReceiver) {
        let params = TeslaParams::new(SimDuration(100), 1, 0);
        let sender = MuTeslaSender::new(b"bs", 32, params);
        let receiver = MuTeslaReceiver::new(sender.bootstrap());
        (sender, receiver)
    }

    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn data_then_disclosure_authenticates() {
        let (sender, mut receiver) = setup();
        receiver.on_message(&sender.data(1, b"temp=20").unwrap(), during(1));
        let disc = sender.disclosure(2).unwrap();
        let events = receiver.on_message(&disc, during(2));
        assert!(events
            .iter()
            .any(|e| matches!(e, ReceiverEvent::Authenticated { index: 1, .. })));
        assert_eq!(receiver.authenticated().len(), 1);
    }

    #[test]
    fn disclosure_is_once_per_interval_and_lagged() {
        let (sender, _) = setup();
        assert!(sender.disclosure(1).is_none());
        match sender.disclosure(5).unwrap() {
            MuTeslaMessage::KeyDisclosure { index, .. } => assert_eq!(index, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lost_disclosures_recovered() {
        let (sender, mut receiver) = setup();
        receiver.on_message(&sender.data(1, b"a").unwrap(), during(1));
        receiver.on_message(&sender.data(2, b"b").unwrap(), during(2));
        // Disclosures for intervals 1..3 lost; the one for interval 4 has
        // everything.
        let disc = sender.disclosure(5).unwrap();
        let events = receiver.on_message(&disc, during(5));
        assert!(events.contains(&ReceiverEvent::KeyAccepted { index: 4, steps: 4 }));
        assert_eq!(receiver.authenticated().len(), 2);
        assert_eq!(receiver.buffered_count(), 0);
    }

    #[test]
    fn late_data_discarded() {
        let (sender, mut receiver) = setup();
        let events = receiver.on_message(&sender.data(1, b"late").unwrap(), during(2));
        assert_eq!(events, vec![ReceiverEvent::DiscardedUnsafe { index: 1 }]);
    }

    #[test]
    fn forged_disclosure_rejected() {
        let (_, mut receiver) = setup();
        let mut rng = dap_simnet::SimRng::new(2);
        let events = receiver.on_message(
            &MuTeslaMessage::KeyDisclosure {
                index: 1,
                key: Key::random(&mut rng),
            },
            during(2),
        );
        assert_eq!(events, vec![ReceiverEvent::KeyRejected { index: 1 }]);
    }

    #[test]
    fn forged_data_rejected_on_disclosure() {
        let (sender, mut receiver) = setup();
        let forged = MuTeslaMessage::Data(DataPacket {
            index: 1,
            message: b"evil".to_vec(),
            mac: Mac80::from_slice(&[0u8; 10]).unwrap(),
        });
        receiver.on_message(&forged, during(1));
        let events = receiver.on_message(&sender.disclosure(2).unwrap(), during(2));
        assert!(events.contains(&ReceiverEvent::RejectedMac { index: 1 }));
        assert!(receiver.authenticated().is_empty());
    }

    #[test]
    fn sizes_are_smaller_than_tesla_packets() {
        let (sender, _) = setup();
        let data = sender.data(1, &[0u8; 25]).unwrap();
        // 200-bit message: no embedded key → 312 bits.
        assert_eq!(data.size_bits(), 312);
        let disc = sender.disclosure(3).unwrap();
        assert_eq!(disc.size_bits(), 112);
    }

    #[test]
    fn disclosure_beyond_chain_is_none() {
        let (sender, _) = setup();
        assert!(sender.disclosure(100).is_none());
    }

    #[test]
    fn data_beyond_horizon_is_typed_error() {
        let (sender, _) = setup();
        assert_eq!(
            sender.data(33, b"x").unwrap_err(),
            ChainExhausted {
                index: 33,
                horizon: 32
            }
        );
    }

    #[test]
    fn bootstrap_roundtrip_authenticates_and_works() {
        let (sender, _) = setup();
        let node_key = Key::derive(b"spins/node", b"node-9");
        let request = BootstrapRequest { nonce: 0xfeed };
        let response = sender.answer_bootstrap(&node_key, &request);
        let bootstrap = verify_bootstrap(&node_key, 0xfeed, &response).expect("genuine");
        // The bootstrapped receiver authenticates real traffic.
        let mut receiver = MuTeslaReceiver::new(bootstrap);
        receiver.on_message(&sender.data(1, b"hello").unwrap(), during(1));
        receiver.on_message(&sender.disclosure(2).unwrap(), during(2));
        assert_eq!(receiver.authenticated().len(), 1);
    }

    #[test]
    fn bootstrap_rejects_wrong_nonce() {
        let (sender, _) = setup();
        let node_key = Key::derive(b"spins/node", b"node-9");
        let response = sender.answer_bootstrap(&node_key, &BootstrapRequest { nonce: 1 });
        assert!(verify_bootstrap(&node_key, 2, &response).is_none());
    }

    #[test]
    fn bootstrap_rejects_wrong_node_key() {
        let (sender, _) = setup();
        let node_key = Key::derive(b"spins/node", b"node-9");
        let other_key = Key::derive(b"spins/node", b"node-10");
        let response = sender.answer_bootstrap(&node_key, &BootstrapRequest { nonce: 1 });
        assert!(verify_bootstrap(&other_key, 1, &response).is_none());
    }

    #[test]
    fn bootstrap_rejects_tampered_fields() {
        let (sender, _) = setup();
        let node_key = Key::derive(b"spins/node", b"node-9");
        let genuine = sender.answer_bootstrap(&node_key, &BootstrapRequest { nonce: 7 });

        let mut bad_commit = genuine;
        bad_commit.commitment = Key::derive(b"evil", b"c");
        assert!(verify_bootstrap(&node_key, 7, &bad_commit).is_none());

        let mut bad_delay = genuine;
        bad_delay.disclosure_delay = 9; // weaker safety window
        assert!(verify_bootstrap(&node_key, 7, &bad_delay).is_none());

        let mut zeroed = genuine;
        zeroed.interval_ticks = 0;
        assert!(verify_bootstrap(&node_key, 7, &zeroed).is_none());
    }
}
