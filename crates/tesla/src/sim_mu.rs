//! [`dap_simnet`] adapters for μTESLA and TESLA++.
//!
//! μTESLA nodes exercise the once-per-interval disclosure schedule;
//! TESLA++ nodes exercise the two-phase announce/reveal flow and expose
//! the *unbounded* self-MAC store that motivates DAP's bounded buffers.

use std::any::Any;

use dap_crypto::Mac80;
use dap_simnet::{keys, Context, FloodIntensity, Frame, Node, SimDuration, TimerToken};

use crate::mutesla::{MuTeslaMessage, MuTeslaReceiver, MuTeslaSender};
use crate::params::TeslaParams;
use crate::tesla::{Bootstrap, ReceiverEvent};
use crate::teslapp::{TeslaPpMessage, TeslaPpOutcome, TeslaPpReceiver, TeslaPpSender};

// ------------------------------------------------------------- μTESLA --

/// Broadcasts data packets plus the per-interval key disclosure.
#[derive(Debug)]
pub struct MuTeslaSenderNode {
    sender: MuTeslaSender,
    params: TeslaParams,
    horizon: u64,
    messages_per_interval: u32,
    interval: u64,
    payload: Vec<u8>,
}

impl MuTeslaSenderNode {
    /// Creates the node.
    #[must_use]
    pub fn new(
        sender: MuTeslaSender,
        horizon: u64,
        messages_per_interval: u32,
        payload: Vec<u8>,
    ) -> Self {
        let params = sender.bootstrap().params;
        Self {
            sender,
            params,
            horizon,
            messages_per_interval,
            interval: 0,
            payload,
        }
    }
}

impl Node<MuTeslaMessage> for MuTeslaSenderNode {
    fn on_start(&mut self, ctx: &mut Context<'_, MuTeslaMessage>) {
        ctx.set_timer(SimDuration(1), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, MuTeslaMessage>, _timer: TimerToken) {
        self.interval += 1;
        // Disclosure for interval − d, once per interval.
        if let Some(disclosure) = self.sender.disclosure(self.interval) {
            let bits = disclosure.size_bits();
            ctx.metrics().incr(keys::MUTESLA_SENDER_DISCLOSURES);
            ctx.broadcast(disclosure, bits);
        }
        if self.interval <= self.horizon {
            for copy in 0..self.messages_per_interval {
                let mut message = self.payload.clone();
                message.extend_from_slice(&self.interval.to_be_bytes());
                message.push(copy as u8);
                let Ok(data) = self.sender.data(self.interval, &message) else {
                    ctx.metrics().incr(keys::MUTESLA_SENDER_EXHAUSTED);
                    return;
                };
                let bits = data.size_bits();
                ctx.metrics().incr(keys::MUTESLA_SENDER_DATA);
                ctx.broadcast(data, bits);
            }
            ctx.set_timer(self.params.schedule.interval(), TimerToken(0));
        } else if self.interval <= self.horizon + self.params.disclosure_delay {
            // Keep disclosing until the tail is covered.
            ctx.set_timer(self.params.schedule.interval(), TimerToken(0));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A μTESLA receiver node.
#[derive(Debug)]
pub struct MuTeslaReceiverNode {
    receiver: MuTeslaReceiver,
}

impl MuTeslaReceiverNode {
    /// Bootstraps the node.
    #[must_use]
    pub fn new(bootstrap: Bootstrap) -> Self {
        Self {
            receiver: MuTeslaReceiver::new(bootstrap),
        }
    }

    /// The protocol state.
    #[must_use]
    pub fn receiver(&self) -> &MuTeslaReceiver {
        &self.receiver
    }
}

impl Node<MuTeslaMessage> for MuTeslaReceiverNode {
    fn on_frame(&mut self, ctx: &mut Context<'_, MuTeslaMessage>, frame: &Frame<MuTeslaMessage>) {
        let events = self.receiver.on_message(&frame.message, ctx.local_time());
        for event in events {
            let name = match event {
                ReceiverEvent::Authenticated { .. } => keys::MUTESLA_RX_AUTHENTICATED,
                ReceiverEvent::RejectedMac { .. } => keys::MUTESLA_RX_REJECTED_MAC,
                ReceiverEvent::DiscardedUnsafe { .. } => keys::MUTESLA_RX_UNSAFE,
                ReceiverEvent::KeyAccepted { .. } => keys::MUTESLA_RX_KEY_ACCEPTED,
                ReceiverEvent::KeyRejected { .. } => keys::MUTESLA_RX_KEY_REJECTED,
            };
            ctx.metrics().incr(name);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ------------------------------------------------------------ TESLA++ --

/// Broadcasts the TESLA++ two-phase schedule: announcements each
/// interval, reveals one interval later.
#[derive(Debug)]
pub struct TeslaPpSenderNode {
    sender: TeslaPpSender,
    params: TeslaParams,
    horizon: u64,
    interval: u64,
    payload: Vec<u8>,
}

impl TeslaPpSenderNode {
    /// Creates the node.
    #[must_use]
    pub fn new(sender: TeslaPpSender, horizon: u64, payload: Vec<u8>) -> Self {
        let params = sender.bootstrap().params;
        Self {
            sender,
            params,
            horizon,
            interval: 0,
            payload,
        }
    }
}

impl Node<TeslaPpMessage> for TeslaPpSenderNode {
    fn on_start(&mut self, ctx: &mut Context<'_, TeslaPpMessage>) {
        ctx.set_timer(SimDuration(1), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TeslaPpMessage>, _timer: TimerToken) {
        self.interval += 1;
        if self.interval > 1 {
            if let Some(reveal) = self.sender.reveal(self.interval - 1) {
                let bits = reveal.size_bits();
                ctx.metrics().incr(keys::TESLAPP_SENDER_REVEALS);
                ctx.broadcast(reveal, bits);
            }
        }
        if self.interval <= self.horizon {
            let mut message = self.payload.clone();
            message.extend_from_slice(&self.interval.to_be_bytes());
            if let Ok(announce) = self.sender.announce(self.interval, &message) {
                let bits = announce.size_bits();
                ctx.metrics().incr(keys::TESLAPP_SENDER_ANNOUNCES);
                ctx.broadcast(announce, bits);
            } else {
                ctx.metrics().incr(keys::TESLAPP_SENDER_EXHAUSTED);
            }
            ctx.set_timer(self.params.schedule.interval(), TimerToken(0));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A TESLA++ receiver node; tracks the peak self-MAC store footprint.
#[derive(Debug)]
pub struct TeslaPpReceiverNode {
    receiver: TeslaPpReceiver,
    peak_stored_bits: u64,
}

impl TeslaPpReceiverNode {
    /// Bootstraps the node.
    #[must_use]
    pub fn new(bootstrap: Bootstrap, local_seed: &[u8]) -> Self {
        Self {
            receiver: TeslaPpReceiver::new(bootstrap, local_seed),
            peak_stored_bits: 0,
        }
    }

    /// The protocol state.
    #[must_use]
    pub fn receiver(&self) -> &TeslaPpReceiver {
        &self.receiver
    }

    /// Largest store footprint observed — grows without bound under a
    /// flood (TESLA++ caps entry *size*, not entry *count*).
    #[must_use]
    pub fn peak_stored_bits(&self) -> u64 {
        self.peak_stored_bits
    }
}

impl Node<TeslaPpMessage> for TeslaPpReceiverNode {
    fn on_frame(&mut self, ctx: &mut Context<'_, TeslaPpMessage>, frame: &Frame<TeslaPpMessage>) {
        let outcome = self.receiver.on_message(&frame.message, ctx.local_time());
        let name = match outcome {
            TeslaPpOutcome::Authenticated { .. } => keys::TESLAPP_RX_AUTHENTICATED,
            TeslaPpOutcome::KeyRejected { .. } => keys::TESLAPP_RX_KEY_REJECTED,
            TeslaPpOutcome::NoMatchingAnnouncement { .. } => keys::TESLAPP_RX_NO_MATCH,
            TeslaPpOutcome::AnnouncementUnsafe { .. } => keys::TESLAPP_RX_UNSAFE,
            TeslaPpOutcome::AnnouncementStored { .. } => keys::TESLAPP_RX_STORED,
        };
        ctx.metrics().incr(name);
        self.peak_stored_bits = self.peak_stored_bits.max(self.receiver.stored_bits());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Floods forged TESLA++ announcements for the current interval.
#[derive(Debug)]
pub struct TeslaPpFloodAttacker {
    params: TeslaParams,
    intensity: FloodIntensity,
    authentic_per_interval: u32,
    horizon: u64,
    interval: u64,
}

impl TeslaPpFloodAttacker {
    /// Creates the attacker.
    #[must_use]
    pub fn new(
        params: TeslaParams,
        intensity: FloodIntensity,
        authentic_per_interval: u32,
        horizon: u64,
    ) -> Self {
        Self {
            params,
            intensity,
            authentic_per_interval,
            horizon,
            interval: 0,
        }
    }
}

impl Node<TeslaPpMessage> for TeslaPpFloodAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_, TeslaPpMessage>) {
        ctx.set_timer(SimDuration(2), TimerToken(0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TeslaPpMessage>, _timer: TimerToken) {
        self.interval += 1;
        if self.interval > self.horizon {
            return;
        }
        let forged = self
            .intensity
            .forged_copies(u64::from(self.authentic_per_interval));
        for _ in 0..forged {
            let mut mac = [0u8; Mac80::LEN];
            ctx.rng().fill_bytes(&mut mac);
            let announce = TeslaPpMessage::MacAnnounce {
                index: self.interval,
                mac: Mac80::from_slice(&mac).expect("fixed length"),
            };
            let bits = announce.size_bits();
            ctx.metrics().incr(keys::TESLAPP_ATTACKER_FORGED);
            ctx.broadcast(announce, bits);
        }
        ctx.set_timer(self.params.schedule.interval(), TimerToken(0));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_simnet::{ChannelModel, Network, SimTime};

    #[test]
    fn mutesla_network_authenticates() {
        let params = TeslaParams::new(SimDuration(100), 1, 0);
        let sender = MuTeslaSender::new(b"mu-net", 30, params);
        let bootstrap = sender.bootstrap();
        let mut net: Network<MuTeslaMessage> = Network::new(1);
        net.add_node(
            MuTeslaSenderNode::new(sender, 28, 2, b"d".to_vec()),
            ChannelModel::perfect(),
        );
        let rx = net.add_node(MuTeslaReceiverNode::new(bootstrap), ChannelModel::perfect());
        net.run_until(SimTime(32 * 100));
        let node = net.node_as::<MuTeslaReceiverNode>(rx).unwrap();
        assert_eq!(node.receiver().authenticated().len(), 28 * 2);
        assert_eq!(net.metrics().get(keys::MUTESLA_RX_REJECTED_MAC), 0);
    }

    #[test]
    fn mutesla_disclosure_bandwidth_is_once_per_interval() {
        let params = TeslaParams::new(SimDuration(100), 1, 0);
        let sender = MuTeslaSender::new(b"mu-bw", 30, params);
        let bootstrap = sender.bootstrap();
        let mut net: Network<MuTeslaMessage> = Network::new(2);
        net.add_node(
            MuTeslaSenderNode::new(sender, 20, 5, b"d".to_vec()),
            ChannelModel::perfect(),
        );
        net.add_node(MuTeslaReceiverNode::new(bootstrap), ChannelModel::perfect());
        net.run_until(SimTime(25 * 100));
        // 5 data frames per interval but only one disclosure.
        let data = net.metrics().get(keys::MUTESLA_SENDER_DATA);
        let disc = net.metrics().get(keys::MUTESLA_SENDER_DISCLOSURES);
        assert_eq!(data, 20 * 5);
        assert!(disc <= 21, "disclosures {disc}");
    }

    #[test]
    fn teslapp_network_authenticates_and_flood_grows_memory() {
        let params = TeslaParams::new(SimDuration(100), 1, 0);
        let run = |flood: Option<f64>, seed: u64| {
            let sender = TeslaPpSender::new(b"pp-net", 40, params);
            let bootstrap = sender.bootstrap();
            let mut net: Network<TeslaPpMessage> = Network::new(seed);
            net.add_node(
                TeslaPpSenderNode::new(sender, 38, b"alert".to_vec()),
                ChannelModel::perfect(),
            );
            if let Some(p) = flood {
                net.add_node(
                    TeslaPpFloodAttacker::new(params, FloodIntensity::of_bandwidth(p), 1, 38),
                    ChannelModel::perfect(),
                );
            }
            let rx = net.add_node(
                TeslaPpReceiverNode::new(bootstrap, b"rx"),
                ChannelModel::perfect(),
            );
            net.run_until(SimTime(42 * 100));
            let node = net.node_as::<TeslaPpReceiverNode>(rx).unwrap();
            (
                node.receiver().authenticated().len(),
                node.peak_stored_bits(),
            )
        };
        let (auth_clean, peak_clean) = run(None, 3);
        assert_eq!(auth_clean, 38);
        let (auth_flood, peak_flood) = run(Some(0.9), 3);
        // TESLA++ authenticates everything even under flood (no buffer
        // cap)...
        assert_eq!(auth_flood, 38);
        // ...but pays with unbounded memory: 9 forged × 112 bits linger.
        assert!(
            peak_flood > peak_clean * 5,
            "clean {peak_clean} vs flood {peak_flood}"
        );
    }
}
