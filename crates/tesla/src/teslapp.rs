//! TESLA++ (Studer, Bai, Bellur, Perrig — JCN 2009), symmetric part.
//!
//! TESLA++ inverts TESLA's packet layout to shrink the receiver's DoS
//! attack surface: the sender first broadcasts only `(i, MAC_i)`; the
//! message and key follow one interval later. A receiver never stores the
//! (large) message before it is verifiable — it stores a *self-MAC* of
//! the received MAC computed under a receiver-local secret, plus the
//! index.
//!
//! The paper under reproduction uses TESLA++ as the storage baseline of
//! Fig. 5, charging it `s₁ = 280` bits per buffered packet (a
//! message+MAC-sized record). Our implementation stores the 80-bit
//! self-MAC + 32-bit index = 112 bits; both numbers are exposed
//! ([`TeslaPpReceiver::stored_bits`] vs
//! [`PAPER_STORED_BITS_PER_ENTRY`]) and the Fig.-5 harness prints the
//! comparison under both accountings.
//!
//! (Real TESLA++ adds an ECDSA signature path for non-repudiation; the
//! paper's comparison never touches it, so it is out of scope — see
//! DESIGN.md §4.)

use dap_crypto::mac::{
    mac80, mac80_many_prepared, mac80_prepared, prepare_chain_key, prepare_chain_keys, Mac80,
};
use dap_crypto::oneway::{one_way_many, Domain};
use dap_crypto::{ChainAnchor, ChainExhausted, Key, KeyChain, PreparedMacKey};
use dap_simnet::SimTime;

use crate::params::TeslaParams;
use crate::tesla::Bootstrap;

/// Storage the paper's Fig. 5 charges TESLA++ per buffered packet.
pub const PAPER_STORED_BITS_PER_ENTRY: u32 = dap_crypto::sizes::TESLA_BUFFER_ENTRY_BITS;

/// Bits this implementation actually stores per buffered packet:
/// 80-bit self-MAC + 32-bit index.
pub const STORED_BITS_PER_ENTRY: u32 = dap_crypto::sizes::MAC_BITS + dap_crypto::sizes::INDEX_BITS;

/// TESLA++ wire messages.
#[derive(Debug, Clone, PartialEq)]
pub enum TeslaPpMessage {
    /// Phase 1: the MAC announcement `(i, MAC_i)`.
    MacAnnounce {
        /// Interval index.
        index: u64,
        /// `MAC_{K'_i}(M_i)`.
        mac: Mac80,
    },
    /// Phase 2: the reveal `(i, M_i, K_i)` one interval later.
    Reveal {
        /// Interval index.
        index: u64,
        /// The message.
        message: Vec<u8>,
        /// The now-disclosed key.
        key: Key,
    },
}

impl TeslaPpMessage {
    /// The interval index carried by either message kind — what a
    /// transport needs for routing without matching on the variant.
    #[must_use]
    pub fn index(&self) -> u64 {
        match self {
            TeslaPpMessage::MacAnnounce { index, .. } | TeslaPpMessage::Reveal { index, .. } => {
                *index
            }
        }
    }

    /// Airtime size in bits.
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        match self {
            TeslaPpMessage::MacAnnounce { .. } => {
                dap_crypto::sizes::MAC_BITS + dap_crypto::sizes::INDEX_BITS
            }
            TeslaPpMessage::Reveal { message, .. } => {
                (message.len() as u32) * 8
                    + dap_crypto::sizes::KEY_BITS
                    + dap_crypto::sizes::INDEX_BITS
            }
        }
    }
}

/// The broadcasting side.
#[derive(Debug, Clone)]
pub struct TeslaPpSender {
    chain: KeyChain,
    params: TeslaParams,
    pending: std::collections::BTreeMap<u64, Vec<u8>>,
}

impl TeslaPpSender {
    /// Creates a sender with a `chain_len`-key chain.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0`.
    #[must_use]
    pub fn new(seed: &[u8], chain_len: usize, params: TeslaParams) -> Self {
        Self {
            chain: KeyChain::generate(seed, chain_len, Domain::F),
            params,
            pending: std::collections::BTreeMap::new(),
        }
    }

    /// Receiver bootstrap record.
    #[must_use]
    pub fn bootstrap(&self) -> Bootstrap {
        Bootstrap {
            commitment: *self.chain.commitment(),
            params: self.params,
        }
    }

    /// Phase 1: announce `message` for interval `index` (the message is
    /// retained for the later reveal).
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when `index` lies beyond the chain
    /// horizon — the operational end of this sender's key chain.
    pub fn announce(
        &mut self,
        index: u64,
        message: &[u8],
    ) -> Result<TeslaPpMessage, ChainExhausted> {
        let horizon = self.chain.len() as u64;
        let key = self
            .chain
            .key(index as usize)
            .ok_or(ChainExhausted { index, horizon })?;
        let mac = mac80(key, message);
        self.pending.insert(index, message.to_vec());
        Ok(TeslaPpMessage::MacAnnounce { index, mac })
    }

    /// Phase 2: reveal the message and key for a previously announced
    /// interval; `None` if nothing was announced for `index`.
    pub fn reveal(&mut self, index: u64) -> Option<TeslaPpMessage> {
        let message = self.pending.remove(&index)?;
        let key = *self.chain.key(index as usize)?;
        Some(TeslaPpMessage::Reveal {
            index,
            message,
            key,
        })
    }
}

/// Outcome of processing a reveal.
#[derive(Debug, Clone, PartialEq)]
pub enum TeslaPpOutcome {
    /// The message matched a stored self-MAC and the key chain.
    Authenticated {
        /// Interval index.
        index: u64,
        /// The trusted message.
        message: Vec<u8>,
    },
    /// The key failed chain verification (weak authentication).
    KeyRejected {
        /// Claimed interval.
        index: u64,
    },
    /// No stored self-MAC matched (announcement lost or message forged).
    NoMatchingAnnouncement {
        /// Claimed interval.
        index: u64,
    },
    /// The announcement failed the safe-packet test and was dropped.
    AnnouncementUnsafe {
        /// Claimed interval.
        index: u64,
    },
    /// The announcement was stored; nothing to verify yet.
    AnnouncementStored {
        /// Claimed interval.
        index: u64,
    },
}

/// The receiving side.
#[derive(Debug, Clone)]
pub struct TeslaPpReceiver {
    anchor: ChainAnchor,
    params: TeslaParams,
    /// Receiver-local re-MAC secret, HMAC key schedule cached: the
    /// announce flood path self-MACs every incoming tag under it.
    local_key: PreparedMacKey,
    stored: Vec<(u64, Mac80)>,
    authenticated: Vec<(u64, Vec<u8>)>,
    expired: u64,
    /// `(interval, chain key, K'_i schedule)` of the most recent
    /// weak-authenticated reveal: one F′ derivation + HMAC re-key serves
    /// every frame claiming the same interval. Pure-function cache —
    /// invisible to outcomes (see `DapReceiver::interval_key`).
    interval_key: Option<(u64, Key, PreparedMacKey)>,
}

/// Pure-crypto products of a TESLA++ reveal, computed ahead of
/// [`TeslaPpReceiver::on_message_precomputed`] — typically lane-parallel
/// for a whole drain window via
/// [`TeslaPpReceiver::precompute_reveals`]. Every field is a
/// deterministic function of the receiver's local secret and the reveal
/// bytes, so consuming one is bit-identical to the scalar path.
#[derive(Debug, Clone)]
pub struct TeslaPpPrecompute {
    /// Interval the precomputed reveal claimed.
    index: u64,
    /// Disclosed chain key the products were derived from.
    key: Key,
    /// `F(key)` — answers the steady-state one-step chain walk.
    chain_image: Key,
    /// The `K'_i = F'(K_i)` HMAC key schedule.
    prepared: PreparedMacKey,
    /// The self-MAC the receiver expects to find stored.
    expect: Mac80,
}

impl TeslaPpReceiver {
    /// Bootstraps a receiver; `local_seed` derives the receiver-local
    /// re-MAC secret (never transmitted).
    #[must_use]
    pub fn new(bootstrap: Bootstrap, local_seed: &[u8]) -> Self {
        Self {
            anchor: ChainAnchor::new(bootstrap.commitment, 0, Domain::F),
            params: bootstrap.params,
            local_key: PreparedMacKey::new(Key::derive(b"teslapp/local", local_seed).as_bytes()),
            stored: Vec::new(),
            authenticated: Vec::new(),
            expired: 0,
            interval_key: None,
        }
    }

    /// The receiver's self-MAC: HMAC of the announced MAC under the local
    /// secret, truncated to 80 bits.
    fn self_mac(&self, mac: &Mac80) -> Mac80 {
        let tag = self.local_key.mac(mac.as_bytes());
        Mac80::from_slice(&tag[..Mac80::LEN]).expect("digest longer than tag")
    }

    /// Handles any TESLA++ message.
    pub fn on_message(&mut self, message: &TeslaPpMessage, local_time: SimTime) -> TeslaPpOutcome {
        self.on_message_inner(message, local_time, None)
    }

    /// [`on_message`](Self::on_message) consuming crypto products
    /// computed ahead of time by
    /// [`precompute_reveals`](Self::precompute_reveals). A precompute
    /// paired with the wrong `(index, key)` — or with an announce — is
    /// ignored, so the call is always bit-identical to
    /// [`on_message`](Self::on_message).
    pub fn on_message_precomputed(
        &mut self,
        message: &TeslaPpMessage,
        local_time: SimTime,
        pre: &TeslaPpPrecompute,
    ) -> TeslaPpOutcome {
        self.on_message_inner(message, local_time, Some(pre))
    }

    /// Batched pure-crypto prefix of the reveal path for a window of
    /// `(receiver, message)` pairs: chain images, `K'_i` re-keys
    /// (skipping interval-cache hits), message MACs and self-MACs each
    /// run as one lane-parallel pass. Announces yield `None` (they have
    /// no precomputable crypto — the self-MAC depends on arrival order
    /// only trivially, but announces are already cheap).
    #[must_use]
    pub fn precompute_reveals(
        items: &[(&TeslaPpReceiver, &TeslaPpMessage)],
    ) -> Vec<Option<TeslaPpPrecompute>> {
        let reveal_at: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (_, m))| matches!(m, TeslaPpMessage::Reveal { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut fields = Vec::with_capacity(reveal_at.len());
        for &i in &reveal_at {
            let (rx, m) = items[i];
            let TeslaPpMessage::Reveal {
                index,
                message,
                key,
            } = m
            else {
                unreachable!("filtered to reveals");
            };
            fields.push((rx, *index, message.as_slice(), *key));
        }

        let keys: Vec<Key> = fields.iter().map(|(_, _, _, k)| *k).collect();
        let images = one_way_many(Domain::F, &keys);

        let mut prepared: Vec<Option<PreparedMacKey>> = fields
            .iter()
            .map(|(rx, index, _, key)| rx.cached_interval_key(*index, key))
            .collect();
        let miss_keys: Vec<Key> = prepared
            .iter()
            .zip(keys.iter())
            .filter(|(p, _)| p.is_none())
            .map(|(_, k)| *k)
            .collect();
        let mut fresh = prepare_chain_keys(&miss_keys).into_iter();
        for slot in prepared.iter_mut() {
            if slot.is_none() {
                *slot = Some(fresh.next().expect("one schedule per miss"));
            }
        }
        let prepared: Vec<PreparedMacKey> = prepared.into_iter().map(Option::unwrap).collect();

        let messages: Vec<&[u8]> = fields.iter().map(|(_, _, m, _)| *m).collect();
        let tags = mac80_many_prepared(&prepared, &messages);
        let local_keys: Vec<&PreparedMacKey> =
            fields.iter().map(|(rx, _, _, _)| &rx.local_key).collect();
        let tag_bytes: Vec<&[u8]> = tags.iter().map(Mac80::as_bytes).collect();
        let expects: Vec<Mac80> = PreparedMacKey::mac_many(&local_keys, &tag_bytes)
            .iter()
            .map(|t| Mac80::from_slice(&t[..Mac80::LEN]).expect("digest longer than tag"))
            .collect();

        let mut out = vec![None; items.len()];
        for (((&i, (_, index, _, key)), chain_image), (prepared, expect)) in reveal_at
            .iter()
            .zip(fields.iter())
            .zip(images)
            .zip(prepared.into_iter().zip(expects))
        {
            out[i] = Some(TeslaPpPrecompute {
                index: *index,
                key: *key,
                chain_image,
                prepared,
                expect,
            });
        }
        out
    }

    /// The cached `K'` schedule for `(index, key)`, if this receiver
    /// verified exactly that pairing before.
    fn cached_interval_key(&self, index: u64, key: &Key) -> Option<PreparedMacKey> {
        self.interval_key
            .as_ref()
            .filter(|(i, k, _)| *i == index && dap_crypto::ct_eq(k.as_bytes(), key.as_bytes()))
            .map(|(_, _, prepared)| *prepared)
    }

    fn on_message_inner(
        &mut self,
        message: &TeslaPpMessage,
        local_time: SimTime,
        pre: Option<&TeslaPpPrecompute>,
    ) -> TeslaPpOutcome {
        self.gc(local_time);
        match message {
            TeslaPpMessage::MacAnnounce { index, mac } => self.on_announce(*index, mac, local_time),
            TeslaPpMessage::Reveal {
                index,
                message,
                key,
            } => self.on_reveal(*index, message, key, pre),
        }
    }

    /// Drops stored self-MACs whose reveal window has long passed (the
    /// reveal is due in interval `i + d`; entries one further interval
    /// overdue can never authenticate). Without this, entries for lost
    /// reveals — and the whole residue of a flood — would accumulate
    /// forever.
    fn gc(&mut self, local_time: SimTime) {
        let safety = self.params.safety();
        let grace = self.params.schedule.interval();
        let cutoff = SimTime(local_time.ticks().saturating_sub(grace.ticks()));
        let before = self.stored.len();
        self.stored
            .retain(|(i, _)| !safety.surely_disclosed(*i, cutoff));
        self.expired += (before - self.stored.len()) as u64;
    }

    /// Stored entries dropped because their reveal never arrived.
    #[must_use]
    pub fn expired_count(&self) -> u64 {
        self.expired
    }

    fn on_announce(&mut self, index: u64, mac: &Mac80, local_time: SimTime) -> TeslaPpOutcome {
        if !self.params.safety().is_safe(index, local_time) {
            return TeslaPpOutcome::AnnouncementUnsafe { index };
        }
        let sm = self.self_mac(mac);
        self.stored.push((index, sm));
        TeslaPpOutcome::AnnouncementStored { index }
    }

    fn on_reveal(
        &mut self,
        index: u64,
        message: &[u8],
        key: &Key,
        pre: Option<&TeslaPpPrecompute>,
    ) -> TeslaPpOutcome {
        // A precompute pairs with exactly one (index, key); anything else
        // downgrades to the scalar computation.
        let pre =
            pre.filter(|p| p.index == index && dap_crypto::ct_eq(p.key.as_bytes(), key.as_bytes()));
        // Weak authentication: the key must extend the chain. The
        // image-assisted walk mutates and rejects identically to the
        // plain one (`accept_recovering` shares `accept`'s semantics).
        let accepted = match pre {
            Some(p) => self
                .anchor
                .accept_recovering_with_image(key, index, &p.chain_image)
                .map(|_| ()),
            None => self.anchor.accept(key, index).map(|_| ()),
        };
        match accepted {
            Ok(()) => {}
            Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {}
            Err(_) => return TeslaPpOutcome::KeyRejected { index },
        }
        // Strong authentication: recompute MAC → self-MAC → search store.
        let (prepared, expect) = match pre {
            Some(p) => (p.prepared, p.expect),
            None => {
                let prepared = self
                    .cached_interval_key(index, key)
                    .unwrap_or_else(|| prepare_chain_key(key));
                let expect = self.self_mac(&mac80_prepared(&prepared, message));
                (prepared, expect)
            }
        };
        self.interval_key = Some((index, *key, prepared));
        let before = self.stored.len();
        self.stored
            .retain(|(i, sm)| !(*i == index && *sm == expect));
        if self.stored.len() < before {
            self.authenticated.push((index, message.to_owned()));
            TeslaPpOutcome::Authenticated {
                index,
                message: message.to_owned(),
            }
        } else {
            TeslaPpOutcome::NoMatchingAnnouncement { index }
        }
    }

    /// Messages authenticated so far.
    #[must_use]
    pub fn authenticated(&self) -> &[(u64, Vec<u8>)] {
        &self.authenticated
    }

    /// Stored (unresolved) announcements.
    #[must_use]
    pub fn stored_count(&self) -> usize {
        self.stored.len()
    }

    /// Memory the store actually occupies, in bits.
    #[must_use]
    pub fn stored_bits(&self) -> u64 {
        self.stored.len() as u64 * u64::from(STORED_BITS_PER_ENTRY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_simnet::SimDuration;

    fn setup() -> (TeslaPpSender, TeslaPpReceiver) {
        let params = TeslaParams::new(SimDuration(100), 1, 0);
        let sender = TeslaPpSender::new(b"s", 32, params);
        let receiver = TeslaPpReceiver::new(sender.bootstrap(), b"rx");
        (sender, receiver)
    }

    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn announce_then_reveal_authenticates() {
        let (mut sender, mut receiver) = setup();
        let ann = sender.announce(1, b"v2v alert").unwrap();
        assert_eq!(
            receiver.on_message(&ann, during(1)),
            TeslaPpOutcome::AnnouncementStored { index: 1 }
        );
        let rev = sender.reveal(1).unwrap();
        match receiver.on_message(&rev, during(2)) {
            TeslaPpOutcome::Authenticated { index: 1, message } => {
                assert_eq!(&message[..], b"v2v alert");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(receiver.stored_count(), 0);
    }

    #[test]
    fn reveal_without_announcement_fails() {
        let (mut sender, mut receiver) = setup();
        sender.announce(1, b"m").unwrap();
        let rev = sender.reveal(1).unwrap();
        // Announcement was never delivered.
        assert_eq!(
            receiver.on_message(&rev, during(2)),
            TeslaPpOutcome::NoMatchingAnnouncement { index: 1 }
        );
    }

    #[test]
    fn forged_message_in_reveal_fails() {
        let (mut sender, mut receiver) = setup();
        let ann = sender.announce(1, b"real").unwrap();
        receiver.on_message(&ann, during(1));
        let rev = match sender.reveal(1).unwrap() {
            TeslaPpMessage::Reveal { index, key, .. } => TeslaPpMessage::Reveal {
                index,
                message: b"fake".to_vec(),
                key,
            },
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            receiver.on_message(&rev, during(2)),
            TeslaPpOutcome::NoMatchingAnnouncement { index: 1 }
        );
        assert!(receiver.authenticated().is_empty());
    }

    #[test]
    fn forged_key_rejected_weakly() {
        let (mut sender, mut receiver) = setup();
        let ann = sender.announce(1, b"real").unwrap();
        receiver.on_message(&ann, during(1));
        let mut rng = dap_simnet::SimRng::new(3);
        let rev = TeslaPpMessage::Reveal {
            index: 1,
            message: b"real".to_vec(),
            key: Key::random(&mut rng),
        };
        assert_eq!(
            receiver.on_message(&rev, during(2)),
            TeslaPpOutcome::KeyRejected { index: 1 }
        );
    }

    #[test]
    fn stale_announcement_dropped() {
        let (mut sender, mut receiver) = setup();
        let ann = sender.announce(1, b"m").unwrap();
        assert_eq!(
            receiver.on_message(&ann, during(2)),
            TeslaPpOutcome::AnnouncementUnsafe { index: 1 }
        );
        assert_eq!(receiver.stored_count(), 0);
    }

    #[test]
    fn flooded_announcements_cost_only_small_entries() {
        let (mut sender, mut receiver) = setup();
        // 100 forged announcements (random MACs) + 1 real.
        let mut rng = dap_simnet::SimRng::new(4);
        for _ in 0..100 {
            let forged = TeslaPpMessage::MacAnnounce {
                index: 1,
                mac: Mac80::from_slice(&{
                    let mut b = [0u8; 10];
                    rng.fill_bytes(&mut b);
                    b
                })
                .unwrap(),
            };
            receiver.on_message(&forged, during(1));
        }
        let ann = sender.announce(1, b"genuine").unwrap();
        receiver.on_message(&ann, during(1));
        assert_eq!(receiver.stored_count(), 101);
        assert_eq!(receiver.stored_bits(), 101 * 112);
        // The reveal still authenticates despite the flood (TESLA++ has
        // no buffer cap; the flood costs memory, not correctness).
        let rev = sender.reveal(1).unwrap();
        assert!(matches!(
            receiver.on_message(&rev, during(2)),
            TeslaPpOutcome::Authenticated { .. }
        ));
        // The 100 forged entries remain stored — the memory-DoS exposure
        // DAP's bounded buffers remove.
        assert_eq!(receiver.stored_count(), 100);
    }

    #[test]
    fn storage_constants_match_paper_and_implementation() {
        assert_eq!(PAPER_STORED_BITS_PER_ENTRY, 280);
        assert_eq!(STORED_BITS_PER_ENTRY, 112);
    }

    #[test]
    fn message_sizes() {
        let (mut sender, _) = setup();
        let ann = sender.announce(1, &[0u8; 25]).unwrap();
        assert_eq!(ann.size_bits(), 112);
        let rev = sender.reveal(1).unwrap();
        assert_eq!(rev.size_bits(), 200 + 80 + 32);
    }

    #[test]
    fn stale_entries_are_garbage_collected() {
        let (mut sender, mut receiver) = setup();
        let ann = sender.announce(1, b"m").unwrap();
        receiver.on_message(&ann, during(1));
        assert_eq!(receiver.stored_count(), 1);
        // The reveal never arrives. Processing any message two intervals
        // later purges the stale entry.
        let a3 = sender.announce(3, b"m3").unwrap();
        receiver.on_message(&a3, during(3));
        assert_eq!(receiver.expired_count(), 1);
        assert_eq!(receiver.stored_count(), 1); // only interval 3's entry
                                                // A late reveal for interval 1 now finds nothing.
        let rev = sender.reveal(1).unwrap();
        assert_eq!(
            receiver.on_message(&rev, during(3)),
            TeslaPpOutcome::NoMatchingAnnouncement { index: 1 }
        );
    }

    #[test]
    fn gc_never_races_the_reveal() {
        // The entry must survive through the whole reveal interval.
        let (mut sender, mut receiver) = setup();
        let ann = sender.announce(1, b"m").unwrap();
        receiver.on_message(&ann, during(1));
        // Reveal arriving at the very end of interval 2 still matches.
        let rev = sender.reveal(1).unwrap();
        let late = SimTime(199);
        assert!(matches!(
            receiver.on_message(&rev, late),
            TeslaPpOutcome::Authenticated { .. }
        ));
        assert_eq!(receiver.expired_count(), 0);
    }

    #[test]
    fn precomputed_reveals_match_scalar_path_exactly() {
        let (mut sender, receiver) = setup();
        let mut scalar_rx = receiver.clone();
        let mut batch_rx = receiver;

        let mut msgs: Vec<(TeslaPpMessage, SimTime)> = Vec::new();
        for i in 1..=5u64 {
            let ann = sender.announce(i, format!("m{i}").as_bytes()).unwrap();
            msgs.push((ann, during(i)));
            msgs.push((sender.reveal(i).unwrap(), during(i + 1)));
        }
        // Tamper with one reveal's message, forge another's key.
        if let TeslaPpMessage::Reveal { message, .. } = &mut msgs[5].0 {
            *message = b"evil".to_vec();
        }
        if let TeslaPpMessage::Reveal { key, .. } = &mut msgs[7].0 {
            *key = Key::derive(b"forged", b"k");
        }

        let scalar: Vec<TeslaPpOutcome> = msgs
            .iter()
            .map(|(m, t)| scalar_rx.on_message(m, *t))
            .collect();

        let refs: Vec<(&TeslaPpReceiver, &TeslaPpMessage)> =
            msgs.iter().map(|(m, _)| (&batch_rx as &_, m)).collect();
        let pres = TeslaPpReceiver::precompute_reveals(&refs);
        let batched: Vec<TeslaPpOutcome> = msgs
            .iter()
            .zip(pres.iter())
            .map(|((m, t), pre)| match pre {
                Some(p) => batch_rx.on_message_precomputed(m, *t, p),
                None => batch_rx.on_message(m, *t),
            })
            .collect();

        assert_eq!(scalar, batched);
        assert_eq!(scalar_rx.authenticated(), batch_rx.authenticated());
        assert_eq!(scalar_rx.stored_count(), batch_rx.stored_count());
        assert_eq!(scalar_rx.expired_count(), batch_rx.expired_count());
    }

    #[test]
    fn reveal_twice_returns_none() {
        let (mut sender, _) = setup();
        sender.announce(1, b"m").unwrap();
        assert!(sender.reveal(1).is_some());
        assert!(sender.reveal(1).is_none());
    }

    #[test]
    fn announce_beyond_horizon_is_typed_error() {
        let (mut sender, _) = setup();
        assert_eq!(
            sender.announce(33, b"x").unwrap_err(),
            ChainExhausted {
                index: 33,
                horizon: 32
            }
        );
    }
}
