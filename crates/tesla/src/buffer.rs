//! Multi-buffer random selection — the DoS-mitigation shared by
//! multi-level μTESLA (for CDMs) and DAP (for μMACs).
//!
//! A receiver that must buffer unverifiable packets is a memory-DoS
//! target: an attacker floods forged copies and the authentic one is
//! crowded out. The countermeasure is **reservoir sampling** over `m`
//! buffers: the `k`-th copy offered within a scope (e.g. one interval) is
//!
//! * stored directly while an empty buffer exists (`k ≤ m`), and
//! * otherwise kept with probability `m/k`, replacing a uniformly random
//!   occupant.
//!
//! The classic invariant follows by induction: after `n` offers, *every*
//! copy — in particular the authentic one — survives with probability
//! exactly `m/n`, so the attacker gains nothing by reordering or timing
//! its flood. With forged fraction `p`, the receiver ends up holding at
//! least one authentic copy with probability `P = 1 − p^m` (§IV-A).
//!
//! (Algorithm 2 in the paper writes the occupancy test as `k < m`; the
//! standard reservoir scheme stores while `k ≤ m`. We implement the
//! standard scheme — the paper's own survival analysis `m/n` assumes it.)

use dap_simnet::SimRng;

/// What happened to an offered copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfferOutcome {
    /// Stored into a previously empty buffer.
    StoredEmpty,
    /// Stored by evicting a random previous occupant.
    StoredReplaced,
    /// Discarded by the sampling coin.
    Dropped,
}

impl OfferOutcome {
    /// `true` when the copy was kept.
    #[must_use]
    pub fn is_stored(self) -> bool {
        !matches!(self, OfferOutcome::Dropped)
    }
}

/// An `m`-buffer pool with uniform-survival reservoir semantics.
///
/// ```
/// use dap_tesla::ReservoirBuffer;
/// use dap_simnet::SimRng;
///
/// let mut rng = SimRng::new(7);
/// let mut pool: ReservoirBuffer<u32> = ReservoirBuffer::new(2);
/// for copy in 0..10 {
///     pool.offer(copy, &mut rng);
/// }
/// assert_eq!(pool.len(), 2);
/// assert_eq!(pool.offered(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ReservoirBuffer<T> {
    capacity: usize,
    entries: Vec<T>,
    offered: u64,
}

impl<T> ReservoirBuffer<T> {
    /// Creates a pool with `capacity` buffers (the paper's `m`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one buffer");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            offered: 0,
        }
    }

    /// Offers one copy; see the module docs for the keep probability.
    pub fn offer(&mut self, item: T, rng: &mut SimRng) -> OfferOutcome {
        self.offered += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(item);
            return OfferOutcome::StoredEmpty;
        }
        // k-th copy survives with probability m/k.
        let keep = rng.below(self.offered) < self.capacity as u64;
        if keep {
            let victim = rng.below(self.capacity as u64) as usize;
            self.entries[victim] = item;
            OfferOutcome::StoredReplaced
        } else {
            OfferOutcome::Dropped
        }
    }

    /// Empties the pool and resets the offer counter (start of a new
    /// interval / scope). Returns the evicted entries.
    pub fn reset(&mut self) -> Vec<T> {
        self.offered = 0;
        std::mem::take(&mut self.entries)
    }

    /// Number of buffers (`m`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied buffers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no buffer is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copies offered in the current scope (the paper's `k` after the
    /// last offer, `n` at scope end).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Iterates over the stored entries.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.entries.iter()
    }

    /// Whether any stored entry satisfies `pred`.
    #[must_use]
    pub fn any(&self, pred: impl FnMut(&T) -> bool) -> bool {
        self.entries.iter().any(pred)
    }

    /// Removes and returns every entry matching `pred`, freeing its
    /// buffer (DAP consumes an interval's candidates when the reveal
    /// arrives).
    pub fn extract(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for entry in self.entries.drain(..) {
            if pred(&entry) {
                taken.push(entry);
            } else {
                kept.push(entry);
            }
        }
        self.entries = kept;
        taken
    }

    /// Drops every entry matching `pred` (garbage collection of stale
    /// candidates). Returns how many were dropped.
    pub fn purge(&mut self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(e));
        before - self.entries.len()
    }

    /// Restarts the per-scope offer counter without touching stored
    /// entries — Algorithm 2 counts "the k-th copy received in `I_x`",
    /// i.e. per receiving interval.
    pub fn reset_counter(&mut self) {
        self.offered = 0;
    }

    /// Changes the buffer count, truncating stored entries if shrinking.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "buffer pool needs at least one buffer");
        self.capacity = capacity;
        self.entries.truncate(capacity);
    }
}

impl<'a, T> IntoIterator for &'a ReservoirBuffer<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// The naive alternative to reservoir sampling: keep the first `m`
/// copies, drop everything after.
///
/// This is the ablation baseline for the multi-buffer *random* selection:
/// against an attacker who bursts forged copies at the start of each
/// interval (the optimal flooding strategy), first-come keeps **zero**
/// authentic copies once `m` forged ones have landed, while the reservoir
/// still keeps each copy with probability `m/n` regardless of order. The
/// `ablation` experiment quantifies the gap.
#[derive(Debug, Clone)]
pub struct FirstComeBuffer<T> {
    capacity: usize,
    entries: Vec<T>,
    offered: u64,
}

impl<T> FirstComeBuffer<T> {
    /// Creates a pool with `capacity` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one buffer");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            offered: 0,
        }
    }

    /// Offers one copy; kept only while an empty buffer exists.
    pub fn offer(&mut self, item: T) -> OfferOutcome {
        self.offered += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(item);
            OfferOutcome::StoredEmpty
        } else {
            OfferOutcome::Dropped
        }
    }

    /// Empties the pool and resets the offer counter.
    pub fn reset(&mut self) -> Vec<T> {
        self.offered = 0;
        std::mem::take(&mut self.entries)
    }

    /// Occupied buffers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copies offered since the last reset.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Whether any stored entry satisfies `pred`.
    #[must_use]
    pub fn any(&self, pred: impl FnMut(&T) -> bool) -> bool {
        self.entries.iter().any(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_empty_buffers_first() {
        let mut rng = SimRng::new(1);
        let mut pool = ReservoirBuffer::new(3);
        for i in 0..3 {
            assert_eq!(pool.offer(i, &mut rng), OfferOutcome::StoredEmpty);
        }
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut rng = SimRng::new(2);
        let mut pool = ReservoirBuffer::new(4);
        for i in 0..1000 {
            pool.offer(i, &mut rng);
            assert!(pool.len() <= 4);
        }
        assert_eq!(pool.offered(), 1000);
    }

    /// Every offered copy must survive with probability m/n — the paper's
    /// core DoS-resistance claim. Check the first and the last copy.
    #[test]
    fn survival_probability_is_uniform() {
        let m = 5usize;
        let n = 50u32;
        let trials = 20_000;
        let mut first_survived = 0u32;
        let mut last_survived = 0u32;
        let mut rng = SimRng::new(3);
        for _ in 0..trials {
            let mut pool = ReservoirBuffer::new(m);
            for i in 0..n {
                pool.offer(i, &mut rng);
            }
            if pool.any(|&x| x == 0) {
                first_survived += 1;
            }
            if pool.any(|&x| x == n - 1) {
                last_survived += 1;
            }
        }
        let expect = m as f64 / f64::from(n);
        for (label, hits) in [("first", first_survived), ("last", last_survived)] {
            let rate = f64::from(hits) / f64::from(trials);
            assert!(
                (rate - expect).abs() < 0.01,
                "{label} copy survival {rate:.4}, expected {expect:.4}"
            );
        }
    }

    /// P = 1 − p^m: with forged fraction p, the authentic copy is present
    /// with probability 1 − p^m. Empirically verify at p = 0.8, m = 5.
    #[test]
    fn authentic_presence_matches_one_minus_p_to_m() {
        let m = 5usize;
        let p = 0.8f64;
        let authentic_copies = 20u32;
        let forged_copies = 80u32; // p = 80/100
        let trials = 20_000;
        let mut present = 0u32;
        let mut rng = SimRng::new(4);
        for _ in 0..trials {
            let mut pool = ReservoirBuffer::new(m);
            // Interleave deterministically; reservoir sampling is
            // order-insensitive.
            let mut f = 0;
            let mut a = 0;
            for k in 0..(authentic_copies + forged_copies) {
                if k % 5 == 0 && a < authentic_copies {
                    pool.offer(true, &mut rng); // authentic
                    a += 1;
                } else {
                    pool.offer(false, &mut rng);
                    f += 1;
                }
            }
            assert_eq!((a, f), (20, 80));
            if pool.any(|&x| x) {
                present += 1;
            }
        }
        let rate = f64::from(present) / f64::from(trials);
        // Exact value: the reservoir is a uniform random m-subset, so the
        // authentic copy is absent with hypergeometric probability
        // C(80,5)/C(100,5). The paper's 1 − p^m is its large-n limit.
        let absent_exact: f64 = (0..m)
            .map(|k| (80.0 - k as f64) / (100.0 - k as f64))
            .product();
        let exact = 1.0 - absent_exact;
        assert!(
            (rate - exact).abs() < 0.012,
            "authentic present {rate:.4}, exact {exact:.4}"
        );
        let paper = 1.0 - p.powi(m as i32);
        assert!(
            (exact - paper).abs() < 0.02,
            "paper approximation drifted: exact {exact:.4} vs 1-p^m {paper:.4}"
        );
    }

    #[test]
    fn reset_clears_and_returns_entries() {
        let mut rng = SimRng::new(5);
        let mut pool = ReservoirBuffer::new(2);
        pool.offer(1, &mut rng);
        pool.offer(2, &mut rng);
        let evicted = pool.reset();
        assert_eq!(evicted.len(), 2);
        assert!(pool.is_empty());
        assert_eq!(pool.offered(), 0);
    }

    #[test]
    fn iteration_sees_stored_entries() {
        let mut rng = SimRng::new(6);
        let mut pool = ReservoirBuffer::new(3);
        pool.offer(10, &mut rng);
        pool.offer(20, &mut rng);
        let sum: i32 = pool.iter().sum();
        assert_eq!(sum, 30);
        let sum2: i32 = (&pool).into_iter().sum();
        assert_eq!(sum2, 30);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_capacity_panics() {
        let _: ReservoirBuffer<u8> = ReservoirBuffer::new(0);
    }

    #[test]
    fn extract_removes_matching_and_frees_space() {
        let mut rng = SimRng::new(7);
        let mut pool = ReservoirBuffer::new(2);
        pool.offer(1, &mut rng);
        pool.offer(2, &mut rng);
        let taken = pool.extract(|&x| x == 1);
        assert_eq!(taken, vec![1]);
        assert_eq!(pool.len(), 1);
        // Freed buffer is filled directly by the next offer.
        assert_eq!(pool.offer(3, &mut rng), OfferOutcome::StoredEmpty);
    }

    #[test]
    fn purge_drops_matching() {
        let mut rng = SimRng::new(8);
        let mut pool = ReservoirBuffer::new(4);
        for i in 0..4 {
            pool.offer(i, &mut rng);
        }
        assert_eq!(pool.purge(|&x| x % 2 == 0), 2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn reset_counter_keeps_entries() {
        let mut rng = SimRng::new(9);
        let mut pool = ReservoirBuffer::new(2);
        pool.offer(1, &mut rng);
        pool.offer(2, &mut rng);
        pool.offer(3, &mut rng);
        assert_eq!(pool.offered(), 3);
        pool.reset_counter();
        assert_eq!(pool.offered(), 0);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn set_capacity_truncates() {
        let mut rng = SimRng::new(10);
        let mut pool = ReservoirBuffer::new(4);
        for i in 0..4 {
            pool.offer(i, &mut rng);
        }
        pool.set_capacity(2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.capacity(), 2);
        pool.set_capacity(8);
        assert_eq!(pool.capacity(), 8);
        assert_eq!(pool.offer(9, &mut rng), OfferOutcome::StoredEmpty);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn set_capacity_zero_panics() {
        let mut pool: ReservoirBuffer<u8> = ReservoirBuffer::new(1);
        pool.set_capacity(0);
    }

    #[test]
    fn first_come_keeps_only_the_earliest() {
        let mut pool = FirstComeBuffer::new(2);
        assert_eq!(pool.offer(1), OfferOutcome::StoredEmpty);
        assert_eq!(pool.offer(2), OfferOutcome::StoredEmpty);
        assert_eq!(pool.offer(3), OfferOutcome::Dropped);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.offered(), 3);
        assert!(pool.any(|&x| x == 1));
        assert!(!pool.any(|&x| x == 3));
        let evicted = pool.reset();
        assert_eq!(evicted, vec![1, 2]);
        assert!(pool.is_empty());
    }

    /// The ablation headline: an early-burst flood starves first-come
    /// completely while the reservoir keeps its m/n guarantee.
    #[test]
    fn early_burst_starves_first_come_but_not_reservoir() {
        let m = 3;
        let forged_first = 20u32;
        let trials = 4000;
        let mut rng = SimRng::new(11);
        let mut reservoir_kept = 0u32;
        let mut first_come_kept = 0u32;
        for _ in 0..trials {
            let mut r = ReservoirBuffer::new(m);
            let mut f = FirstComeBuffer::new(m);
            for i in 0..forged_first {
                r.offer((false, i), &mut rng);
                f.offer((false, i));
            }
            r.offer((true, 0), &mut rng);
            f.offer((true, 0));
            if r.any(|e| e.0) {
                reservoir_kept += 1;
            }
            if f.any(|e| e.0) {
                first_come_kept += 1;
            }
        }
        assert_eq!(first_come_kept, 0, "first-come must be starved");
        let rate = f64::from(reservoir_kept) / f64::from(trials);
        let expect = m as f64 / f64::from(forged_first + 1);
        assert!((rate - expect).abs() < 0.02, "reservoir {rate} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn first_come_zero_capacity_panics() {
        let _: FirstComeBuffer<u8> = FirstComeBuffer::new(0);
    }

    #[test]
    fn outcome_is_stored() {
        assert!(OfferOutcome::StoredEmpty.is_stored());
        assert!(OfferOutcome::StoredReplaced.is_stored());
        assert!(!OfferOutcome::Dropped.is_stored());
    }
}
