//! Multi-level μTESLA (Liu & Ning, ACM TECS 2004) with the linked-chain
//! layout of the paper's Fig. 2.
//!
//! Two key layers cover a long deployment without unreasonably long
//! chains:
//!
//! * a **high-level chain** `K_1, K_2, …` (domain `F0`) whose intervals
//!   are long (`n` low-level intervals each);
//! * per high-level interval `i`, a **low-level chain**
//!   `K_{i,1}, …, K_{i,n}` (domain `F1`) that authenticates the actual
//!   data traffic.
//!
//! The low-level chain heads are *linked* to the high-level chain through
//! `F01` ([`Linkage`]): originally `K_{i,n} = F01(K_{i+1})`, in EFTP
//! `K_{i,n} = F01(K_i)`. Commitments of upcoming low-level chains are
//! distributed in **CDM** (commitment distribution) messages:
//!
//! ```text
//! CDM_i = ( i | K_{i+2,0} | MAC_{K'_i}(i | K_{i+2,0}) | K_{i−1} )
//! ```
//!
//! `CDM_i` can only be verified once `K_i` is disclosed (in `CDM_{i+1}`),
//! so receivers must buffer CDM candidates — a memory-DoS target defended
//! by **multi-buffer random selection** ([`crate::buffer`]).
//!
//! When every copy of a CDM is lost (or flooded out), the chain linkage
//! provides **recovery**: once `K_{i}` (EFTP) or `K_{i+1}` (original) is
//! disclosed, the receiver derives the low-level head by `F01` and with it
//! the whole chain — EFTP thus recovers exactly one high-level interval
//! earlier, the claim of §III-A reproduced by the `recovery` bench.

use std::collections::BTreeMap;

use dap_crypto::mac::{mac80, verify_mac80, Mac80};
use dap_crypto::oneway::{one_way, one_way_iter, Domain};
use dap_crypto::{ChainAnchor, ChainExhausted, ChainStore, Key, KeyChain, PebbledChain};
use dap_simnet::{IntervalSchedule, SimDuration, SimRng, SimTime};

use crate::buffer::ReservoirBuffer;
use crate::params::SafetyCheck;

/// How low-level chain heads are tied to the high-level chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Linkage {
    /// `K_{i,n} = F01(K_{i+1})` — the dashed line in Fig. 2; recovery of
    /// chain `i` needs `K_{i+1}`, disclosed in `CDM_{i+2}`.
    Original,
    /// `K_{i,n} = F01(K_i)` — EFTP's solid line; recovery needs only
    /// `K_i`, disclosed in `CDM_{i+1}`: one high-level interval sooner.
    Eftp,
}

impl Linkage {
    /// Which high-level key index recovers low-level chain `i`.
    #[must_use]
    pub fn recovery_key_index(self, chain: u64) -> u64 {
        match self {
            Linkage::Original => chain + 1,
            Linkage::Eftp => chain,
        }
    }

    /// Which low-level chain the high-level key `k` recovers.
    #[must_use]
    pub fn recoverable_chain(self, key_index: u64) -> Option<u64> {
        match self {
            Linkage::Original => key_index.checked_sub(1),
            Linkage::Eftp => Some(key_index),
        }
    }
}

/// Parameters of a multi-level deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiLevelParams {
    /// Length of one low-level interval, in ticks.
    pub low_interval: SimDuration,
    /// Low-level intervals per high-level interval (`n`).
    pub low_per_high: u32,
    /// Usable high-level chain length.
    pub high_chain_len: usize,
    /// Low-level key disclosure delay, in low-level intervals.
    pub low_disclosure_delay: u64,
    /// Loose-synchronisation bound `Δ`, in ticks.
    pub max_clock_offset: u64,
    /// Buffers for CDM multi-buffer random selection (`m`).
    pub cdm_buffers: usize,
    /// Chain linkage variant.
    pub linkage: Linkage,
}

impl MultiLevelParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics when any count is zero.
    #[must_use]
    pub fn new(
        low_interval: SimDuration,
        low_per_high: u32,
        high_chain_len: usize,
        cdm_buffers: usize,
        linkage: Linkage,
    ) -> Self {
        assert!(low_interval.ticks() > 0, "low interval must be positive");
        assert!(
            low_per_high > 0,
            "need at least one low interval per high interval"
        );
        assert!(high_chain_len > 0, "high chain must be non-empty");
        assert!(cdm_buffers > 0, "need at least one CDM buffer");
        Self {
            low_interval,
            low_per_high,
            high_chain_len,
            low_disclosure_delay: 1,
            max_clock_offset: 0,
            cdm_buffers,
            linkage,
        }
    }

    /// Length of one high-level interval.
    #[must_use]
    pub fn high_interval(&self) -> SimDuration {
        self.low_interval
            .saturating_mul(u64::from(self.low_per_high))
    }

    /// The high-level interval grid.
    #[must_use]
    pub fn high_schedule(&self) -> IntervalSchedule {
        IntervalSchedule::new(SimTime::ZERO, self.high_interval())
    }

    /// The global low-level interval grid.
    #[must_use]
    pub fn low_schedule(&self) -> IntervalSchedule {
        IntervalSchedule::new(SimTime::ZERO, self.low_interval)
    }

    /// Global low-level index of `(high, low)` (both 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `low` is 0 or exceeds `low_per_high`.
    #[must_use]
    pub fn global_low_index(&self, high: u64, low: u32) -> u64 {
        assert!(
            (1..=self.low_per_high).contains(&low),
            "low index {low} out of 1..={}",
            self.low_per_high
        );
        (high - 1) * u64::from(self.low_per_high) + u64::from(low)
    }

    /// Inverse of [`global_low_index`](Self::global_low_index).
    #[must_use]
    pub fn split_low_index(&self, global: u64) -> (u64, u32) {
        let n = u64::from(self.low_per_high);
        let high = (global - 1) / n + 1;
        let low = ((global - 1) % n + 1) as u32;
        (high, low)
    }

    /// Safe-packet test for CDMs (`d = 1` high-level interval).
    #[must_use]
    pub fn high_safety(&self) -> SafetyCheck {
        SafetyCheck {
            schedule: self.high_schedule(),
            disclosure_delay: 1,
            max_clock_offset: self.max_clock_offset,
        }
    }

    /// Safe-packet test for data packets (on the global low grid).
    #[must_use]
    pub fn low_safety(&self) -> SafetyCheck {
        SafetyCheck {
            schedule: self.low_schedule(),
            disclosure_delay: self.low_disclosure_delay,
            max_clock_offset: self.max_clock_offset,
        }
    }
}

/// A commitment distribution message.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdm {
    /// High-level interval the CDM belongs to (MAC key index).
    pub index: u64,
    /// Commitment `K_{index+2, 0}` of the low-level chain two high-level
    /// intervals ahead.
    pub low_commitment: Key,
    /// `MAC_{K'_index}(index | low_commitment)`.
    pub mac: Mac80,
    /// The high-level key `K_{index−1}`, when it exists.
    pub disclosed_high: Option<(u64, Key)>,
}

impl Cdm {
    /// The MAC input encoding for a CDM body.
    #[must_use]
    pub fn mac_input(index: u64, low_commitment: &Key) -> Vec<u8> {
        let mut input = Vec::with_capacity(8 + Key::LEN);
        input.extend_from_slice(&index.to_be_bytes());
        input.extend_from_slice(low_commitment.as_bytes());
        input
    }

    /// Airtime size in bits.
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        let mut bits = dap_crypto::sizes::INDEX_BITS
            + dap_crypto::sizes::KEY_BITS
            + dap_crypto::sizes::MAC_BITS;
        if self.disclosed_high.is_some() {
            bits += dap_crypto::sizes::INDEX_BITS + dap_crypto::sizes::KEY_BITS;
        }
        bits
    }
}

/// A low-level data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct LowPacket {
    /// High-level interval.
    pub high: u64,
    /// Low-level interval within it (1-based).
    pub low: u32,
    /// Payload.
    pub message: Vec<u8>,
    /// `MAC_{K'_{high,low}}(message)`.
    pub mac: Mac80,
}

/// A low-level key disclosure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowKeyDisclosure {
    /// High-level interval of the disclosed key.
    pub high: u64,
    /// Low-level index of the disclosed key.
    pub low: u32,
    /// The key `K_{high, low}`.
    pub key: Key,
}

/// Receiver bootstrap: the high-level commitment plus the low-level
/// commitments for the first two high-level intervals (their CDMs would
/// have predated the deployment).
#[derive(Debug, Clone, PartialEq)]
pub struct MlBootstrap {
    /// High-level chain commitment `K_0`.
    pub high_commitment: Key,
    /// `(high interval, low commitment K_{i,0})` pairs preloaded at setup.
    pub preloaded_low_commitments: Vec<(u64, Key)>,
    /// Deployment parameters.
    pub params: MultiLevelParams,
}

/// The base-station side, generic over how the high-level chain is
/// stored ([`KeyChain`] by default, [`PebbledChain`] for long horizons).
#[derive(Debug, Clone)]
pub struct MultiLevelSender<C: ChainStore = KeyChain> {
    high_chain: C,
    params: MultiLevelParams,
}

impl MultiLevelSender {
    /// Creates a sender; the high chain and, through the linkage, every
    /// low chain derive deterministically from `seed`.
    #[must_use]
    pub fn new(seed: &[u8], params: MultiLevelParams) -> Self {
        // One extra key so the Original linkage (which looks one interval
        // ahead) covers the full horizon.
        let high_chain = KeyChain::generate(seed, params.high_chain_len + 2, Domain::F0);
        Self { high_chain, params }
    }
}

impl MultiLevelSender<PebbledChain> {
    /// Like [`MultiLevelSender::new`], but the high-level chain is held
    /// as O(log n) pebbles — identical CDMs and packets for the same
    /// `seed`. Low-level chains are short-lived and stay materialised.
    #[must_use]
    pub fn new_pebbled(seed: &[u8], params: MultiLevelParams) -> Self {
        let high_chain = PebbledChain::generate(seed, params.high_chain_len + 2, Domain::F0);
        Self { high_chain, params }
    }
}

impl<C: ChainStore> MultiLevelSender<C> {
    /// Deployment parameters.
    #[must_use]
    pub fn params(&self) -> &MultiLevelParams {
        &self.params
    }

    /// Crate-internal: the high-level chain key `K_i` (EDRP re-MACs CDMs
    /// with a different input encoding).
    pub(crate) fn high_chain_key(&self, i: u64) -> Option<Key> {
        self.high_chain.key(i as usize)
    }

    /// The low-level chain of high-level interval `i`, or `None` past the
    /// horizon.
    #[must_use]
    pub fn low_chain(&self, i: u64) -> Option<KeyChain> {
        let link_index = self.params.linkage.recovery_key_index(i);
        let link_key = self.high_chain.key(link_index as usize)?;
        let head = one_way(Domain::F01, &link_key);
        Some(KeyChain::from_head(
            head,
            self.params.low_per_high as usize,
            Domain::F1,
        ))
    }

    /// Receiver bootstrap record.
    #[must_use]
    pub fn bootstrap(&self) -> MlBootstrap {
        let preloaded = (1..=2)
            .filter_map(|i| Some((i, *self.low_chain(i)?.commitment())))
            .collect();
        MlBootstrap {
            high_commitment: self.high_chain.commitment(),
            preloaded_low_commitments: preloaded,
            params: self.params,
        }
    }

    /// Builds `CDM_i`, or `None` when `i` is too close to the horizon for
    /// the chain-ahead commitment to exist.
    #[must_use]
    pub fn cdm(&self, i: u64) -> Option<Cdm> {
        let key = self.high_chain.key(i as usize)?;
        let committed_chain = self.low_chain(i + 2)?;
        let low_commitment = *committed_chain.commitment();
        let mac = mac80(&key, &Cdm::mac_input(i, &low_commitment));
        let disclosed_high = i
            .checked_sub(1)
            .filter(|j| *j >= 1)
            .and_then(|j| self.high_chain.key(j as usize).map(|k| (j, k)));
        Some(Cdm {
            index: i,
            low_commitment,
            mac,
            disclosed_high,
        })
    }

    /// Builds the data packet for `(high, low)`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when `high` lies beyond the high-chain
    /// horizon or `low` exceeds the per-interval chain length — an
    /// operational end-of-chain condition, not a bug.
    pub fn data_packet(
        &self,
        high: u64,
        low: u32,
        message: &[u8],
    ) -> Result<LowPacket, ChainExhausted> {
        let chain = self.low_chain(high).ok_or(ChainExhausted {
            index: high,
            horizon: self.params.high_chain_len as u64,
        })?;
        let key = chain.key(low as usize).ok_or(ChainExhausted {
            index: u64::from(low),
            horizon: u64::from(self.params.low_per_high),
        })?;
        Ok(LowPacket {
            high,
            low,
            message: message.to_vec(),
            mac: mac80(key, message),
        })
    }

    /// The low-level key disclosure to broadcast during `(high, low)`
    /// (discloses the key `low_disclosure_delay` low intervals earlier),
    /// or `None` at the very start of the deployment.
    #[must_use]
    pub fn low_disclosure(&self, high: u64, low: u32) -> Option<LowKeyDisclosure> {
        let current = self.params.global_low_index(high, low);
        let target = current.checked_sub(self.params.low_disclosure_delay)?;
        if target == 0 {
            return None;
        }
        let (th, tl) = self.params.split_low_index(target);
        let chain = self.low_chain(th)?;
        Some(LowKeyDisclosure {
            high: th,
            low: tl,
            key: *chain.key(tl as usize)?,
        })
    }
}

/// How a low-level chain commitment became trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitmentSource {
    /// Preloaded at bootstrap.
    Bootstrap,
    /// Distributed by an authenticated CDM.
    Cdm,
    /// Derived from a disclosed high-level key through the `F01` linkage
    /// (the EFTP/original recovery path).
    ChainRecovery,
}

/// Events emitted by the receiver.
#[derive(Debug, Clone, PartialEq)]
pub enum MlEvent {
    /// A CDM failed the high-level safe-packet test.
    CdmUnsafe {
        /// Claimed high-level interval.
        index: u64,
    },
    /// A high-level key verified against the chain.
    HighKeyAccepted {
        /// Key interval.
        index: u64,
        /// One-way steps walked from the previous anchor.
        steps: u64,
    },
    /// A high-level key failed chain verification.
    HighKeyRejected {
        /// Claimed interval.
        index: u64,
    },
    /// A buffered CDM verified and its commitment was accepted.
    CdmAuthenticated {
        /// High-level interval of the CDM.
        index: u64,
    },
    /// A low-level chain commitment became available.
    CommitmentInstalled {
        /// The chain's high-level interval.
        high: u64,
        /// How it was obtained.
        source: CommitmentSource,
    },
    /// A buffered data packet authenticated.
    LowAuthenticated {
        /// High-level interval.
        high: u64,
        /// Low-level interval.
        low: u32,
        /// The trusted payload.
        message: Vec<u8>,
    },
    /// A buffered data packet failed its MAC.
    LowRejected {
        /// High-level interval.
        high: u64,
        /// Low-level interval.
        low: u32,
    },
    /// A data packet failed the low-level safe-packet test.
    LowUnsafe {
        /// High-level interval.
        high: u64,
        /// Low-level interval.
        low: u32,
    },
}

/// Counters the experiments read back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlStats {
    /// CDM copies offered to the buffers.
    pub cdm_offered: u64,
    /// CDM copies surviving the reservoir.
    pub cdm_stored: u64,
    /// CDMs authenticated (at most one per interval).
    pub cdm_authenticated: u64,
    /// Buffered CDM copies that failed MAC verification.
    pub cdm_forged_rejected: u64,
    /// Data packets authenticated.
    pub low_authenticated: u64,
    /// Data packets rejected (bad MAC).
    pub low_rejected: u64,
    /// Commitments recovered through the chain linkage.
    pub chain_recoveries: u64,
    /// High-level anchor advances that walked more than one chain step —
    /// re-anchoring after lost CDMs (blackout/crash recovery).
    pub high_reanchors: u64,
    /// Largest number of one-way steps walked in a single high-level
    /// anchor advance.
    pub max_recovery_depth: u64,
}

#[derive(Debug, Clone)]
struct PendingLow {
    high: u64,
    low: u32,
    message: Vec<u8>,
    mac: Mac80,
    buffered_at: SimTime,
}

#[derive(Debug, Clone)]
struct CdmCandidate {
    low_commitment: Key,
    mac: Mac80,
}

/// A record of one chain recovery, for the EFTP-vs-original experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// The recovered chain's high-level interval.
    pub high: u64,
    /// When the first packet needing the chain was buffered.
    pub needed_at: SimTime,
    /// When the commitment finally became available.
    pub resolved_at: SimTime,
    /// Recovery path used.
    pub source: CommitmentSource,
}

/// The receiving side.
#[derive(Debug, Clone)]
pub struct MultiLevelReceiver {
    params: MultiLevelParams,
    high_anchor: ChainAnchor,
    low_anchors: BTreeMap<u64, ChainAnchor>,
    cdm_pools: BTreeMap<u64, ReservoirBuffer<CdmCandidate>>,
    pending_low: Vec<PendingLow>,
    pending_low_keys: Vec<LowKeyDisclosure>,
    needed_since: BTreeMap<u64, SimTime>,
    recoveries: Vec<RecoveryRecord>,
    authenticated: Vec<(u64, u32, Vec<u8>)>,
    stats: MlStats,
}

impl MultiLevelReceiver {
    /// Bootstraps a receiver.
    #[must_use]
    pub fn new(bootstrap: MlBootstrap) -> Self {
        let mut low_anchors = BTreeMap::new();
        for (high, commitment) in &bootstrap.preloaded_low_commitments {
            low_anchors.insert(*high, ChainAnchor::new(*commitment, 0, Domain::F1));
        }
        Self {
            params: bootstrap.params,
            high_anchor: ChainAnchor::new(bootstrap.high_commitment, 0, Domain::F0),
            low_anchors,
            cdm_pools: BTreeMap::new(),
            pending_low: Vec::new(),
            pending_low_keys: Vec::new(),
            needed_since: BTreeMap::new(),
            recoveries: Vec::new(),
            authenticated: Vec::new(),
            stats: MlStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &MlStats {
        &self.stats
    }

    /// Authenticated `(high, low, message)` triples in verification order.
    #[must_use]
    pub fn authenticated(&self) -> &[(u64, u32, Vec<u8>)] {
        &self.authenticated
    }

    /// Chain recovery log.
    #[must_use]
    pub fn recoveries(&self) -> &[RecoveryRecord] {
        &self.recoveries
    }

    /// Data packets still awaiting authentication.
    #[must_use]
    pub fn pending_low_count(&self) -> usize {
        self.pending_low.len()
    }

    /// Whether the commitment for chain `high` is installed.
    #[must_use]
    pub fn has_commitment(&self, high: u64) -> bool {
        self.low_anchors.contains_key(&high)
    }

    /// Processes one received CDM.
    pub fn on_cdm(&mut self, cdm: &Cdm, local_time: SimTime, rng: &mut SimRng) -> Vec<MlEvent> {
        let mut events = Vec::new();

        if !self.params.high_safety().is_safe(cdm.index, local_time) {
            events.push(MlEvent::CdmUnsafe { index: cdm.index });
        } else {
            self.stats.cdm_offered += 1;
            let pool = self
                .cdm_pools
                .entry(cdm.index)
                .or_insert_with(|| ReservoirBuffer::new(self.params.cdm_buffers));
            let outcome = pool.offer(
                CdmCandidate {
                    low_commitment: cdm.low_commitment,
                    mac: cdm.mac,
                },
                rng,
            );
            if outcome.is_stored() {
                self.stats.cdm_stored += 1;
            }
        }

        if let Some((index, key)) = &cdm.disclosed_high {
            self.accept_high_key(*index, key, local_time, &mut events);
        }
        events
    }

    /// Processes a data packet.
    pub fn on_low_packet(&mut self, packet: &LowPacket, local_time: SimTime) -> Vec<MlEvent> {
        let mut events = Vec::new();
        let global = self.params.global_low_index(packet.high, packet.low);
        if !self.params.low_safety().is_safe(global, local_time) {
            events.push(MlEvent::LowUnsafe {
                high: packet.high,
                low: packet.low,
            });
            return events;
        }
        if !self.low_anchors.contains_key(&packet.high) {
            self.needed_since.entry(packet.high).or_insert(local_time);
        }
        self.pending_low.push(PendingLow {
            high: packet.high,
            low: packet.low,
            message: packet.message.clone(),
            mac: packet.mac,
            buffered_at: local_time,
        });
        self.drain_low(&mut events);
        events
    }

    /// Processes a low-level key disclosure.
    pub fn on_low_disclosure(
        &mut self,
        disclosure: &LowKeyDisclosure,
        local_time: SimTime,
    ) -> Vec<MlEvent> {
        let mut events = Vec::new();
        self.try_low_disclosure(*disclosure, local_time, &mut events);
        events
    }

    fn try_low_disclosure(
        &mut self,
        disclosure: LowKeyDisclosure,
        _local_time: SimTime,
        events: &mut Vec<MlEvent>,
    ) {
        match self.low_anchors.get_mut(&disclosure.high) {
            Some(anchor) => {
                match anchor.accept(&disclosure.key, u64::from(disclosure.low)) {
                    Ok(_) => self.drain_low(events),
                    Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {
                        // Key already derivable — drain anyway in case
                        // packets arrived after the anchor advanced.
                        self.drain_low(events);
                    }
                    Err(_) => {
                        // Forged low-level key: ignore.
                    }
                }
            }
            None => {
                // No commitment yet — retry after recovery/CDM.
                self.needed_since
                    .entry(disclosure.high)
                    .or_insert(_local_time);
                self.pending_low_keys.push(disclosure);
            }
        }
    }

    fn accept_high_key(
        &mut self,
        index: u64,
        key: &Key,
        local_time: SimTime,
        events: &mut Vec<MlEvent>,
    ) {
        let previous = self.high_anchor.index();
        match self.high_anchor.accept(key, index) {
            Ok(steps) => {
                if steps > 1 {
                    self.stats.high_reanchors += 1;
                }
                self.stats.max_recovery_depth = self.stats.max_recovery_depth.max(steps);
                events.push(MlEvent::HighKeyAccepted { index, steps });
                // Every interval in (previous, index] now has a known key.
                for v in (previous + 1)..=index {
                    self.verify_buffered_cdms(v, events);
                    self.recover_chain_from_key(v, local_time, events);
                }
                self.retry_pending_low_keys(local_time, events);
                self.drain_low(events);
            }
            Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {}
            Err(_) => events.push(MlEvent::HighKeyRejected { index }),
        }
    }

    /// Verifies the buffered CDM candidates of interval `v` with the now
    /// known key `K_v`.
    fn verify_buffered_cdms(&mut self, v: u64, events: &mut Vec<MlEvent>) {
        let Some(pool) = self.cdm_pools.remove(&v) else {
            return;
        };
        let key = self.high_key(v);
        let mut authenticated = false;
        for candidate in pool.iter() {
            let input = Cdm::mac_input(v, &candidate.low_commitment);
            if verify_mac80(&key, &input, &candidate.mac) {
                if !authenticated {
                    authenticated = true;
                    self.stats.cdm_authenticated += 1;
                    events.push(MlEvent::CdmAuthenticated { index: v });
                    self.install_commitment(
                        v + 2,
                        candidate.low_commitment,
                        0,
                        CommitmentSource::Cdm,
                        events,
                    );
                }
            } else {
                self.stats.cdm_forged_rejected += 1;
            }
        }
    }

    /// Derives the low-level chain recoverable from `K_v` via `F01`.
    fn recover_chain_from_key(&mut self, v: u64, local_time: SimTime, events: &mut Vec<MlEvent>) {
        let Some(chain) = self.params.linkage.recoverable_chain(v) else {
            return;
        };
        if chain == 0 || self.low_anchors.contains_key(&chain) {
            return;
        }
        let head = one_way(Domain::F01, &self.high_key(v));
        self.stats.chain_recoveries += 1;
        if let Some(needed_at) = self.needed_since.get(&chain).copied() {
            self.recoveries.push(RecoveryRecord {
                high: chain,
                needed_at,
                resolved_at: local_time,
                source: CommitmentSource::ChainRecovery,
            });
        }
        // Knowing the head means knowing every chain key: install the
        // anchor at the head so all lower keys derive immediately.
        self.install_commitment(
            chain,
            head,
            u64::from(self.params.low_per_high),
            CommitmentSource::ChainRecovery,
            events,
        );
    }

    fn install_commitment(
        &mut self,
        high: u64,
        key: Key,
        at_index: u64,
        source: CommitmentSource,
        events: &mut Vec<MlEvent>,
    ) {
        if self.low_anchors.contains_key(&high) {
            return;
        }
        self.low_anchors
            .insert(high, ChainAnchor::new(key, at_index, Domain::F1));
        events.push(MlEvent::CommitmentInstalled { high, source });
    }

    fn retry_pending_low_keys(&mut self, local_time: SimTime, events: &mut Vec<MlEvent>) {
        let pending = std::mem::take(&mut self.pending_low_keys);
        for disclosure in pending {
            self.try_low_disclosure(disclosure, local_time, events);
        }
    }

    /// Authenticates every pending data packet whose key is derivable.
    fn drain_low(&mut self, events: &mut Vec<MlEvent>) {
        let mut kept = Vec::with_capacity(self.pending_low.len());
        let pending = std::mem::take(&mut self.pending_low);
        for pkt in pending {
            let Some(anchor) = self.low_anchors.get(&pkt.high) else {
                kept.push(pkt);
                continue;
            };
            if u64::from(pkt.low) > anchor.index() {
                kept.push(pkt);
                continue;
            }
            let key = one_way_iter(
                Domain::F1,
                anchor.key(),
                (anchor.index() - u64::from(pkt.low)) as usize,
            );
            if verify_mac80(&key, &pkt.message, &pkt.mac) {
                self.stats.low_authenticated += 1;
                self.authenticated
                    .push((pkt.high, pkt.low, pkt.message.clone()));
                events.push(MlEvent::LowAuthenticated {
                    high: pkt.high,
                    low: pkt.low,
                    message: pkt.message,
                });
                // Record delayed authentications that waited on recovery.
                let _ = pkt.buffered_at;
            } else {
                self.stats.low_rejected += 1;
                events.push(MlEvent::LowRejected {
                    high: pkt.high,
                    low: pkt.low,
                });
            }
        }
        self.pending_low = kept;
    }

    /// Crate-internal: feed a high-level key disclosure (used by EDRP,
    /// whose CDMs carry disclosures but authenticate differently).
    pub(crate) fn accept_high_key_external(
        &mut self,
        index: u64,
        key: &Key,
        local_time: SimTime,
    ) -> Vec<MlEvent> {
        let mut events = Vec::new();
        self.accept_high_key(index, key, local_time, &mut events);
        events
    }

    /// Crate-internal: install a commitment obtained outside the CDM
    /// buffer path (EDRP's instant hash authentication).
    pub(crate) fn install_commitment_external(
        &mut self,
        high: u64,
        key: Key,
        at_index: u64,
        source: CommitmentSource,
    ) -> Vec<MlEvent> {
        let mut events = Vec::new();
        self.install_commitment(high, key, at_index, source, &mut events);
        self.drain_low(&mut events);
        events
    }

    /// Crate-internal: `K_v` if the anchor has reached `v`.
    pub(crate) fn high_key_at(&self, v: u64) -> Option<Key> {
        if self.high_anchor.index() >= v && v >= 1 {
            Some(self.high_key(v))
        } else {
            None
        }
    }

    /// The latest authenticated high-level key index.
    #[must_use]
    pub fn high_anchor_index(&self) -> u64 {
        self.high_anchor.index()
    }

    /// `K_v` derived from the high-level anchor (which is at `≥ v`).
    fn high_key(&self, v: u64) -> Key {
        debug_assert!(self.high_anchor.index() >= v);
        one_way_iter(
            Domain::F0,
            self.high_anchor.key(),
            (self.high_anchor.index() - v) as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(linkage: Linkage) -> MultiLevelParams {
        // 25-tick low intervals, 4 per high interval → 100-tick high.
        MultiLevelParams::new(SimDuration(25), 4, 16, 3, linkage)
    }

    fn setup(linkage: Linkage) -> (MultiLevelSender, MultiLevelReceiver, SimRng) {
        let sender = MultiLevelSender::new(b"base", params(linkage));
        let receiver = MultiLevelReceiver::new(sender.bootstrap());
        (sender, receiver, SimRng::new(42))
    }

    /// Local time early in low interval (high, low).
    fn at(p: &MultiLevelParams, high: u64, low: u32) -> SimTime {
        SimTime((p.global_low_index(high, low) - 1) * p.low_interval.ticks() + 2)
    }

    #[test]
    fn index_arithmetic_roundtrips() {
        let p = params(Linkage::Eftp);
        for high in 1..=5u64 {
            for low in 1..=4u32 {
                let g = p.global_low_index(high, low);
                assert_eq!(p.split_low_index(g), (high, low));
            }
        }
        assert_eq!(p.global_low_index(1, 1), 1);
        assert_eq!(p.global_low_index(2, 1), 5);
    }

    #[test]
    fn low_chains_link_to_high_chain() {
        for linkage in [Linkage::Original, Linkage::Eftp] {
            let sender = MultiLevelSender::new(b"x", params(linkage));
            let chain3 = sender.low_chain(3).unwrap();
            let link = linkage.recovery_key_index(3);
            // Head of chain 3 must equal F01 of the linked high key —
            // verified indirectly: deriving from the same seed twice
            // agrees, and the two linkages give different heads.
            assert_eq!(
                chain3.key(4),
                MultiLevelSender::new(b"x", params(linkage))
                    .low_chain(3)
                    .unwrap()
                    .key(4)
            );
            let _ = link;
        }
        let orig = MultiLevelSender::new(b"x", params(Linkage::Original));
        let eftp = MultiLevelSender::new(b"x", params(Linkage::Eftp));
        assert_ne!(
            orig.low_chain(3).unwrap().commitment(),
            eftp.low_chain(3).unwrap().commitment()
        );
    }

    #[test]
    fn happy_path_authenticates_data() {
        let (sender, mut receiver, _rng) = setup(Linkage::Eftp);
        let p = *sender.params();

        // Chain 1 commitment is preloaded; send data in (1,1), disclose
        // its key in (1,2).
        let pkt = sender.data_packet(1, 1, b"hello").unwrap();
        let events = receiver.on_low_packet(&pkt, at(&p, 1, 1));
        assert!(events.is_empty());

        let disc = sender.low_disclosure(1, 2).unwrap();
        assert_eq!((disc.high, disc.low), (1, 1));
        let events = receiver.on_low_disclosure(&disc, at(&p, 1, 2));
        assert!(events.iter().any(|e| matches!(
            e,
            MlEvent::LowAuthenticated {
                high: 1,
                low: 1,
                ..
            }
        )));
        assert_eq!(receiver.stats().low_authenticated, 1);
    }

    #[test]
    fn cdm_flow_installs_future_commitments() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();

        // CDM_1 buffered during interval 1.
        let cdm1 = sender.cdm(1).unwrap();
        receiver.on_cdm(&cdm1, at(&p, 1, 1), &mut rng);
        assert!(!receiver.has_commitment(3));

        // CDM_2 discloses K_1 → CDM_1 authenticates → chain 3 installed.
        let cdm2 = sender.cdm(2).unwrap();
        let events = receiver.on_cdm(&cdm2, at(&p, 2, 1), &mut rng);
        assert!(events.contains(&MlEvent::HighKeyAccepted { index: 1, steps: 1 }));
        assert!(events.contains(&MlEvent::CdmAuthenticated { index: 1 }));
        assert!(receiver.has_commitment(3));
        assert_eq!(receiver.stats().cdm_authenticated, 1);
    }

    #[test]
    fn data_in_cdm_installed_chain_authenticates() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();
        receiver.on_cdm(&sender.cdm(1).unwrap(), at(&p, 1, 1), &mut rng);
        receiver.on_cdm(&sender.cdm(2).unwrap(), at(&p, 2, 1), &mut rng);
        // Chain 3 installed via CDM; use it.
        let pkt = sender.data_packet(3, 2, b"data").unwrap();
        receiver.on_low_packet(&pkt, at(&p, 3, 2));
        let disc = sender.low_disclosure(3, 3).unwrap();
        let events = receiver.on_low_disclosure(&disc, at(&p, 3, 3));
        assert!(events.iter().any(|e| matches!(
            e,
            MlEvent::LowAuthenticated {
                high: 3,
                low: 2,
                ..
            }
        )));
    }

    #[test]
    fn forged_cdm_rejected_at_verification() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();
        let mut forged = sender.cdm(1).unwrap();
        forged.low_commitment = Key::random(&mut rng);
        receiver.on_cdm(&forged, at(&p, 1, 1), &mut rng);
        let events = receiver.on_cdm(&sender.cdm(2).unwrap(), at(&p, 2, 1), &mut rng);
        assert!(!events
            .iter()
            .any(|e| matches!(e, MlEvent::CdmAuthenticated { index: 1 })));
        assert_eq!(receiver.stats().cdm_forged_rejected, 1);
        // The forged commitment must NOT have been installed for chain 3.
        assert!(!receiver.has_commitment(3));
    }

    #[test]
    fn stale_cdm_fails_safety() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();
        // CDM_1 received during high interval 2: K_1 may be out → unsafe.
        let events = receiver.on_cdm(&sender.cdm(1).unwrap(), at(&p, 2, 1), &mut rng);
        assert!(events.contains(&MlEvent::CdmUnsafe { index: 1 }));
        assert_eq!(receiver.stats().cdm_offered, 0);
    }

    /// The headline EFTP claim: with all CDMs for some chain lost, EFTP
    /// recovers the chain one high-level interval earlier than the
    /// original linkage.
    #[test]
    fn eftp_recovers_one_interval_earlier() {
        let mut resolved = BTreeMap::new();
        for linkage in [Linkage::Original, Linkage::Eftp] {
            let (sender, mut receiver, mut rng) = setup(linkage);
            let p = *sender.params();
            // Drop every CDM before interval 4 → chain 4..6 commitments
            // never distributed (preloaded are 1, 2; CDM_1 (chain 3),
            // CDM_2 (chain 4), CDM_3 (chain 5) all lost).
            // Data packet of chain 4 buffered in (4,1).
            let pkt = sender.data_packet(4, 1, b"needs recovery").unwrap();
            receiver.on_low_packet(&pkt, at(&p, 4, 1));
            assert!(!receiver.has_commitment(4));

            // Now CDMs resume from interval 4 onward; each CDM_i discloses
            // K_{i−1}.
            let mut resolved_at = None;
            for i in 4..=8u64 {
                let t = at(&p, i, 1);
                let events = receiver.on_cdm(&sender.cdm(i).unwrap(), t, &mut rng);
                if events.iter().any(|e| {
                    matches!(
                        e,
                        MlEvent::CommitmentInstalled {
                            high: 4,
                            source: CommitmentSource::ChainRecovery
                        }
                    )
                }) {
                    resolved_at = Some(i);
                    break;
                }
            }
            resolved.insert(linkage, resolved_at.expect("chain 4 must recover"));
        }
        // EFTP: K_4 disclosed in CDM_5 → recovery during interval 5.
        // Original: K_5 disclosed in CDM_6 → recovery during interval 6.
        assert_eq!(resolved[&Linkage::Eftp], 5);
        assert_eq!(resolved[&Linkage::Original], 6);
    }

    #[test]
    fn recovered_chain_authenticates_buffered_data() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();
        // Lose CDMs 1..=3; buffer a packet of chain 4 plus its key
        // disclosure (which cannot verify yet).
        receiver.on_low_packet(&sender.data_packet(4, 1, b"x").unwrap(), at(&p, 4, 1));
        receiver.on_low_disclosure(&sender.low_disclosure(4, 2).unwrap(), at(&p, 4, 2));
        assert_eq!(receiver.pending_low_count(), 1);

        // CDM_5 discloses K_4 → EFTP recovery of chain 4 → pending packet
        // authenticates (its key derives from the recovered head).
        let events = receiver.on_cdm(&sender.cdm(5).unwrap(), at(&p, 5, 1), &mut rng);
        assert!(events.iter().any(|e| matches!(
            e,
            MlEvent::LowAuthenticated {
                high: 4,
                low: 1,
                ..
            }
        )));
        assert_eq!(receiver.recoveries().len(), 1);
        assert_eq!(receiver.recoveries()[0].high, 4);
    }

    #[test]
    fn forged_low_packet_rejected() {
        let (sender, mut receiver, _) = setup(Linkage::Eftp);
        let p = *sender.params();
        let mut forged = sender.data_packet(1, 1, b"real").unwrap();
        forged.message = b"fake".to_vec();
        receiver.on_low_packet(&forged, at(&p, 1, 1));
        let events =
            receiver.on_low_disclosure(&sender.low_disclosure(1, 2).unwrap(), at(&p, 1, 2));
        assert!(events.contains(&MlEvent::LowRejected { high: 1, low: 1 }));
        assert_eq!(receiver.stats().low_rejected, 1);
    }

    #[test]
    fn stale_low_packet_unsafe() {
        let (sender, mut receiver, _) = setup(Linkage::Eftp);
        let p = *sender.params();
        // Packet of (1,1) received during (1,3): key disclosed in (1,2).
        let events =
            receiver.on_low_packet(&sender.data_packet(1, 1, b"late").unwrap(), at(&p, 1, 3));
        assert!(events.contains(&MlEvent::LowUnsafe { high: 1, low: 1 }));
    }

    #[test]
    fn cdm_buffer_respects_capacity_under_flood() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();
        let real = sender.cdm(1).unwrap();
        for _ in 0..100 {
            let mut forged = real.clone();
            forged.low_commitment = Key::random(&mut rng);
            receiver.on_cdm(&forged, at(&p, 1, 1), &mut rng);
        }
        assert_eq!(receiver.stats().cdm_offered, 100);
        assert!(receiver.stats().cdm_stored <= 100);
        // Pool capacity is 3: at most 3 survive to verification.
        let events = receiver.on_cdm(&sender.cdm(2).unwrap(), at(&p, 2, 1), &mut rng);
        let _ = events;
        assert!(receiver.stats().cdm_forged_rejected <= 3 + 1);
    }

    #[test]
    fn cdm_sizes() {
        let (sender, _, _) = setup(Linkage::Eftp);
        let cdm1 = sender.cdm(1).unwrap();
        assert!(cdm1.disclosed_high.is_none());
        assert_eq!(cdm1.size_bits(), 32 + 80 + 80);
        let cdm2 = sender.cdm(2).unwrap();
        assert_eq!(cdm2.disclosed_high.unwrap().0, 1);
        assert_eq!(cdm2.size_bits(), 32 + 80 + 80 + 32 + 80);
    }

    #[test]
    fn bootstrap_preloads_first_two_chains() {
        let (sender, receiver, _) = setup(Linkage::Original);
        assert!(receiver.has_commitment(1));
        assert!(receiver.has_commitment(2));
        assert!(!receiver.has_commitment(3));
        let _ = sender;
    }

    #[test]
    fn low_disclosure_crosses_high_boundary() {
        let (sender, _, _) = setup(Linkage::Eftp);
        // During (2,1), the key disclosed is (1,4) — the previous chain's
        // last key.
        let disc = sender.low_disclosure(2, 1).unwrap();
        assert_eq!((disc.high, disc.low), (1, 4));
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn bad_low_index_panics() {
        let p = params(Linkage::Eftp);
        let _ = p.global_low_index(1, 5);
    }

    #[test]
    fn data_packet_beyond_horizon_is_typed_error() {
        let (sender, _, _) = setup(Linkage::Eftp);
        // High chain has 16 usable intervals.
        assert_eq!(
            sender.data_packet(99, 1, b"x"),
            Err(ChainExhausted {
                index: 99,
                horizon: 16
            })
        );
        // Low index past the per-interval chain length (4 per high).
        assert_eq!(
            sender.data_packet(1, 9, b"x"),
            Err(ChainExhausted {
                index: 9,
                horizon: 4
            })
        );
    }

    #[test]
    fn pebbled_sender_emits_identical_cdms_and_packets() {
        let dense = MultiLevelSender::new(b"base", params(Linkage::Eftp));
        let pebbled = MultiLevelSender::new_pebbled(b"base", params(Linkage::Eftp));
        assert_eq!(dense.bootstrap(), pebbled.bootstrap());
        for i in 1..=8u64 {
            assert_eq!(dense.cdm(i), pebbled.cdm(i), "CDM {i}");
            for low in 1..=4u32 {
                assert_eq!(
                    dense.data_packet(i, low, b"m"),
                    pebbled.data_packet(i, low, b"m")
                );
                assert_eq!(dense.low_disclosure(i, low), pebbled.low_disclosure(i, low));
            }
        }
    }

    #[test]
    fn reanchor_after_gap_records_recovery_depth() {
        let (sender, mut receiver, mut rng) = setup(Linkage::Eftp);
        let p = *sender.params();
        // Receiver misses CDMs 1..=3 entirely; CDM_5 discloses K_4 — a
        // four-step walk from the bootstrap anchor.
        let events = receiver.on_cdm(&sender.cdm(5).unwrap(), at(&p, 5, 1), &mut rng);
        assert!(events.contains(&MlEvent::HighKeyAccepted { index: 4, steps: 4 }));
        assert_eq!(receiver.stats().high_reanchors, 1);
        assert_eq!(receiver.stats().max_recovery_depth, 4);
    }
}
