//! TESLA (Perrig, Canetti, Tygar, Song — IEEE S&P 2000).
//!
//! Every packet of interval `I_i` carries `(i, M, MAC_{K'_i}(M))` plus the
//! key disclosed for interval `i − d`. Receivers buffer whole packets
//! (message + MAC — the 280-bit entry the paper's Fig. 5 charges TESLA-
//! style protocols for) until the key arrives, then authenticate.
//!
//! TESLA tolerates packet loss through the one-way chain: any later key
//! recovers all earlier ones (`K_i = F(K_{i+1})`), so losing disclosures
//! only delays authentication. What TESLA does *not* resist is
//! memory-based DoS — its receivers buffer everything that passes the
//! safe-packet test — which is the weakness the rest of this workspace
//! is about.

use dap_crypto::mac::{mac80, verify_mac80};
use dap_crypto::oneway::{one_way_iter, Domain};
use dap_crypto::{ChainExhausted, ChainStore, Key, KeyChain, Mac80, PebbledChain};
use dap_simnet::SimTime;

use crate::params::TeslaParams;

/// A key disclosed inside a data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisclosedKey {
    /// Interval the key belongs to.
    pub index: u64,
    /// The key itself.
    pub key: Key,
}

/// One TESLA data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct TeslaPacket {
    /// Interval the packet belongs to (the MAC key's index).
    pub index: u64,
    /// Application payload.
    pub message: Vec<u8>,
    /// `MAC_{K'_index}(message)`.
    pub mac: Mac80,
    /// The key of `d` intervals ago, once one exists.
    pub disclosed: Option<DisclosedKey>,
}

impl TeslaPacket {
    /// Airtime size in bits: message + MAC + index (+ key when present).
    #[must_use]
    pub fn size_bits(&self) -> u32 {
        let mut bits = (self.message.len() as u32) * 8
            + dap_crypto::sizes::MAC_BITS
            + dap_crypto::sizes::INDEX_BITS;
        if self.disclosed.is_some() {
            bits += dap_crypto::sizes::KEY_BITS + dap_crypto::sizes::INDEX_BITS;
        }
        bits
    }
}

/// What receivers need to bootstrap: the chain commitment and the
/// protocol parameters. Distributed out of band (in μTESLA, via a
/// pre-shared master secret with the base station).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bootstrap {
    /// The chain commitment `K_0`.
    pub commitment: Key,
    /// Protocol parameters (interval grid, `d`, `Δ`).
    pub params: TeslaParams,
}

/// The broadcasting side.
///
/// ```
/// use dap_simnet::{SimDuration, SimTime};
/// use dap_tesla::tesla::{TeslaReceiver, TeslaSender};
/// use dap_tesla::TeslaParams;
///
/// let params = TeslaParams::new(SimDuration(100), 2, 0);
/// let sender = TeslaSender::new(b"secret", 32, params);
/// let mut receiver = TeslaReceiver::new(sender.bootstrap());
///
/// receiver.on_packet(&sender.packet(1, b"hello").unwrap(), SimTime(10));
/// // Interval 3's packet discloses K_1 and authenticates interval 1.
/// let events = receiver.on_packet(&sender.packet(3, b"later").unwrap(), SimTime(210));
/// assert!(!events.is_empty());
/// assert_eq!(receiver.authenticated().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TeslaSender<C: ChainStore = KeyChain> {
    chain: C,
    params: TeslaParams,
}

impl TeslaSender {
    /// Creates a sender with a fresh chain of `chain_len` keys derived
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0`.
    #[must_use]
    pub fn new(seed: &[u8], chain_len: usize, params: TeslaParams) -> Self {
        Self::with_chain(KeyChain::generate(seed, chain_len, Domain::F), params)
    }
}

impl TeslaSender<PebbledChain> {
    /// Like [`TeslaSender::new`], but holding the chain as O(log n)
    /// pebbles — identical packets for the same `seed`, sized for
    /// million-interval campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0`.
    #[must_use]
    pub fn new_pebbled(seed: &[u8], chain_len: usize, params: TeslaParams) -> Self {
        Self::with_chain(PebbledChain::generate(seed, chain_len, Domain::F), params)
    }
}

impl<C: ChainStore> TeslaSender<C> {
    /// Creates a sender over an existing chain store.
    #[must_use]
    pub fn with_chain(chain: C, params: TeslaParams) -> Self {
        Self { chain, params }
    }

    /// The receiver bootstrap record.
    #[must_use]
    pub fn bootstrap(&self) -> Bootstrap {
        Bootstrap {
            commitment: self.chain.commitment(),
            params: self.params,
        }
    }

    /// The sender's interval at (its own) time `now`.
    #[must_use]
    pub fn interval_at(&self, now: SimTime) -> u64 {
        self.params.schedule.index_at(now)
    }

    /// Number of usable chain keys (= last usable interval).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.chain.len() as u64
    }

    /// Builds the packet for `message` in interval `index`, attaching the
    /// key for `index − d` when it exists.
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when `index` lies beyond the chain
    /// horizon — the operational end of this sender's key chain.
    pub fn packet(&self, index: u64, message: &[u8]) -> Result<TeslaPacket, ChainExhausted> {
        let horizon = self.horizon();
        let key = self
            .chain
            .key(index as usize)
            .ok_or(ChainExhausted { index, horizon })?;
        let disclosed = index
            .checked_sub(self.params.disclosure_delay)
            .filter(|i| *i >= 1)
            .map(|i| DisclosedKey {
                index: i,
                key: self.chain.key(i as usize).expect("earlier key exists"),
            });
        Ok(TeslaPacket {
            index,
            message: message.to_vec(),
            mac: mac80(&key, message),
            disclosed,
        })
    }
}

/// Events emitted by the receiver while processing a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiverEvent {
    /// A buffered message verified against a disclosed key.
    Authenticated {
        /// Interval of the authenticated message.
        index: u64,
        /// The now-trusted payload.
        message: Vec<u8>,
    },
    /// A buffered message failed MAC verification — forged or corrupted.
    RejectedMac {
        /// Claimed interval of the rejected message.
        index: u64,
    },
    /// The packet failed the safe-packet test and was never buffered.
    DiscardedUnsafe {
        /// Claimed interval.
        index: u64,
    },
    /// A disclosed key was verified against the chain and the anchor
    /// advanced.
    KeyAccepted {
        /// Interval of the accepted key.
        index: u64,
        /// One-way steps walked (`> 1` means lost disclosures were
        /// recovered through the chain).
        steps: u64,
    },
    /// A disclosed key failed chain verification.
    KeyRejected {
        /// Claimed interval of the bogus key.
        index: u64,
    },
}

#[derive(Debug, Clone)]
struct BufferedPacket {
    index: u64,
    message: Vec<u8>,
    mac: Mac80,
}

/// The receiving side: buffers safe packets, advances the chain anchor on
/// disclosures, authenticates retro-actively.
#[derive(Debug, Clone)]
pub struct TeslaReceiver {
    anchor: dap_crypto::ChainAnchor,
    params: TeslaParams,
    buffer: Vec<BufferedPacket>,
    authenticated: Vec<(u64, Vec<u8>)>,
}

impl TeslaReceiver {
    /// Bootstraps a receiver from the sender's commitment.
    #[must_use]
    pub fn new(bootstrap: Bootstrap) -> Self {
        Self {
            anchor: dap_crypto::ChainAnchor::new(bootstrap.commitment, 0, Domain::F),
            params: bootstrap.params,
            buffer: Vec::new(),
            authenticated: Vec::new(),
        }
    }

    /// Processes one received packet at local clock `local_time`.
    pub fn on_packet(&mut self, packet: &TeslaPacket, local_time: SimTime) -> Vec<ReceiverEvent> {
        let mut events = Vec::new();

        // 1. Safe-packet test: buffer only if the key cannot be out yet.
        if self.params.safety().is_safe(packet.index, local_time) {
            self.buffer.push(BufferedPacket {
                index: packet.index,
                message: packet.message.clone(),
                mac: packet.mac,
            });
        } else {
            events.push(ReceiverEvent::DiscardedUnsafe {
                index: packet.index,
            });
        }

        // 2. Key disclosure: advance the anchor, then drain the buffer.
        if let Some(disclosed) = &packet.disclosed {
            match self.anchor.accept(&disclosed.key, disclosed.index) {
                Ok(steps) => {
                    events.push(ReceiverEvent::KeyAccepted {
                        index: disclosed.index,
                        steps,
                    });
                    self.drain_verifiable(&mut events);
                }
                Err(dap_crypto::ChainVerifyError::NotAhead { .. }) => {
                    // Re-disclosure of an already known key: harmless.
                }
                Err(_) => {
                    events.push(ReceiverEvent::KeyRejected {
                        index: disclosed.index,
                    });
                }
            }
        }
        events
    }

    /// Authenticates every buffered packet whose key is now derivable
    /// from the anchor.
    fn drain_verifiable(&mut self, events: &mut Vec<ReceiverEvent>) {
        let anchor_index = self.anchor.index();
        let anchor_key = *self.anchor.key();
        let mut kept = Vec::with_capacity(self.buffer.len());
        for pkt in self.buffer.drain(..) {
            if pkt.index > anchor_index || pkt.index == 0 {
                kept.push(pkt);
                continue;
            }
            let key = one_way_iter(Domain::F, &anchor_key, (anchor_index - pkt.index) as usize);
            if verify_mac80(&key, &pkt.message, &pkt.mac) {
                self.authenticated.push((pkt.index, pkt.message.clone()));
                events.push(ReceiverEvent::Authenticated {
                    index: pkt.index,
                    message: pkt.message,
                });
            } else {
                events.push(ReceiverEvent::RejectedMac { index: pkt.index });
            }
        }
        self.buffer = kept;
    }

    /// Messages authenticated so far, in verification order.
    #[must_use]
    pub fn authenticated(&self) -> &[(u64, Vec<u8>)] {
        &self.authenticated
    }

    /// Packets currently awaiting key disclosure.
    #[must_use]
    pub fn buffered_count(&self) -> usize {
        self.buffer.len()
    }

    /// Receiver memory consumed by the buffer, in bits, using the paper's
    /// accounting (message + MAC per entry; the index is charged to DAP's
    /// 56-bit entries in Fig. 4, so it is included here too for parity).
    #[must_use]
    pub fn buffered_bits(&self) -> u64 {
        self.buffer
            .iter()
            .map(|p| {
                (p.message.len() as u64) * 8
                    + u64::from(dap_crypto::sizes::MAC_BITS)
                    + u64::from(dap_crypto::sizes::INDEX_BITS)
            })
            .sum()
    }

    /// The current chain anchor index (latest authenticated interval key).
    #[must_use]
    pub fn anchor_index(&self) -> u64 {
        self.anchor.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_simnet::SimDuration;

    fn params() -> TeslaParams {
        TeslaParams::new(SimDuration(100), 2, 0)
    }

    fn setup() -> (TeslaSender, TeslaReceiver) {
        let sender = TeslaSender::new(b"sender", 64, params());
        let receiver = TeslaReceiver::new(sender.bootstrap());
        (sender, receiver)
    }

    /// Local time inside interval `i`.
    fn during(i: u64) -> SimTime {
        SimTime((i - 1) * 100 + 10)
    }

    #[test]
    fn happy_path_authenticates_after_d_intervals() {
        let (sender, mut receiver) = setup();
        let p1 = sender.packet(1, b"hello").unwrap();
        assert!(receiver.on_packet(&p1, during(1)).is_empty());
        assert_eq!(receiver.buffered_count(), 1);

        // Interval 3 packet discloses K_1 → authenticates the buffered one.
        let p3 = sender.packet(3, b"later").unwrap();
        let events = receiver.on_packet(&p3, during(3));
        assert!(events.contains(&ReceiverEvent::KeyAccepted { index: 1, steps: 1 }));
        assert!(events
            .iter()
            .any(|e| matches!(e, ReceiverEvent::Authenticated { index: 1, .. })));
        assert_eq!(receiver.authenticated().len(), 1);
        assert_eq!(&receiver.authenticated()[0].1[..], b"hello");
    }

    #[test]
    fn late_packet_is_discarded_unsafe() {
        let (sender, mut receiver) = setup();
        let p1 = sender.packet(1, b"stale").unwrap();
        // Received during interval 3: K_1 is being disclosed — unsafe.
        let events = receiver.on_packet(&p1, during(3));
        assert_eq!(events, vec![ReceiverEvent::DiscardedUnsafe { index: 1 }]);
        assert_eq!(receiver.buffered_count(), 0);
    }

    #[test]
    fn forged_mac_is_rejected_at_disclosure() {
        let (sender, mut receiver) = setup();
        let mut forged = sender.packet(1, b"real").unwrap();
        forged.message = b"fake".to_vec();
        receiver.on_packet(&forged, during(1));

        let p3 = sender.packet(3, b"later").unwrap();
        let events = receiver.on_packet(&p3, during(3));
        assert!(events.contains(&ReceiverEvent::RejectedMac { index: 1 }));
        assert!(receiver.authenticated().is_empty());
    }

    #[test]
    fn forged_key_is_rejected() {
        let (sender, mut receiver) = setup();
        let mut packet = sender.packet(3, b"x").unwrap();
        let mut rng = dap_simnet::SimRng::new(1);
        packet.disclosed = Some(DisclosedKey {
            index: 1,
            key: Key::random(&mut rng),
        });
        let events = receiver.on_packet(&packet, during(3));
        assert!(events.contains(&ReceiverEvent::KeyRejected { index: 1 }));
        assert_eq!(receiver.anchor_index(), 0);
    }

    #[test]
    fn lost_disclosures_recovered_through_chain() {
        let (sender, mut receiver) = setup();
        let p1 = sender.packet(1, b"m1").unwrap();
        let p2 = sender.packet(2, b"m2").unwrap();
        receiver.on_packet(&p1, during(1));
        receiver.on_packet(&p2, during(2));
        // Packets of intervals 3 and 4 (disclosing K_1, K_2) all lost.
        // A packet from interval 5 disclosing K_3 recovers everything.
        let p5 = sender.packet(5, b"m5").unwrap();
        let events = receiver.on_packet(&p5, during(5));
        assert!(events.contains(&ReceiverEvent::KeyAccepted { index: 3, steps: 3 }));
        let authed: Vec<u64> = receiver.authenticated().iter().map(|(i, _)| *i).collect();
        assert_eq!(authed, vec![1, 2]);
    }

    #[test]
    fn duplicate_disclosure_is_harmless() {
        let (sender, mut receiver) = setup();
        let p3 = sender.packet(3, b"a").unwrap();
        receiver.on_packet(&p3, during(3));
        let events = receiver.on_packet(&p3, during(3));
        // Second copy: key already known (NotAhead) — no rejection event.
        assert!(!events
            .iter()
            .any(|e| matches!(e, ReceiverEvent::KeyRejected { .. })));
    }

    #[test]
    fn no_disclosure_in_first_d_intervals() {
        let (sender, _) = setup();
        assert!(sender.packet(1, b"a").unwrap().disclosed.is_none());
        assert!(sender.packet(2, b"b").unwrap().disclosed.is_none());
        let p3 = sender.packet(3, b"c").unwrap();
        assert_eq!(p3.disclosed.unwrap().index, 1);
    }

    #[test]
    fn buffered_bits_accounting() {
        let (sender, mut receiver) = setup();
        // 25-byte message = 200 bits → entry = 200 + 80 + 32 = 312 bits.
        let p1 = sender.packet(1, &[0u8; 25]).unwrap();
        receiver.on_packet(&p1, during(1));
        assert_eq!(receiver.buffered_bits(), 312);
    }

    #[test]
    fn packet_size_bits() {
        let (sender, _) = setup();
        let p1 = sender.packet(1, &[0u8; 25]).unwrap();
        assert_eq!(p1.size_bits(), 200 + 80 + 32);
        let p3 = sender.packet(3, &[0u8; 25]).unwrap();
        assert_eq!(p3.size_bits(), 200 + 80 + 32 + 80 + 32);
    }

    #[test]
    fn packet_beyond_horizon_is_typed_error() {
        let (sender, _) = setup();
        assert_eq!(
            sender.packet(65, b"x").unwrap_err(),
            ChainExhausted {
                index: 65,
                horizon: 64
            }
        );
    }

    #[test]
    fn pebbled_sender_packets_are_identical_and_interoperate() {
        let dense = TeslaSender::new(b"sender", 64, params());
        let pebbled = TeslaSender::new_pebbled(b"sender", 64, params());
        assert_eq!(dense.bootstrap(), pebbled.bootstrap());
        // A receiver bootstrapped from the dense sender authenticates the
        // pebbled sender's stream, and every packet matches bit-for-bit.
        let mut receiver = TeslaReceiver::new(dense.bootstrap());
        for i in 1..=10u64 {
            let msg = format!("reading {i}");
            let p = pebbled.packet(i, msg.as_bytes()).unwrap();
            assert_eq!(p, dense.packet(i, msg.as_bytes()).unwrap());
            receiver.on_packet(&p, during(i));
        }
        assert_eq!(receiver.authenticated().len(), 8);
    }

    #[test]
    fn authenticated_messages_are_exactly_the_senders() {
        // Security invariant: everything in `authenticated()` was MAC'd by
        // the sender for that interval.
        let (sender, mut receiver) = setup();
        let mut sent = Vec::new();
        for i in 1..=10u64 {
            let msg = format!("reading {i}");
            sent.push((i, msg.clone()));
            let p = sender.packet(i, msg.as_bytes()).unwrap();
            receiver.on_packet(&p, during(i));
        }
        for (idx, msg) in receiver.authenticated() {
            let original = &sent[(*idx - 1) as usize];
            assert_eq!(*idx, original.0);
            assert_eq!(&msg[..], original.1.as_bytes());
        }
        // Intervals 1..=8 have had their keys disclosed by interval 10.
        assert_eq!(receiver.authenticated().len(), 8);
    }
}
