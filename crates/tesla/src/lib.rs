//! The TESLA protocol family — the substrate the paper builds on and the
//! baselines it compares against.
//!
//! Broadcast authentication with symmetric primitives works by *delayed
//! key disclosure*: the sender MACs packets of interval `I_i` with a key
//! `K_i` from a one-way chain and only discloses `K_i` a fixed number of
//! intervals `d` later. Receivers buffer packets they cannot yet verify;
//! once the key arrives they (a) check it against the chain commitment
//! and (b) recompute the MACs. An attacker who sees a disclosed key is
//! too late to forge packets for that interval — provided clocks are
//! *loosely synchronised* ([`params::SafetyCheck`]).
//!
//! Implemented protocols, bottom-up:
//!
//! * [`tesla`] — TESLA (Perrig et al., S&P 2000): per-packet MAC + the
//!   key of `d` intervals ago in every packet;
//! * [`mutesla`] — μTESLA (SPINS, 2002): keys disclosed once per interval
//!   in a dedicated message, symmetric bootstrap;
//! * [`multilevel`] — multi-level μTESLA (Liu & Ning, TECS 2004):
//!   a long-lived high-level chain distributing the commitments of
//!   short low-level chains through CDM messages, defended against CDM
//!   flooding by multi-buffer random selection ([`buffer`]);
//! * [`eftp`] — the authors' Efficient Fault-Tolerant Protocol
//!   (IPCCC 2014): re-links low-level chains to the *current* high-level
//!   key (`K_{i,n} = F01(K_i)`), shortening loss recovery by one
//!   high-level interval;
//! * [`edrp`] — the authors' Enhanced DoS-Resistant Protocol: each CDM
//!   carries `H(CDM_{i+1})`, so the next CDM authenticates instantly and
//!   DoS resistance survives CDM loss;
//! * [`teslapp`] — TESLA++ (Studer et al., 2009): MAC first, message and
//!   key one interval later; the Fig.-5 storage baseline.
//!
//! The state machines are *sans-io* (they consume wire messages plus the
//! local clock and return events), with [`sim`] providing adapters onto
//! the [`dap_simnet`] event loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod edrp;
pub mod eftp;
pub mod multilevel;
pub mod mutesla;
pub mod params;
pub mod sim;
pub mod sim_ml;
pub mod sim_mu;
pub mod tesla;
pub mod teslapp;

pub use buffer::{FirstComeBuffer, OfferOutcome, ReservoirBuffer};
pub use params::{SafetyCheck, TeslaParams};
