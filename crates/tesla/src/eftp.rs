//! EFTP — the Efficient Fault-Tolerant Protocol (§III-A, Fig. 2).
//!
//! EFTP is multi-level μTESLA with one change: the low-level chain of
//! high-level interval `i` hangs off `K_i` instead of `K_{i+1}`
//! (`K_{i,n} = F01(K_i)`, the solid line in Fig. 2). When the CDM
//! carrying a chain's commitment is lost, the chain is recovered from a
//! disclosed high-level key — and because `K_i` is disclosed one
//! high-level interval before `K_{i+1}`, EFTP's recovery completes **one
//! high-level interval earlier** (which the paper notes spans 100 seconds
//! to 30 hours in real deployments).
//!
//! The protocol machinery is [`crate::multilevel`] parameterised with
//! [`Linkage::Eftp`]; this module provides the constructors and the
//! recovery-time analysis used by the `recovery` experiment.

use dap_simnet::SimDuration;

use crate::multilevel::{
    Linkage, MlBootstrap, MultiLevelParams, MultiLevelReceiver, MultiLevelSender, RecoveryRecord,
};

/// Multi-level parameters preset to the EFTP linkage.
#[must_use]
pub fn eftp_params(
    low_interval: SimDuration,
    low_per_high: u32,
    high_chain_len: usize,
    cdm_buffers: usize,
) -> MultiLevelParams {
    MultiLevelParams::new(
        low_interval,
        low_per_high,
        high_chain_len,
        cdm_buffers,
        Linkage::Eftp,
    )
}

/// Multi-level parameters with the original (Liu & Ning style) linkage —
/// the baseline EFTP is compared against.
#[must_use]
pub fn original_params(
    low_interval: SimDuration,
    low_per_high: u32,
    high_chain_len: usize,
    cdm_buffers: usize,
) -> MultiLevelParams {
    MultiLevelParams::new(
        low_interval,
        low_per_high,
        high_chain_len,
        cdm_buffers,
        Linkage::Original,
    )
}

/// An EFTP sender (a [`MultiLevelSender`] with the EFTP linkage).
#[must_use]
pub fn eftp_sender(seed: &[u8], params: MultiLevelParams) -> MultiLevelSender {
    assert_eq!(
        params.linkage,
        Linkage::Eftp,
        "EFTP sender requires the EFTP linkage"
    );
    MultiLevelSender::new(seed, params)
}

/// An EFTP receiver.
#[must_use]
pub fn eftp_receiver(bootstrap: MlBootstrap) -> MultiLevelReceiver {
    MultiLevelReceiver::new(bootstrap)
}

/// Mean recovery latency (ticks from first need to resolution) over a
/// receiver's recovery log; `None` when nothing was recovered.
#[must_use]
pub fn mean_recovery_ticks(records: &[RecoveryRecord]) -> Option<f64> {
    if records.is_empty() {
        return None;
    }
    let total: u64 = records
        .iter()
        .map(|r| r.resolved_at.since(r.needed_at).ticks())
        .sum();
    Some(total as f64 / records.len() as f64)
}

/// The theoretical recovery-latency advantage of EFTP over the original
/// linkage: exactly one high-level interval.
#[must_use]
pub fn theoretical_advantage(params: &MultiLevelParams) -> SimDuration {
    params.high_interval()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_simnet::{SimRng, SimTime};

    #[test]
    fn presets_set_linkage() {
        let e = eftp_params(SimDuration(25), 4, 8, 3);
        assert_eq!(e.linkage, Linkage::Eftp);
        let o = original_params(SimDuration(25), 4, 8, 3);
        assert_eq!(o.linkage, Linkage::Original);
        assert_eq!(theoretical_advantage(&e), SimDuration(100));
    }

    #[test]
    #[should_panic(expected = "EFTP linkage")]
    fn eftp_sender_rejects_original_linkage() {
        let _ = eftp_sender(b"s", original_params(SimDuration(25), 4, 8, 3));
    }

    #[test]
    fn mean_recovery_empty_is_none() {
        assert_eq!(mean_recovery_ticks(&[]), None);
    }

    /// End-to-end recovery-latency comparison: drop all CDMs before some
    /// chain, measure time from first buffered packet to recovery, for
    /// both linkages. EFTP must be faster by exactly one high-level
    /// interval (CDMs arrive at interval starts here).
    #[test]
    fn measured_advantage_is_one_high_interval() {
        let mut measured = std::collections::BTreeMap::new();
        for linkage in [Linkage::Original, Linkage::Eftp] {
            let params = MultiLevelParams::new(SimDuration(25), 4, 16, 3, linkage);
            let sender = MultiLevelSender::new(b"adv", params);
            let mut receiver = MultiLevelReceiver::new(sender.bootstrap());
            let mut rng = SimRng::new(5);

            // Need chain 4 at interval (4,1); CDMs 1..=3 lost.
            let need_at = SimTime((params.global_low_index(4, 1) - 1) * 25 + 2);
            receiver.on_low_packet(&sender.data_packet(4, 1, b"x").unwrap(), need_at);

            let mut resolved_time = None;
            for i in 4..=8u64 {
                let t = SimTime((params.global_low_index(i, 1) - 1) * 25 + 2);
                receiver.on_cdm(&sender.cdm(i).unwrap(), t, &mut rng);
                if let Some(rec) = receiver.recoveries().iter().find(|r| r.high == 4) {
                    resolved_time = Some(rec.resolved_at);
                    break;
                }
            }
            measured.insert(linkage, resolved_time.expect("recovers"));
        }
        let advantage = measured[&Linkage::Original].since(measured[&Linkage::Eftp]);
        assert_eq!(advantage, SimDuration(100), "one high-level interval");
    }
}
