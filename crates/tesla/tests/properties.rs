//! Property-based tests for the TESLA protocol family, on the in-tree
//! `dap-testkit` harness (deterministic, seeded, shrinking).

use dap_crypto::Mac80;
use dap_simnet::{SimDuration, SimRng, SimTime};
use dap_tesla::multilevel::{Linkage, MultiLevelParams, MultiLevelReceiver, MultiLevelSender};
use dap_tesla::tesla::{TeslaPacket, TeslaReceiver, TeslaSender};
use dap_tesla::{ReservoirBuffer, SafetyCheck, TeslaParams};
use dap_testkit::{check, check_with, Config};

/// TESLA authenticates exactly the sender's messages regardless of
/// which packets are lost.
#[test]
fn tesla_sound_under_arbitrary_loss() {
    check("tesla_sound_under_arbitrary_loss", |g| {
        let seed = g.any_u64();
        let loss_mask: Vec<bool> = (0..30).map(|_| g.any_bool()).collect();
        let params = TeslaParams::new(SimDuration(100), 2, 0);
        let sender = TeslaSender::new(&seed.to_le_bytes(), 30, params);
        let mut receiver = TeslaReceiver::new(sender.bootstrap());
        for (idx, lost) in loss_mask.iter().enumerate() {
            let i = idx as u64 + 1;
            if *lost {
                continue;
            }
            let pkt = sender.packet(i, format!("msg {i}").as_bytes()).unwrap();
            receiver.on_packet(&pkt, SimTime((i - 1) * 100 + 10));
        }
        for (i, msg) in receiver.authenticated() {
            let expected = format!("msg {i}");
            assert_eq!(&msg[..], expected.as_bytes());
        }
        // Everything delivered whose key was later disclosed by another
        // delivered packet must have authenticated: count an upper bound.
        assert!(receiver.authenticated().len() <= 30);
    });
}

/// The safe-packet test is monotone: once a packet is unsafe it can
/// never become safe again at a later local time.
#[test]
fn safety_is_monotone_in_time() {
    check("safety_is_monotone_in_time", |g| {
        let interval = g.u64_in(1..1000);
        let d = g.u64_in(1..5);
        let delta = g.u64_in(0..200);
        let index = g.u64_in(1..50);
        let check = SafetyCheck {
            schedule: dap_simnet::IntervalSchedule::new(SimTime::ZERO, SimDuration(interval)),
            disclosure_delay: d,
            max_clock_offset: delta,
        };
        let mut was_unsafe = false;
        for t in (0..interval * 60).step_by((interval / 2).max(1) as usize) {
            let safe = check.is_safe(index, SimTime(t));
            if was_unsafe {
                assert!(!safe, "index {index} became safe again at t={t}");
            }
            was_unsafe |= !safe;
        }
    });
}

/// Reservoir survival is order-independent: shuffling the offer order
/// does not change the marked item's survival *probability* (checked by
/// frequency over many trials for two fixed orders). Statistical trials
/// are expensive, so this one runs the 64-case floor rather than the
/// default 96.
#[test]
fn reservoir_order_independence() {
    let config = Config {
        cases: 64,
        ..Config::default()
    };
    check_with(config, "reservoir_order_independence", |g| {
        let seed = g.any_u64();
        let m = g.usize_in(1..6);
        let trials = 4000;
        let n = 15u32;
        let survival = |mark_last: bool, seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut hits = 0u32;
            for _ in 0..trials {
                let mut pool = ReservoirBuffer::new(m);
                for i in 0..n {
                    let marked = if mark_last { i == n - 1 } else { i == 0 };
                    pool.offer(marked, &mut rng);
                }
                if pool.any(|&x| x) {
                    hits += 1;
                }
            }
            f64::from(hits) / f64::from(trials)
        };
        let first = survival(false, seed);
        let last = survival(true, seed.wrapping_add(1));
        let expect = m as f64 / f64::from(n);
        assert!((first - expect).abs() < 0.05, "first {first} vs {expect}");
        assert!((last - expect).abs() < 0.05, "last {last} vs {expect}");
    });
}

/// Multi-level index arithmetic round-trips for any geometry.
#[test]
fn multilevel_index_roundtrip() {
    check("multilevel_index_roundtrip", |g| {
        let n = g.u32_in(1..20);
        let high = g.u64_in(1..100);
        let low_seed = g.any_u32();
        let params = MultiLevelParams::new(SimDuration(10), n, 4, 1, Linkage::Eftp);
        let low = low_seed % n + 1;
        let global = params.global_low_index(high, low);
        assert_eq!(params.split_low_index(global), (high, low));
    });
}

/// Forged TESLA packets (random MAC) never authenticate, whatever their
/// claimed interval.
#[test]
fn tesla_rejects_random_macs() {
    check("tesla_rejects_random_macs", |g| {
        let seed = g.any_u64();
        let claimed = g.u64_in(1..20);
        let params = TeslaParams::new(SimDuration(100), 2, 0);
        let sender = TeslaSender::new(&seed.to_le_bytes(), 30, params);
        let mut receiver = TeslaReceiver::new(sender.bootstrap());
        let mut rng = SimRng::new(seed);
        let mut mac = [0u8; 10];
        rng.fill_bytes(&mut mac);
        let forged = TeslaPacket {
            index: claimed,
            message: b"evil".to_vec(),
            mac: Mac80::from_slice(&mac).unwrap(),
            disclosed: None,
        };
        receiver.on_packet(&forged, SimTime((claimed - 1) * 100 + 1));
        // Deliver genuine packets that disclose the claimed interval's key.
        for i in claimed..(claimed + 4) {
            let pkt = sender.packet(i, b"fine").unwrap();
            receiver.on_packet(&pkt, SimTime((i - 1) * 100 + 20));
        }
        for (_, msg) in receiver.authenticated() {
            assert_ne!(&msg[..], b"evil");
        }
    });
}

/// Low-level chains derived from the same seed agree between sender
/// instances (deterministic provisioning), and differ across seeds.
#[test]
fn multilevel_chains_deterministic() {
    check("multilevel_chains_deterministic", |g| {
        let seed = g.any_u64();
        let chain = g.u64_in(1..10);
        let params = MultiLevelParams::new(SimDuration(10), 4, 16, 1, Linkage::Eftp);
        let a = MultiLevelSender::new(&seed.to_le_bytes(), params);
        let b = MultiLevelSender::new(&seed.to_le_bytes(), params);
        let ca = *a.low_chain(chain).unwrap().commitment();
        let cb = *b.low_chain(chain).unwrap().commitment();
        assert_eq!(ca, cb);
        let c = MultiLevelSender::new(&seed.wrapping_add(1).to_le_bytes(), params);
        let cc = *c.low_chain(chain).unwrap().commitment();
        assert_ne!(ca, cc);
    });
}

/// A receiver fed any subsequence of the CDM stream never installs a
/// commitment that disagrees with the sender's chains.
#[test]
fn multilevel_commitments_always_genuine() {
    check("multilevel_commitments_always_genuine", |g| {
        let seed = g.any_u64();
        let delivered: Vec<bool> = (0..12).map(|_| g.any_bool()).collect();
        let params = MultiLevelParams::new(SimDuration(25), 4, 16, 3, Linkage::Eftp);
        let sender = MultiLevelSender::new(&seed.to_le_bytes(), params);
        let mut receiver = MultiLevelReceiver::new(sender.bootstrap());
        let mut rng = SimRng::new(seed);
        for (idx, deliver) in delivered.iter().enumerate() {
            let i = idx as u64 + 1;
            if !deliver {
                continue;
            }
            if let Some(cdm) = sender.cdm(i) {
                let t = SimTime((params.global_low_index(i, 1) - 1) * 25 + 1);
                receiver.on_cdm(&cdm, t, &mut rng);
            }
        }
        // Every installed chain must authenticate that chain's traffic.
        for chain in 1..=14u64 {
            if receiver.has_commitment(chain) {
                let pkt = sender.data_packet(chain, 1, b"check").unwrap();
                let t = SimTime((params.global_low_index(chain, 1) - 1) * 25 + 1);
                let _ = receiver.on_low_packet(&pkt, t);
                if let Some(d) = sender.low_disclosure(chain, 2) {
                    let td = SimTime((params.global_low_index(chain, 2) - 1) * 25 + 1);
                    let events = receiver.on_low_disclosure(&d, td);
                    let rejected = events
                        .iter()
                        .any(|e| matches!(e, dap_tesla::multilevel::MlEvent::LowRejected { .. }));
                    assert!(!rejected, "chain {chain} rejected genuine data");
                }
            }
        }
    });
}
