//! Fig. 7 — the optimised number of buffers `m*` at different levels of
//! DoS attack.
//!
//! For each attack level `p`, Algorithm 3 evolves the game for every
//! `m ∈ 1..=M` (`M = 50`) and reports the cost-minimising choice. Three
//! columns are printed (see EXPERIMENTS.md for the discussion):
//!
//! * the exact argmin `m*` with its ESS and cost;
//! * the paper-literal Algorithm-3 transcription (last-descent rule);
//! * the saturation flag: once the ESS at the argmin is `(X′, 1)` the
//!   defender cost equals `R_a` for *every* `m` — the paper's
//!   `p > 0.94` "give up / pin m = M" regime.

use dap_game::ess::EssKind;
use dap_game::optimize::{optimal_buffer_count, optimal_buffer_count_paper_literal};
use dap_game::DosGameParams;

/// The hardware cap from §VI-B-1 (≤ ~50 buffers per node).
pub const BUFFER_CAP: u32 = 50;

/// One point of the Fig.-7 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// Attack level `p`.
    pub p: f64,
    /// Cost-argmin buffer count.
    pub m_star: u32,
    /// ESS kind at `m*`.
    pub kind: EssKind,
    /// Defender cost at the ESS.
    pub cost: f64,
    /// Algorithm 3 exactly as printed (last-descent rule).
    pub m_literal: u32,
    /// `true` when the defense has saturated (cost `≈ R_a` regardless of
    /// `m`; the paper pins `m = M` here).
    pub saturated: bool,
}

/// Computes one sweep point.
#[must_use]
pub fn point(p: f64) -> Fig7Point {
    let params = DosGameParams::paper_defaults(p, 1);
    let opt = optimal_buffer_count(params, BUFFER_CAP);
    let literal = optimal_buffer_count_paper_literal(params, BUFFER_CAP);
    let saturated = matches!(
        opt.ess.kind,
        EssKind::PartialDefenseFullAttack | EssKind::GiveUpDefense
    );
    Fig7Point {
        p,
        m_star: opt.m,
        kind: opt.ess.kind,
        cost: opt.cost,
        m_literal: literal,
        saturated,
    }
}

/// The default sweep (the paper plots roughly `p ∈ [0.5, 1)`).
#[must_use]
pub fn default_sweep() -> Vec<f64> {
    (10..=19)
        .map(|i| f64::from(i) * 0.05)
        .chain([0.96, 0.97, 0.98, 0.99])
        .collect()
}

/// Computes the whole sweep, in parallel.
#[must_use]
pub fn sweep(ps: &[f64]) -> Vec<Fig7Point> {
    std::thread::scope(|s| {
        let handles: Vec<_> = ps.iter().map(|&p| s.spawn(move || point(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_monotone_in_moderate_band() {
        let pts = sweep(&[0.5, 0.65, 0.8, 0.9]);
        for w in pts.windows(2) {
            assert!(
                w[0].m_star <= w[1].m_star,
                "m*({}) = {} > m*({}) = {}",
                w[0].p,
                w[0].m_star,
                w[1].p,
                w[1].m_star
            );
        }
    }

    #[test]
    fn heavy_attack_saturates() {
        let pt = point(0.99);
        assert!(pt.saturated, "{pt:?}");
        assert!((pt.cost - 200.0).abs() < 2.0, "{pt:?}");
    }

    #[test]
    fn moderate_attack_not_saturated() {
        let pt = point(0.8);
        assert!(!pt.saturated, "{pt:?}");
        assert!(pt.cost < 100.0, "{pt:?}");
    }

    #[test]
    fn literal_never_beats_argmin() {
        for pt in sweep(&[0.6, 0.8, 0.95]) {
            let params = DosGameParams::paper_defaults(pt.p, 1);
            let opt = optimal_buffer_count(params, BUFFER_CAP);
            let literal_cost = opt
                .landscape
                .iter()
                .find(|c| c.0 == pt.m_literal)
                .map(|c| c.1)
                .unwrap();
            assert!(pt.cost <= literal_cost + 1e-9, "{pt:?}");
        }
    }
}
