//! Minimal fixed-width table printing for the experiment binaries.

/// Prints a header row followed by a separator.
pub fn header(columns: &[(&str, usize)]) {
    let mut line = String::new();
    let mut rule = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$}  "));
        rule.push_str(&"-".repeat(width + 2));
    }
    println!("{line}");
    println!("{rule}");
}

/// Formats a float to 4 significant-ish decimals for table cells.
#[must_use]
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Prints a section title.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_formats() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(123.456), "123.5");
        assert_eq!(num(0.5), "0.5000");
        assert_eq!(num(0.0005), "5.000e-4");
    }
}
