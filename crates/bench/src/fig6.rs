//! Fig. 6 — the evolution process of the evolutionary game.
//!
//! §VI-B settings: `R_a = 200`, `k1 = 20`, `k2 = 4`, `p = x_a = 0.8`,
//! starting point `(X, Y) = (0.5, 0.5)`, Euler step `t = 0.01`. The paper
//! reports four regimes by buffer count `m`:
//!
//! | `m` | ESS | convergence |
//! |---|---|---|
//! | 1–11   | `(1, 1)`   | fast (few steps) |
//! | 12–17  | `(1, Y′)`  | X fast, Y slow (~100 steps) |
//! | 18–54  | `(X*, Y*)` | spiral (~200 steps) |
//! | 55–100 | `(X′, 1)`  | fast |

use dap_game::dynamics::evolve;
use dap_game::ess::{predict_ess, EssKind, EssOutcome};
use dap_game::{DosGameParams, PopulationState};

/// The paper's attack level for this figure.
pub const P: f64 = 0.8;

/// One trajectory sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Euler step number.
    pub step: usize,
    /// Defender fraction.
    pub x: f64,
    /// Attacker fraction.
    pub y: f64,
}

/// A full panel of Fig. 6: the trajectory for one `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Buffer count.
    pub m: u32,
    /// Downsampled trajectory from `(0.5, 0.5)`.
    pub samples: Vec<Sample>,
    /// Where it settled.
    pub outcome: EssOutcome,
}

/// Computes one panel, keeping at most `max_samples` trajectory points.
#[must_use]
pub fn panel(m: u32, max_samples: usize) -> Panel {
    let game = DosGameParams::paper_defaults(P, m).into_game();
    let trajectory = evolve(&game, PopulationState::CENTER, 2_000_000);
    let states = trajectory.states();
    let stride = (states.len() / max_samples.max(1)).max(1);
    let mut samples: Vec<Sample> = states
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(step, s)| Sample {
            step,
            x: s.x(),
            y: s.y(),
        })
        .collect();
    let last = states.len() - 1;
    if samples.last().map(|s| s.step) != Some(last) {
        samples.push(Sample {
            step: last,
            x: states[last].x(),
            y: states[last].y(),
        });
    }
    Panel {
        m,
        samples,
        outcome: predict_ess(&game),
    }
}

/// The paper's four representative panels (one per regime).
#[must_use]
pub fn paper_panels() -> Vec<Panel> {
    [5, 14, 30, 70].into_iter().map(|m| panel(m, 40)).collect()
}

/// The regime map: the predicted ESS kind for every `m` in `1..=max_m`.
#[must_use]
pub fn regime_map(max_m: u32) -> Vec<(u32, EssKind)> {
    (1..=max_m)
        .map(|m| {
            let game = DosGameParams::paper_defaults(P, m).into_game();
            (m, predict_ess(&game).kind)
        })
        .collect()
}

/// Collapses a regime map into contiguous `(from, to, kind)` ranges.
#[must_use]
pub fn collapse_ranges(map: &[(u32, EssKind)]) -> Vec<(u32, u32, EssKind)> {
    let mut out: Vec<(u32, u32, EssKind)> = Vec::new();
    for &(m, kind) in map {
        match out.last_mut() {
            Some((_, to, k)) if *k == kind && *to + 1 == m => *to = m,
            _ => out.push((m, m, kind)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_cover_all_four_regimes() {
        let kinds: Vec<EssKind> = paper_panels().iter().map(|p| p.outcome.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EssKind::FullDefenseFullAttack,
                EssKind::FullDefensePartialAttack,
                EssKind::Interior,
                EssKind::PartialDefenseFullAttack,
            ]
        );
    }

    #[test]
    fn trajectories_start_at_center() {
        for p in paper_panels() {
            let first = p.samples.first().unwrap();
            assert_eq!(first.step, 0);
            assert_eq!((first.x, first.y), (0.5, 0.5));
        }
    }

    #[test]
    fn trajectories_end_at_the_ess() {
        for p in paper_panels() {
            let last = p.samples.last().unwrap();
            assert!(
                (last.x - p.outcome.point.x()).abs() < 2e-2
                    && (last.y - p.outcome.point.y()).abs() < 2e-2,
                "m={}: trajectory end ({}, {}) vs ESS {}",
                p.m,
                last.x,
                last.y,
                p.outcome.point
            );
        }
    }

    #[test]
    fn regime_map_matches_paper_bands() {
        let ranges = collapse_ranges(&regime_map(100));
        // First band: (1,1) through m = 11 exactly as the paper states.
        assert_eq!(ranges[0].2, EssKind::FullDefenseFullAttack);
        assert_eq!((ranges[0].0, ranges[0].1), (1, 11));
        // Then (1, Y′); the paper says 12..17, our boundary may differ by
        // one (17 is borderline — see EXPERIMENTS.md).
        assert_eq!(ranges[1].2, EssKind::FullDefensePartialAttack);
        assert_eq!(ranges[1].0, 12);
        assert!((16..=18).contains(&ranges[1].1), "{ranges:?}");
        // Then the interior band up to ~54.
        assert_eq!(ranges[2].2, EssKind::Interior);
        assert!((53..=55).contains(&ranges[2].1), "{ranges:?}");
        // Finally (X′, 1) to 100.
        assert_eq!(ranges[3].2, EssKind::PartialDefenseFullAttack);
        assert_eq!(ranges[3].1, 100);
        assert_eq!(ranges.len(), 4, "{ranges:?}");
    }

    #[test]
    fn collapse_ranges_handles_gaps() {
        use EssKind::Interior as I;
        let map = vec![(1, I), (2, I), (4, I)];
        let r = collapse_ranges(&map);
        assert_eq!(r, vec![(1, 2, I), (4, 4, I)]);
    }
}
