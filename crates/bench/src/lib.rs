//! Experiment harness regenerating every figure of the paper's
//! evaluation (§VI), plus the memory table and the EFTP/EDRP recovery
//! claims from §III.
//!
//! Each module computes one experiment's data; the `src/bin/` binaries
//! print them as tables. `EXPERIMENTS.md` at the workspace root records
//! paper-vs-measured for each.
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig5` | Fig. 5 — required MAC bandwidth, DAP vs TESLA++ |
//! | `fig6` | Fig. 6 — evolution trajectories and the ESS regime map |
//! | `fig7` | Fig. 7 — optimal buffer count vs attack level |
//! | `fig8` | Fig. 8 — game-guided vs naive defense cost |
//! | `memory_table` | §IV-D storage comparison (56 vs 280 bits) |
//! | `recovery` | §III EFTP recovery advantage + EDRP continuity |

pub mod ablation;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet;
/// The JSON writer the experiment binaries use. Lives in [`dap_obs`]
/// now (the trace layer needs it below this crate); re-exported here so
/// `dap_bench::json::{array, JsonObject}` call sites keep working.
pub use dap_obs::json;
pub mod recovery;
pub mod sweep;
pub mod table;
pub mod timer;
