//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **multi-buffer *random* selection vs first-come buffering** — why
//!    Algorithm 2 rolls the `m/k` coin instead of just keeping the first
//!    `m` copies;
//! 2. **μMAC width** — why 24 bits suffice (and what 8 bits would cost);
//! 3. **integrator step size** — the paper's Euler `t = 0.01` vs finer
//!    steps and RK4: same ESS, different step counts.

use dap_crypto::hmac::hmac_sha256;
use dap_crypto::Key;
use dap_game::dynamics::{evolve_with, EulerIntegrator, Rk4Integrator};
use dap_game::ess::{classify_coordinates, EssKind};
use dap_game::{DosGameParams, PopulationState};
use dap_simnet::SimRng;
use dap_tesla::{FirstComeBuffer, ReservoirBuffer};

// ---------------------------------------------------------------- 1 ----

/// Result of the buffer-policy ablation at one flood intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyPoint {
    /// Forged copies injected *before* the authentic one each interval.
    pub forged_first: u32,
    /// Authentic-copy survival with reservoir sampling.
    pub reservoir: f64,
    /// Authentic-copy survival with first-come buffering.
    pub first_come: f64,
    /// The uniform-survival prediction `min(1, m/n)`.
    pub predicted: f64,
}

/// Measures authentic-copy survival when the attacker bursts its copies
/// at the start of each interval (its best strategy against first-come).
#[must_use]
pub fn buffer_policy_ablation(
    m: usize,
    floods: &[u32],
    trials: u32,
    seed: u64,
) -> Vec<PolicyPoint> {
    let mut rng = SimRng::new(seed);
    floods
        .iter()
        .map(|&forged_first| {
            let mut res_kept = 0u32;
            let mut fc_kept = 0u32;
            for _ in 0..trials {
                let mut r = ReservoirBuffer::new(m);
                let mut f = FirstComeBuffer::new(m);
                for i in 0..forged_first {
                    r.offer((false, i), &mut rng);
                    f.offer((false, i));
                }
                r.offer((true, 0), &mut rng);
                f.offer((true, 0));
                if r.any(|e| e.0) {
                    res_kept += 1;
                }
                if f.any(|e| e.0) {
                    fc_kept += 1;
                }
            }
            PolicyPoint {
                forged_first,
                reservoir: f64::from(res_kept) / f64::from(trials),
                first_come: f64::from(fc_kept) / f64::from(trials),
                predicted: (m as f64 / f64::from(forged_first + 1)).min(1.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- 2 ----

/// Result of the μMAC-width ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthPoint {
    /// μMAC width in bits.
    pub bits: u32,
    /// Buffer entry size (μMAC + 32-bit index).
    pub entry_bits: u32,
    /// Analytic false-accept probability with `k` forged entries
    /// buffered: `1 − (1 − 2^−bits)^k`.
    pub false_accept_k8: f64,
    /// Same with `k = 64` forged entries.
    pub false_accept_k64: f64,
    /// Empirical collision rate of truncated tags against a fixed target
    /// (per forged attempt).
    pub empirical_collision: f64,
}

/// Sweeps μMAC widths; `samples` forged MACs are drawn per width for the
/// empirical column.
#[must_use]
pub fn micro_mac_width_ablation(widths: &[u32], samples: u32, seed: u64) -> Vec<WidthPoint> {
    let mut rng = SimRng::new(seed);
    let local = Key::derive(b"ablation", b"local");
    widths
        .iter()
        .map(|&bits| {
            assert!(
                bits % 8 == 0 && (8..=64).contains(&bits),
                "byte-aligned widths only"
            );
            let nbytes = (bits / 8) as usize;
            // Target tag: truncated self-MAC of a genuine MAC value.
            let target = &hmac_sha256(local.as_bytes(), b"genuine-mac")[..nbytes];
            let mut collisions = 0u32;
            for _ in 0..samples {
                let mut forged = [0u8; 10];
                rng.fill_bytes(&mut forged);
                let tag = hmac_sha256(local.as_bytes(), &forged);
                if &tag[..nbytes] == target {
                    collisions += 1;
                }
            }
            let p_single = 2f64.powi(-(bits as i32));
            WidthPoint {
                bits,
                entry_bits: bits + 32,
                false_accept_k8: 1.0 - (1.0 - p_single).powi(8),
                false_accept_k64: 1.0 - (1.0 - p_single).powi(64),
                empirical_collision: f64::from(collisions) / f64::from(samples),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- 3 ----

/// Result of the integrator ablation for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegratorPoint {
    /// Integrator label.
    pub label: String,
    /// Step size used.
    pub dt: f64,
    /// Where the dynamics settled.
    pub settle: (f64, f64),
    /// ESS classification of the settle point.
    pub kind: EssKind,
    /// Steps to convergence (displacement < 1e-9), if reached.
    pub steps: Option<usize>,
}

/// Runs the paper's game (`p = 0.8`) at buffer count `m` under Euler with
/// several step sizes and RK4 as the reference.
#[must_use]
pub fn integrator_ablation(m: u32) -> Vec<IntegratorPoint> {
    let game = DosGameParams::paper_defaults(0.8, m).into_game();
    let mut out = Vec::new();
    for dt in [0.1, 0.01, 0.001] {
        let t = evolve_with(
            &game,
            PopulationState::CENTER,
            4_000_000,
            EulerIntegrator { dt },
            1e-9,
        );
        let s = t.last();
        out.push(IntegratorPoint {
            label: format!("euler dt={dt}"),
            dt,
            settle: (s.x(), s.y()),
            kind: classify_coordinates(s),
            steps: t.converged_at(),
        });
    }
    // RK4 reference at the paper's dt.
    let rk4 = Rk4Integrator { dt: 0.01 };
    let mut s = PopulationState::CENTER;
    let mut steps = None;
    for step in 1..=4_000_000usize {
        let next = rk4.step(&game, s);
        let moved = next.distance(&s);
        s = next;
        if moved < 1e-9 {
            steps = Some(step);
            break;
        }
    }
    out.push(IntegratorPoint {
        label: "rk4 dt=0.01".to_owned(),
        dt: 0.01,
        settle: (s.x(), s.y()),
        kind: classify_coordinates(s),
        steps,
    });
    let _ = game.attack_success(); // keep the game alive for clarity
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ablation_shape() {
        let pts = buffer_policy_ablation(3, &[0, 2, 10, 30], 2000, 1);
        // No flood: both keep everything.
        assert_eq!(pts[0].first_come, 1.0);
        assert_eq!(pts[0].reservoir, 1.0);
        // Under-capacity flood: both still keep the authentic copy.
        assert_eq!(pts[1].first_come, 1.0);
        // Over-capacity early flood: first-come starves, reservoir holds
        // its m/n guarantee.
        assert_eq!(pts[2].first_come, 0.0);
        assert!((pts[2].reservoir - pts[2].predicted).abs() < 0.03);
        assert!(pts[3].reservoir > 0.05);
    }

    #[test]
    fn width_ablation_matches_birthday_math() {
        let pts = micro_mac_width_ablation(&[8, 16, 24, 32], 40_000, 2);
        assert_eq!(pts[2].bits, 24);
        assert_eq!(pts[2].entry_bits, 56); // the paper's layout
                                           // 8-bit μMAC: ~0.39% per forged attempt — measurable.
        assert!(pts[0].empirical_collision > 0.001, "{pts:?}");
        // 24-bit: collisions should be absent in 40k samples (E ≈ 0.002).
        assert!(pts[2].empirical_collision < 1e-4, "{pts:?}");
        // Analytic columns decrease with width.
        assert!(pts[0].false_accept_k64 > pts[1].false_accept_k64);
        assert!(pts[1].false_accept_k64 > pts[2].false_accept_k64);
    }

    /// The paper's dt = 0.01 is fine — it agrees with dt = 0.001 and the
    /// RK4 reference on both the regime and the settle point. dt = 0.1,
    /// however, is *too coarse for the interior spiral*: at m = 30 the
    /// explicit-Euler overshoot pumps energy into the spiral and the
    /// trajectory escapes to the (1,1) corner. This is the ablation's
    /// finding, asserted here so it stays true.
    #[test]
    fn paper_step_size_agrees_with_rk4_but_coarser_does_not() {
        for m in [14u32, 30] {
            let pts = integrator_ablation(m);
            let reference = pts.last().unwrap().clone(); // rk4
            for p in pts.iter().filter(|p| p.dt <= 0.01 + 1e-12) {
                assert_eq!(p.kind, reference.kind, "m={m}: {p:?}");
                assert!(
                    (p.settle.0 - reference.settle.0).abs() < 2e-2
                        && (p.settle.1 - reference.settle.1).abs() < 2e-2,
                    "m={m}: {p:?} vs rk4 {reference:?}"
                );
            }
            // The coarse step diverges from the reference in the spiral
            // regime (m = 30) — the instability the paper's t = 0.01
            // avoids.
            if m == 30 {
                let coarse = &pts[0];
                assert!(coarse.dt > 0.05);
                assert_ne!(coarse.kind, reference.kind, "{coarse:?}");
            }
        }
    }
}
