//! Fleet-level validation: the game model's damage term vs the
//! packet-level simulator.

use dap_bench::fleet::{default_grid, validate};
use dap_bench::table;

fn main() {
    println!("Fleet validation: analytic defense cost E vs packet-level measurement");
    println!("E_hybrid replaces the p^m damage probability with the simulated failure");
    println!("rate of an m-buffer DAP receiver under the same flood.");
    println!();
    table::header(&[
        ("p", 6),
        ("m", 4),
        ("ESS X", 8),
        ("ESS Y", 8),
        ("fail sim", 10),
        ("fail p^m", 10),
        ("fail exact", 10),
        ("E model", 10),
        ("E hybrid", 10),
    ]);
    for (p, m) in default_grid() {
        let pt = validate(p, m, 4000, 2024);
        println!(
            "{:>6}  {:>4}  {:>8}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            table::num(pt.p),
            pt.m,
            table::num(pt.x),
            table::num(pt.y),
            table::num(pt.fail_defended),
            table::num(pt.fail_analytic),
            table::num(pt.fail_exact),
            table::num(pt.e_model),
            table::num(pt.e_hybrid),
        );
    }
    println!();
    println!("The simulated failure rate matches the exact reservoir value min(1, m/n)");
    println!("and is bounded above by the paper's p^m, so the analytic E is a safe");
    println!("(slightly conservative) estimate of the measured fleet cost.");
}
