//! Regenerates the §III claims: EFTP's one-interval recovery advantage
//! and EDRP's instant-rejection continuity under CDM floods.

use dap_bench::recovery::{edrp_continuity, recovery_sweep};
use dap_bench::table;

fn main() {
    println!("EFTP vs original multi-level muTESLA: commitment recovery latency");
    println!("(25-tick low intervals, 4 per high interval -> 100-tick high interval)");
    println!();
    table::header(&[
        ("CDM loss", 10),
        ("recoveries", 10),
        ("mean orig", 12),
        ("mean EFTP", 12),
        ("advantage", 12),
        ("p50/p95 orig", 14),
        ("p50/p95 EFTP", 14),
    ]);
    for loss in [0.2, 0.4, 0.6] {
        let r = recovery_sweep(loss, 12);
        println!(
            "{:>10}  {:>10}  {:>12}  {:>12}  {:>12}  {:>14}  {:>14}",
            table::num(r.cdm_loss),
            r.recoveries,
            table::num(r.mean_original),
            table::num(r.mean_eftp),
            table::num(r.mean_original - r.mean_eftp),
            format!("{}/{}", r.p50_p95_original.0, r.p50_p95_original.1),
            format!("{}/{}", r.p50_p95_eftp.0, r.p50_p95_eftp.1),
        );
    }
    println!();
    println!("Theoretical advantage: one high-level interval = 100 ticks");
    println!("(100 s to 30 h in the deployments the paper cites).");

    table::section("EDRP continuity under CDM flooding (3 CDM buffers)");
    table::header(&[
        ("flood/int", 10),
        ("ML auth", 10),
        ("EDRP auth", 10),
        ("EDRP instant", 12),
        ("ML buffered forged", 18),
        ("EDRP buffered", 14),
    ]);
    for flood in [0u32, 5, 20, 50] {
        let c = edrp_continuity(flood, 99);
        println!(
            "{:>10}  {:>10}  {:>10}  {:>12}  {:>18}  {:>14}",
            c.flood_copies,
            format!("{}/{}", c.ml_authenticated, c.cdm_total),
            format!("{}/{}", c.edrp_authenticated, c.cdm_total),
            c.edrp_instant,
            c.ml_buffered_forged,
            c.edrp_buffered,
        );
    }
    println!();
    println!("Shape check: EDRP authenticates every genuine CDM instantly and");
    println!("buffers nothing, while the buffered baseline loses CDMs to the flood.");
}
