//! Ablations of DAP's design choices: random vs first-come buffering,
//! μMAC width, and replicator integrator step size.

use dap_bench::ablation::{buffer_policy_ablation, integrator_ablation, micro_mac_width_ablation};
use dap_bench::table;

fn main() {
    table::section("1. Multi-buffer RANDOM selection vs first-come (m = 3, early-burst flood)");
    table::header(&[
        ("forged first", 12),
        ("first-come", 12),
        ("reservoir", 12),
        ("predicted m/n", 14),
    ]);
    for pt in buffer_policy_ablation(3, &[0, 2, 5, 10, 20, 50], 20_000, 7) {
        println!(
            "{:>12}  {:>12}  {:>12}  {:>14}",
            pt.forged_first,
            table::num(pt.first_come),
            table::num(pt.reservoir),
            table::num(pt.predicted),
        );
    }
    println!();
    println!("An attacker bursting copies at interval start starves first-come completely;");
    println!("the reservoir's survival stays at m/n regardless of arrival order.");

    table::section("2. uMAC width (entry = uMAC + 32-bit index)");
    table::header(&[
        ("bits", 6),
        ("entry bits", 10),
        ("P[false accept] k=8", 20),
        ("k=64", 12),
        ("empirical/forgery", 18),
    ]);
    for pt in micro_mac_width_ablation(&[8, 16, 24, 32], 2_000_000, 8) {
        println!(
            "{:>6}  {:>10}  {:>20}  {:>12}  {:>18}",
            pt.bits,
            pt.entry_bits,
            table::num(pt.false_accept_k8),
            table::num(pt.false_accept_k64),
            table::num(pt.empirical_collision),
        );
    }
    println!();
    println!("24 bits (the paper's choice) keeps the per-interval false-accept");
    println!("probability below 1e-5 even against 64 buffered forgeries, at 1/5th");
    println!("the memory of storing the full 80-bit MAC.");

    table::section("3. Replicator integrator (p = 0.8)");
    for m in [14u32, 30] {
        println!();
        println!("m = {m}:");
        table::header(&[
            ("integrator", 16),
            ("X", 10),
            ("Y", 10),
            ("ESS", 10),
            ("steps", 10),
        ]);
        for pt in integrator_ablation(m) {
            println!(
                "{:>16}  {:>10}  {:>10}  {:>10}  {:>10}",
                pt.label,
                table::num(pt.settle.0),
                table::num(pt.settle.1),
                pt.kind.to_string(),
                pt.steps.map_or("(limit)".into(), |s| s.to_string()),
            );
        }
    }
    println!();
    println!("The paper's t = 0.01 agrees with dt = 0.001 and RK4 on both regime and");
    println!("settle point; dt = 0.1 is too coarse for the interior spiral (m = 30):");
    println!("explicit-Euler overshoot pumps the spiral outward until it sticks at the");
    println!("(1,1) corner. The paper's step size is load-bearing.");
}
