//! Regenerates Fig. 7: the optimised number of buffers at different
//! levels of DoS attack.

use dap_bench::fig7::{default_sweep, sweep, BUFFER_CAP};
use dap_bench::json::{self, JsonObject};
use dap_bench::table;

fn main() {
    if json::json_requested() {
        let points = sweep(&default_sweep());
        println!(
            "{}",
            json::array(&points, |pt| {
                JsonObject::new()
                    .f64("p", pt.p)
                    .u64("m_star", u64::from(pt.m_star))
                    .str("ess", &pt.kind.to_string())
                    .f64("cost", pt.cost)
                    .u64("m_literal", u64::from(pt.m_literal))
                    .bool("saturated", pt.saturated)
            })
        );
        return;
    }
    println!("Fig. 7 — optimal buffer count m* vs attack level p (cap M = {BUFFER_CAP})");
    println!("Settings: R_a = 200, k1 = 20, k2 = 4; ESS from (0.5, 0.5), Euler t = 0.01");
    println!();
    table::header(&[
        ("p", 8),
        ("m* argmin", 10),
        ("ESS", 10),
        ("cost E", 10),
        ("m Alg.3 literal", 16),
        ("saturated", 10),
    ]);
    for pt in sweep(&default_sweep()) {
        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}  {:>16}  {:>10}",
            table::num(pt.p),
            pt.m_star,
            pt.kind.to_string(),
            table::num(pt.cost),
            pt.m_literal,
            if pt.saturated { "yes" } else { "no" },
        );
    }
    println!();
    println!("Shape check: m* grows with p through the moderate band; past p ~ 0.94");
    println!("the ESS flips to (X',1), the cost saturates at R_a for EVERY m, and");
    println!("buying buffers stops paying (the paper pins m = M = 50 there).");
}
