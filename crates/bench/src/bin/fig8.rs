//! Regenerates Fig. 8: average defense cost — evolutionary-game-guided
//! vs naive full defense.

use dap_bench::fig7::default_sweep;
use dap_bench::fig8::sweep;
use dap_bench::json::{self, JsonObject};
use dap_bench::table;

fn main() {
    if json::json_requested() {
        let points = sweep(&default_sweep());
        println!(
            "{}",
            json::array(&points, |pt| {
                JsonObject::new()
                    .f64("p", pt.p)
                    .f64("game_guided", pt.game_guided)
                    .f64("naive", pt.naive)
                    .f64("naive_literal", pt.naive_literal)
                    .u64("m_star", u64::from(pt.m_star))
            })
        );
        return;
    }
    println!("Fig. 8 — average defense cost vs attack level");
    println!("E: cost at the ESS with the Fig.-7 optimal m*");
    println!("N: naive full defense (every node, m = M = 50), attackers at Y'(M)");
    println!();
    table::header(&[
        ("p", 8),
        ("E (game)", 10),
        ("N (naive)", 10),
        ("N literal", 10),
        ("saving", 8),
        ("m*", 6),
    ]);
    for pt in sweep(&default_sweep()) {
        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}  {:>8}  {:>6}",
            table::num(pt.p),
            table::num(pt.game_guided),
            table::num(pt.naive),
            table::num(pt.naive_literal),
            format!("{:.0}%", 100.0 * (1.0 - pt.game_guided / pt.naive)),
            pt.m_star,
        );
    }
    println!();
    println!("Shape check: E <= N everywhere; past p ~ 0.94 the naive cost keeps");
    println!("climbing (explodes under the paper's literal unclamped Y') while the");
    println!("game-guided cost saturates at R_a = 200.");
}
