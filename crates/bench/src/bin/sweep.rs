//! Parameter sweep over (attack level x buffers x loss), CSV output.
//!
//! Usage: `cargo run --release -p dap-bench --bin sweep [intervals]`

use dap_bench::sweep::{run_sweep, to_csv, SweepConfig};

fn main() {
    let intervals = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let config = SweepConfig {
        attack_levels: vec![0.5, 0.67, 0.8, 0.9, 0.95],
        buffer_counts: vec![1, 2, 4, 8, 16],
        loss_rates: vec![0.0, 0.1, 0.3],
        intervals,
        announce_copies: 1,
        seed: 2016,
    };
    print!("{}", to_csv(&run_sweep(&config)));
}
