//! Parameter sweep over (attack level x buffers x loss), CSV output.
//!
//! Usage: `cargo run --release -p dap-bench --bin sweep [intervals] [--json]`

use dap_bench::json::{self, JsonObject};
use dap_bench::sweep::{run_sweep, to_csv, SweepConfig};

fn main() {
    let intervals = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let config = SweepConfig {
        attack_levels: vec![0.5, 0.67, 0.8, 0.9, 0.95],
        buffer_counts: vec![1, 2, 4, 8, 16],
        loss_rates: vec![0.0, 0.1, 0.3],
        intervals,
        announce_copies: 1,
        seed: 2016,
    };
    let rows = run_sweep(&config);
    if json::json_requested() {
        println!(
            "{}",
            json::array(&rows, |r| {
                JsonObject::new()
                    .f64("p", r.p)
                    .u64("m", r.m as u64)
                    .f64("loss", r.loss)
                    .f64("rate", r.rate)
                    .f64("predicted", r.predicted)
                    .u64("peak_memory_bits", r.peak_memory_bits)
            })
        );
    } else {
        print!("{}", to_csv(&rows));
    }
}
