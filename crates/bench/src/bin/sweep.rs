//! Parameter sweep over (attack level x buffers x loss), CSV output.
//!
//! Usage: `cargo run --release -p dap-bench --bin sweep [intervals] [--json] [--chaos] [--check]`
//!
//! `--chaos` layers a scripted fault plan (blackout + bit corruption +
//! duplication) on every cell's campaign; the injected-fault tally shows
//! up as a `fault_events` CSV column or per-counter `fault.*` JSON
//! fields.
//!
//! `--check` additionally runs the grid on a single thread and exits
//! nonzero unless the parallel engine's CSV is byte-identical — the
//! determinism gate `ci.sh` runs on every push.

use dap_bench::json::{self, JsonObject};
use dap_bench::sweep::{run_sweep, run_sweep_sequential, to_csv, SweepConfig};
use dap_simnet::{FaultPlan, FaultWindow, SimTime};

fn main() {
    let intervals = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let chaos = std::env::args().any(|a| a == "--chaos");
    let check = std::env::args().any(|a| a == "--check");
    let config = SweepConfig {
        attack_levels: vec![0.5, 0.67, 0.8, 0.9, 0.95],
        buffer_counts: vec![1, 2, 4, 8, 16],
        loss_rates: vec![0.0, 0.1, 0.3],
        intervals,
        announce_copies: 1,
        seed: 2016,
        fault: chaos.then(|| {
            // Windows sit in the middle of the campaign (100-tick
            // intervals) so every cell also shows the recovery tail.
            let mid = intervals * 100 / 2;
            FaultPlan::new(2016)
                .blackout(FaultWindow::new(SimTime(mid), SimTime(mid + 500)))
                .corrupt(
                    FaultWindow::new(SimTime(mid + 1000), SimTime(mid + 2000)),
                    0.5,
                )
                .duplicate(
                    FaultWindow::new(SimTime(mid + 2000), SimTime(mid + 3000)),
                    0.5,
                )
        }),
    };
    let rows = run_sweep(&config);
    if check {
        let reference = run_sweep_sequential(&config);
        if to_csv(&rows) != to_csv(&reference) {
            eprintln!("sweep --check: parallel CSV differs from sequential reference");
            std::process::exit(1);
        }
        eprintln!(
            "sweep --check: parallel output byte-identical across {} cells",
            rows.len()
        );
    }
    if json::json_requested() {
        println!(
            "{}",
            json::array(&rows, |r| {
                let mut obj = JsonObject::new()
                    .f64("p", r.p)
                    .u64("m", r.m as u64)
                    .f64("loss", r.loss)
                    .f64("rate", r.rate)
                    .f64("predicted", r.predicted)
                    .u64("peak_memory_bits", r.peak_memory_bits)
                    .u64("fault_events", r.fault_events());
                for (name, value) in &r.fault_counters {
                    obj = obj.u64(name, *value);
                }
                obj
            })
        );
    } else {
        print!("{}", to_csv(&rows));
    }
}
