//! Performance trajectory for the hot paths this workspace optimises:
//! ns/iter for the crypto primitives (midstate-cached vs. the pre-cache
//! one-shot reference, re-implemented here) and cells/sec for the sweep
//! engine (work-stealing vs. single-threaded reference).
//!
//! Usage: `cargo run --release -p dap-bench --bin perf [out_dir]`
//!
//! Writes `BENCH_crypto.json` and `BENCH_sweep.json` into `out_dir`
//! (default: current directory) and prints the same numbers to stdout.
//! `DAP_BENCH_MS` bounds each crypto measurement (default 100 ms), so
//! `DAP_BENCH_MS=5` gives a CI-friendly smoke run.

use std::time::Instant;

use dap_bench::json::{array, JsonObject};
use dap_bench::sweep::{run_sweep_sequential, run_sweep_with_stats, to_csv, SweepConfig};
use dap_bench::timer::measure;
use dap_crypto::lanes::{self, LaneWidth};
use dap_crypto::mac::{micro_mac_prepared, prepare_receiver_key, Mac80};
use dap_crypto::oneway::one_way_iter;
use dap_crypto::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN, INITIAL_STATE};
use dap_crypto::{Domain, Key};

/// HMAC-SHA-256 the way the workspace computed it before midstate
/// caching landed: the key schedule re-runs on every call and both
/// passes go through the incremental staging buffer. Kept here as the
/// measured baseline so the reported speedups always compare against
/// the same reference, not against whatever the library currently does.
fn hmac_unprepared(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut block_key = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = sha256::digest(key);
        block_key[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }
    let mut pad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        pad[i] = block_key[i] ^ 0x36;
    }
    let mut inner = Sha256::new();
    inner.update(&pad);
    inner.update(message);
    let inner_digest = inner.finalize();
    for i in 0..BLOCK_LEN {
        pad[i] = block_key[i] ^ 0x5c;
    }
    let mut outer = Sha256::new();
    outer.update(&pad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// `one_way_iter` built on the unprepared reference.
fn one_way_iter_unprepared(domain: Domain, key: &Key, steps: usize) -> Key {
    let mut k = *key;
    for _ in 0..steps {
        let tag = hmac_unprepared(domain.label(), k.as_bytes());
        k = Key::from_slice(&tag[..Key::LEN]).expect("digest longer than key");
    }
    k
}

struct CryptoRecord {
    name: &'static str,
    ns: u64,
    baseline_ns: u64,
}

impl CryptoRecord {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.ns as f64
    }
}

fn bench_crypto() -> Vec<CryptoRecord> {
    let key = Key::derive(b"perf/chain", b"head");
    let recv = Key::derive(b"perf/receiver", b"local");
    let mac = Mac80::from_slice(&[0xabu8; Mac80::LEN]).expect("fixed length");

    let mut records = Vec::new();

    // Sanity: the two paths must agree before their timings mean anything.
    assert_eq!(
        one_way_iter(Domain::F, &key, 64),
        one_way_iter_unprepared(Domain::F, &key, 64),
    );
    records.push(CryptoRecord {
        name: "one_way_iter_4096",
        ns: measure(|| one_way_iter(Domain::F, &key, 4096)),
        baseline_ns: measure(|| one_way_iter_unprepared(Domain::F, &key, 4096)),
    });

    let prepared = prepare_receiver_key(&recv);
    assert_eq!(
        micro_mac_prepared(&prepared, &mac).as_bytes(),
        &hmac_unprepared(recv.as_bytes(), mac.as_bytes())[..3],
    );
    records.push(CryptoRecord {
        name: "micro_mac_rekey",
        ns: measure(|| micro_mac_prepared(&prepared, &mac)),
        baseline_ns: measure(|| {
            let tag = hmac_unprepared(recv.as_bytes(), mac.as_bytes());
            (tag[0], tag[1], tag[2])
        }),
    });

    // Multi-lane compression: ns per *block* for each SIMD width this
    // host supports, against the scalar compressor on an identical
    // workload (`compress_many_with(Scalar, ..)` runs the exact
    // fallback loop the batch APIs use when no lanes exist). Hosts
    // without sse2/avx2 simply omit the lane they can't run.
    for &width in lanes::supported() {
        let name = match width {
            LaneWidth::Scalar => continue,
            LaneWidth::W4 => "compress_x4",
            LaneWidth::W8 => "compress_x8",
        };
        let n = width.lanes();
        let blocks = vec![[0x5au8; BLOCK_LEN]; n];

        // Sanity: the wide kernel must agree with the scalar one.
        let mut wide = vec![INITIAL_STATE; n];
        let mut scalar = vec![INITIAL_STATE; n];
        lanes::compress_many_with(width, &mut wide, &blocks);
        lanes::compress_many_with(LaneWidth::Scalar, &mut scalar, &blocks);
        assert_eq!(wide, scalar, "{name} must match the scalar compression");

        let mut timed = vec![INITIAL_STATE; n];
        let mut reference = vec![INITIAL_STATE; n];
        records.push(CryptoRecord {
            name,
            ns: measure(|| lanes::compress_many_with(width, &mut timed, &blocks))
                .div_ceil(n as u64),
            baseline_ns: measure(|| {
                lanes::compress_many_with(LaneWidth::Scalar, &mut reference, &blocks)
            })
            .div_ceil(n as u64),
        });
    }

    records
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| ".".into());

    let crypto = bench_crypto();
    for r in &crypto {
        println!(
            "{:<24} {:>10} ns/iter   baseline {:>10} ns   speedup {:.2}x",
            r.name,
            r.ns,
            r.baseline_ns,
            r.speedup()
        );
    }
    let crypto_json = array(&crypto, |r| {
        JsonObject::new()
            .str("name", r.name)
            .u64("ns_per_iter", r.ns)
            .u64("baseline_ns", r.baseline_ns)
            .f64("speedup", r.speedup())
    });
    let crypto_path = format!("{out_dir}/BENCH_crypto.json");
    std::fs::write(&crypto_path, format!("{crypto_json}\n")).expect("write BENCH_crypto.json");

    // The acceptance grid: 12 attack levels × 8 buffer counts × 4 loss
    // rates. Campaigns are short — this measures scheduling, not the
    // simulator.
    let config = SweepConfig {
        attack_levels: (0..12).map(|i| 0.05 + 0.07 * f64::from(i)).collect(),
        buffer_counts: (0..8).map(|i| 1usize << i).collect(),
        loss_rates: vec![0.0, 0.1, 0.2, 0.3],
        intervals: 40,
        announce_copies: 1,
        seed: 2016,
        fault: None,
    };
    let t0 = Instant::now();
    let (rows, stats) = run_sweep_with_stats(&config);
    let parallel = t0.elapsed();
    let t1 = Instant::now();
    let reference = run_sweep_sequential(&config);
    let sequential = t1.elapsed();
    let identical = to_csv(&rows) == to_csv(&reference);
    assert!(
        identical,
        "parallel sweep diverged from sequential reference"
    );

    let cells_per_sec = stats.cells as f64 / parallel.as_secs_f64();
    let sweep_speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    let wall = &stats.cell_wall;
    let (wall_p50, wall_p95, wall_p99) = (
        wall.quantile(0.5).unwrap_or(0),
        wall.quantile(0.95).unwrap_or(0),
        wall.quantile(0.99).unwrap_or(0),
    );
    println!(
        "sweep 12x8x4             {:>10} cells   {:>7} workers engaged   {:.0} cells/s   {:.2}x vs sequential",
        stats.cells, stats.workers_engaged, cells_per_sec, sweep_speedup
    );
    println!(
        "sweep cell wall time     p50={wall_p50}ns p95={wall_p95}ns p99={wall_p99}ns   ({} cells sampled)",
        wall.count()
    );

    let sweep_records = [(rows.len(), stats)];
    let sweep_json = array(&sweep_records, |(n, s)| {
        JsonObject::new()
            .str("name", "sweep_12x8x4")
            .u64("cells", *n as u64)
            .u64("workers_spawned", s.workers_spawned as u64)
            .u64("workers_engaged", s.workers_engaged as u64)
            .u64("parallel_us", parallel.as_micros() as u64)
            .u64("sequential_us", sequential.as_micros() as u64)
            .f64("cells_per_sec", cells_per_sec)
            .f64("speedup", sweep_speedup)
            .u64("cell_wall_p50_ns", wall_p50)
            .u64("cell_wall_p95_ns", wall_p95)
            .u64("cell_wall_p99_ns", wall_p99)
            .bool("bit_identical", identical)
    });
    let sweep_path = format!("{out_dir}/BENCH_sweep.json");
    std::fs::write(&sweep_path, format!("{sweep_json}\n")).expect("write BENCH_sweep.json");

    println!("wrote {crypto_path} and {sweep_path}");
}
