//! Regenerates Fig. 5: required bandwidth fraction for MACs at different
//! levels of DoS attack, DAP vs TESLA++.

use dap_bench::fig5::{buffer_counts, default_levels, series, sim_check, Fig5Point, X_D};
use dap_bench::json::{self, JsonObject};
use dap_bench::table;

/// One JSON row: the two sections of the figure share one array, told
/// apart by a `kind` discriminator.
enum Row {
    Bandwidth { mem_kb: u64, pt: Fig5Point },
    SimCheck(dap_bench::fig5::SimCheckPoint),
}

fn emit_json() {
    let mut rows = Vec::new();
    for mem_kb in [1024u64, 512] {
        for pt in series(mem_kb, &default_levels()) {
            rows.push(Row::Bandwidth { mem_kb, pt });
        }
    }
    for pt in sim_check(560, &[0.5, 0.7, 0.8, 0.9], 600, 2024) {
        rows.push(Row::SimCheck(pt));
    }
    println!(
        "{}",
        json::array(&rows, |row| match row {
            Row::Bandwidth { mem_kb, pt } => JsonObject::new()
                .str("kind", "bandwidth")
                .u64("mem_kb", *mem_kb)
                .f64("attack_level", pt.attack_level)
                .f64("teslapp", pt.teslapp)
                .f64("dap", pt.dap)
                .f64("literal_teslapp", pt.literal_teslapp)
                .f64("literal_dap", pt.literal_dap),
            Row::SimCheck(pt) => JsonObject::new()
                .str("kind", "sim_check")
                .f64("p", pt.p)
                .u64("m_teslapp", pt.m_teslapp as u64)
                .u64("m_dap", pt.m_dap as u64)
                .f64("rate_teslapp", pt.rate_teslapp)
                .f64("rate_dap", pt.rate_dap)
                .f64("pred_teslapp", 1.0 - pt.p.powi(pt.m_teslapp as i32))
                .f64("pred_dap", 1.0 - pt.p.powi(pt.m_dap as i32)),
        })
    );
}

fn main() {
    if json::json_requested() {
        emit_json();
        return;
    }
    println!("Fig. 5 — required MAC bandwidth fraction (x_d = {X_D})");
    println!("Settings: s1 = 280 b/packet (TESLA++), s2 = 56 b/packet (DAP); M = Mem/s");

    for mem_kb in [1024u64, 512] {
        let (m1, m2) = buffer_counts(mem_kb);
        table::section(&format!(
            "Mem = {mem_kb} kb  (M_TESLA++ = {m1}, M_DAP = {m2})"
        ));
        table::header(&[
            ("attack P", 10),
            ("TESLA++", 12),
            ("DAP", 12),
            ("ratio", 8),
            ("literal T++", 12),
            ("literal DAP", 12),
        ]);
        for pt in series(mem_kb, &default_levels()) {
            println!(
                "{:>10}  {:>12}  {:>12}  {:>8}  {:>12}  {:>12}",
                table::num(pt.attack_level),
                table::num(pt.teslapp),
                table::num(pt.dap),
                format!("{:.2}x", pt.teslapp / pt.dap),
                table::num(pt.literal_teslapp),
                table::num(pt.literal_dap),
            );
        }
    }

    table::section("Simulation cross-check (560-bit buffer memory, 600 intervals)");
    table::header(&[
        ("p", 8),
        ("m T++", 8),
        ("m DAP", 8),
        ("rate T++", 10),
        ("rate DAP", 10),
        ("1-p^m T++", 10),
        ("1-p^m DAP", 10),
    ]);
    for pt in sim_check(560, &[0.5, 0.7, 0.8, 0.9], 600, 2024) {
        println!(
            "{:>8}  {:>8}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            table::num(pt.p),
            pt.m_teslapp,
            pt.m_dap,
            table::num(pt.rate_teslapp),
            table::num(pt.rate_dap),
            table::num(1.0 - pt.p.powi(pt.m_teslapp as i32)),
            table::num(1.0 - pt.p.powi(pt.m_dap as i32)),
        );
    }
    println!();
    println!("Shape check: DAP requires ~5x less MAC bandwidth than TESLA++ at every");
    println!("attack level (M_DAP = 5 * M_TESLA++ from the 80% memory saving).");
}
