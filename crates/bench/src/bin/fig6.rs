//! Regenerates Fig. 6: the evolution process of the evolutionary game
//! (four panels, one per ESS regime) plus the full regime map.

use dap_bench::fig6::{collapse_ranges, paper_panels, regime_map, P};
use dap_bench::json::{self, JsonObject};
use dap_bench::table;

/// One JSON row: trajectory samples and the regime map share one array,
/// told apart by a `kind` discriminator.
enum Row {
    Trajectory {
        m: u32,
        step: usize,
        x: f64,
        y: f64,
        ess: String,
    },
    Regime {
        m_from: u32,
        m_to: u32,
        ess: String,
    },
}

fn emit_json() {
    let mut rows = Vec::new();
    for panel in paper_panels() {
        let ess = panel.outcome.kind.to_string();
        for s in &panel.samples {
            rows.push(Row::Trajectory {
                m: panel.m,
                step: s.step,
                x: s.x,
                y: s.y,
                ess: ess.clone(),
            });
        }
    }
    for (from, to, kind) in collapse_ranges(&regime_map(100)) {
        rows.push(Row::Regime {
            m_from: from,
            m_to: to,
            ess: kind.to_string(),
        });
    }
    println!(
        "{}",
        json::array(&rows, |row| match row {
            Row::Trajectory { m, step, x, y, ess } => JsonObject::new()
                .str("kind", "trajectory")
                .u64("m", u64::from(*m))
                .u64("step", *step as u64)
                .f64("x", *x)
                .f64("y", *y)
                .str("ess", ess),
            Row::Regime { m_from, m_to, ess } => JsonObject::new()
                .str("kind", "regime")
                .u64("m_from", u64::from(*m_from))
                .u64("m_to", u64::from(*m_to))
                .str("ess", ess),
        })
    );
}

fn main() {
    if json::json_requested() {
        emit_json();
        return;
    }
    println!("Fig. 6 — evolution of (X, Y) from (0.5, 0.5)");
    println!("Settings: R_a = 200, k1 = 20, k2 = 4, p = x_a = {P}, Euler t = 0.01");

    for panel in paper_panels() {
        table::section(&format!(
            "m = {}  →  ESS {}  at {}  ({} steps to convergence)",
            panel.m,
            panel.outcome.kind,
            panel.outcome.point,
            panel
                .outcome
                .steps
                .map_or("??".to_owned(), |s| s.to_string()),
        ));
        table::header(&[("step", 8), ("X", 10), ("Y", 10)]);
        for s in &panel.samples {
            println!(
                "{:>8}  {:>10}  {:>10}",
                s.step,
                table::num(s.x),
                table::num(s.y)
            );
        }
    }

    table::section("Regime map (paper: 1-11 (1,1); 12-17 (1,Y'); 18-54 (X*,Y*); 55-100 (X',1))");
    for (from, to, kind) in collapse_ranges(&regime_map(100)) {
        println!("  m {from:>3} ..= {to:>3}  →  {kind}");
    }
}
