//! Regenerates Fig. 6: the evolution process of the evolutionary game
//! (four panels, one per ESS regime) plus the full regime map.

use dap_bench::fig6::{collapse_ranges, paper_panels, regime_map, P};
use dap_bench::table;

fn main() {
    println!("Fig. 6 — evolution of (X, Y) from (0.5, 0.5)");
    println!("Settings: R_a = 200, k1 = 20, k2 = 4, p = x_a = {P}, Euler t = 0.01");

    for panel in paper_panels() {
        table::section(&format!(
            "m = {}  →  ESS {}  at {}  ({} steps to convergence)",
            panel.m,
            panel.outcome.kind,
            panel.outcome.point,
            panel
                .outcome
                .steps
                .map_or("??".to_owned(), |s| s.to_string()),
        ));
        table::header(&[("step", 8), ("X", 10), ("Y", 10)]);
        for s in &panel.samples {
            println!(
                "{:>8}  {:>10}  {:>10}",
                s.step,
                table::num(s.x),
                table::num(s.y)
            );
        }
    }

    table::section("Regime map (paper: 1-11 (1,1); 12-17 (1,Y'); 18-54 (X*,Y*); 55-100 (X',1))");
    for (from, to, kind) in collapse_ranges(&regime_map(100)) {
        println!("  m {from:>3} ..= {to:>3}  →  {kind}");
    }
}
