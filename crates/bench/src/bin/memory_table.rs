//! Regenerates the §IV-D storage comparison: 56 vs 280 bits per buffered
//! packet, ~80% memory saving, 5x more buffers.

use dap_core::memory::memory_table;

fn main() {
    println!("Receiver storage per pending packet (paper §IV-D / Fig. 4)");
    println!();
    println!(
        "{:<38} {:>10} {:>16} {:>16} {:>9}",
        "scheme", "bits/entry", "buffers@1024kb", "buffers@512kb", "saving"
    );
    println!("{}", "-".repeat(95));
    for row in memory_table() {
        println!(
            "{:<38} {:>10} {:>16} {:>16} {:>8.0}%",
            row.scheme,
            row.entry_bits,
            row.buffers_1024kb,
            row.buffers_512kb,
            row.saving * 100.0
        );
    }
    println!();
    println!("Wire sizes: announce (MAC,i) = 112 b; reveal (M,K,i) = 312 b for the");
    println!("paper's 200-bit message.");
}
