//! Fig. 5 — required bandwidth fraction for MACs at different levels of
//! DoS attack, DAP vs TESLA++.
//!
//! Settings from §VI-A: data-traffic share `x_d = 0.2`; node memory
//! `Mem ∈ {1024 kb, 512 kb}`; storage per buffered packet `s₁ = 280 b`
//! (TESLA++) and `s₂ = 56 b` (DAP); buffer counts `M = Mem/s`.
//!
//! For a tolerated attack-success probability `P` (x-axis), the receiver
//! can afford a forged fraction `p = P^{1/M}`, so the sender's MAC share
//! of the non-data bandwidth is `x_m = (1 − P^{1/M})·(1 − x_d)` — see
//! `dap_core::analysis` and DESIGN.md §4 for the reconstruction note.
//! Because `M₂ = 5·M₁`, DAP's requirement is ≈ 5× lower at every attack
//! level, the figure's conclusion.

use dap_core::analysis::{required_mac_bandwidth, required_mac_bandwidth_paper_literal};
use dap_core::memory::StorageScheme;
use dap_core::sim::{run_campaign, CampaignSpec};

/// The paper's data-traffic share.
pub const X_D: f64 = 0.2;

/// One point of the Fig.-5 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Tolerated attack-success probability (x-axis).
    pub attack_level: f64,
    /// Required MAC bandwidth fraction for TESLA++ (`s₁ = 280 b`).
    pub teslapp: f64,
    /// Required MAC bandwidth fraction for DAP (`s₂ = 56 b`).
    pub dap: f64,
    /// The paper's literal formula, for comparison (TESLA++ / DAP).
    pub literal_teslapp: f64,
    /// The paper's literal formula for DAP.
    pub literal_dap: f64,
}

/// Buffer counts `(M₁, M₂)` for a memory budget in the paper's kb
/// (1 kb = 1000 bits).
#[must_use]
pub fn buffer_counts(mem_kb: u64) -> (u32, u32) {
    let bits = mem_kb * 1000;
    (
        StorageScheme::MessageAndMac.buffers_in(bits) as u32,
        StorageScheme::MicroMac.buffers_in(bits) as u32,
    )
}

/// The analytic series for one memory budget, sweeping the attack level.
#[must_use]
pub fn series(mem_kb: u64, levels: &[f64]) -> Vec<Fig5Point> {
    let (m1, m2) = buffer_counts(mem_kb);
    levels
        .iter()
        .map(|&p| Fig5Point {
            attack_level: p,
            teslapp: required_mac_bandwidth(p, m1, X_D),
            dap: required_mac_bandwidth(p, m2, X_D),
            literal_teslapp: required_mac_bandwidth_paper_literal(p, m1, X_D),
            literal_dap: required_mac_bandwidth_paper_literal(p, m2, X_D),
        })
        .collect()
}

/// The default x-axis sweep.
#[must_use]
pub fn default_levels() -> Vec<f64> {
    (1..=19).map(|i| f64::from(i) * 0.05).collect()
}

/// Simulation cross-check at reduced scale: with the same memory budget
/// expressed in *small* units so runs stay fast, measure the empirical
/// authentication rate of DAP vs a TESLA++-sized buffer under the same
/// flood, confirming the 5× buffer advantage translates into the
/// predicted `1 − p^m` gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimCheckPoint {
    /// Forged-traffic fraction.
    pub p: f64,
    /// Buffers affordable at TESLA++ entry size.
    pub m_teslapp: usize,
    /// Buffers affordable at DAP entry size (5×).
    pub m_dap: usize,
    /// Empirical authentication rate with `m_teslapp` buffers.
    pub rate_teslapp: f64,
    /// Empirical authentication rate with `m_dap` buffers.
    pub rate_dap: f64,
}

/// Runs the simulation cross-check for a tiny memory budget
/// (`mem_bits` total buffer memory).
#[must_use]
pub fn sim_check(mem_bits: u64, ps: &[f64], intervals: u64, seed: u64) -> Vec<SimCheckPoint> {
    let m1 = StorageScheme::MessageAndMac.buffers_in(mem_bits).max(1) as usize;
    let m2 = StorageScheme::MicroMac.buffers_in(mem_bits).max(1) as usize;
    ps.iter()
        .map(|&p| {
            let run = |m: usize| {
                run_campaign(&CampaignSpec {
                    attack_fraction: p,
                    announce_copies: 1,
                    buffers: m,
                    intervals,
                    loss: 0.0,
                    seed,
                })
                .authentication_rate
            };
            SimCheckPoint {
                p,
                m_teslapp: m1,
                m_dap: m2,
                rate_teslapp: run(m1),
                rate_dap: run(m2),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_counts_match_paper_settings() {
        let (m1, m2) = buffer_counts(1024);
        assert_eq!(m1, 3657); // 1_024_000 / 280
        assert_eq!(m2, 18285); // 1_024_000 / 56
        let (s1, s2) = buffer_counts(512);
        assert_eq!(s1, 1828);
        assert_eq!(s2, 9142);
    }

    #[test]
    fn dap_curve_is_below_teslapp_everywhere() {
        for mem in [512, 1024] {
            for point in series(mem, &default_levels()) {
                assert!(
                    point.dap < point.teslapp,
                    "mem={mem} P={}: DAP {} !< TESLA++ {}",
                    point.attack_level,
                    point.dap,
                    point.teslapp
                );
            }
        }
    }

    #[test]
    fn ratio_is_about_five() {
        for point in series(1024, &default_levels()) {
            let ratio = point.teslapp / point.dap;
            assert!(
                (4.5..5.5).contains(&ratio),
                "P={}: ratio {ratio}",
                point.attack_level
            );
        }
    }

    #[test]
    fn smaller_memory_needs_more_bandwidth() {
        let big = series(1024, &[0.3])[0];
        let small = series(512, &[0.3])[0];
        assert!(small.dap > big.dap);
        assert!(small.teslapp > big.teslapp);
    }

    #[test]
    fn sim_check_shows_dap_advantage() {
        // 560 bits of buffer memory: TESLA++ fits 2 buffers, DAP fits 10.
        let points = sim_check(560, &[0.8], 600, 9);
        let pt = points[0];
        assert_eq!(pt.m_teslapp, 2);
        assert_eq!(pt.m_dap, 10);
        assert!(
            pt.rate_dap > pt.rate_teslapp + 0.2,
            "dap {} vs teslapp {}",
            pt.rate_dap,
            pt.rate_teslapp
        );
    }
}
