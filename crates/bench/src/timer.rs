//! A minimal smoke-timer harness for the `benches/` targets.
//!
//! The workspace builds hermetically, so there is no criterion. These
//! timers are deliberately simple: calibrate an iteration count against a
//! wall-clock budget, run, and print nanoseconds per iteration. They are
//! smoke benchmarks — good for spotting order-of-magnitude regressions
//! and for profiling hot paths, not for sub-percent comparisons.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark. Override with `DAP_BENCH_MS`.
fn budget() -> Duration {
    let ms = std::env::var("DAP_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

/// Times `f` and returns the mean nanoseconds per iteration. The
/// closure's result is passed through [`black_box`] so the optimiser
/// cannot delete the work. Calibration and budget match [`smoke`]; use
/// this when the number feeds a report instead of stdout.
pub fn measure<T>(f: impl FnMut() -> T) -> u64 {
    measure_counted(f).0
}

/// [`measure`], but also returning how many timed iterations actually
/// ran — report lanes record that count (e.g. netbench's `frames`
/// field) so a frames-weighted rollup weighs the lane by real work
/// instead of a phantom count of 1.
pub fn measure_counted<T>(mut f: impl FnMut() -> T) -> (u64, u64) {
    // Warm-up + calibration.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (budget().as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u32;

    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    (
        (elapsed.as_nanos() / u128::from(iters)).max(1) as u64,
        u64::from(iters),
    )
}

/// Times `f`, printing `name`, the iteration count and the mean time per
/// iteration. The closure's result is passed through [`black_box`] so the
/// optimiser cannot delete the work.
pub fn smoke<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up + calibration.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (budget().as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u32;

    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() / u128::from(iters);
    println!("{name:<44} {iters:>9} iters   {per_iter:>12} ns/iter");
}

/// Prints a section header so multi-group bench binaries stay readable.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}
