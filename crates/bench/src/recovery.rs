//! §III experiments: EFTP's recovery-time advantage and EDRP's
//! DoS-resistance continuity.
//!
//! These are the claims of the authors' prior protocols that the paper
//! summarises (and that DAP builds on): EFTP shortens the recovery of a
//! lost commitment by one high-level interval; EDRP keeps rejecting
//! forged CDMs instantly (zero buffer cost) as long as one CDM per
//! interval gets through.

use dap_crypto::Key;
use dap_simnet::SimDuration;
use dap_simnet::{Samples, SimRng, SimTime};
use dap_tesla::edrp::{EdrpReceiver, EdrpSender};
use dap_tesla::multilevel::{Linkage, MultiLevelParams, MultiLevelReceiver, MultiLevelSender};

/// Result of the EFTP-vs-original recovery sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryResult {
    /// CDM loss probability used.
    pub cdm_loss: f64,
    /// Mean recovery latency (ticks) with the original linkage.
    pub mean_original: f64,
    /// Mean recovery latency (ticks) with the EFTP linkage.
    pub mean_eftp: f64,
    /// Median / 95th-percentile latency with the original linkage.
    pub p50_p95_original: (u64, u64),
    /// Median / 95th-percentile latency with the EFTP linkage.
    pub p50_p95_eftp: (u64, u64),
    /// Chains recovered (same workload for both linkages).
    pub recoveries: usize,
    /// One high-level interval, the theoretical advantage.
    pub high_interval_ticks: u64,
}

fn base_params(linkage: Linkage) -> MultiLevelParams {
    MultiLevelParams::new(SimDuration(25), 4, 40, 3, linkage)
}

/// Runs one lossy-CDM timeline and returns the per-chain recovery
/// latencies.
fn run_lossy(linkage: Linkage, cdm_loss: f64, seed: u64) -> Vec<u64> {
    let params = base_params(linkage);
    let sender = MultiLevelSender::new(b"recovery", params);
    let mut receiver = MultiLevelReceiver::new(sender.bootstrap());
    let mut rng = SimRng::new(seed);
    let mut loss_rng = SimRng::new(seed ^ 0xdead_beef);

    let horizon = 36u64;
    for i in 1..=horizon {
        let t_cdm = SimTime((params.global_low_index(i, 1) - 1) * 25 + 1);
        // One data packet + disclosure per high interval keeps chains in
        // demand so lost commitments register as "needed".
        if i >= 3 {
            let t_pkt = SimTime((params.global_low_index(i, 1) - 1) * 25 + 3);
            if let Ok(pkt) = sender.data_packet(i, 1, b"sample") {
                receiver.on_low_packet(&pkt, t_pkt);
            }
            let t_disc = SimTime((params.global_low_index(i, 2) - 1) * 25 + 3);
            if let Some(d) = sender.low_disclosure(i, 2) {
                receiver.on_low_disclosure(&d, t_disc);
            }
        }
        if !loss_rng.chance(cdm_loss) {
            if let Some(cdm) = sender.cdm(i) {
                receiver.on_cdm(&cdm, t_cdm, &mut rng);
            }
        }
    }
    receiver
        .recoveries()
        .iter()
        .map(|r| r.resolved_at.since(r.needed_at).ticks())
        .collect()
}

/// The EFTP-vs-original comparison at one CDM loss rate, averaged over
/// `seeds` runs. Both linkages see the *same* loss pattern (same seeds).
#[must_use]
pub fn recovery_sweep(cdm_loss: f64, seeds: u64) -> RecoveryResult {
    let mut orig = Samples::new();
    let mut eftp = Samples::new();
    for s in 0..seeds {
        orig.extend(run_lossy(Linkage::Original, cdm_loss, s));
        eftp.extend(run_lossy(Linkage::Eftp, cdm_loss, s));
    }
    let quantiles = |s: &mut Samples| (s.quantile(0.5).unwrap_or(0), s.quantile(0.95).unwrap_or(0));
    let recoveries = orig.len().min(eftp.len());
    RecoveryResult {
        cdm_loss,
        mean_original: orig.mean().unwrap_or(0.0),
        mean_eftp: eftp.mean().unwrap_or(0.0),
        p50_p95_original: quantiles(&mut orig),
        p50_p95_eftp: quantiles(&mut eftp),
        recoveries,
        high_interval_ticks: base_params(Linkage::Eftp).high_interval().ticks(),
    }
}

/// Result of the EDRP continuity experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuityResult {
    /// Forged CDM copies injected per interval.
    pub flood_copies: u32,
    /// Genuine CDMs authenticated by multi-level μTESLA's buffered path.
    pub ml_authenticated: u64,
    /// Genuine CDMs sent.
    pub cdm_total: u64,
    /// Genuine CDMs authenticated by EDRP.
    pub edrp_authenticated: u64,
    /// Of those, authenticated instantly (hash path).
    pub edrp_instant: u64,
    /// Forged copies that reached a multi-level buffer.
    pub ml_buffered_forged: u64,
    /// Forged copies that reached an EDRP buffer (0 when the chain holds).
    pub edrp_buffered: u64,
}

/// Floods both receivers with `flood_copies` forged CDMs per interval
/// and delivers every genuine CDM; measures who authenticates what and
/// at what buffer cost.
#[must_use]
pub fn edrp_continuity(flood_copies: u32, seed: u64) -> ContinuityResult {
    let params = base_params(Linkage::Eftp);
    let horizon = 30u64;

    // Multi-level baseline.
    let ml_sender = MultiLevelSender::new(b"continuity", params);
    let mut ml_rx = MultiLevelReceiver::new(ml_sender.bootstrap());
    let mut rng = SimRng::new(seed);
    for i in 1..=horizon {
        let t = SimTime((params.global_low_index(i, 1) - 1) * 25 + 1);
        let genuine = ml_sender.cdm(i).expect("within horizon");
        for _ in 0..flood_copies {
            let mut forged = genuine.clone();
            forged.low_commitment = Key::random(&mut rng);
            ml_rx.on_cdm(&forged, t, &mut rng);
        }
        ml_rx.on_cdm(&genuine, t, &mut rng);
    }

    // EDRP.
    let edrp_sender = EdrpSender::new(b"continuity", params);
    let mut edrp_rx = EdrpReceiver::new(edrp_sender.bootstrap());
    let mut rng = SimRng::new(seed);
    for i in 1..=horizon {
        let t = SimTime((params.global_low_index(i, 1) - 1) * 25 + 1);
        let genuine = edrp_sender.cdm(i).expect("within horizon");
        for _ in 0..flood_copies {
            let mut forged = genuine.clone();
            forged.low_commitment = Key::random(&mut rng);
            edrp_rx.on_cdm(&forged, t, &mut rng);
        }
        let (_disposition, _events) = edrp_rx.on_cdm(genuine, t, &mut rng);
    }
    let edrp_authenticated = edrp_rx.stats().cdm_instant + edrp_rx.stats().cdm_delayed;

    ContinuityResult {
        flood_copies,
        ml_authenticated: ml_rx.stats().cdm_authenticated,
        cdm_total: horizon,
        edrp_authenticated,
        edrp_instant: edrp_rx.stats().cdm_instant,
        ml_buffered_forged: ml_rx
            .stats()
            .cdm_stored
            .saturating_sub(ml_rx.stats().cdm_authenticated),
        edrp_buffered: edrp_rx.stats().cdm_buffered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_no_recoveries_needed() {
        let r = recovery_sweep(0.0, 3);
        assert_eq!(r.recoveries, 0);
    }

    #[test]
    fn eftp_recovers_one_interval_faster_on_average() {
        let r = recovery_sweep(0.4, 8);
        assert!(r.recoveries > 0, "workload must trigger recoveries");
        let advantage = r.mean_original - r.mean_eftp;
        // One high-level interval = 100 ticks; allow slack because some
        // recoveries are bounded by when the chain was first needed.
        assert!(
            advantage > 0.5 * r.high_interval_ticks as f64,
            "advantage {advantage} vs interval {}",
            r.high_interval_ticks
        );
    }

    #[test]
    fn edrp_authenticates_everything_instantly_under_flood() {
        let c = edrp_continuity(20, 5);
        assert_eq!(c.edrp_authenticated, c.cdm_total);
        assert_eq!(c.edrp_instant, c.cdm_total);
        assert_eq!(c.edrp_buffered, 0);
        // The buffered baseline loses some CDMs to the flood (3 buffers,
        // 20 forged + 1 genuine per interval → survival ≈ 1−(20/21)^3).
        assert!(
            c.ml_authenticated < c.cdm_total,
            "baseline should drop some: {c:?}"
        );
    }

    #[test]
    fn without_flood_both_authenticate_everything() {
        let c = edrp_continuity(0, 6);
        assert_eq!(c.edrp_authenticated, c.cdm_total);
        // The multi-level baseline authenticates a CDM one interval later
        // (when its key is disclosed); the last interval's CDM is still
        // pending at the end of the run.
        assert!(c.ml_authenticated >= c.cdm_total - 1, "{c:?}");
    }
}
