//! Fleet-level validation of the game's cost model.
//!
//! Fig. 8's defender cost `E = k2·m·X² + [1 − (1−p^m)·X]·R_a·Y` has two
//! parts: a modelling assumption (the congestion-coupled buffer cost
//! `C_d = k2·m·X`) and a *measurable* damage term — the probability that
//! a random node loses its message to the flood, times `R_a·Y`. This
//! experiment measures the damage term in the packet-level simulator and
//! recombines it with the model's buffer cost:
//!
//! ```text
//! E_hybrid = k2·m·X² + R_a·Y·[X·fail_defended + (1−X)·1]
//! ```
//!
//! where `fail_defended` is the *empirical* authentication-failure rate
//! of an m-buffer DAP receiver under the flood (the paper substitutes
//! the analytic `p^m`). Agreement between `E_hybrid` and the analytic `E`
//! validates the bridge between the packet level and the game level.

use dap_core::sim::{run_campaign, CampaignSpec};
use dap_game::cost::defense_cost_closed_form;
use dap_game::ess::predict_ess;
use dap_game::DosGameParams;

/// One fleet validation point.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoint {
    /// Attack level.
    pub p: f64,
    /// Buffer count of defending nodes.
    pub m: u32,
    /// The ESS `(X, Y)` the game predicts.
    pub x: f64,
    /// Attacker fraction at the ESS.
    pub y: f64,
    /// Empirical failure rate of a defended node (simulated).
    pub fail_defended: f64,
    /// The paper's analytic failure probability `p^m`.
    pub fail_analytic: f64,
    /// The exact reservoir value `max(0, 1 − m/n)` for the realised
    /// copies-per-interval `n`.
    pub fail_exact: f64,
    /// Analytic `E` at the ESS.
    pub e_model: f64,
    /// `E` with the damage term replaced by the measurement.
    pub e_hybrid: f64,
}

/// Runs the validation for one `(p, m)`; `intervals` controls the
/// simulation length (statistical precision).
#[must_use]
pub fn validate(p: f64, m: u32, intervals: u64, seed: u64) -> FleetPoint {
    let params = DosGameParams::paper_defaults(p, m);
    let game = params.into_game();
    let ess = predict_ess(&game);
    let (x, y) = (ess.point.x(), ess.point.y());

    // Several authentic copies per interval put the reservoir in the
    // regime the paper's p^m approximates (hypergeometric with
    // proportional counts).
    let authentic = 5u32;
    let campaign = run_campaign(&CampaignSpec {
        attack_fraction: p,
        announce_copies: authentic,
        buffers: m as usize,
        intervals,
        loss: 0.0,
        seed,
    });
    let fail_defended = 1.0 - campaign.authentication_rate;

    // Exact failure: all m kept slots drawn from the forged copies.
    let forged = (f64::from(authentic) * p / (1.0 - p)).round();
    let total = forged + f64::from(authentic);
    let fail_exact: f64 = if f64::from(m) > forged {
        0.0
    } else {
        (0..m)
            .map(|k| (forged - f64::from(k)) / (total - f64::from(k)))
            .product()
    };

    let e_model = defense_cost_closed_form(&game, ess.point);
    let k2 = params.k2;
    let ra = params.ra;
    let e_hybrid = k2 * f64::from(m) * x * x + ra * y * (x * fail_defended + (1.0 - x));

    FleetPoint {
        p,
        m,
        x,
        y,
        fail_defended,
        fail_analytic: game.attack_success(),
        fail_exact,
        e_model,
        e_hybrid,
    }
}

/// The default validation grid: the optimal `m*` plus under- and
/// over-provisioned fleets at two attack levels.
#[must_use]
pub fn default_grid() -> Vec<(f64, u32)> {
    vec![(0.8, 3), (0.8, 5), (0.8, 13), (0.9, 5), (0.9, 16)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_failure_matches_exact_reservoir_value() {
        for (p, m) in [(0.8, 3u32), (0.9, 5)] {
            let pt = validate(p, m, 3000, 42);
            assert!(
                (pt.fail_defended - pt.fail_exact).abs() < 0.04,
                "p={p} m={m}: measured {} vs exact {}",
                pt.fail_defended,
                pt.fail_exact
            );
        }
    }

    #[test]
    fn hybrid_cost_tracks_model_cost() {
        // The paper's p^m slightly overstates failure at small n (the
        // exact reservoir value is lower), so E_hybrid ≤ E_model up to
        // noise — and both agree within the damage term's spread.
        for (p, m) in default_grid() {
            let pt = validate(p, m, 2500, 7);
            let damage_scale = 200.0 * pt.y;
            let gap = (pt.e_hybrid - pt.e_model).abs();
            assert!(
                gap <= 0.2 * damage_scale + 2.0,
                "p={p} m={m}: |{} - {}| = {gap}",
                pt.e_hybrid,
                pt.e_model
            );
        }
    }

    #[test]
    fn overprovisioned_fleet_fails_less() {
        let low = validate(0.8, 3, 2000, 9);
        let high = validate(0.8, 13, 2000, 9);
        assert!(high.fail_defended < low.fail_defended);
    }
}
