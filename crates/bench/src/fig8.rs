//! Fig. 8 — average defense cost at different levels of DoS attack:
//! evolutionary-game-guided defense `E` vs naive full defense `N`.
//!
//! `E` is the defender cost at the ESS with the optimised `m*` (Fig. 7);
//! `N = k2·M + p^M·R_a·Y′(M)` forces every node to defend with the
//! maximum `M = 50` buffers while attackers settle at their evolutionary
//! response. The paper's headline: `E ≤ N` everywhere, with the gap
//! widening sharply past `p ≈ 0.94` where the game moves to the
//! `(X′, 1)` ESS instead of buying useless buffers.

use dap_game::cost::{naive_defense_cost, naive_defense_cost_paper_literal};
use dap_game::DosGameParams;

use crate::fig7::{self, BUFFER_CAP};

/// One point of the Fig.-8 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Point {
    /// Attack level `p`.
    pub p: f64,
    /// Game-guided cost `E` (at the Fig.-7 optimum).
    pub game_guided: f64,
    /// Naive full-defense cost `N` (attacker response clamped to a valid
    /// population fraction).
    pub naive: f64,
    /// `N` with the paper's literal unclamped `Y′` (explodes past
    /// `p ≈ 0.94`; see EXPERIMENTS.md).
    pub naive_literal: f64,
    /// The optimised buffer count behind `E`.
    pub m_star: u32,
}

/// Computes one point.
#[must_use]
pub fn point(p: f64) -> Fig8Point {
    let f7 = fig7::point(p);
    let params = DosGameParams::paper_defaults(p, 1);
    let naive = naive_defense_cost(params, BUFFER_CAP);
    let naive_literal = naive_defense_cost_paper_literal(params, BUFFER_CAP);
    Fig8Point {
        p,
        game_guided: f7.cost,
        naive,
        naive_literal,
        m_star: f7.m_star,
    }
}

/// The full sweep (same x-axis as Fig. 7).
#[must_use]
pub fn sweep(ps: &[f64]) -> Vec<Fig8Point> {
    std::thread::scope(|s| {
        let handles: Vec<_> = ps.iter().map(|&p| s.spawn(move || point(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_guided_never_worse() {
        for pt in sweep(&[0.5, 0.7, 0.8, 0.9, 0.95, 0.99]) {
            assert!(
                pt.game_guided <= pt.naive + 1e-6,
                "p={}: E={} > N={}",
                pt.p,
                pt.game_guided,
                pt.naive
            );
        }
    }

    /// Within the heavy-attack band the naive cost keeps climbing while
    /// the game-guided cost saturates at R_a, so the gap widens — the
    /// paper's "especially when p > 0.94" claim.
    #[test]
    fn gap_widens_within_heavy_attack_band() {
        let at95 = point(0.95);
        let at99 = point(0.99);
        assert!(
            at99.naive - at99.game_guided > at95.naive - at95.game_guided,
            "gap(0.99) should exceed gap(0.95): {at95:?} vs {at99:?}"
        );
        // With the paper's literal unclamped Y', the explosion is dramatic.
        assert!(at99.naive_literal - at99.game_guided > 500.0, "{at99:?}");
    }

    #[test]
    fn naive_cost_grows_with_attack() {
        let a = point(0.8).naive;
        let b = point(0.99).naive;
        assert!(b > a, "naive({b}) should exceed naive({a})");
    }
}
