//! A generic campaign sweep runner: evaluate DAP over a grid of attack
//! levels, buffer counts and channel-loss rates, in parallel, and emit
//! machine-readable rows.
//!
//! This is the tooling a downstream user points at their own parameter
//! space; the figure binaries are special cases of it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dap_core::analysis::authentic_presence;
use dap_core::sim::{run_campaign_with_faults, CampaignSpec};
use dap_crypto::rng::splitmix64;
use dap_obs::Histogram;
use dap_simnet::FaultPlan;

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Forged-traffic fraction.
    pub p: f64,
    /// Receiver buffers.
    pub m: usize,
    /// Channel loss probability.
    pub loss: f64,
    /// Empirical authentication rate.
    pub rate: f64,
    /// The paper's analytic prediction `1 − p^m` (loss-free).
    pub predicted: f64,
    /// Peak receiver memory in bits.
    pub peak_memory_bits: u64,
    /// Every `fault.*` counter from the cell's campaign, sorted by name
    /// (empty without a fault plan).
    pub fault_counters: Vec<(String, u64)>,
}

impl SweepRow {
    /// Total injected-fault events in this cell.
    #[must_use]
    pub fn fault_events(&self) -> u64 {
        self.fault_counters.iter().map(|(_, v)| v).sum()
    }
}

/// The sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Attack levels to evaluate.
    pub attack_levels: Vec<f64>,
    /// Buffer counts to evaluate.
    pub buffer_counts: Vec<usize>,
    /// Loss rates to evaluate.
    pub loss_rates: Vec<f64>,
    /// Intervals per campaign (statistical precision).
    pub intervals: u64,
    /// Authentic announcement copies per interval.
    pub announce_copies: u32,
    /// Base RNG seed; each cell derives its own.
    pub seed: u64,
    /// Optional fault plan injected into every cell's campaign (the
    /// windows are interpreted against each campaign's own timeline).
    pub fault: Option<FaultPlan>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            attack_levels: vec![0.5, 0.8, 0.9],
            buffer_counts: vec![1, 2, 4, 8],
            loss_rates: vec![0.0, 0.1],
            intervals: 400,
            announce_copies: 1,
            seed: 7,
            fault: None,
        }
    }
}

/// Derives the RNG seed of grid cell `(pi, mi, li)` from the base seed.
///
/// The previous scheme added shifted indices to the base seed, so
/// adjacent base seeds collided with adjacent cells (`seed + 1` at
/// `li = 0` equals `seed` at `li = 1`). Mixing through SplitMix64 (a
/// 64-bit bijection) removes that: for indices below 2²⁰ per axis the
/// packed offsets are distinct, XOR with a fixed mixed base keeps them
/// distinct, and the final mix is again injective — so every cell of
/// every grid up to 2²⁰ per axis gets a provably unique seed.
#[must_use]
pub fn cell_seed(base: u64, pi: usize, mi: usize, li: usize) -> u64 {
    debug_assert!(pi < (1 << 20) && mi < (1 << 20) && li < (1 << 20));
    let packed = ((pi as u64) << 40) | ((mi as u64) << 20) | (li as u64);
    splitmix64(splitmix64(base) ^ packed)
}

/// Scheduling statistics from a parallel sweep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStats {
    /// Worker threads spawned (see [`worker_count`]).
    pub workers_spawned: usize,
    /// Workers that completed at least one cell — with more cells than
    /// workers and non-trivial campaigns, this equals `workers_spawned`.
    pub workers_engaged: usize,
    /// Grid cells evaluated.
    pub cells: usize,
    /// Wall time per evaluated cell, in nanoseconds, merged across all
    /// workers. Wall time is *not* part of the deterministic
    /// fingerprint — the rows are — but its spread is what tells you
    /// whether the work-stealing queue is actually levelling the load
    /// (a long tail here means a few slow cells gate the run).
    pub cell_wall: Histogram,
}

#[derive(Clone, Copy)]
struct Cell {
    pi: usize,
    mi: usize,
    li: usize,
    p: f64,
    m: usize,
    loss: f64,
}

fn grid(config: &SweepConfig) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(
        config.attack_levels.len() * config.buffer_counts.len() * config.loss_rates.len(),
    );
    for (pi, &p) in config.attack_levels.iter().enumerate() {
        for (mi, &m) in config.buffer_counts.iter().enumerate() {
            for (li, &loss) in config.loss_rates.iter().enumerate() {
                cells.push(Cell {
                    pi,
                    mi,
                    li,
                    p,
                    m,
                    loss,
                });
            }
        }
    }
    cells
}

/// Evaluates one cell. Pure in `(config, cell)` — the seed derivation
/// makes the row independent of which worker runs it and when.
fn run_cell(config: &SweepConfig, cell: &Cell) -> SweepRow {
    let outcome = run_campaign_with_faults(
        &CampaignSpec {
            attack_fraction: cell.p,
            announce_copies: config.announce_copies,
            buffers: cell.m,
            intervals: config.intervals,
            loss: cell.loss,
            seed: cell_seed(config.seed, cell.pi, cell.mi, cell.li),
        },
        config.fault.clone(),
    );
    SweepRow {
        p: cell.p,
        m: cell.m,
        loss: cell.loss,
        rate: outcome.authentication_rate,
        predicted: authentic_presence(cell.p, cell.m as u32),
        peak_memory_bits: outcome.peak_memory_bits,
        fault_counters: outcome.fault_counters,
    }
}

fn sort_rows(rows: &mut [SweepRow]) {
    rows.sort_by(|a, b| {
        (a.p, a.m, a.loss)
            .partial_cmp(&(b.p, b.m, b.loss))
            .expect("finite keys")
    });
}

/// Runs the full grid on the calling thread — the bit-identical
/// reference the parallel engine is checked against (`sweep --check`).
#[must_use]
pub fn run_sweep_sequential(config: &SweepConfig) -> Vec<SweepRow> {
    let mut rows: Vec<SweepRow> = grid(config)
        .iter()
        .map(|cell| run_cell(config, cell))
        .collect();
    sort_rows(&mut rows);
    rows
}

/// Worker threads for a grid of `cells` cells: the `DAP_SWEEP_WORKERS`
/// environment override when set, else `max(available cores, 2)` —
/// never fewer than two for a multi-cell grid. Containers and cgroup
/// quotas routinely report one core while the work-stealing engine is
/// the code path under test; a floor of two keeps the parallel engine
/// *engaged* everywhere (correctness is scheduling-independent — see
/// `--check` — and two workers on one core cost only negligible
/// oversubscription). Capped at the cell count: idle workers are noise.
#[must_use]
pub fn worker_count(cells: usize) -> usize {
    let requested = std::env::var("DAP_SWEEP_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .max(2)
        });
    requested.min(cells).max(1)
}

/// Runs the full grid with a work-stealing worker pool, returning
/// scheduling statistics alongside the rows.
///
/// All cells go into one queue drained via an atomic index, so workers
/// stay busy until the whole grid is done — unlike the earlier
/// one-thread-per-attack-level split, where the thread with the
/// slowest column gated the run while its siblings sat idle. Per-cell
/// seeds ([`cell_seed`]) make each row a pure function of the config,
/// so the output is bit-identical to [`run_sweep_sequential`] no matter
/// how the cells are scheduled.
#[must_use]
pub fn run_sweep_with_stats(config: &SweepConfig) -> (Vec<SweepRow>, SweepStats) {
    let cells = grid(config);
    let workers = worker_count(cells.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<SweepRow>> = vec![None; cells.len()];
    let mut engaged = 0usize;
    let mut cell_wall = Histogram::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let cells = &cells;
                scope.spawn(move || {
                    let mut done: Vec<(usize, SweepRow)> = Vec::new();
                    let mut wall = Histogram::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = cells.get(i) else { break };
                        let t0 = Instant::now();
                        done.push((i, run_cell(config, cell)));
                        wall.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    }
                    (done, wall)
                })
            })
            .collect();
        for handle in handles {
            let (done, wall) = handle.join().expect("sweep worker");
            if !done.is_empty() {
                engaged += 1;
            }
            for (i, row) in done {
                slots[i] = Some(row);
            }
            cell_wall.merge(&wall);
        }
    });
    let mut rows: Vec<SweepRow> = slots
        .into_iter()
        .map(|slot| slot.expect("every cell evaluated"))
        .collect();
    sort_rows(&mut rows);
    (
        rows,
        SweepStats {
            workers_spawned: workers,
            workers_engaged: engaged,
            cells: cells.len(),
            cell_wall,
        },
    )
}

/// Runs the full grid in parallel (see [`run_sweep_with_stats`]).
#[must_use]
pub fn run_sweep(config: &SweepConfig) -> Vec<SweepRow> {
    run_sweep_with_stats(config).0
}

/// Renders rows as CSV (header + lines).
#[must_use]
pub fn to_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from("p,m,loss,rate,predicted,peak_memory_bits,fault_events\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.4},{},{}\n",
            r.p,
            r.m,
            r.loss,
            r.rate,
            r.predicted,
            r.peak_memory_bits,
            r.fault_events()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            attack_levels: vec![0.5, 0.8],
            buffer_counts: vec![1, 4],
            loss_rates: vec![0.0],
            intervals: 300,
            announce_copies: 1,
            seed: 3,
            fault: None,
        }
    }

    #[test]
    fn grid_is_complete_and_sorted() {
        let rows = run_sweep(&small_config());
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!((w[0].p, w[0].m) <= (w[1].p, w[1].m));
        }
    }

    #[test]
    fn rates_track_reservoir_math_loss_free() {
        for row in run_sweep(&small_config()) {
            // Exact small-n survival: min(1, m/n) with n copies/interval.
            let n = (row.p / (1.0 - row.p)).round() + 1.0;
            let exact = (row.m as f64 / n).min(1.0);
            assert!(
                (row.rate - exact).abs() < 0.08,
                "p={} m={}: rate {} vs exact {exact}",
                row.p,
                row.m,
                row.rate
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_sweep(&small_config());
        let b = run_sweep(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = run_sweep(&small_config());
        let csv = to_csv(&rows);
        assert!(csv.starts_with("p,m,loss,rate"));
        assert_eq!(csv.lines().count(), rows.len() + 1);
        // Without a fault plan the fault_events column is all zeros.
        for line in csv.lines().skip(1) {
            assert!(line.ends_with(",0"), "{line}");
        }
    }

    #[test]
    fn cell_seeds_are_distinct_on_a_large_grid() {
        // 64×64×64 cells from one base seed, plus the same packed index
        // under an adjacent base seed — the old additive scheme collided
        // across both dimensions; the mixed scheme must not.
        let mut seen = std::collections::HashSet::new();
        for pi in 0..64 {
            for mi in 0..64 {
                for li in 0..64 {
                    assert!(
                        seen.insert(cell_seed(7, pi, mi, li)),
                        "duplicate seed at ({pi},{mi},{li})"
                    );
                }
            }
        }
        assert_eq!(seen.len(), 64 * 64 * 64);
        assert!(seen.insert(cell_seed(8, 0, 0, 0)), "adjacent bases collide");
    }

    #[test]
    fn parallel_sweep_matches_sequential_reference() {
        let config = small_config();
        let (parallel, stats) = run_sweep_with_stats(&config);
        let sequential = run_sweep_sequential(&config);
        assert_eq!(parallel, sequential);
        assert_eq!(to_csv(&parallel), to_csv(&sequential));
        assert_eq!(stats.cells, 4);
        assert!(stats.workers_spawned >= 1 && stats.workers_spawned <= 4);
    }

    #[test]
    fn work_queue_saturates_available_workers() {
        // 12×8×4 = 384 cells dwarfs any realistic core count, so every
        // spawned worker must pull at least one cell from the queue.
        let config = SweepConfig {
            attack_levels: (0..12).map(|i| 0.05 + 0.07 * i as f64).collect(),
            buffer_counts: (0..8).map(|i| 1 << i).collect(),
            loss_rates: vec![0.0, 0.1, 0.2, 0.3],
            intervals: 40,
            announce_copies: 1,
            seed: 11,
            fault: None,
        };
        let (rows, stats) = run_sweep_with_stats(&config);
        assert_eq!(rows.len(), 384);
        assert_eq!(stats.cells, 384);
        assert_eq!(stats.workers_spawned, worker_count(384));
        assert!(stats.workers_spawned >= 2, "provisioning floor regressed");
        assert_eq!(stats.workers_engaged, stats.workers_spawned);
        // Every cell contributes exactly one wall-time sample, and the
        // quantile curve those samples form is well-defined.
        assert_eq!(stats.cell_wall.count(), 384);
        assert!(stats.cell_wall.quantile(0.99) >= stats.cell_wall.quantile(0.5));
    }

    #[test]
    fn multi_worker_engagement_is_enforced() {
        // The regression this pins down: a cgroup-capped box reported
        // one core, the engine spawned one worker, and BENCH_sweep.json
        // shipped `workers_spawned: 1, speedup ≈ 1` — the parallel
        // engine silently untested. The floor guarantees ≥ 2 workers on
        // *any* box, and with cells several times slower than a thread
        // spawn, every worker must actually pull from the queue — while
        // the rows stay bit-identical to the sequential reference.
        let config = SweepConfig {
            attack_levels: vec![0.3, 0.6, 0.9],
            buffer_counts: vec![1, 2, 4, 8],
            loss_rates: vec![0.0],
            intervals: 300,
            announce_copies: 1,
            seed: 5,
            fault: None,
        };
        let (rows, stats) = run_sweep_with_stats(&config);
        assert!(
            stats.workers_spawned >= 2,
            "spawned {} workers; the ≥2 provisioning floor is gone",
            stats.workers_spawned
        );
        assert!(
            stats.workers_engaged >= 2,
            "only {} of {} workers engaged on a 12-cell grid",
            stats.workers_engaged,
            stats.workers_spawned
        );
        assert_eq!(rows, run_sweep_sequential(&config), "--check bit-identity");
    }

    #[test]
    fn faulted_sweep_records_counters_in_every_cell() {
        use dap_simnet::{FaultWindow, SimTime};
        let config = SweepConfig {
            fault: Some(
                FaultPlan::new(9).blackout(FaultWindow::new(SimTime(5_000), SimTime(8_000))),
            ),
            ..small_config()
        };
        let rows = run_sweep(&config);
        for row in &rows {
            assert!(
                row.fault_counters
                    .iter()
                    .any(|(n, v)| n == "fault.blackout_dropped" && *v > 0),
                "cell p={} m={} saw no blackout",
                row.p,
                row.m
            );
            assert!(row.fault_events() > 0);
        }
        // Fault injection is part of the deterministic fingerprint.
        assert_eq!(rows, run_sweep(&config));
    }
}
