//! A generic campaign sweep runner: evaluate DAP over a grid of attack
//! levels, buffer counts and channel-loss rates, in parallel, and emit
//! machine-readable rows.
//!
//! This is the tooling a downstream user points at their own parameter
//! space; the figure binaries are special cases of it.

use dap_core::analysis::authentic_presence;
use dap_core::sim::{run_campaign_with_faults, CampaignSpec};
use dap_simnet::FaultPlan;

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Forged-traffic fraction.
    pub p: f64,
    /// Receiver buffers.
    pub m: usize,
    /// Channel loss probability.
    pub loss: f64,
    /// Empirical authentication rate.
    pub rate: f64,
    /// The paper's analytic prediction `1 − p^m` (loss-free).
    pub predicted: f64,
    /// Peak receiver memory in bits.
    pub peak_memory_bits: u64,
    /// Every `fault.*` counter from the cell's campaign, sorted by name
    /// (empty without a fault plan).
    pub fault_counters: Vec<(String, u64)>,
}

impl SweepRow {
    /// Total injected-fault events in this cell.
    #[must_use]
    pub fn fault_events(&self) -> u64 {
        self.fault_counters.iter().map(|(_, v)| v).sum()
    }
}

/// The sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Attack levels to evaluate.
    pub attack_levels: Vec<f64>,
    /// Buffer counts to evaluate.
    pub buffer_counts: Vec<usize>,
    /// Loss rates to evaluate.
    pub loss_rates: Vec<f64>,
    /// Intervals per campaign (statistical precision).
    pub intervals: u64,
    /// Authentic announcement copies per interval.
    pub announce_copies: u32,
    /// Base RNG seed; each cell derives its own.
    pub seed: u64,
    /// Optional fault plan injected into every cell's campaign (the
    /// windows are interpreted against each campaign's own timeline).
    pub fault: Option<FaultPlan>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            attack_levels: vec![0.5, 0.8, 0.9],
            buffer_counts: vec![1, 2, 4, 8],
            loss_rates: vec![0.0, 0.1],
            intervals: 400,
            announce_copies: 1,
            seed: 7,
            fault: None,
        }
    }
}

/// Runs the full grid, one thread per attack level.
#[must_use]
pub fn run_sweep(config: &SweepConfig) -> Vec<SweepRow> {
    let mut rows: Vec<SweepRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = config
            .attack_levels
            .iter()
            .enumerate()
            .map(|(pi, &p)| {
                let config = config.clone();
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (mi, &m) in config.buffer_counts.iter().enumerate() {
                        for (li, &loss) in config.loss_rates.iter().enumerate() {
                            let seed = config
                                .seed
                                .wrapping_add((pi as u64) << 40)
                                .wrapping_add((mi as u64) << 20)
                                .wrapping_add(li as u64);
                            let outcome = run_campaign_with_faults(
                                &CampaignSpec {
                                    attack_fraction: p,
                                    announce_copies: config.announce_copies,
                                    buffers: m,
                                    intervals: config.intervals,
                                    loss,
                                    seed,
                                },
                                config.fault.clone(),
                            );
                            out.push(SweepRow {
                                p,
                                m,
                                loss,
                                rate: outcome.authentication_rate,
                                predicted: authentic_presence(p, m as u32),
                                peak_memory_bits: outcome.peak_memory_bits,
                                fault_counters: outcome.fault_counters,
                            });
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker"))
            .collect()
    });
    rows.sort_by(|a, b| {
        (a.p, a.m, a.loss)
            .partial_cmp(&(b.p, b.m, b.loss))
            .expect("finite keys")
    });
    rows
}

/// Renders rows as CSV (header + lines).
#[must_use]
pub fn to_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from("p,m,loss,rate,predicted,peak_memory_bits,fault_events\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.4},{},{}\n",
            r.p,
            r.m,
            r.loss,
            r.rate,
            r.predicted,
            r.peak_memory_bits,
            r.fault_events()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            attack_levels: vec![0.5, 0.8],
            buffer_counts: vec![1, 4],
            loss_rates: vec![0.0],
            intervals: 300,
            announce_copies: 1,
            seed: 3,
            fault: None,
        }
    }

    #[test]
    fn grid_is_complete_and_sorted() {
        let rows = run_sweep(&small_config());
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!((w[0].p, w[0].m) <= (w[1].p, w[1].m));
        }
    }

    #[test]
    fn rates_track_reservoir_math_loss_free() {
        for row in run_sweep(&small_config()) {
            // Exact small-n survival: min(1, m/n) with n copies/interval.
            let n = (row.p / (1.0 - row.p)).round() + 1.0;
            let exact = (row.m as f64 / n).min(1.0);
            assert!(
                (row.rate - exact).abs() < 0.08,
                "p={} m={}: rate {} vs exact {exact}",
                row.p,
                row.m,
                row.rate
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_sweep(&small_config());
        let b = run_sweep(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = run_sweep(&small_config());
        let csv = to_csv(&rows);
        assert!(csv.starts_with("p,m,loss,rate"));
        assert_eq!(csv.lines().count(), rows.len() + 1);
        // Without a fault plan the fault_events column is all zeros.
        for line in csv.lines().skip(1) {
            assert!(line.ends_with(",0"), "{line}");
        }
    }

    #[test]
    fn faulted_sweep_records_counters_in_every_cell() {
        use dap_simnet::{FaultWindow, SimTime};
        let config = SweepConfig {
            fault: Some(
                FaultPlan::new(9).blackout(FaultWindow::new(SimTime(5_000), SimTime(8_000))),
            ),
            ..small_config()
        };
        let rows = run_sweep(&config);
        for row in &rows {
            assert!(
                row.fault_counters
                    .iter()
                    .any(|(n, v)| n == "fault.blackout_dropped" && *v > 0),
                "cell p={} m={} saw no blackout",
                row.p,
                row.m
            );
            assert!(row.fault_events() > 0);
        }
        // Fault injection is part of the deterministic fingerprint.
        assert_eq!(rows, run_sweep(&config));
    }
}
