//! Protocol-level benchmarks: what a receiver pays per packet under
//! normal traffic and under flood, across DAP and the TESLA baselines.
//! Run with `cargo bench -p dap-bench`.

use dap_bench::timer::{section, smoke};
use dap_core::sim::{run_campaign, CampaignSpec};
use dap_core::{DapParams, DapReceiver, DapSender};
use dap_simnet::{SimRng, SimTime};
use dap_tesla::tesla::{TeslaReceiver, TeslaSender};
use dap_tesla::{ReservoirBuffer, TeslaParams};
use std::hint::black_box;

fn bench_reservoir() {
    section("reservoir");
    let mut rng = SimRng::new(1);
    smoke("reservoir_offer_under_flood_m8", || {
        let mut pool = ReservoirBuffer::<u64>::new(8);
        for i in 0..100u64 {
            pool.offer(black_box(i), &mut rng);
        }
        pool
    });
}

fn bench_dap_roundtrip() {
    section("dap");
    let params = DapParams::default();
    let mut rng = SimRng::new(2);
    let mut interval = 0u64;
    let mut sender = DapSender::new(b"bench", 1_000_000, params);
    let mut receiver = DapReceiver::new(sender.bootstrap(), b"rx");
    smoke("dap_announce_reveal_roundtrip", || {
        interval += 1;
        let t_announce = SimTime((interval - 1) * 100 + 1);
        let t_reveal = SimTime(interval * 100 + 1);
        let ann = sender
            .announce(interval, b"sensor reading payload !!")
            .unwrap();
        receiver.on_announce(&ann, t_announce, &mut rng);
        let rev = sender.reveal(interval).unwrap();
        black_box(receiver.on_reveal(&rev, t_reveal))
    });
}

fn bench_dap_flooded_announce() {
    let params = DapParams::default().with_buffers(8);
    let sender = DapSender::new(b"bench", 16, params);
    let mut receiver = DapReceiver::new(sender.bootstrap(), b"rx");
    let mut rng = SimRng::new(3);
    let forged = dap_core::wire::Announce {
        index: 1,
        mac: dap_crypto::Mac80::from_slice(&[7u8; 10]).unwrap(),
    };
    smoke("dap_on_announce_flooded", || {
        black_box(receiver.on_announce(&forged, SimTime(10), &mut rng))
    });
}

fn bench_tesla_packet() {
    section("tesla");
    let params = TeslaParams::new(dap_simnet::SimDuration(100), 2, 0);
    let mut interval = 0u64;
    let sender = TeslaSender::new(b"bench", 1_000_000, params);
    let mut receiver = TeslaReceiver::new(sender.bootstrap());
    smoke("tesla_on_packet_and_disclose", || {
        interval += 1;
        let pkt = sender.packet(interval, b"payload").unwrap();
        black_box(receiver.on_packet(&pkt, SimTime((interval - 1) * 100 + 1)))
    });
}

fn bench_campaign() {
    section("campaign");
    let mut seed = 0u64;
    smoke("dap_campaign_100_intervals_p08_m5", || {
        seed += 1;
        run_campaign(&CampaignSpec {
            attack_fraction: 0.8,
            announce_copies: 1,
            buffers: 5,
            intervals: 100,
            loss: 0.1,
            seed,
        })
    });
}

fn main() {
    bench_reservoir();
    bench_dap_roundtrip();
    bench_dap_flooded_announce();
    bench_tesla_packet();
    bench_campaign();
}
