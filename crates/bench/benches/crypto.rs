//! Micro-benchmarks of the crypto substrate: the per-packet costs every
//! protocol in the workspace pays. Run with `cargo bench -p dap-bench`.

use dap_bench::timer::{section, smoke};
use dap_crypto::hmac::hmac_sha256;
use dap_crypto::mac::{mac80, micro_mac, verify_mac80};
use dap_crypto::oneway::{one_way, one_way_iter};
use dap_crypto::sha256::digest;
use dap_crypto::{Domain, Key, KeyChain};
use std::hint::black_box;

fn bench_sha256() {
    section("sha256");
    for size in [64usize, 256, 1024] {
        let data = vec![0xa5u8; size];
        smoke(&format!("digest_{size}B"), || digest(black_box(&data)));
    }
}

fn bench_hmac() {
    section("hmac");
    let data = vec![0x5au8; 200 / 8]; // the paper's 200-bit message
    smoke("hmac_sha256_200bit_msg", || {
        hmac_sha256(black_box(b"key"), black_box(&data))
    });
}

fn bench_macs() {
    section("macs");
    let key = Key::derive(b"bench", b"k");
    let msg = vec![1u8; 25];
    let tag = mac80(&key, &msg);
    smoke("mac80_compute", || mac80(black_box(&key), black_box(&msg)));
    smoke("mac80_verify", || {
        verify_mac80(black_box(&key), black_box(&msg), black_box(&tag))
    });
    smoke("micro_mac", || micro_mac(black_box(&key), black_box(&tag)));
}

fn bench_keychain() {
    section("keychain");
    smoke("keychain_generate_1000", || {
        KeyChain::generate(black_box(b"seed"), 1000, Domain::F)
    });

    let chain = KeyChain::generate(b"seed", 256, Domain::F);
    let anchor = chain.anchor();
    let k1 = *chain.key(1).unwrap();
    let k100 = *chain.key(100).unwrap();
    smoke("anchor_verify_1_step", || {
        anchor.verify(black_box(&k1), 1).unwrap()
    });
    smoke("anchor_verify_100_steps", || {
        anchor.verify(black_box(&k100), 100).unwrap()
    });

    let key = Key::derive(b"x", b"y");
    smoke("one_way_single", || one_way(Domain::F, black_box(&key)));
    smoke("one_way_iter_64", || {
        one_way_iter(Domain::F, black_box(&key), 64)
    });
}

fn main() {
    bench_sha256();
    bench_hmac();
    bench_macs();
    bench_keychain();
}
