//! Micro-benchmarks of the crypto substrate: the per-packet costs every
//! protocol in the workspace pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dap_crypto::hmac::hmac_sha256;
use dap_crypto::mac::{mac80, micro_mac, verify_mac80};
use dap_crypto::oneway::{one_way, one_way_iter};
use dap_crypto::sha256::digest;
use dap_crypto::{Domain, Key, KeyChain};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 256, 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| digest(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5au8; 200 / 8]; // the paper's 200-bit message
    c.bench_function("hmac_sha256_200bit_msg", |b| {
        b.iter(|| hmac_sha256(black_box(b"key"), black_box(&data)))
    });
}

fn bench_macs(c: &mut Criterion) {
    let key = Key::derive(b"bench", b"k");
    let msg = vec![1u8; 25];
    let tag = mac80(&key, &msg);
    c.bench_function("mac80_compute", |b| {
        b.iter(|| mac80(black_box(&key), black_box(&msg)))
    });
    c.bench_function("mac80_verify", |b| {
        b.iter(|| verify_mac80(black_box(&key), black_box(&msg), black_box(&tag)))
    });
    c.bench_function("micro_mac", |b| {
        b.iter(|| micro_mac(black_box(&key), black_box(&tag)))
    });
}

fn bench_keychain(c: &mut Criterion) {
    c.bench_function("keychain_generate_1000", |b| {
        b.iter(|| KeyChain::generate(black_box(b"seed"), 1000, Domain::F))
    });

    let chain = KeyChain::generate(b"seed", 256, Domain::F);
    let anchor = chain.anchor();
    let k1 = *chain.key(1).unwrap();
    let k100 = *chain.key(100).unwrap();
    c.bench_function("anchor_verify_1_step", |b| {
        b.iter(|| anchor.verify(black_box(&k1), 1).unwrap())
    });
    c.bench_function("anchor_verify_100_steps", |b| {
        b.iter(|| anchor.verify(black_box(&k100), 100).unwrap())
    });

    let key = Key::derive(b"x", b"y");
    c.bench_function("one_way_single", |b| {
        b.iter(|| one_way(Domain::F, black_box(&key)))
    });
    c.bench_function("one_way_iter_64", |b| {
        b.iter(|| one_way_iter(Domain::F, black_box(&key), 64))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_macs,
    bench_keychain
);
criterion_main!(benches);
