//! Evolutionary-game benchmarks: the cost of the analysis a QoS-balanced
//! DAP node runs when re-provisioning its buffers.
//! Run with `cargo bench -p dap-bench`.

use dap_bench::timer::{section, smoke};
use dap_game::dynamics::{evolve, EulerIntegrator};
use dap_game::ess::{ess_candidates, predict_ess};
use dap_game::optimize::optimal_buffer_count;
use dap_game::{DosGameParams, PopulationState};
use std::hint::black_box;

fn bench_euler_step() {
    section("dynamics");
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    let euler = EulerIntegrator::paper();
    smoke("euler_step", || {
        euler.step(black_box(&game), black_box(PopulationState::CENTER))
    });
}

fn bench_evolution() {
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    smoke("evolve_1000_steps_interior", || {
        evolve(black_box(&game), PopulationState::CENTER, 1000)
    });
}

fn bench_predict_ess() {
    section("predict_ess");
    for m in [5u32, 14, 30, 70] {
        let game = DosGameParams::paper_defaults(0.8, m).into_game();
        smoke(&format!("predict_ess_m{m}"), || {
            predict_ess(black_box(&game))
        });
    }
}

fn bench_candidates() {
    section("candidates");
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    smoke("ess_candidates", || ess_candidates(black_box(&game)));
}

fn bench_optimize() {
    section("algorithm3");
    smoke("optimal_buffer_count_cap20_p08", || {
        optimal_buffer_count(DosGameParams::paper_defaults(0.8, 1), 20)
    });
}

fn main() {
    bench_euler_step();
    bench_evolution();
    bench_predict_ess();
    bench_candidates();
    bench_optimize();
}
