//! Evolutionary-game benchmarks: the cost of the analysis a QoS-balanced
//! DAP node runs when re-provisioning its buffers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dap_game::dynamics::{evolve, EulerIntegrator};
use dap_game::ess::{ess_candidates, predict_ess};
use dap_game::optimize::optimal_buffer_count;
use dap_game::{DosGameParams, PopulationState};

fn bench_euler_step(c: &mut Criterion) {
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    let euler = EulerIntegrator::paper();
    c.bench_function("euler_step", |b| {
        b.iter(|| euler.step(black_box(&game), black_box(PopulationState::CENTER)))
    });
}

fn bench_evolution(c: &mut Criterion) {
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    c.bench_function("evolve_1000_steps_interior", |b| {
        b.iter(|| evolve(black_box(&game), PopulationState::CENTER, 1000))
    });
}

fn bench_predict_ess(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_ess");
    group.sample_size(20);
    for m in [5u32, 14, 30, 70] {
        let game = DosGameParams::paper_defaults(0.8, m).into_game();
        group.bench_function(format!("m{m}"), |b| {
            b.iter(|| predict_ess(black_box(&game)))
        });
    }
    group.finish();
}

fn bench_candidates(c: &mut Criterion) {
    let game = DosGameParams::paper_defaults(0.8, 30).into_game();
    c.bench_function("ess_candidates", |b| {
        b.iter(|| ess_candidates(black_box(&game)))
    });
}

fn bench_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm3");
    group.sample_size(10);
    group.bench_function("optimal_buffer_count_cap20_p08", |b| {
        b.iter(|| optimal_buffer_count(DosGameParams::paper_defaults(0.8, 1), 20))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_euler_step,
    bench_evolution,
    bench_predict_ess,
    bench_candidates,
    bench_optimize
);
criterion_main!(benches);
