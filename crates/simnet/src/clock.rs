//! Loose time synchronisation.
//!
//! TESLA-family protocols do not need synchronised clocks — only *loosely*
//! synchronised ones: every receiver knows an upper bound `Δ` on how far
//! its clock can be from the sender's. The safe-packet test ("could the key
//! for this packet already be disclosed?") is evaluated against local time
//! plus `Δ`.
//!
//! [`ClockOffsets`] samples a bounded random offset per node so that
//! experiments exercise the protocols under worst-case skew rather than
//! implicitly perfect clocks.

use crate::rng::SimRng;

/// Assigns each node a clock offset drawn uniformly from `[-Δ, +Δ]` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOffsets {
    /// The synchronisation error bound `Δ`, in ticks.
    max_offset: u64,
}

impl ClockOffsets {
    /// Perfectly synchronised clocks (`Δ = 0`).
    #[must_use]
    pub fn synchronized() -> Self {
        Self { max_offset: 0 }
    }

    /// Loosely synchronised clocks with error bound `max_offset` ticks.
    #[must_use]
    pub fn loose(max_offset: u64) -> Self {
        Self { max_offset }
    }

    /// The bound `Δ`.
    #[must_use]
    pub fn max_offset(&self) -> u64 {
        self.max_offset
    }

    /// Samples one node's offset in `[-Δ, +Δ]`.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> i64 {
        if self.max_offset == 0 {
            return 0;
        }
        let span = 2 * self.max_offset + 1;
        rng.below(span) as i64 - self.max_offset as i64
    }
}

impl Default for ClockOffsets {
    fn default() -> Self {
        Self::synchronized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_is_zero() {
        let mut rng = SimRng::new(1);
        let c = ClockOffsets::synchronized();
        for _ in 0..10 {
            assert_eq!(c.sample(&mut rng), 0);
        }
    }

    #[test]
    fn loose_offsets_within_bound() {
        let mut rng = SimRng::new(2);
        let c = ClockOffsets::loose(50);
        let mut seen_negative = false;
        let mut seen_positive = false;
        for _ in 0..1000 {
            let o = c.sample(&mut rng);
            assert!((-50..=50).contains(&o), "offset {o}");
            seen_negative |= o < 0;
            seen_positive |= o > 0;
        }
        assert!(
            seen_negative && seen_positive,
            "offsets should span both signs"
        );
    }

    #[test]
    fn default_is_synchronized() {
        assert_eq!(ClockOffsets::default(), ClockOffsets::synchronized());
        assert_eq!(ClockOffsets::loose(7).max_offset(), 7);
    }
}
