//! Virtual time: instants, durations and the interval grid protocols
//! live on.
//!
//! Time is a dimensionless tick count. Experiments pick a convention
//! (e.g. 1 tick = 1 ms) and stick to it; nothing in the simulator cares.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (ticks since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The first instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// This instant shifted by a signed offset, saturating at zero —
    /// used to model skewed local clocks.
    #[must_use]
    pub fn offset_by(self, offset: i64) -> SimTime {
        SimTime(self.0.saturating_add_signed(offset))
    }

    /// Time elapsed since `earlier`, or [`SimDuration`] zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Scales the duration by an integer factor.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

/// The interval grid of a TESLA-style protocol: interval `i` (1-based)
/// covers `[start + (i-1)·len, start + i·len)`.
///
/// Interval 0 is "before the protocol starts"; key `K_i` belongs to
/// interval `i ≥ 1`, matching the chain layout in
/// `dap_crypto::KeyChain` where `K_0` is the commitment.
///
/// ```
/// use dap_simnet::{IntervalSchedule, SimTime, SimDuration};
/// let grid = IntervalSchedule::new(SimTime(100), SimDuration(10));
/// assert_eq!(grid.index_at(SimTime(99)), 0);
/// assert_eq!(grid.index_at(SimTime(100)), 1);
/// assert_eq!(grid.index_at(SimTime(109)), 1);
/// assert_eq!(grid.index_at(SimTime(110)), 2);
/// assert_eq!(grid.start_of(2), SimTime(110));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSchedule {
    start: SimTime,
    interval: SimDuration,
}

impl IntervalSchedule {
    /// Creates a grid starting at `start` with intervals of length
    /// `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        assert!(interval.0 > 0, "interval length must be positive");
        Self { start, interval }
    }

    /// The 1-based interval index containing `t` (0 before the grid
    /// starts).
    #[must_use]
    pub fn index_at(&self, t: SimTime) -> u64 {
        if t < self.start {
            0
        } else {
            (t.0 - self.start.0) / self.interval.0 + 1
        }
    }

    /// The first instant of interval `index` (`index ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `index == 0`; interval 0 has no start.
    #[must_use]
    pub fn start_of(&self, index: u64) -> SimTime {
        assert!(index >= 1, "interval indices are 1-based");
        self.start + self.interval.saturating_mul(index - 1)
    }

    /// Interval length.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Grid origin (start of interval 1).
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime(u64::MAX) + SimDuration(5), SimTime(u64::MAX));
        assert_eq!(SimTime(3).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10) - SimTime(3), SimDuration(7));
        assert_eq!(SimDuration(2) + SimDuration(3), SimDuration(5));
    }

    #[test]
    fn offset_by_models_skewed_clocks() {
        assert_eq!(SimTime(100).offset_by(-30), SimTime(70));
        assert_eq!(SimTime(100).offset_by(30), SimTime(130));
        assert_eq!(SimTime(10).offset_by(-30), SimTime(0));
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime(5);
        t += SimDuration(6);
        assert_eq!(t, SimTime(11));
    }

    #[test]
    fn interval_boundaries_are_half_open() {
        let grid = IntervalSchedule::new(SimTime(0), SimDuration(100));
        assert_eq!(grid.index_at(SimTime(0)), 1);
        assert_eq!(grid.index_at(SimTime(99)), 1);
        assert_eq!(grid.index_at(SimTime(100)), 2);
        assert_eq!(grid.start_of(1), SimTime(0));
        assert_eq!(grid.start_of(3), SimTime(200));
    }

    #[test]
    fn index_and_start_are_inverse() {
        let grid = IntervalSchedule::new(SimTime(7), SimDuration(13));
        for i in 1..200 {
            assert_eq!(grid.index_at(grid.start_of(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "interval length must be positive")]
    fn zero_interval_panics() {
        let _ = IntervalSchedule::new(SimTime(0), SimDuration(0));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn start_of_zero_panics() {
        let grid = IntervalSchedule::new(SimTime(0), SimDuration(1));
        let _ = grid.start_of(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime(9).to_string(), "t=9");
        assert_eq!(SimDuration(9).to_string(), "9 ticks");
    }
}
