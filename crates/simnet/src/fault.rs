//! Deterministic fault injection layered on top of the channel model.
//!
//! A [`FaultPlan`] scripts *when* the medium misbehaves — blackouts,
//! frame corruption, duplication, reorder spikes, sender crashes and
//! time-varying clock drift — while the per-receiver [`ChannelModel`]
//! (crate::ChannelModel) keeps describing the *steady-state* channel.
//! The plan carries its own [`SimRng`] stream, so
//!
//! * a plan with no windows perturbs a run **not at all** (bit-identical
//!   to running without a plan), and
//! * two runs with the same network seed and the same plan seed are
//!   bit-identical, faults included.
//!
//! Fault taxonomy (each counted under a `fault.*` metric by the
//! [`Network`](crate::Network)):
//!
//! | fault | window behaviour | metric |
//! |---|---|---|
//! | blackout | every frame sent in `[t0,t1)` is dropped | `fault.blackout_dropped` |
//! | corruption | frame is mangled with probability `p`; an installed corruptor decides whether the result still parses | `fault.corrupted` / `fault.corrupt_dropped` |
//! | duplication | a second physical copy is delivered with probability `p` | `fault.duplicated` |
//! | reorder | delivery gains a random extra latency in `[1, max]` with probability `p` | `fault.reordered` |
//! | crash | the node's radio is off: TX silenced, RX dropped; its timers keep running so it resumes mid-chain | `fault.crash_silenced` / `fault.crash_dropped` |
//! | drift | a node's clock offset follows a piecewise-constant schedule | `fault.drift_shifts` |
//!
//! Crashes model a reboot, not amnesia: the node's state machine (driven
//! by its timers) keeps advancing, so when the window closes a sender
//! resumes broadcasting from the *current* interval of its key chain —
//! exactly the desynchronisation receivers must recover from.
//!
//! Blackouts gate the *send* instant: a frame already in flight when the
//! window opens still lands (the medium swallowed nothing that had
//! already left it).

use crate::network::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A half-open window `[from, until)` of global simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    from: SimTime,
    until: SimTime,
}

impl FaultWindow {
    /// A window covering `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > until`.
    #[must_use]
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(
            from <= until,
            "fault window must not end before it starts: [{from}, {until})"
        );
        Self { from, until }
    }

    /// Window start (inclusive).
    #[must_use]
    pub fn from(&self) -> SimTime {
        self.from
    }

    /// Window end (exclusive).
    #[must_use]
    pub fn until(&self) -> SimTime {
        self.until
    }

    /// `true` when `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

impl std::fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.from, self.until)
    }
}

/// A piecewise-constant clock-offset schedule, generalising the one-shot
/// offsets of [`ClockOffsets`](crate::ClockOffsets): the drift at time
/// `t` is the value of the latest step at or before `t` (zero before the
/// first step).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriftSchedule {
    steps: Vec<(SimTime, i64)>,
}

impl DriftSchedule {
    /// An empty schedule (drift is always zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step: from `at` onwards the drift is `offset` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not strictly after the previous step.
    #[must_use]
    pub fn step(mut self, at: SimTime, offset: i64) -> Self {
        if let Some(&(last, _)) = self.steps.last() {
            assert!(
                at > last,
                "drift steps must be strictly increasing: {at} after {last}"
            );
        }
        self.steps.push((at, offset));
        self
    }

    /// The drift in effect at time `t`.
    #[must_use]
    pub fn offset_at(&self, t: SimTime) -> i64 {
        self.steps
            .iter()
            .take_while(|(at, _)| *at <= t)
            .last()
            .map_or(0, |(_, offset)| *offset)
    }
}

/// A seeded, schedulable script of fault windows, installed on a
/// [`Network`](crate::Network) via
/// [`set_fault_plan`](crate::Network::set_fault_plan).
///
/// All probabilistic decisions draw from the plan's own RNG stream, so
/// the plan never perturbs the network's channel/loss stream: adding a
/// plan whose windows never fire leaves a run bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rng: SimRng,
    blackouts: Vec<FaultWindow>,
    corruption: Vec<(FaultWindow, f64)>,
    duplication: Vec<(FaultWindow, f64)>,
    reorder: Vec<(FaultWindow, f64, SimDuration)>,
    crashes: Vec<(NodeId, FaultWindow)>,
    drifts: Vec<(NodeId, DriftSchedule)>,
}

fn check_probability(name: &str, p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{name} probability must be in [0,1], got {p}"
    );
}

impl FaultPlan {
    /// An empty plan driven by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: SimRng::new(seed),
            blackouts: Vec::new(),
            corruption: Vec::new(),
            duplication: Vec::new(),
            reorder: Vec::new(),
            crashes: Vec::new(),
            drifts: Vec::new(),
        }
    }

    /// The seed this plan was built with — print it to make a chaos run
    /// reproducible.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drops every frame *sent* during `window`.
    #[must_use]
    pub fn blackout(mut self, window: FaultWindow) -> Self {
        self.blackouts.push(window);
        self
    }

    /// Corrupts each delivered frame with probability `p` during
    /// `window`. What "corrupt" means is decided by the corruptor
    /// installed with [`set_corruptor`](crate::Network::set_corruptor);
    /// without one, corrupted frames are unparseable and dropped.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn corrupt(mut self, window: FaultWindow, p: f64) -> Self {
        check_probability("corruption", p);
        self.corruption.push((window, p));
        self
    }

    /// Delivers a duplicate physical copy of each frame with probability
    /// `p` during `window`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn duplicate(mut self, window: FaultWindow, p: f64) -> Self {
        check_probability("duplication", p);
        self.duplication.push((window, p));
        self
    }

    /// With probability `p`, adds a uniform extra latency in
    /// `[1, max_extra]` ticks to deliveries during `window` — a reorder
    /// spike relative to unaffected frames.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`, or if `max_extra` is
    /// zero (a zero-tick spike reorders nothing).
    #[must_use]
    pub fn reorder(mut self, window: FaultWindow, p: f64, max_extra: SimDuration) -> Self {
        check_probability("reorder", p);
        assert!(
            max_extra.ticks() > 0,
            "reorder spike must be at least one tick"
        );
        self.reorder.push((window, p, max_extra));
        self
    }

    /// Crashes `node` for the duration of `window`: its broadcasts and
    /// unicasts are silenced and inbound frames are dropped, but its
    /// timers keep firing so it resumes mid-chain when the window closes.
    #[must_use]
    pub fn crash(mut self, node: NodeId, window: FaultWindow) -> Self {
        self.crashes.push((node, window));
        self
    }

    /// Attaches a time-varying clock-drift schedule to `node`, added on
    /// top of the node's static clock offset.
    #[must_use]
    pub fn drift(mut self, node: NodeId, schedule: DriftSchedule) -> Self {
        self.drifts.push((node, schedule));
        self
    }

    /// `true` when some blackout window covers `t`.
    #[must_use]
    pub fn blackout_at(&self, t: SimTime) -> bool {
        self.blackouts.iter().any(|w| w.contains(t))
    }

    /// `true` when `node` is crashed at `t`.
    #[must_use]
    pub fn crashed(&self, node: NodeId, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|(n, w)| *n == node && w.contains(t))
    }

    /// The scheduled drift for `node` at `t` (zero when unscheduled).
    #[must_use]
    pub fn drift_at(&self, node: NodeId, t: SimTime) -> i64 {
        self.drifts
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, s)| s.offset_at(t))
            .sum()
    }

    /// Decides whether to corrupt a frame delivered at `t`. Draws from
    /// the plan RNG only inside a corruption window.
    #[must_use = "discarding the decision still advances the fault stream"]
    pub fn corrupt_frame(&mut self, t: SimTime) -> bool {
        match self.corruption.iter().find(|(w, _)| w.contains(t)) {
            Some(&(_, p)) => self.rng.chance(p),
            None => false,
        }
    }

    /// Decides whether to duplicate a frame delivered at `t`.
    #[must_use = "discarding the decision still advances the fault stream"]
    pub fn duplicate_frame(&mut self, t: SimTime) -> bool {
        match self.duplication.iter().find(|(w, _)| w.contains(t)) {
            Some(&(_, p)) => self.rng.chance(p),
            None => false,
        }
    }

    /// Decides whether (and by how much) to delay a frame delivered at
    /// `t` beyond its channel latency.
    #[must_use = "discarding the decision still advances the fault stream"]
    pub fn reorder_extra(&mut self, t: SimTime) -> Option<SimDuration> {
        let &(_, p, max_extra) = self.reorder.iter().find(|(w, _, _)| w.contains(t))?;
        if self.rng.chance(p) {
            Some(SimDuration(1 + self.rng.below(max_extra.ticks())))
        } else {
            None
        }
    }

    /// The latest instant at which any scripted fault is still active —
    /// after this, the plan is inert. `None` for an empty plan.
    #[must_use]
    pub fn quiescent_after(&self) -> Option<SimTime> {
        let mut latest: Option<SimTime> = None;
        let mut push = |t: SimTime| {
            latest = Some(latest.map_or(t, |l| l.max(t)));
        };
        for w in &self.blackouts {
            push(w.until());
        }
        for (w, _) in &self.corruption {
            push(w.until());
        }
        for (w, _) in &self.duplication {
            push(w.until());
        }
        for (w, _, _) in &self.reorder {
            push(w.until());
        }
        for (_, w) in &self.crashes {
            push(w.until());
        }
        // Drift never quiesces on its own (the last step persists), so it
        // does not contribute here; it also never drops or alters frames.
        latest
    }

    /// The plan's RNG — used by the network to drive the installed
    /// corruptor so corruption stays on the fault stream.
    pub(crate) fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(from: u64, until: u64) -> FaultWindow {
        FaultWindow::new(SimTime(from), SimTime(until))
    }

    #[test]
    fn window_is_half_open() {
        let win = w(10, 20);
        assert!(!win.contains(SimTime(9)));
        assert!(win.contains(SimTime(10)));
        assert!(win.contains(SimTime(19)));
        assert!(!win.contains(SimTime(20)));
        assert_eq!(win.from(), SimTime(10));
        assert_eq!(win.until(), SimTime(20));
        assert_eq!(win.to_string(), "[t=10, t=20)");
    }

    #[test]
    #[should_panic(expected = "must not end before it starts")]
    fn inverted_window_panics() {
        let _ = w(20, 10);
    }

    #[test]
    fn drift_schedule_is_piecewise_constant() {
        let s = DriftSchedule::new()
            .step(SimTime(100), 5)
            .step(SimTime(200), -3)
            .step(SimTime(300), 0);
        assert_eq!(s.offset_at(SimTime(0)), 0);
        assert_eq!(s.offset_at(SimTime(99)), 0);
        assert_eq!(s.offset_at(SimTime(100)), 5);
        assert_eq!(s.offset_at(SimTime(199)), 5);
        assert_eq!(s.offset_at(SimTime(200)), -3);
        assert_eq!(s.offset_at(SimTime(1000)), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn drift_steps_must_increase() {
        let _ = DriftSchedule::new()
            .step(SimTime(100), 1)
            .step(SimTime(100), 2);
    }

    #[test]
    fn blackout_and_crash_queries() {
        let plan = FaultPlan::new(7)
            .blackout(w(50, 60))
            .crash(NodeId(2), w(10, 30));
        assert!(plan.blackout_at(SimTime(55)));
        assert!(!plan.blackout_at(SimTime(60)));
        assert!(plan.crashed(NodeId(2), SimTime(10)));
        assert!(!plan.crashed(NodeId(2), SimTime(30)));
        assert!(!plan.crashed(NodeId(1), SimTime(15)));
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn probabilistic_faults_only_fire_inside_windows() {
        let mut plan = FaultPlan::new(3)
            .corrupt(w(10, 20), 1.0)
            .duplicate(w(10, 20), 1.0)
            .reorder(w(10, 20), 1.0, SimDuration(4));
        assert!(!plan.corrupt_frame(SimTime(5)));
        assert!(!plan.duplicate_frame(SimTime(25)));
        assert!(plan.reorder_extra(SimTime(5)).is_none());
        assert!(plan.corrupt_frame(SimTime(15)));
        assert!(plan.duplicate_frame(SimTime(15)));
        let extra = plan.reorder_extra(SimTime(15)).unwrap();
        assert!((1..=4).contains(&extra.ticks()), "extra {extra}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut plan = FaultPlan::new(3).corrupt(w(0, 100), 0.0);
        for t in 0..100 {
            assert!(!plan.corrupt_frame(SimTime(t)));
        }
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let make = || FaultPlan::new(11).corrupt(w(0, 1000), 0.5);
        let mut a = make();
        let mut b = make();
        for t in 0..200 {
            assert_eq!(a.corrupt_frame(SimTime(t)), b.corrupt_frame(SimTime(t)));
        }
    }

    #[test]
    #[should_panic(expected = "corruption probability must be in [0,1]")]
    fn corrupt_probability_validated() {
        let _ = FaultPlan::new(1).corrupt(w(0, 10), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "duplication probability must be in [0,1]")]
    fn duplicate_probability_validated() {
        let _ = FaultPlan::new(1).duplicate(w(0, 10), 1.1);
    }

    #[test]
    #[should_panic(expected = "reorder probability must be in [0,1]")]
    fn reorder_probability_validated() {
        let _ = FaultPlan::new(1).reorder(w(0, 10), -0.2, SimDuration(5));
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn reorder_spike_must_be_positive() {
        let _ = FaultPlan::new(1).reorder(w(0, 10), 0.5, SimDuration(0));
    }

    #[test]
    fn drift_sums_over_node_schedules() {
        let plan = FaultPlan::new(1)
            .drift(NodeId(0), DriftSchedule::new().step(SimTime(10), 4))
            .drift(NodeId(0), DriftSchedule::new().step(SimTime(20), -1))
            .drift(NodeId(1), DriftSchedule::new().step(SimTime(10), 100));
        assert_eq!(plan.drift_at(NodeId(0), SimTime(5)), 0);
        assert_eq!(plan.drift_at(NodeId(0), SimTime(15)), 4);
        assert_eq!(plan.drift_at(NodeId(0), SimTime(25)), 3);
        assert_eq!(plan.drift_at(NodeId(1), SimTime(15)), 100);
        assert_eq!(plan.drift_at(NodeId(2), SimTime(15)), 0);
    }

    #[test]
    fn quiescent_after_covers_all_windows() {
        assert_eq!(FaultPlan::new(1).quiescent_after(), None);
        let plan = FaultPlan::new(1)
            .blackout(w(10, 20))
            .corrupt(w(5, 80), 0.5)
            .crash(NodeId(0), w(30, 95));
        assert_eq!(plan.quiescent_after(), Some(SimTime(95)));
    }
}
