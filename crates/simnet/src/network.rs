//! The event loop: nodes, frames, timers and the broadcast medium.
//!
//! The design is a command-buffer architecture: a node callback receives a
//! [`Context`] through which it *records* actions (broadcasts, unicasts,
//! timers); the [`Network`] applies them once the callback returns. This
//! keeps node state and network state disjoint without interior
//! mutability, and makes every run a deterministic function of the seed.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::channel::ChannelModel;
use crate::fault::FaultPlan;
use crate::metrics::{keys, Metrics};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a node within one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// An opaque timer tag a node hands to [`Context::set_timer`] and receives
/// back in [`Node::on_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// A frame as delivered to a node: who sent it, what it carries, and how
/// large it was on the air.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<M> {
    /// Sending node.
    pub src: NodeId,
    /// The protocol message.
    pub message: M,
    /// Airtime cost in bits (drives the bandwidth metrics).
    pub size_bits: u32,
}

/// Behaviour of one node. Implemented by protocol senders, receivers and
/// attackers.
///
/// The `as_any` methods let experiments downcast a node back to its
/// concrete type after a run to read its final state; implement them as
/// `fn as_any(&self) -> &dyn Any { self }` (and likewise `_mut`).
pub trait Node<M>: 'static {
    /// Called once when the simulation starts, before any event fires.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a frame reaches this node.
    fn on_frame(&mut self, ctx: &mut Context<'_, M>, frame: &Frame<M>) {
        let _ = (ctx, frame);
    }

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: TimerToken) {
        let _ = (ctx, timer);
    }

    /// Upcast for state extraction after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for state extraction after a run.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// What a node may do during a callback.
#[derive(Debug)]
enum Action<M> {
    Broadcast {
        message: M,
        size_bits: u32,
    },
    SendTo {
        to: NodeId,
        message: M,
        size_bits: u32,
    },
    Timer {
        delay: SimDuration,
        token: TimerToken,
    },
}

/// The per-callback view a node gets of the world.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: SimTime,
    node: NodeId,
    clock_offset: i64,
    rng: &'a mut SimRng,
    metrics: &'a mut Metrics,
    actions: Vec<Action<M>>,
}

impl<'a, M> Context<'a, M> {
    /// Global (true) simulation time. Protocol code should normally use
    /// [`local_time`](Self::local_time) instead — nodes do not get to see
    /// the true clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's *local* clock: global time shifted by its offset.
    /// All protocol-visible time checks must use this.
    #[must_use]
    pub fn local_time(&self) -> SimTime {
        self.now.offset_by(self.clock_offset)
    }

    /// The node being called.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic randomness scoped to this run.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The run-wide metric counters.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Broadcasts `message` to every other node (subject to each
    /// receiver's channel model). `size_bits` is the frame's airtime cost.
    pub fn broadcast(&mut self, message: M, size_bits: u32) {
        self.actions.push(Action::Broadcast { message, size_bits });
    }

    /// Sends `message` to a single node (still subject to its channel).
    pub fn send_to(&mut self, to: NodeId, message: M, size_bits: u32) {
        self.actions.push(Action::SendTo {
            to,
            message,
            size_bits,
        });
    }

    /// Schedules [`Node::on_timer`] for this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.actions.push(Action::Timer { delay, token });
    }
}

#[derive(Debug)]
enum Event<M> {
    Deliver { to: NodeId, frame: Frame<M> },
    Timer { node: NodeId, token: TimerToken },
}

struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    event: Event<M>,
}

// Order by (time, seq) so the heap pops the earliest event and ties break
// in scheduling order — fully deterministic.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot<M> {
    behavior: Option<Box<dyn Node<M>>>,
    channel: ChannelModel,
    clock_offset: i64,
    // Last scheduled drift seen for this node, so dispatch can count
    // `fault.drift_shifts` exactly once per step change.
    last_drift: i64,
}

/// How an installed corruptor mangles an in-flight message: `Some` is the
/// corrupted-but-parseable replacement, `None` means the frame became
/// unparseable garbage and the link layer drops it.
type Corruptor<M> = Box<dyn FnMut(&M, &mut SimRng) -> Option<M>>;

/// The simulated network: a set of nodes on a shared broadcast medium.
pub struct Network<M> {
    nodes: Vec<NodeSlot<M>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    now: SimTime,
    seq: u64,
    started: bool,
    rng: SimRng,
    metrics: Metrics,
    fault: Option<FaultPlan>,
    corruptor: Option<Corruptor<M>>,
}

impl<M> std::fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("fault_plan", &self.fault.is_some())
            .finish_non_exhaustive()
    }
}

impl<M: Clone + 'static> Network<M> {
    /// Creates an empty network driven by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            started: false,
            rng: SimRng::new(seed),
            metrics: Metrics::new(),
            fault: None,
            corruptor: None,
        }
    }

    /// Installs a [`FaultPlan`] layering scripted fault windows on top of
    /// the per-receiver channel models (replacing any previous plan).
    /// Every injected fault is counted under a `fault.*` metric.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The installed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Installs the corruptor that implements corruption windows: given
    /// an in-flight message and the fault RNG it returns the mangled
    /// message, or `None` when the mangled bytes no longer parse and the
    /// link layer drops the frame. Without a corruptor every corrupted
    /// frame is dropped (`fault.corrupt_dropped`).
    pub fn set_corruptor<F>(&mut self, corrupt: F)
    where
        F: FnMut(&M, &mut SimRng) -> Option<M> + 'static,
    {
        self.corruptor = Some(Box::new(corrupt));
    }

    /// Adds a node with a perfectly synchronised clock.
    pub fn add_node<N: Node<M>>(&mut self, behavior: N, channel: ChannelModel) -> NodeId {
        self.add_node_with_offset(behavior, channel, 0)
    }

    /// Adds a node whose local clock runs `clock_offset` ticks away from
    /// global time (see [`crate::clock::ClockOffsets`]).
    pub fn add_node_with_offset<N: Node<M>>(
        &mut self,
        behavior: N,
        channel: ChannelModel,
        clock_offset: i64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            behavior: Some(Box::new(behavior)),
            channel,
            clock_offset,
            last_drift: 0,
        });
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current global time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run-wide metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Borrows a node's concrete state back, if `T` matches.
    #[must_use]
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.0)?
            .behavior
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably borrows a node's concrete state, if `T` matches.
    #[must_use]
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.0)?
            .behavior
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        self.run_until(SimTime(u64::MAX));
    }

    /// Runs until the queue drains or the next event lies after
    /// `deadline`; time stops at the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.dispatch(NodeId(i), None);
            }
        }
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > deadline {
                break;
            }
            let Reverse(scheduled) = self.queue.pop().expect("peeked");
            self.now = scheduled.time;
            match scheduled.event {
                Event::Deliver { to, frame } => self.dispatch(to, Some(DispatchKind::Frame(frame))),
                Event::Timer { node, token } => {
                    self.dispatch(node, Some(DispatchKind::Timer(token)));
                }
            }
        }
    }

    fn schedule(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    fn dispatch(&mut self, id: NodeId, kind: Option<DispatchKind<M>>) {
        let drift = self
            .fault
            .as_ref()
            .map_or(0, |plan| plan.drift_at(id, self.now));
        let Some(slot) = self.nodes.get_mut(id.0) else {
            return;
        };
        if drift != slot.last_drift {
            slot.last_drift = drift;
            self.metrics.incr(keys::FAULT_DRIFT_SHIFTS);
        }
        let clock_offset = slot.clock_offset.saturating_add(drift);
        let Some(mut behavior) = slot.behavior.take() else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            node: id,
            clock_offset,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            actions: Vec::new(),
        };
        match kind {
            None => behavior.on_start(&mut ctx),
            Some(DispatchKind::Frame(frame)) => behavior.on_frame(&mut ctx, &frame),
            Some(DispatchKind::Timer(token)) => behavior.on_timer(&mut ctx, token),
        }
        let actions = ctx.actions;
        self.nodes[id.0].behavior = Some(behavior);
        for action in actions {
            self.apply(id, action);
        }
    }

    fn apply(&mut self, src: NodeId, action: Action<M>) {
        let now = self.now;
        // A crashed node's radio is off: its transmissions are silenced,
        // but its timers keep firing so the state machine resumes
        // mid-chain once the crash window closes.
        let silenced = self
            .fault
            .as_ref()
            .is_some_and(|plan| plan.crashed(src, now));
        match action {
            Action::Broadcast { message, size_bits } => {
                if silenced {
                    self.metrics.incr(keys::FAULT_CRASH_SILENCED);
                    return;
                }
                self.metrics.incr(keys::NET_FRAMES_BROADCAST);
                self.metrics.add(keys::NET_BITS_SENT, u64::from(size_bits));
                for i in 0..self.nodes.len() {
                    if i == src.0 {
                        continue;
                    }
                    self.deliver_one(src, NodeId(i), message.clone(), size_bits);
                }
            }
            Action::SendTo {
                to,
                message,
                size_bits,
            } => {
                if silenced {
                    self.metrics.incr(keys::FAULT_CRASH_SILENCED);
                    return;
                }
                self.metrics.incr(keys::NET_FRAMES_UNICAST);
                self.metrics.add(keys::NET_BITS_SENT, u64::from(size_bits));
                self.deliver_one(src, to, message, size_bits);
            }
            Action::Timer { delay, token } => {
                let at = self.now + delay;
                self.schedule(at, Event::Timer { node: src, token });
            }
        }
    }

    fn deliver_one(&mut self, src: NodeId, to: NodeId, message: M, size_bits: u32) {
        if to.0 >= self.nodes.len() {
            return;
        }
        let now = self.now;
        if let Some(plan) = &self.fault {
            // Blackouts gate the send instant: nothing new enters the
            // medium, but frames already in flight still land.
            if plan.blackout_at(now) {
                self.metrics.incr(keys::FAULT_BLACKOUT_DROPPED);
                return;
            }
            // A crashed receiver's radio is off.
            if plan.crashed(to, now) {
                self.metrics.incr(keys::FAULT_CRASH_DROPPED);
                return;
            }
        }
        let slot = &mut self.nodes[to.0];
        let Some(latency) = slot.channel.sample(&mut self.rng) else {
            self.metrics.incr(keys::NET_FRAMES_LOST);
            return;
        };
        let copies = if self
            .fault
            .as_mut()
            .is_some_and(|plan| plan.duplicate_frame(now))
        {
            self.metrics.incr(keys::FAULT_DUPLICATED);
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut at = now + latency;
            let mut delivered = message.clone();
            if let Some(plan) = &mut self.fault {
                if let Some(extra) = plan.reorder_extra(now) {
                    self.metrics.incr(keys::FAULT_REORDERED);
                    at += extra;
                }
                if plan.corrupt_frame(now) {
                    let mangled = self
                        .corruptor
                        .as_mut()
                        .and_then(|corrupt| corrupt(&delivered, plan.rng_mut()));
                    match mangled {
                        Some(corrupted) => {
                            self.metrics.incr(keys::FAULT_CORRUPTED);
                            delivered = corrupted;
                        }
                        None => {
                            // Unparseable garbage: the link layer drops it.
                            self.metrics.incr(keys::FAULT_CORRUPT_DROPPED);
                            continue;
                        }
                    }
                }
            }
            self.metrics.incr(keys::NET_FRAMES_DELIVERED);
            self.metrics
                .add(keys::NET_BITS_DELIVERED, u64::from(size_bits));
            self.schedule(
                at,
                Event::Deliver {
                    to,
                    frame: Frame {
                        src,
                        message: delivered,
                        size_bits,
                    },
                },
            );
        }
    }
}

enum DispatchKind<M> {
    Frame(Frame<M>),
    Timer(TimerToken),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        rounds: u32,
        pongs_seen: u32,
    }

    impl Node<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.broadcast(Msg::Ping(0), 64);
        }
        fn on_frame(&mut self, ctx: &mut Context<'_, Msg>, frame: &Frame<Msg>) {
            if let Msg::Pong(n) = frame.message {
                self.pongs_seen += 1;
                if n + 1 < self.rounds {
                    ctx.broadcast(Msg::Ping(n + 1), 64);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Ponger;
    impl Node<Msg> for Ponger {
        fn on_frame(&mut self, ctx: &mut Context<'_, Msg>, frame: &Frame<Msg>) {
            if let Msg::Ping(n) = frame.message {
                ctx.send_to(frame.src, Msg::Pong(n), 64);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_rounds_complete() {
        let mut net = Network::new(1);
        let pinger = net.add_node(
            Pinger {
                rounds: 5,
                pongs_seen: 0,
            },
            ChannelModel::perfect(),
        );
        net.add_node(Ponger, ChannelModel::perfect());
        net.run();
        assert_eq!(net.node_as::<Pinger>(pinger).unwrap().pongs_seen, 5);
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        struct CountRx(u32);
        impl Node<Msg> for CountRx {
            fn on_frame(&mut self, _ctx: &mut Context<'_, Msg>, _frame: &Frame<Msg>) {
                self.0 += 1;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Once;
        impl Node<Msg> for Once {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.broadcast(Msg::Ping(1), 8);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = Network::new(2);
        net.add_node(Once, ChannelModel::perfect());
        let rxs: Vec<_> = (0..5)
            .map(|_| net.add_node(CountRx(0), ChannelModel::perfect()))
            .collect();
        net.run();
        for id in rxs {
            assert_eq!(net.node_as::<CountRx>(id).unwrap().0, 1);
        }
        assert_eq!(net.metrics().get(keys::NET_FRAMES_DELIVERED), 5);
        assert_eq!(net.metrics().get(keys::NET_BITS_SENT), 8);
    }

    #[test]
    fn lossy_channel_drops_frames() {
        struct Spam;
        impl Node<Msg> for Spam {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                for i in 0..1000 {
                    ctx.broadcast(Msg::Ping(i), 8);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Sink(u32);
        impl Node<Msg> for Sink {
            fn on_frame(&mut self, _ctx: &mut Context<'_, Msg>, _f: &Frame<Msg>) {
                self.0 += 1;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = Network::new(3);
        net.add_node(Spam, ChannelModel::perfect());
        let rx = net.add_node(Sink(0), ChannelModel::lossy(0.5));
        net.run();
        let got = net.node_as::<Sink>(rx).unwrap().0;
        assert!((400..600).contains(&got), "got {got}");
        assert_eq!(
            net.metrics().get(keys::NET_FRAMES_DELIVERED)
                + net.metrics().get(keys::NET_FRAMES_LOST),
            1000
        );
    }

    #[test]
    fn timers_fire_in_order_at_right_times() {
        struct Timed {
            fired: Vec<(u64, u64)>, // (token, time)
        }
        impl Node<Msg> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration(30), TimerToken(3));
                ctx.set_timer(SimDuration(10), TimerToken(1));
                ctx.set_timer(SimDuration(20), TimerToken(2));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, timer: TimerToken) {
                self.fired.push((timer.0, ctx.now().ticks()));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = Network::new(4);
        let id = net.add_node(Timed { fired: vec![] }, ChannelModel::perfect());
        net.run();
        assert_eq!(
            net.node_as::<Timed>(id).unwrap().fired,
            vec![(1, 10), (2, 20), (3, 30)]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        struct Periodic(u32);
        impl Node<Msg> for Periodic {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration(10), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken) {
                self.0 += 1;
                ctx.set_timer(SimDuration(10), TimerToken(0));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = Network::new(5);
        let id = net.add_node(Periodic(0), ChannelModel::perfect());
        net.run_until(SimTime(55));
        assert_eq!(net.node_as::<Periodic>(id).unwrap().0, 5);
        assert_eq!(net.now(), SimTime(50));
        // Resuming continues from where we stopped.
        net.run_until(SimTime(100));
        assert_eq!(net.node_as::<Periodic>(id).unwrap().0, 10);
    }

    #[test]
    fn local_time_respects_clock_offset() {
        struct Probe {
            local: u64,
        }
        impl Node<Msg> for Probe {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration(100), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken) {
                self.local = ctx.local_time().ticks();
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = Network::new(6);
        let fast = net.add_node_with_offset(Probe { local: 0 }, ChannelModel::perfect(), 25);
        let slow = net.add_node_with_offset(Probe { local: 0 }, ChannelModel::perfect(), -25);
        net.run();
        assert_eq!(net.node_as::<Probe>(fast).unwrap().local, 125);
        assert_eq!(net.node_as::<Probe>(slow).unwrap().local, 75);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run(seed: u64) -> u32 {
            let mut net = Network::new(seed);
            struct Spam;
            impl Node<Msg> for Spam {
                fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                    for i in 0..100 {
                        ctx.broadcast(Msg::Ping(i), 8);
                    }
                }
                fn as_any(&self) -> &dyn Any {
                    self
                }
                fn as_any_mut(&mut self) -> &mut dyn Any {
                    self
                }
            }
            struct Sink(u32);
            impl Node<Msg> for Sink {
                fn on_frame(&mut self, _c: &mut Context<'_, Msg>, _f: &Frame<Msg>) {
                    self.0 += 1;
                }
                fn as_any(&self) -> &dyn Any {
                    self
                }
                fn as_any_mut(&mut self) -> &mut dyn Any {
                    self
                }
            }
            net.add_node(Spam, ChannelModel::perfect());
            let rx = net.add_node(Sink(0), ChannelModel::lossy(0.3));
            net.run();
            net.node_as::<Sink>(rx).unwrap().0
        }
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn node_as_wrong_type_is_none() {
        let mut net: Network<Msg> = Network::new(8);
        let id = net.add_node(Ponger, ChannelModel::perfect());
        assert!(net.node_as::<Pinger>(id).is_none());
        assert!(net.node_as_mut::<Ponger>(id).is_some());
        assert!(net.node_as::<Ponger>(NodeId(99)).is_none());
    }

    #[test]
    fn debug_output_mentions_nodes() {
        let net: Network<Msg> = Network::new(9);
        assert!(format!("{net:?}").contains("Network"));
    }

    // --- fault-plan integration -------------------------------------

    use crate::fault::{DriftSchedule, FaultPlan, FaultWindow};

    /// Broadcasts one `Ping(i)` every 10 ticks, forever (until deadline).
    struct Beacon(u32);
    impl Node<Msg> for Beacon {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration(10), TimerToken(0));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken) {
            ctx.broadcast(Msg::Ping(self.0), 8);
            self.0 += 1;
            ctx.set_timer(SimDuration(10), TimerToken(0));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Collect(Vec<u32>);
    impl Node<Msg> for Collect {
        fn on_frame(&mut self, _c: &mut Context<'_, Msg>, f: &Frame<Msg>) {
            if let Msg::Ping(n) = f.message {
                self.0.push(n);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn beacon_net(seed: u64) -> (Network<Msg>, NodeId) {
        let mut net = Network::new(seed);
        net.add_node(Beacon(0), ChannelModel::perfect());
        let rx = net.add_node(Collect(Vec::new()), ChannelModel::perfect());
        (net, rx)
    }

    #[test]
    fn blackout_drops_frames_sent_in_window() {
        let (mut net, rx) = beacon_net(10);
        net.set_fault_plan(FaultPlan::new(1).blackout(FaultWindow::new(SimTime(25), SimTime(55))));
        net.run_until(SimTime(100));
        // Beacons at 30, 40, 50 fall inside [25, 55): pings 2, 3, 4 lost.
        assert_eq!(
            net.node_as::<Collect>(rx).unwrap().0,
            vec![0, 1, 5, 6, 7, 8, 9]
        );
        assert_eq!(net.metrics().get(keys::FAULT_BLACKOUT_DROPPED), 3);
    }

    #[test]
    fn crashed_sender_is_silenced_and_resumes_mid_chain() {
        let (mut net, rx) = beacon_net(11);
        net.set_fault_plan(
            FaultPlan::new(1).crash(NodeId(0), FaultWindow::new(SimTime(25), SimTime(55))),
        );
        net.run_until(SimTime(100));
        // The beacon's timers kept firing while crashed, so it resumes
        // at ping 5, not ping 2 — a genuine mid-chain restart.
        assert_eq!(
            net.node_as::<Collect>(rx).unwrap().0,
            vec![0, 1, 5, 6, 7, 8, 9]
        );
        assert_eq!(net.metrics().get(keys::FAULT_CRASH_SILENCED), 3);
    }

    #[test]
    fn crashed_receiver_drops_inbound_frames() {
        let (mut net, rx) = beacon_net(12);
        net.set_fault_plan(
            FaultPlan::new(1).crash(NodeId(1), FaultWindow::new(SimTime(25), SimTime(55))),
        );
        net.run_until(SimTime(100));
        assert_eq!(
            net.node_as::<Collect>(rx).unwrap().0,
            vec![0, 1, 5, 6, 7, 8, 9]
        );
        assert_eq!(net.metrics().get(keys::FAULT_CRASH_DROPPED), 3);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let (mut net, rx) = beacon_net(13);
        net.set_fault_plan(
            FaultPlan::new(1).duplicate(FaultWindow::new(SimTime(0), SimTime(1000)), 1.0),
        );
        net.run_until(SimTime(100));
        // Every ping arrives twice.
        assert_eq!(
            net.node_as::<Collect>(rx).unwrap().0,
            vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9]
        );
        assert_eq!(net.metrics().get(keys::FAULT_DUPLICATED), 10);
        assert_eq!(net.metrics().get(keys::NET_FRAMES_DELIVERED), 20);
    }

    #[test]
    fn corruption_without_corruptor_drops_frames() {
        let (mut net, rx) = beacon_net(14);
        net.set_fault_plan(
            FaultPlan::new(1).corrupt(FaultWindow::new(SimTime(0), SimTime(1000)), 1.0),
        );
        net.run_until(SimTime(100));
        assert!(net.node_as::<Collect>(rx).unwrap().0.is_empty());
        assert_eq!(net.metrics().get(keys::FAULT_CORRUPT_DROPPED), 10);
    }

    #[test]
    fn corruptor_mangles_frames_deterministically() {
        let (mut net, rx) = beacon_net(15);
        net.set_fault_plan(
            FaultPlan::new(1).corrupt(FaultWindow::new(SimTime(0), SimTime(1000)), 1.0),
        );
        net.set_corruptor(|m: &Msg, rng| match m {
            Msg::Ping(n) => Some(Msg::Ping(n ^ (1 << rng.below(8)))),
            Msg::Pong(_) => None,
        });
        net.run_until(SimTime(100));
        let got = &net.node_as::<Collect>(rx).unwrap().0;
        assert_eq!(got.len(), 10);
        // Every frame was bit-flipped away from its original value.
        for (i, n) in got.iter().enumerate() {
            assert_ne!(*n, i as u32, "frame {i} arrived uncorrupted");
        }
        assert_eq!(net.metrics().get(keys::FAULT_CORRUPTED), 10);
    }

    #[test]
    fn reorder_spike_delays_frames() {
        let (mut net, rx) = beacon_net(16);
        net.set_fault_plan(FaultPlan::new(1).reorder(
            FaultWindow::new(SimTime(0), SimTime(1000)),
            1.0,
            SimDuration(50),
        ));
        net.run_until(SimTime(200));
        // Every sent ping was delayed; the ones whose spike pushed them
        // past the deadline are still queued, the rest landed.
        let got = &net.node_as::<Collect>(rx).unwrap().0;
        assert_eq!(net.metrics().get(keys::FAULT_REORDERED), 20);
        assert!((10..=20).contains(&got.len()), "got {got:?}");
    }

    #[test]
    fn drift_schedule_shifts_local_clock() {
        struct Probe(Vec<u64>);
        impl Node<Msg> for Probe {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration(10), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken) {
                self.0.push(ctx.local_time().ticks());
                ctx.set_timer(SimDuration(10), TimerToken(0));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(17);
        let id = net.add_node_with_offset(Probe(Vec::new()), ChannelModel::perfect(), 100);
        net.set_fault_plan(
            FaultPlan::new(1).drift(
                id,
                DriftSchedule::new()
                    .step(SimTime(25), 7)
                    .step(SimTime(45), -3),
            ),
        );
        net.run_until(SimTime(60));
        // Static offset 100, drift 0 → 7 (from t=25) → −3 (from t=45).
        assert_eq!(
            net.node_as::<Probe>(id).unwrap().0,
            vec![110, 120, 137, 147, 147, 157]
        );
        assert_eq!(net.metrics().get(keys::FAULT_DRIFT_SHIFTS), 2);
    }

    #[test]
    fn empty_fault_plan_leaves_run_bit_identical() {
        fn run(plan: Option<FaultPlan>) -> (Vec<u32>, u64, u64) {
            let mut net = Network::new(18);
            net.add_node(Beacon(0), ChannelModel::perfect());
            let rx = net.add_node(Collect(Vec::new()), ChannelModel::lossy(0.3));
            if let Some(plan) = plan {
                net.set_fault_plan(plan);
            }
            net.run_until(SimTime(500));
            (
                net.node_as::<Collect>(rx).unwrap().0.clone(),
                net.metrics().get(keys::NET_FRAMES_DELIVERED),
                net.metrics().get(keys::NET_FRAMES_LOST),
            )
        }
        assert_eq!(run(None), run(Some(FaultPlan::new(99))));
    }

    #[test]
    fn same_seed_same_faulted_run() {
        fn run() -> (Vec<u32>, u64, u64, u64) {
            let mut net = Network::new(19);
            net.add_node(Beacon(0), ChannelModel::perfect());
            let rx = net.add_node(Collect(Vec::new()), ChannelModel::lossy(0.2));
            net.set_fault_plan(
                FaultPlan::new(7)
                    .blackout(FaultWindow::new(SimTime(100), SimTime(150)))
                    .corrupt(FaultWindow::new(SimTime(200), SimTime(300)), 0.5)
                    .duplicate(FaultWindow::new(SimTime(300), SimTime(400)), 0.5),
            );
            net.set_corruptor(|m: &Msg, rng| match m {
                Msg::Ping(n) => Some(Msg::Ping(n ^ (1 << rng.below(8)))),
                Msg::Pong(_) => None,
            });
            net.run_until(SimTime(500));
            (
                net.node_as::<Collect>(rx).unwrap().0.clone(),
                net.metrics().get(keys::FAULT_BLACKOUT_DROPPED),
                net.metrics().get(keys::FAULT_CORRUPTED),
                net.metrics().get(keys::FAULT_DUPLICATED),
            )
        }
        assert_eq!(run(), run());
    }
}
