//! Small statistics helpers for experiments: an exact-quantile sample
//! collector and a fixed-bucket histogram for streaming use.

/// Collects raw `u64` samples and answers exact quantile queries.
///
/// Experiments in this workspace are small enough (≤ millions of
/// samples) that storing everything and sorting on demand is simpler and
/// more precise than a sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Samples {
    values: Vec<u64>,
    sorted: bool,
}

impl Samples {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<u64>() as f64 / self.values.len() as f64)
    }

    /// The exact `q`-quantile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.values.iter().min().copied()
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.values.iter().max().copied()
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

impl FromIterator<u64> for Samples {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self {
            values: iter.into_iter().collect(),
            sorted: false,
        }
    }
}

impl Extend<u64> for Samples {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.values.extend(iter);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collector() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s: Samples = (1..=100u64).collect();
        assert_eq!(s.quantile(0.5), Some(50));
        assert_eq!(s.quantile(0.95), Some(95));
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(100));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(100));
        assert_eq!(s.mean(), Some(50.5));
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut s = Samples::new();
        s.record(10);
        assert_eq!(s.quantile(1.0), Some(10));
        s.record(5);
        assert_eq!(s.quantile(0.0), Some(5));
    }

    #[test]
    fn merge_and_extend() {
        let mut a: Samples = [1u64, 2].into_iter().collect();
        let b: Samples = [3u64, 4].into_iter().collect();
        a.merge(&b);
        a.extend([5u64]);
        assert_eq!(a.len(), 5);
        assert_eq!(a.quantile(1.0), Some(5));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn bad_quantile_panics() {
        let mut s: Samples = [1u64].into_iter().collect();
        let _ = s.quantile(1.5);
    }
}
