//! A deterministic discrete-event simulator for broadcast-authentication
//! experiments in crowdsensing networks.
//!
//! The ICDCS'16 paper this workspace reproduces evaluates its protocols in
//! simulation; this crate is that substrate. It models exactly the aspects
//! the protocols are sensitive to:
//!
//! * **virtual time** ([`time`]) — protocols divide time into intervals and
//!   disclose keys with a delay;
//! * **a lossy broadcast channel** ([`channel`]) — per-receiver loss
//!   probability, propagation delay and jitter ("low QoS channels");
//! * **loose clock synchronisation** ([`clock`]) — every node's clock is
//!   offset from global time by a bounded amount, which is the assumption
//!   the TESLA "safe packet test" rests on;
//! * **flooding adversaries** ([`adversary`]) — an attacker spends a
//!   fraction `x_a` of the channel bandwidth on forged packets;
//! * **scripted faults** ([`fault`]) — seeded blackout / corruption /
//!   duplication / reorder / crash / drift windows layered on top of the
//!   channel model, every injection counted under `fault.*` metrics;
//! * **deterministic randomness** ([`rng`]) and **metrics** ([`metrics`]).
//!
//! The simulator is generic over the message type `M`, so each protocol
//! crate plugs in its own wire enums and keeps full type safety.
//!
//! # Example
//!
//! ```
//! use dap_simnet::{Network, Node, Context, Frame, TimerToken, ChannelModel, SimDuration};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//!
//! struct Sender;
//! impl Node<Ping> for Sender {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         ctx.broadcast(Ping(7), 32);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! #[derive(Default)]
//! struct Counter(u32);
//! impl Node<Ping> for Counter {
//!     fn on_frame(&mut self, _ctx: &mut Context<'_, Ping>, frame: &Frame<Ping>) {
//!         self.0 += frame.message.0;
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut net = Network::new(42);
//! let _tx = net.add_node(Sender, ChannelModel::perfect());
//! let rx = net.add_node(Counter::default(), ChannelModel::perfect());
//! net.run();
//! assert_eq!(net.node_as::<Counter>(rx).unwrap().0, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod channel;
pub mod clock;
pub mod energy;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod rng;
pub mod stats;
pub mod time;

pub use adversary::FloodIntensity;
pub use channel::{ChannelModel, LossModel};
pub use clock::ClockOffsets;
pub use energy::EnergyModel;
pub use fault::{DriftSchedule, FaultPlan, FaultWindow};
pub use metrics::{keys, Metrics, Registry};
pub use network::{Context, Frame, Network, Node, NodeId, TimerToken};
pub use rng::SimRng;
pub use stats::Samples;
pub use time::{IntervalSchedule, SimDuration, SimTime};
